//! Quickstart: generate one homogeneous random rough surface, check its
//! statistics against the requested parameters, and render it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rrs::prelude::*;
use std::fs::File;

fn main() {
    // A Gaussian-spectrum surface: height std-dev 1.5, correlation
    // length 12 samples in both directions.
    let params = SurfaceParams::isotropic(1.5, 12.0);
    let spectrum = Gaussian::new(params);

    // The convolution method: build the kernel once, then stamp out any
    // window of an unbounded surface.
    let generator = ConvolutionGenerator::new(&spectrum, KernelSizing::default());
    let noise = NoiseField::new(2024);
    let surface = generator.generate(&noise, Window::new(0, 0, 512, 512));

    println!("generated a {}x{} surface", surface.nx(), surface.ny());
    println!("  min/max height : {:+.3} / {:+.3}", surface.min(), surface.max());

    // Quantitative check: measured std-dev and correlation length vs target.
    let report = validate_region(&surface, &spectrum, 0, 0, 512, 512);
    println!("  target h       : {:.3}", report.target.h);
    println!("  measured h     : {:.3}  ({:.1}% off)", report.h_measured, 100.0 * report.h_rel_error());
    println!("  target cl      : {:.1}", report.target.clx);
    println!(
        "  measured cl    : {}",
        report
            .clx_measured
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "unresolved".into())
    );
    println!("  skew / kurtosis: {:+.2} / {:.2}  (Gaussian: 0 / 3)", report.skewness, report.kurtosis);

    // Render to a grayscale PGM you can open with any image viewer.
    let path = "quickstart_surface.pgm";
    rrs::io::write_pgm(File::create(path).expect("create file"), &surface).expect("write PGM");
    println!("wrote {path}");
}
