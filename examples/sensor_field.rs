//! Wireless-sensor-network scenario — the application that motivates the
//! paper.
//!
//! Terrain is synthesised with the point-oriented method (Figure 4's
//! layout: nine representative points on a ring plus a smooth centre),
//! then a radio link budget is evaluated along profiles cut across the
//! inhomogeneous terrain: a sensor at the smooth centre talking to nodes
//! out in the progressively rougher ring cells.
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```

use rrs::grid::extract_profile;
use rrs::prelude::*;
use rrs::propagation::{free_space_loss_db, link_budget_sweep};
use std::fs::File;

fn main() {
    // Quarter-scale Figure 4 layout.
    let ring = 125.0;
    let n = 384usize;
    let half = (n / 2) as i64;
    let group = |i: usize| -> SpectrumModel {
        match i {
            1..=3 => SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 12.5)),
            4..=6 => SpectrumModel::gaussian(SurfaceParams::isotropic(1.5, 18.75)),
            _ => SpectrumModel::gaussian(SurfaceParams::isotropic(2.0, 25.0)),
        }
    };
    let mut points = Vec::new();
    for i in 1..=9usize {
        let th = std::f64::consts::TAU * i as f64 / 9.0;
        points.push(RepresentativePoint {
            x: ring * th.cos(),
            y: ring * th.sin(),
            spectrum: group(i),
        });
    }
    points.push(RepresentativePoint {
        x: 0.0,
        y: 0.0,
        spectrum: SpectrumModel::exponential(SurfaceParams::isotropic(0.5, 25.0)),
    });
    let layout = PointLayout::new(points, 25.0);
    let generator = InhomogeneousGenerator::new(layout, KernelSizing::default());
    let terrain = generator.generate(&NoiseField::new(99), Window::new(-half, -half, n, n));

    println!("terrain {}x{}: overall h = {:.2}", n, n, terrain.std_dev());
    rrs::io::write_ppm(File::create("sensor_field.ppm").expect("create"), &terrain)
        .expect("write PPM");

    // Link budgets: centre node to a node in each ring group. Grid unit
    // = 1 m, 2.4 GHz, 2 m masts.
    let f_hz = 2.4e9;
    let centre = (half as f64, half as f64); // grid coords of the origin
    println!("\nlink budget from the centre sensor (2.4 GHz, 2 m masts),");
    println!("averaged over the three nodes of each ring group and 5 ranges each:");
    println!(
        "{:<22} {:>9} {:>11} {:>14} {:>12}",
        "target cell", "dist (m)", "FSPL (dB)", "mean diffr (dB)", "total (dB)"
    );
    for (label, group_points) in [
        ("smooth cell (i=1..3)", [1usize, 2, 3]),
        ("medium cell (i=4..6)", [4, 5, 6]),
        ("rough cell (i=7..9)", [7, 8, 9]),
    ] {
        let mut fs = 0.0;
        let mut diff = 0.0;
        let mut dist = 0.0;
        let mut count = 0.0;
        for i in group_points {
            let th = std::f64::consts::TAU * i as f64 / 9.0;
            for k in 0..5 {
                let r = (0.9 + 0.1 * k as f64) * ring;
                let target = (centre.0 + r * th.cos(), centre.1 + r * th.sin());
                let profile = extract_profile(&terrain, centre, target, 200);
                let sweep = link_budget_sweep(&profile, 2.0, 2.0, f_hz, 199, 1);
                let s = sweep.last().expect("sweep sample");
                fs += s.free_space_db;
                diff += s.diffraction_db;
                dist += s.distance_m;
                count += 1.0;
            }
        }
        println!(
            "{:<22} {:>9.0} {:>11.1} {:>14.1} {:>12.1}",
            label,
            dist / count,
            fs / count,
            diff / count,
            (fs + diff) / count
        );
    }
    let fspl_only = free_space_loss_db(1.1 * ring, f_hz);
    println!(
        "\n(free space alone at {:.0} m is {:.1} dB; note the diffraction penalty tracks the\n \
         number of crests per path — i.e. 1/cl — more than the raw height h: the h=1.0,\n \
         cl=12.5 cells put more knife edges between the antennas than the taller but\n \
         longer-wavelength h=2.0, cl=25 cells. Exactly the kind of effect inhomogeneous\n \
         surface statistics exist to capture.)",
        1.1 * ring,
        fspl_only
    );
}
