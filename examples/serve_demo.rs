//! Serving demo: an in-process surface server, three tenants, and the
//! transparency check.
//!
//! Starts `rrs-serve` on a loopback port, then plays three roles
//! against it:
//!
//! * a **mapping tenant** streaming a row of adjacent ocean windows
//!   (same kernel every time — watch the coalescing/cache counters);
//! * a **preview tenant** asking for one small window with a
//!   per-request deadline and byte ceiling riding the wire;
//! * an **auditor** fetching the metrics report and verifying a served
//!   window is bit-identical to calling the library directly.
//!
//! Run with `cargo run --release --example serve_demo`.

use rrs::obs::stage;
use rrs::prelude::*;
use rrs::serve::serve;

fn main() {
    let server = serve(ServeConfig::default()).expect("bind loopback server");
    println!("serving on {}", server.addr());

    let ocean = SpectrumModel::gaussian(SurfaceParams::isotropic(0.8, 12.0));

    // -- mapping tenant: a strip of adjacent windows, one shared kernel --
    let mut mapper = Client::connect(server.addr()).expect("connect mapper");
    let tile = 96usize;
    for i in 0..6u64 {
        let win = Window::new(i as i64 * tile as i64, 0, tile, tile);
        let req = GenerateRequest::new(i, /* tenant */ 1, /* seed */ 7, ocean, win)
            .with_truncation(1e-3)
            .with_backend(ConvBackend::FftOverlapSave);
        mapper.send(&req).expect("send tile request");
    }
    let mut tiles = Vec::new();
    for _ in 0..6 {
        let (id, outcome) = mapper.recv().expect("tile response");
        tiles.push((id, outcome.expect("tile generated")));
    }
    tiles.sort_by_key(|(id, _)| *id);
    println!("mapper: {} tiles of {tile}x{tile} received", tiles.len());

    // Adjacent windows of one seed tile seamlessly: the right edge of
    // tile 0 continues into the left edge of tile 1 because the served
    // surface is the same unbounded lattice the library exposes.
    let (a, b) = (&tiles[0].1, &tiles[1].1);
    let seam_ok = (0..tile).all(|y| {
        // No shared column (half-open windows) — just check both edges
        // are finite and the fields differ (no tile duplication bug).
        a.get(tile - 1, y).is_finite() && b.get(0, y).is_finite()
    });
    assert!(seam_ok && a != b, "adjacent tiles must be distinct and finite");

    // -- preview tenant: per-request budget on the wire ------------------
    let mut preview = Client::connect(server.addr()).expect("connect preview");
    let req = GenerateRequest::new(100, /* tenant */ 2, 99, ocean, Window::sized(32, 32))
        .with_truncation(1e-3)
        .with_deadline_ms(10_000)
        .with_max_bytes(1 << 20);
    let small = preview.try_generate(&req).expect("preview within budget");
    println!("preview: 32x32 window, std-dev {:.3}", small.std_dev());

    // And a budget that cannot fit: typed rejection, nothing allocated.
    let starved = GenerateRequest::new(101, 2, 99, ocean, Window::sized(512, 512))
        .with_max_bytes(1024);
    match preview.try_generate(&starved) {
        Err(ServeError::Remote(e)) => {
            println!(
                "preview: oversized request rejected as {:?} ({} bytes needed, {} allowed)",
                e.kind, e.required_bytes, e.max_bytes
            );
        }
        other => panic!("expected a typed budget rejection, got {other:?}"),
    }

    // -- auditor: transparency + metrics ---------------------------------
    let mut auditor = Client::connect(server.addr()).expect("connect auditor");
    let probe = GenerateRequest::new(200, 3, 7, ocean, Window::new(0, 0, tile, tile))
        .with_truncation(1e-3)
        .with_backend(ConvBackend::FftOverlapSave);
    let served = auditor.try_generate(&probe).expect("probe");
    let direct = {
        let kernel = ConvolutionKernel::build(&ocean, KernelSizing::default())
            .truncated(1e-3);
        ConvolutionGenerator::from_kernel(kernel)
            .with_backend(ConvBackend::FftOverlapSave)
            .generate(&NoiseField::new(7), Window::new(0, 0, tile, tile))
    };
    assert_eq!(served, direct, "served output must be bit-identical to the library");
    println!("auditor: served window is bit-identical to the direct library call");

    let report = server.report();
    println!(
        "metrics: {} requests, {} batches, {} coalesced, kernel cache {} hits / {} misses",
        report.counter(stage::SERVE_REQUESTS),
        report.counter(stage::SERVE_BATCHES),
        report.counter(stage::SERVE_COALESCED),
        report.counter(stage::SERVE_KERNEL_HIT),
        report.counter(stage::SERVE_KERNEL_MISS),
    );
    let json = auditor.metrics().expect("metrics frame");
    println!("metrics endpoint returned {} bytes of JSON", json.len());

    server.shutdown();
    println!("server drained and shut down");
}
