//! Sharded failover demo: three servers, one client, one dies.
//!
//! Starts three in-process surface servers, routes a stream of
//! requests through a [`ShardedClient`] (rendezvous hashing on the
//! kernel-coalescing key, so each surface family sticks to one
//! endpoint and its kernel cache), then kills one endpoint mid-stream
//! and keeps going: every request still completes, bit-identical to
//! direct library generation, while the client's resilience counters
//! show the failovers and the circuit breaker opening. Finally one of
//! the survivors is drained gracefully — it finishes what it admitted
//! and rejects the rest with a typed, retryable `Draining` that the
//! sharded client routes around.
//!
//! Run with `cargo run --release --example sharded_failover`.

use rrs::obs::stage;
use rrs::prelude::*;
use rrs::serve::serve;

fn spectrum_for(family: usize) -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0 + family as f64))
}

fn request(id: u64, family: usize, seed: u64) -> GenerateRequest {
    GenerateRequest::new(id, /* tenant */ 0, seed, spectrum_for(family), Window::sized(64, 64))
        .with_truncation(1e-3)
        .with_sizing(8.0, 16, 64)
        .with_backend(ConvBackend::FftOverlapSave)
}

fn direct(family: usize, seed: u64) -> Grid2<f64> {
    let kernel = ConvolutionKernel::build(
        &spectrum_for(family),
        KernelSizing::Auto { factor: 8.0, min: 16, max: 64 },
    )
    .truncated(1e-3);
    ConvolutionGenerator::from_kernel(kernel)
        .with_backend(ConvBackend::FftOverlapSave)
        .generate(&NoiseField::new(seed), Window::sized(64, 64))
}

fn main() {
    let a = serve(ServeConfig::default()).expect("bind a");
    let b = serve(ServeConfig::default()).expect("bind b");
    let c = serve(ServeConfig::default()).expect("bind c");
    println!("serving on {}, {}, {}", a.addr(), b.addr(), c.addr());

    let endpoints = vec![a.addr().to_string(), b.addr().to_string(), c.addr().to_string()];
    let mut client = ShardedClient::new(ShardedConfig::new(endpoints)).expect("sharded client");

    // Routing is a pure function of the request's kernel key: the same
    // surface family always lands on the same endpoint, so each
    // server's kernel LRU only ever holds its own families.
    for family in 0..6 {
        println!("family {family} routes to endpoint {}", client.primary_endpoint(&request(0, family, 1)));
    }

    // Phase 1: all three endpoints healthy.
    for i in 0..12u64 {
        let family = (i % 6) as usize;
        let grid = client.generate(&request(i + 1, family, 40 + i)).expect("healthy serve");
        assert_eq!(grid, direct(family, 40 + i), "served == direct, bit for bit");
    }
    println!("phase 1: 12 requests over 3 healthy endpoints, all bit-identical");

    // Phase 2: endpoint c dies mid-stream. Generation is stateless and
    // idempotent, so the client just re-sends to the next endpoint in
    // the rendezvous ranking — same bits, one failover counter tick.
    c.shutdown();
    for i in 12..36u64 {
        let family = (i % 6) as usize;
        let grid = client.generate(&request(i + 1, family, 40 + i)).expect("failover serve");
        assert_eq!(grid, direct(family, 40 + i), "failover output == direct, bit for bit");
    }
    let report = client.report();
    println!(
        "phase 2: 24 requests with one dead endpoint — {} failovers, {} breaker skips, {} reconnects",
        report.counter(stage::SERVE_CLIENT_FAILOVER),
        report.counter(stage::SERVE_CLIENT_BREAKER_SKIP),
        report.counter(stage::SERVE_CLIENT_CONNECT),
    );

    // Phase 3: drain b gracefully. It stops admitting (new requests get
    // a typed, retryable `Draining` the sharded client fails over) but
    // flushes everything already accepted before exiting.
    let drain_report = b.drain();
    println!(
        "phase 3: endpoint b drained after serving {} windows",
        drain_report.counter(stage::SERVE_GENERATE),
    );
    for i in 36..48u64 {
        let family = (i % 6) as usize;
        let grid = client.generate(&request(i + 1, family, 40 + i)).expect("last endpoint serves");
        assert_eq!(grid, direct(family, 40 + i), "single survivor output == direct");
    }
    println!("phase 3: 12 requests served by the last endpoint standing, all bit-identical");

    a.shutdown();
    println!("done: every window bit-identical through death, failover and drain");
}
