//! The paper's Figure 3 scenario: a vegetable field containing a pond.
//!
//! A circular region with a smooth Exponential-spectrum surface
//! (h = 0.2, cl = 50 — water) sits inside a rougher Gaussian-spectrum
//! field (h = 1.0, cl = 50 — crops), blended across a 100-sample
//! transition ring by the plate-oriented method.
//!
//! ```text
//! cargo run --release --example vegetable_field_pond
//! ```

use rrs::prelude::*;
use std::fs::File;

fn main() {
    // Work at quarter scale of the paper's figure so the example runs in
    // about a second; multiply the constants by 4 for the full figure.
    let n = 384usize;
    let centre = n as f64 / 2.0;
    let radius = 125.0;
    let transition = 25.0;
    let cl = 12.5;

    let pond = SpectrumModel::exponential(SurfaceParams::isotropic(0.2, cl));
    let field = SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, cl));

    let layout = PlateLayout::new(
        vec![Plate {
            region: Region::Circle { cx: centre, cy: centre, r: radius },
            spectrum: pond,
        }],
        Some(field),
        transition,
    );
    let generator = InhomogeneousGenerator::new(layout, KernelSizing::default());
    let surface = generator.generate(&NoiseField::new(7), Window::sized(n, n));

    // Validate the two homogeneous zones.
    let side = (radius / std::f64::consts::SQRT_2) as usize - 20;
    let c = n / 2;
    let pond_report =
        validate_region(&surface, &pond, c - side / 2, c - side / 2, side, side);
    let strip = (centre - radius - transition) as usize - 10;
    let field_report = validate_region(&surface, &field, 0, 0, n, strip);

    println!("pond : target h = {:.2}, measured h = {:.3}", pond_report.target.h, pond_report.h_measured);
    println!("field: target h = {:.2}, measured h = {:.3}", field_report.target.h, field_report.h_measured);
    assert!(
        field_report.h_measured > 3.0 * pond_report.h_measured,
        "the pond must be much smoother than the field"
    );

    let path = "field_pond.ppm";
    rrs::io::write_ppm(File::create(path).expect("create file"), &surface).expect("write PPM");
    println!("wrote {path} (false-colour heightmap — the flat disc is the pond)");
}
