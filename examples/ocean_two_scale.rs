//! A two-scale ocean-like surface — mixture spectra + rotated anisotropy.
//!
//! Sea surfaces superpose long-crested swell (long correlation length,
//! strongly anisotropic, running at some azimuth) with isotropic capillary
//! ripple. Both extensions beyond the paper compose freely with the
//! convolution generator:
//!
//! * [`rrs::spectrum::Mixture`] — spectra add under superposition;
//! * [`rrs::spectrum::Rotated`] — correlation axes at any azimuth.
//!
//! ```text
//! cargo run --release --example ocean_two_scale
//! ```

use rrs::prelude::*;
use rrs::spectrum::SpectrumModel;
use rrs::stats::slopes::{rms_slope_x, rms_slope_y};
use std::fs::File;

fn main() {
    // Swell: strongly anisotropic Gaussian, crests every ~60 samples,
    // rotated 30° off the x axis. Ripple: small isotropic exponential.
    let swell = Rotated::new(
        Gaussian::new(SurfaceParams::new(1.0, 15.0, 60.0)),
        30f64.to_radians(),
    );
    let ripple = SpectrumModel::exponential(SurfaceParams::isotropic(0.25, 3.0));

    // Generate each component against *independent* noise and superpose —
    // valid because the components are independent processes.
    let n = 512usize;
    let swell_gen = ConvolutionGenerator::new(&swell, KernelSizing::default());
    let ripple_gen = ConvolutionGenerator::new(&ripple, KernelSizing::default());
    let mut sea = swell_gen.generate(&NoiseField::new(1), Window::new(0, 0, n, n));
    let ripple_field = ripple_gen.generate(&NoiseField::new(2), Window::new(0, 0, n, n));
    sea.add_assign(&ripple_field);

    let total_h = (1.0f64 + 0.25 * 0.25).sqrt();
    println!("two-scale sea, {n}x{n}:");
    println!("  target h   : {total_h:.3}  (swell 1.0 ⊕ ripple 0.25)");
    println!("  measured h : {:.3}", sea.std_dev());

    // The mixture spectrum predicts the same statistics in one model.
    let mixture = Mixture::new(vec![
        SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 30.0)),
        SpectrumModel::exponential(SurfaceParams::isotropic(0.25, 3.0)),
    ]);
    println!(
        "  mixture model h: {:.3} (variance additivity)",
        mixture.params().h
    );

    // Anisotropy shows up in the slope field: across the (rotated) crests
    // the surface is much steeper than along them.
    println!("  rms slope x: {:.4}", rms_slope_x(&sea, 1.0));
    println!("  rms slope y: {:.4}", rms_slope_y(&sea, 1.0));

    rrs::io::write_ppm(File::create("ocean.ppm").expect("create file"), &sea)
        .expect("write PPM");
    println!("wrote ocean.ppm (30°-rotated swell crests with ripple texture)");
}
