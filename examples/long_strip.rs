//! Streaming generation of an arbitrarily long surface — the convolution
//! method's headline advantage over the direct DFT method (paper §2.4).
//!
//! The strip generator produces consecutive tiles of an unbounded-in-x
//! surface; tiles join seamlessly because the noise lattice is a pure
//! function of absolute coordinates. A direct-DFT generator would need
//! the whole surface in memory at once.
//!
//! ```text
//! cargo run --release --example long_strip
//! ```

use rrs::prelude::*;
use rrs::stats::Moments;

fn main() {
    let spectrum = Exponential::new(SurfaceParams::isotropic(1.0, 10.0));
    let height = 128usize;
    let tile = 512usize;
    let tiles = 16usize;
    // Auto picks the overlap-save FFT engine for this kernel size and
    // reuses its cached kernel spectrum across every tile below.
    let mut gen = StripGenerator::new(&spectrum, KernelSizing::default(), height, 31)
        .with_backend(ConvBackend::Auto);

    println!(
        "streaming a {}-sample-high surface in {} tiles of width {} (total length {})",
        height,
        tiles,
        tile,
        tiles * tile
    );
    let mut all = Moments::new();
    println!("{:>6} {:>10} {:>10} {:>10}", "tile", "mean", "h_hat", "min..max");
    for i in 0..tiles {
        let strip = gen.next_strip(tile);
        let mut m = Moments::new();
        m.push_all(strip.as_slice());
        all = all.merge(&m);
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>6.2}..{:.2}",
            i,
            m.mean(),
            m.std_dev(),
            strip.min(),
            strip.max()
        );
    }
    println!(
        "\noverall: {} samples, mean {:+.4}, h_hat {:.4} (target 1.0)",
        all.count(),
        all.mean(),
        all.std_dev()
    );

    // Seamlessness: a window straddling a tile boundary equals the
    // corresponding pieces of the sequential tiles. Under the FFT
    // backend the three requests use different tile plans, so they
    // agree to floating-point roundoff; under ConvBackend::Direct the
    // reconstruction is exactly 0.
    let boundary = tile as i64;
    let straddle = gen.strip_at(boundary - 8, 16);
    let left = gen.strip_at(boundary - 8, 8);
    let right = gen.strip_at(boundary, 8);
    let mut max_err: f64 = 0.0;
    for iy in 0..height {
        for ix in 0..8 {
            max_err = max_err.max((straddle.get(ix, iy) - left.get(ix, iy)).abs());
            max_err = max_err.max((straddle.get(ix + 8, iy) - right.get(ix, iy)).abs());
        }
    }
    println!("tile-boundary reconstruction error: {max_err:.3e} (seamless to roundoff)");
    assert!(max_err < 1e-9, "seams must agree to roundoff, got {max_err:e}");
}
