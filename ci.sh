#!/usr/bin/env bash
# Tier-1 verification gate. Must pass on a clean checkout with NO network
# access and NO cargo registry cache: the workspace depends only on its
# own crates, so --offline --locked is the proof of hermeticity.
set -euo pipefail
cd "$(dirname "$0")"

echo "== hermeticity: dependency tree must contain only workspace crates =="
tree="$(cargo tree --workspace --prefix none --locked --offline)"
if echo "$tree" | grep -vE '^rrs(-[a-z]+)? v' | grep -q '[^[:space:]]'; then
    echo "FAIL: non-workspace dependency found:" >&2
    echo "$tree" | grep -vE '^rrs(-[a-z]+)? v' >&2
    exit 1
fi
echo "ok: $(echo "$tree" | sort -u | grep -c '^rrs') workspace crates, zero external"

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline

echo "== guard: tests must run with debug-assertions and overflow-checks =="
for flag in 'debug-assertions = true' 'overflow-checks = true'; do
    if ! grep -A4 '^\[profile\.test\]' Cargo.toml | grep -qF "$flag"; then
        echo "FAIL: [profile.test] must pin '$flag' in Cargo.toml" >&2
        exit 1
    fi
done
echo "ok: [profile.test] pins debug-assertions and overflow-checks"

echo "== test (workspace, locked, offline) =="
cargo test -q --workspace --locked --offline

echo "== fault injection: rrs-io decoders must fail closed, retries must recover =="
# Includes the retry-under-injected-faults and torn-file atomicity
# properties: transient FailingWriter faults recover within the attempt
# budget, persistent ones fail closed with history, and a fault mid-export
# never leaves a torn destination file.
cargo test -q -p rrs-io --features failpoints --locked --offline

echo "== runtime budgets: cancellation, deadlines and admission control =="
# Cancel at every tile index leaves resumable checkpoints bit-identical
# to the uncancelled prefix; oversized requests are rejected before
# allocation; no-budget runs are bit-identical to budgeted-idle runs.
cargo test -q --test runtime_budgets --locked --offline

echo "== chaos torture: injected faults must surface typed or degrade bit-identical =="
# Every FaultSite x {panic,error,cancel,deadline} over the whole pipeline:
# zero escaped panics, every failure carries the matching ErrorKind, and
# killing both FFT rungs degrades to the Direct backend with output
# FNV-1a-hash-identical to a clean Direct run (seeded schedules replay
# bit-for-bit) — see tests/chaos_torture.rs.
cargo test -q --test chaos_torture --locked --offline

echo "== serving loopback: served windows must equal direct generation =="
# End-to-end over real TCP: bit-identical output for every backend,
# coalesced batches share one kernel and the plan cache, quota/queue
# overload rejected typed before allocation, corrupt frames answered
# with typed errors — see tests/serve_loopback.rs.
cargo test -q --test serve_loopback --locked --offline

echo "== partition torture: failover, draining and wire-level chaos =="
# 2–3 in-process servers with seeded kills/stalls mid-pipelined-batch:
# every window FNV-1a bit-identical to direct generation, failover /
# retry / breaker transitions visible as serve/client_* counters,
# draining rejects typed and still flushes the admitted queue, slow
# connections reaped, mid-frame disconnects never yield a partial
# window — see tests/serve_partition.rs.
cargo test -q --test serve_partition --locked --offline

echo "== guard: no internal calls to deprecated APIs =="
# The deprecated positional generate_window wrappers have been deleted;
# the flag now guards against reintroducing them (or calling any newly
# deprecated API) anywhere in the workspace.
RUSTFLAGS="-D deprecated" cargo check -q --workspace --all-targets --locked --offline

echo "== obs overhead gate: disabled recorder must be free =="
# Exits 1 if a disabled Recorder is measurably slower than the
# no-recorder baseline (min-of-reps ratio >= 1.5x) — see bench_obs.
cargo run --release --locked --offline -p rrs-bench --bin bench_obs

echo "== runtime budget overhead gate: the no-budget path must stay free =="
# Exits 1 if the budgeted primitive with Budget::unlimited is measurably
# slower than the pre-budget primitive (min-of-reps ratio >= 1.5x), or if
# a disabled chaos injector costs >= 1.05x the budgeted primitive —
# see bench_runtime; armed-budget overhead is reported for information.
cargo run --release --locked --offline -p rrs-bench --bin bench_runtime

echo "== convolution backend gate: FFT must beat direct where Auto says so =="
# Exits 1 if the overlap-save FFT engine is not >= 3x the direct loop on
# the cl32/128x128 shape, or if ConvBackend::Auto resolves to a backend
# measurably slower than the alternative — see bench_convolution.
cargo run --release --locked --offline -p rrs-bench --bin bench_convolution

echo "== serving gate: pipelined load must hit the plan cache and reject overload typed =="
# Exits 1 if p99 latency under N pipelined connections exceeds the
# floor, if fft/plan_hit does not exceed fft/plan_miss across coalesced
# batches, if a served window is not bit-identical to direct generation,
# or if an overloaded server fails to reject typed before allocating —
# see bench_serve.
cargo run --release --locked --offline -p rrs-bench --bin bench_serve

echo "== serving resilience gate: failover tail, chaos-off overhead, bit-identity =="
# Exits 1 if p99 latency through the sharded client with one dead
# endpoint of three exceeds the floor, if the chaos-disabled sharded
# client costs >= 1.05x the plain client (median of paired reps), if
# any served window is not bit-identical to direct generation, or if
# the dead endpoint never forced a failover — see bench_serve_resilience.
cargo run --release --locked --offline -p rrs-bench --bin bench_serve_resilience

echo "== bench smoke: reduced-scale reproduction run =="
smoke_out="$(mktemp -d)"
trap 'rm -rf "$smoke_out"' EXIT
cargo run --release --locked --offline -p rrs-bench --bin reproduce -- \
    --scale 0.25 --reps 2 --out "$smoke_out"

echo "ALL GREEN"
