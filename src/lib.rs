//! # rrs — Rough Surface Generation with Inhomogeneous Parameters
//!
//! A Rust reproduction of **Uchida, Honda & Yoon, "An Algorithm for Rough
//! Surface Generation with Inhomogeneous Parameters"** (ICPP 2009 /
//! J. Algorithms & Computational Technology 5(2)), built entirely from
//! scratch — FFT, RNG, statistics and the generator itself.
//!
//! ## Quick start
//!
//! ```
//! use rrs::spectrum::{Gaussian, SurfaceParams};
//! use rrs::surface::{ConvolutionGenerator, KernelSizing, NoiseField};
//!
//! // A Gaussian-spectrum surface with height std-dev 1.0 and
//! // correlation length 8 samples.
//! let spectrum = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
//! let generator = ConvolutionGenerator::new(&spectrum, KernelSizing::default());
//! let surface = generator.generate(&NoiseField::new(42), rrs::grid::Window::sized(128, 128));
//! assert_eq!(surface.shape(), (128, 128));
//! // The sample standard deviation approaches the target h = 1.0.
//! assert!((surface.std_dev() - 1.0).abs() < 0.3);
//! ```
//!
//! ## What's where
//!
//! | module | contents |
//! |---|---|
//! | [`spectrum`] | Gaussian / Power-Law / Exponential spectra, discrete weighting arrays (paper §2.1–2.2) |
//! | [`surface`] | direct DFT method, convolution method, streaming strips (paper §2.3–2.4) |
//! | [`inhomo`] | plate-oriented and point-oriented inhomogeneous generation (paper §3 — the contribution) |
//! | [`stats`] | moments, autocorrelation, correlation-length fits, normality tests |
//! | [`fft`], [`rng`], [`num`], [`grid`], [`par`] | substrates built for this reproduction |
//! | [`io`] | CSV / gnuplot / PGM / snapshot export, stream checkpoints |
//! | [`serve`] | TCP serving front-end: binary wire codec, multi-tenant scheduler, request coalescing |
//! | [`obs`] | stage-level spans, counters and duration histograms behind [`obs::Recorder`] |
//! | [`propagation`] | link budgets over generated profiles (the motivating application) |
//! | [`error`] | the unified [`error::RrsError`] taxonomy returned by every `try_*` API |
//!
//! ## Error handling
//!
//! Every fallible constructor and entry point has a `try_*` twin returning
//! [`Result`]`<_, `[`error::RrsError`]`>`; the short-named methods are thin
//! wrappers that panic with the same message for quick scripts and tests.
//! Library and service callers should prefer the `try_*` forms.
//!
//! ## Observability
//!
//! Every generator accepts an [`obs::Recorder`] via `with_recorder`;
//! generation stages (kernel build, window materialisation, correlation,
//! checkpoint write/fsync) are timed into named histograms and counters,
//! exportable as JSON. The default disabled recorder costs nothing and
//! enabling one never changes a single output bit.
//!
//! ## Runtime budgets
//!
//! Every generator also accepts a resource [`error::Budget`] via
//! `with_budget`: a wall-clock deadline and/or a shared
//! [`error::CancelToken`] are polled cooperatively at band granularity
//! (a tripped request returns [`error::RrsError::Cancelled`] /
//! [`error::RrsError::DeadlineExceeded`] within one band or strip tile,
//! never partial output), and a byte ceiling is enforced by admission
//! control *before* allocation, so an oversized request fails with a
//! precise [`error::RrsError::BudgetExceeded`] instead of aborting the
//! process. Durable writes (checkpoints, snapshots, images, CSV) are
//! crash-atomic (tmp + fsync + rename) and can be wrapped in a
//! deterministic [`io::RetryPolicy`] that retries transient I/O faults
//! with exponential backoff. With the default [`error::Budget::unlimited`]
//! every code path is bit-identical to — and as fast as — the unbudgeted
//! generator.
//!
//! ## Fault model and graceful degradation
//!
//! Every generator accepts a [`chaos::ChaosInjector`] via `with_chaos`: a
//! seeded, replayable [`chaos::FaultSchedule`] injects panics, typed
//! errors, cancellations or deadline expiry at numbered
//! [`chaos::FaultSite`]s across the whole pipeline (parallel band slices,
//! FFT tiles, plan-cache lookups, strip boundaries, retry backoffs,
//! checkpoint writes). Injected faults always surface as typed
//! [`error::RrsError`]s — never an escaped panic — and FFT backend
//! failures degrade down the ladder
//! `FftOverlapSave → FftComplexSerial → Direct` behind a per-generator
//! circuit breaker ([`surface::BackendHealth`]), with the `Direct` rung
//! reproducing the reference output bit-for-bit. The default disabled
//! injector costs one pointer test per site and changes nothing.

pub use rrs_chaos as chaos;
pub use rrs_error as error;
pub use rrs_fft as fft;
pub use rrs_grid as grid;
pub use rrs_inhomo as inhomo;
pub use rrs_io as io;
pub use rrs_num as num;
pub use rrs_obs as obs;
pub use rrs_par as par;
pub use rrs_propagation as propagation;
pub use rrs_rng as rng;
pub use rrs_serve as serve;
pub use rrs_spectrum as spectrum;
pub use rrs_stats as stats;
pub use rrs_surface as surface;

/// The most commonly used items in one import.
pub mod prelude {
    pub use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule, FaultSite};
    pub use rrs_error::{Budget, CancelToken, ErrorKind, RrsError};
    pub use rrs_grid::{Grid2, Window};
    pub use rrs_io::{
        try_write_snapshot, write_checkpoint_file, write_checkpoint_file_resilient,
        write_checkpoint_file_retrying, write_snapshot, RetryPolicy, StreamCheckpoint,
    };
    pub use rrs_obs::Recorder;
    pub use rrs_inhomo::{
        InhomogeneousGenerator, Plate, PlateLayout, PointLayout, Region, RepresentativePoint,
        TransitionProfile,
    };
    pub use rrs_spectrum::line::{Exponential1d, Gaussian1d, LineParams, Spectrum1d};
    pub use rrs_spectrum::{
        Exponential, Gaussian, GridSpec, Mixture, PowerLaw, Rotated, Spectrum, SpectrumModel,
        SurfaceParams,
    };
    pub use rrs_stats::{validate_region, RegionReport};
    pub use rrs_fft::FftPlanCache;
    pub use rrs_serve::{
        Client, ClientConfig, GenerateRequest, ServeConfig, ServeError, ShardedClient,
        ShardedConfig, TenantQuota,
    };
    pub use rrs_surface::{
        BackendHealth, ConvBackend, ConvolutionGenerator, ConvolutionKernel, DirectDftGenerator,
        GenContext, KernelSizing, LineGenerator, LineKernel, NoiseField, StripGenerator,
    };
}
