//! End-to-end generation cost of each paper figure (at bench scale 1/8 —
//! the geometry and spectra mix are the paper's; only linear dimensions
//! shrink). Regenerate the full-size figures with the `reproduce` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use rrs_bench::figures::{fig1, fig2, fig3, fig4};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(10);
    let scale = 0.125;
    let eps = 0.01;
    for (name, fig) in [
        ("fig1_quadrants", fig1(scale, eps, 1)),
        ("fig2_spectra", fig2(scale, eps, 1)),
        ("fig3_circle", fig3(scale, eps, 1)),
        ("fig4_points", fig4(scale, eps, 1)),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(fig.generate())));
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
