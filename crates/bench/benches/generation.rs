//! Homogeneous generation benchmarks — the quantitative backbone of the
//! paper's §4 remarks:
//!
//! * `kernel_scaling` (claim C3): convolution time grows with the
//!   weighting-array size, i.e. with correlation length;
//! * `kernel_truncation` (ablation): the §2.4 "reduce the size of the
//!   weighting array" trade-off;
//! * `direct_vs_conv` (claim C2 cost side): where the one-shot FFT method
//!   beats per-sample convolution and vice versa;
//! * `parallel_scaling` (ablation): row-band workers;
//! * `streaming` (claim C4): successive-computation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrs_spectrum::{Gaussian, GridSpec, SurfaceParams};
use rrs_surface::{
    ConvolutionGenerator, ConvolutionKernel, DirectDftGenerator, KernelSizing, NoiseField,
    StripGenerator,
};
use std::hint::black_box;

const OUT: usize = 128;

fn bench_kernel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements((OUT * OUT) as u64));
    let noise = NoiseField::new(1);
    for cl in [4.0, 8.0, 16.0, 32.0] {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, cl));
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(1);
        group.bench_with_input(BenchmarkId::from_parameter(cl as u64), &cl, |b, _| {
            b.iter(|| black_box(gen.generate_window(&noise, 0, 0, OUT, OUT)))
        });
    }
    group.finish();
}

fn bench_kernel_truncation(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_truncation");
    group.sample_size(10);
    let noise = NoiseField::new(2);
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 12.0));
    let full = ConvolutionKernel::build(&s, KernelSizing::default());
    for (label, kernel) in [
        ("full", full.clone()),
        ("eps1e-1", full.truncated(1e-1)),
        ("eps1e-2", full.truncated(1e-2)),
        ("eps1e-4", full.truncated(1e-4)),
    ] {
        let extent = kernel.extent().0;
        let gen = ConvolutionGenerator::from_kernel(kernel).with_workers(1);
        group.bench_function(BenchmarkId::new(label, extent), |b| {
            b.iter(|| black_box(gen.generate_window(&noise, 0, 0, OUT, OUT)))
        });
    }
    group.finish();
}

fn bench_direct_vs_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_vs_conv");
    group.sample_size(10);
    let p = SurfaceParams::isotropic(1.0, 8.0);
    let s = Gaussian::new(p);
    let noise = NoiseField::new(3);
    for &n in &[64usize, 128, 256] {
        group.throughput(Throughput::Elements((n * n) as u64));
        let direct = DirectDftGenerator::with_workers(s, GridSpec::unit(n, n), 1);
        group.bench_with_input(BenchmarkId::new("direct_dft", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(direct.generate(seed))
            })
        });
        let conv = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(1);
        group.bench_with_input(BenchmarkId::new("convolution", n), &n, |b, _| {
            b.iter(|| black_box(conv.generate_window(&noise, 0, 0, n, n)))
        });
        let conv_t = ConvolutionGenerator::from_kernel(
            ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-2),
        )
        .with_workers(1);
        group.bench_with_input(BenchmarkId::new("convolution_trunc", n), &n, |b, _| {
            b.iter(|| black_box(conv_t.generate_window(&noise, 0, 0, n, n)))
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 12.0));
    let noise = NoiseField::new(4);
    let kernel = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    for workers in [1usize, 2, 4, 8] {
        let gen = ConvolutionGenerator::from_kernel(kernel.clone()).with_workers(workers);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| black_box(gen.generate_window(&noise, 0, 0, 256, 256)))
        });
    }
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    group.throughput(Throughput::Elements((256 * 64) as u64));
    group.bench_function("next_strip_256x64", |b| {
        let mut sg = StripGenerator::new(&s, KernelSizing::default(), 64, 5);
        b.iter(|| black_box(sg.next_strip(256)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_scaling,
    bench_kernel_truncation,
    bench_direct_vs_conv,
    bench_parallel_scaling,
    bench_streaming
);
criterion_main!(benches);
