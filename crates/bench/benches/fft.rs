//! FFT substrate benchmarks: radix-2 vs Bluestein, 1-D vs 2-D, serial vs
//! parallel — the costs underneath the direct DFT method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrs_fft::{Direction, Fft, Fft2d};
use rrs_num::Complex64;
use rrs_rng::{RandomSource, Xoshiro256pp};
use std::hint::black_box;

fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n).map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect()
}

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for &n in &[256usize, 1024, 4096, 16384] {
        group.throughput(Throughput::Elements(n as u64));
        let fft = Fft::new(n);
        let signal = random_signal(n, n as u64);
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = signal.clone();
                fft.process(black_box(&mut buf), Direction::Forward);
                black_box(buf)
            })
        });
        // The adjacent non-power-of-two length exercises Bluestein.
        let m = n + 1;
        let bfft = Fft::new(m);
        let bsignal = random_signal(m, m as u64);
        group.bench_with_input(BenchmarkId::new("bluestein", m), &m, |b, _| {
            b.iter(|| {
                let mut buf = bsignal.clone();
                bfft.process(black_box(&mut buf), Direction::Forward);
                black_box(buf)
            })
        });
    }
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_2d");
    group.sample_size(20);
    for &n in &[128usize, 256, 512] {
        group.throughput(Throughput::Elements((n * n) as u64));
        let field = random_signal(n * n, 7);
        for workers in [1usize, 4] {
            let fft = Fft2d::with_workers(n, n, workers);
            group.bench_with_input(
                BenchmarkId::new(format!("w{workers}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut buf = field.clone();
                        fft.process(black_box(&mut buf), Direction::Forward);
                        black_box(buf)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d);
criterion_main!(benches);
