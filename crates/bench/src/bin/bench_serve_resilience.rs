//! Serving resilience gate: the price of the failover layer, measured.
//!
//! Three gates, each failing the build (exit code 1) on regression:
//!
//! 1. **Failover tail** — with one of three endpoints dead (connection
//!    refused), p99 request latency through the `ShardedClient` must
//!    stay under a generous floor: failover must cost a refused
//!    connect, not a timeout, and the breaker must stop paying even
//!    that after it opens.
//! 2. **Chaos-off overhead** — the `ShardedClient` with chaos disabled
//!    and a single healthy endpoint must stay within 1.05x of the plain
//!    `Client` on the same closed-loop workload. Measured as the median
//!    over paired back-to-back blocks (one plain, one sharded per rep)
//!    so slow machine-wide drift cancels instead of polluting the
//!    ratio: the routing, breaker and retry machinery may not tax the
//!    fast path.
//! 3. **Bit-identity** — zero windows served across the failover run
//!    may differ (FNV-1a over the raw f64 bytes) from direct library
//!    generation.
//!
//! Run with `cargo run --release -p rrs-bench --bin
//! bench_serve_resilience`; writes `BENCH_serve_resilience.json`.

use rrs_bench::Harness;
use rrs_grid::{Grid2, Window};
use rrs_obs::stage;
use rrs_serve::wire::fnv1a;
use rrs_serve::{
    serve, Client, GenerateRequest, ServeConfig, ShardedClient, ShardedConfig,
};
use rrs_spectrum::{SpectrumModel, SurfaceParams};
use rrs_surface::{ConvBackend, ConvolutionGenerator, ConvolutionKernel, KernelSizing, NoiseField};
use std::time::Instant;

const WINDOW: usize = 48;
const FAILOVER_REQUESTS: usize = 60;
const SHARD_KEYS: usize = 6;
/// Window edge for the overhead gate: large enough that one round trip
/// costs ~1ms of real generation, so the client-side bookkeeping under
/// test (and scheduler jitter) is measured relative to realistic work
/// rather than to a no-op ping.
const OVERHEAD_WINDOW: usize = 96;
const OVERHEAD_ROUND_TRIPS: usize = 30;
const OVERHEAD_REPS: usize = 9;
const P99_FAILOVER_FLOOR_MS: f64 = 250.0;
const OVERHEAD_CEILING: f64 = 1.05;

fn model() -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0))
}

fn truncation_of(key: usize) -> f64 {
    1e-4 * (1.0 + key as f64)
}

/// Distinct truncations give distinct kernels, hence distinct shard
/// keys spread across the endpoints by the rendezvous hash.
fn request(id: u64, key: usize, seed: u64) -> GenerateRequest {
    GenerateRequest::new(id, 0, seed, model(), Window::sized(WINDOW, WINDOW))
        .with_truncation(truncation_of(key))
        .with_sizing(8.0, 16, 64)
        .with_backend(ConvBackend::FftOverlapSave)
}

fn overhead_request(id: u64) -> GenerateRequest {
    GenerateRequest::new(id, 0, 3, model(), Window::sized(OVERHEAD_WINDOW, OVERHEAD_WINDOW))
        .with_truncation(truncation_of(0))
        .with_sizing(8.0, 16, 64)
        .with_backend(ConvBackend::FftOverlapSave)
}

fn direct(key: usize, seed: u64) -> Grid2<f64> {
    let kernel =
        ConvolutionKernel::build(&model(), KernelSizing::Auto { factor: 8.0, min: 16, max: 64 })
            .truncated(truncation_of(key));
    ConvolutionGenerator::from_kernel(kernel)
        .with_backend(ConvBackend::FftOverlapSave)
        .generate(&NoiseField::new(seed), Window::sized(WINDOW, WINDOW))
}

fn hash_grid(g: &Grid2<f64>) -> u64 {
    let mut bytes = Vec::with_capacity(g.as_slice().len() * 8);
    for v in g.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a(&bytes)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let i = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[i]
}

fn main() {
    let mut h = Harness::new("serve_resilience").with_reps(5);
    let config = || ServeConfig { workers: 2, ..ServeConfig::default() };

    // -- gate 1 + 3: failover tail and bit-identity, one endpoint dead --
    let live_a = serve(config()).expect("bind a");
    let live_b = serve(config()).expect("bind b");
    let dead = serve(config()).expect("bind c");
    let endpoints =
        vec![live_a.addr().to_string(), live_b.addr().to_string(), dead.addr().to_string()];
    dead.shutdown();

    let mut sharded = ShardedClient::new(ShardedConfig::new(endpoints)).expect("construct");
    // Routing is a pure function of (shard key, endpoint list), and the
    // endpoint ports differ per run — so pick the shard keys by asking
    // the router, guaranteeing at least two keys whose primary is the
    // dead endpoint (the gate must actually exercise failover).
    let mut keys: Vec<usize> = Vec::new();
    let mut doomed = 0usize;
    for k in 0.. {
        let is_doomed = sharded.primary_endpoint(&request(0, k, 1)) == 2;
        if is_doomed && doomed < 2 {
            doomed += 1;
            keys.push(k);
        } else if !is_doomed && keys.len() - doomed < SHARD_KEYS - 2 {
            keys.push(k);
        }
        if keys.len() == SHARD_KEYS && doomed == 2 {
            break;
        }
        assert!(k < 4096, "HRW should spread 4096 keys over 3 endpoints");
    }
    let mut latencies = Vec::with_capacity(FAILOVER_REQUESTS);
    let mut mismatched = 0usize;
    for i in 0..FAILOVER_REQUESTS {
        let key = keys[i % keys.len()];
        let seed = 0xFA11 + i as u64;
        let req = request(i as u64 + 1, key, seed);
        let started = Instant::now();
        let served = sharded.generate(&req).expect("failover must complete every request");
        latencies.push(started.elapsed().as_nanos() as f64);
        if hash_grid(&served) != hash_grid(&direct(key, seed)) {
            mismatched += 1;
            eprintln!("window {i} (key {key}) is not bit-identical to direct generation");
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p50_failover_ms = percentile(&latencies, 0.50) / 1e6;
    let p99_failover_ms = percentile(&latencies, 0.99) / 1e6;
    let report = sharded.report();
    let failovers = report.counter(stage::SERVE_CLIENT_FAILOVER);
    let breaker_skips = report.counter(stage::SERVE_CLIENT_BREAKER_SKIP);
    let connects = report.counter(stage::SERVE_CLIENT_CONNECT);
    println!(
        "failover: {FAILOVER_REQUESTS} requests, one dead endpoint of 3: \
         p50 {p50_failover_ms:.2}ms, p99 {p99_failover_ms:.2}ms, \
         {failovers} failovers, {breaker_skips} breaker skips, {connects} connects, \
         {mismatched} non-bit-identical windows"
    );
    live_b.shutdown();

    // -- gate 2: chaos-off overhead vs the plain client ------------------
    // Same single endpoint for both sides. Each rep times one plain
    // block and one sharded block back-to-back and keeps the ratio;
    // the gate sees the median ratio, so machine-wide drift that hits
    // both blocks alike cancels out instead of tripping the gate.
    let addr = live_a.addr();
    let mut plain = Client::connect(addr).expect("connect plain");
    let mut solo =
        ShardedClient::new(ShardedConfig::new(vec![addr.to_string()])).expect("construct");
    // Warm the kernel + plan caches out of the measurement.
    plain.try_generate(&overhead_request(500_000)).expect("warm plain");
    solo.generate(&overhead_request(600_000)).expect("warm sharded");
    let mut seq = 0u64;
    let mut block = |via_sharded: bool, plain: &mut Client, solo: &mut ShardedClient| -> f64 {
        let started = Instant::now();
        for _ in 0..OVERHEAD_ROUND_TRIPS {
            seq += 1;
            let req = overhead_request(1_000_000 + seq);
            if via_sharded {
                solo.generate(&req).expect("sharded round-trip");
            } else {
                plain.try_generate(&req).expect("plain round-trip");
            }
        }
        started.elapsed().as_secs_f64()
    };
    let mut ratios = Vec::with_capacity(OVERHEAD_REPS);
    let (mut plain_total, mut sharded_total) = (0.0f64, 0.0f64);
    for rep in 0..OVERHEAD_REPS {
        // Alternate the order within the pair so any first-block
        // advantage averages out across reps.
        let (first_sharded, second_sharded) = (rep % 2 == 0, rep % 2 != 0);
        let first = block(first_sharded, &mut plain, &mut solo);
        let second = block(second_sharded, &mut plain, &mut solo);
        let (p, s) = if first_sharded { (second, first) } else { (first, second) };
        plain_total += p;
        sharded_total += s;
        ratios.push(s / p);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let overhead = ratios[ratios.len() / 2];
    println!(
        "overhead: plain {:.2}ms vs sharded {:.2}ms total over {OVERHEAD_REPS} paired reps \
         of {OVERHEAD_ROUND_TRIPS} round-trips; median paired ratio {overhead:.4}x \
         (ratios {:.3}..{:.3})",
        plain_total * 1e3,
        sharded_total * 1e3,
        ratios[0],
        ratios[ratios.len() - 1]
    );
    live_a.shutdown();

    h.attach_section(
        "serve_resilience",
        format!(
            "{{\n    \"failover_requests\": {FAILOVER_REQUESTS},\n    \
             \"p50_failover_ms\": {p50_failover_ms:.3},\n    \
             \"p99_failover_ms\": {p99_failover_ms:.3},\n    \
             \"failovers\": {failovers},\n    \"breaker_skips\": {breaker_skips},\n    \
             \"connects\": {connects},\n    \"mismatched_windows\": {mismatched},\n    \
             \"overhead_ratio\": {overhead:.4},\n    \"client_report\": {}\n  }}",
            report.to_json("  ")
        ),
    );
    h.finish().expect("write BENCH_serve_resilience.json");

    let mut failed = false;
    if p99_failover_ms >= P99_FAILOVER_FLOOR_MS {
        eprintln!(
            "FAIL: failover p99 {p99_failover_ms:.2}ms >= {P99_FAILOVER_FLOOR_MS}ms \
             with one dead endpoint"
        );
        failed = true;
    }
    if overhead >= OVERHEAD_CEILING {
        eprintln!(
            "FAIL: chaos-off sharded client overhead {overhead:.4}x >= {OVERHEAD_CEILING}x \
             over the plain client"
        );
        failed = true;
    }
    if mismatched != 0 {
        eprintln!("FAIL: {mismatched} served windows were not bit-identical to direct generation");
        failed = true;
    }
    if failovers == 0 {
        eprintln!("FAIL: the dead endpoint never forced a failover — the gate measured nothing");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "serve_resilience gates passed: failover p99 {p99_failover_ms:.2}ms, \
         overhead {overhead:.4}x, 0 mismatched windows"
    );
}
