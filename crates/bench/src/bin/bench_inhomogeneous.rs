//! Inhomogeneous-generation benchmarks.
//!
//! * overhead of the plate- and point-oriented weight maps against the
//!   homogeneous baseline (pure regions cost one kernel dot product, so
//!   the gap is the membership evaluation itself);
//! * the `blend_fields` vs `blend_kernels` ablation from DESIGN.md §7:
//!   the generator blends per-kernel *fields* (linearity); the literal
//!   eqn (46) alternative materialises a blended kernel per sample.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_inhomogeneous`;
//! writes `BENCH_inhomogeneous.json`.

use rrs_bench::Harness;
use rrs_grid::{Grid2, Window};
use rrs_inhomo::plate::quadrant_layout;
use rrs_inhomo::{InhomogeneousGenerator, PointLayout, RepresentativePoint, WeightMap};
use rrs_spectrum::{SpectrumModel, SurfaceParams};
use rrs_surface::{ConvolutionGenerator, ConvolutionKernel, KernelSizing, NoiseField};
use std::hint::black_box;

const N: usize = 128;

fn sm(h: f64, cl: f64) -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(h, cl))
}

fn sizing() -> KernelSizing {
    KernelSizing::Auto { factor: 8.0, min: 16, max: 256 }
}

/// Literal eqn (46): materialise the blended kernel at every sample, then
/// dot it with the noise — the naive alternative the generator avoids.
fn blend_kernels_naive(
    layout: &dyn WeightMap,
    kernels: &[ConvolutionKernel],
    noise: &NoiseField,
    n: usize,
) -> Grid2<f64> {
    let (kw, kh) = kernels[0].extent();
    let (ox, oy) = kernels[0].origin();
    let reach_l = ox + kw as i64 - 1;
    let reach_r = -ox;
    let win = noise.window(
        -reach_l,
        -reach_l,
        n + (reach_l + reach_r) as usize,
        n + (reach_l + reach_r) as usize,
    );
    let ww = n + (reach_l + reach_r) as usize;
    let mut weights = Vec::new();
    let mut blended = vec![0.0f64; kw * kh];
    Grid2::from_fn(n, n, |ix, iy| {
        layout.weights_at(ix as f64, iy as f64, &mut weights);
        blended.iter_mut().for_each(|v| *v = 0.0);
        for &(ki, g) in &weights {
            for (dst, &src) in blended.iter_mut().zip(kernels[ki].weights().as_slice()) {
                *dst += g * src;
            }
        }
        // Dot the blended kernel with the noise window.
        let mut acc = 0.0;
        for b in 0..kh {
            let jy = oy + b as i64;
            let wy = (iy as i64 - jy + reach_l) as usize;
            for a in 0..kw {
                let jx = ox + a as i64;
                let wx = (ix as i64 - jx + reach_l) as usize;
                acc += blended[b * kw + a] * win[wy * ww + wx];
            }
        }
        acc
    })
}

fn main() {
    let mut h = Harness::new("inhomogeneous");

    let noise = NoiseField::new(1);
    let hom = ConvolutionGenerator::new(&sm(1.0, 8.0), sizing()).with_workers(1);
    h.bench("inhomo_overhead/homogeneous", || {
        black_box(hom.generate(&noise, Window::sized(N, N)))
    });

    let plates = quadrant_layout(
        N as f64,
        N as f64,
        [sm(1.0, 8.0), sm(1.5, 8.0), sm(2.0, 8.0), sm(1.5, 8.0)],
        8.0,
    );
    let plate_gen = InhomogeneousGenerator::new(plates, sizing()).with_workers(1);
    h.bench("inhomo_overhead/plate_quadrants", || {
        black_box(plate_gen.generate(&noise, Window::sized(N, N)))
    });

    let points = PointLayout::new(
        (0..8)
            .map(|i| {
                let th = core::f64::consts::TAU * i as f64 / 8.0;
                RepresentativePoint {
                    x: N as f64 / 2.0 + 40.0 * th.cos(),
                    y: N as f64 / 2.0 + 40.0 * th.sin(),
                    spectrum: sm(1.0 + 0.1 * i as f64, 8.0),
                }
            })
            .collect(),
        10.0,
    );
    let point_gen = InhomogeneousGenerator::new(points, sizing()).with_workers(1);
    h.bench("inhomo_overhead/point_ring8", || {
        black_box(point_gen.generate(&noise, Window::sized(N, N)))
    });

    let noise = NoiseField::new(2);
    // Same-extent kernels so the naive blend is well-defined.
    let spec = rrs_spectrum::GridSpec::unit(64, 64);
    let layout = quadrant_layout(
        N as f64,
        N as f64,
        [sm(1.0, 6.0), sm(1.5, 6.0), sm(2.0, 6.0), sm(1.5, 6.0)],
        12.0,
    );
    let kernels: Vec<ConvolutionKernel> =
        layout.spectra().iter().map(|s| ConvolutionKernel::build_on(s, spec)).collect();

    let gen = InhomogeneousGenerator::from_kernels(layout.clone(), kernels.clone()).with_workers(1);
    h.bench(&format!("blend_ablation/blend_fields/{N}"), || {
        black_box(gen.generate(&noise, Window::sized(N, N)))
    });
    h.bench(&format!("blend_ablation/blend_kernels_naive/{N}"), || {
        black_box(blend_kernels_naive(&layout, &kernels, &noise, N))
    });

    h.finish().expect("write BENCH_inhomogeneous.json");
}
