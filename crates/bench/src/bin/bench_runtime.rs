//! Runtime-budget overhead guard.
//!
//! The `Budget` contract is that callers who never opt in pay nothing:
//! `try_par_row_chunks_mut_budgeted` with a budget that needs no polling
//! *delegates* to the pre-budget primitive before any budget machinery
//! runs, so the unbudgeted hot path is unchanged. This suite measures the
//! same correlation workload three ways — the pre-budget parallel
//! primitive directly (the PR 3 baseline shape), the budgeted primitive
//! with `Budget::unlimited` (the delegation path), and the budgeted
//! primitive with an armed cancel token + far-future deadline (the
//! polling path) — and **fails** (exit code 1) if the unlimited path is
//! measurably slower than baseline, so a regression that sneaks polling
//! into the no-budget path breaks CI rather than silently taxing every
//! caller.
//!
//! The chaos fault-injection harness rides the same contract: a disabled
//! [`rrs_chaos::ChaosInjector`] is one pointer test per band slice, so
//! the `chaos_disabled` variant is gated at < 1.05× the budgeted
//! primitive it wraps.
//!
//! As with `bench_obs`, the guard compares min-of-reps and allows a
//! generous 1.5× ratio: the real figure should be ~1.0. Armed-budget
//! overhead is reported for information but not gated — at 8 polls per
//! worker band (one relaxed atomic load + one clock read each) it should
//! also be ~1.0, but it buys bounded-time cancellation and is allowed to
//! cost a little. Full-generator comparisons (unbudgeted vs armed-idle
//! convolution) ride along, also informational.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_runtime`;
//! writes `BENCH_runtime.json`.

use rrs_bench::Harness;
use rrs_error::{Budget, CancelToken};
use rrs_grid::Window;
use rrs_obs::Recorder;
use rrs_spectrum::{Gaussian, SurfaceParams};
use rrs_surface::{ConvolutionGenerator, ConvolutionKernel, KernelSizing, NoiseField};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 192;
const ROW: usize = 256;
const ROWS: usize = 4096;
const WORKERS: usize = 2;

/// The band closure all three primitive variants run: a cheap, purely
/// row-local fill so the measurement is dominated by the dispatch
/// machinery rather than arithmetic.
fn fill(row0: usize, band: &mut [f64]) {
    for (i, x) in band.iter_mut().enumerate() {
        *x = (row0 * ROW + i) as f64 * 1.0000001;
    }
}

fn main() {
    let mut h = Harness::new("runtime").with_reps(15);
    let obs = Recorder::disabled();

    // --- The primitive, three ways. ---
    let mut buf = vec![0.0f64; ROW * ROWS];

    h.bench_elems("runtime/par_baseline", (ROW * ROWS) as u64, || {
        rrs_par::try_par_row_chunks_mut_observed(&mut buf, ROW, WORKERS, &obs, fill).unwrap();
        black_box(buf[0])
    });

    let unlimited = Budget::unlimited();
    h.bench_elems("runtime/budgeted_unlimited", (ROW * ROWS) as u64, || {
        rrs_par::try_par_row_chunks_mut_budgeted(&mut buf, ROW, WORKERS, &obs, &unlimited, fill)
            .unwrap();
        black_box(buf[0])
    });

    let armed = Budget::unlimited()
        .with_cancel_token(CancelToken::new())
        .with_timeout(Duration::from_secs(3600));
    h.bench_elems("runtime/budgeted_armed", (ROW * ROWS) as u64, || {
        rrs_par::try_par_row_chunks_mut_budgeted(&mut buf, ROW, WORKERS, &obs, &armed, fill)
            .unwrap();
        black_box(buf[0])
    });

    // Chaos-off path: a disabled injector is one pointer test per band
    // slice, so this must track `budgeted_unlimited` within noise.
    let chaos = rrs_chaos::ChaosInjector::disabled();
    h.bench_elems("runtime/chaos_disabled", (ROW * ROWS) as u64, || {
        rrs_par::try_par_row_chunks_mut_chaos(
            &mut buf, ROW, WORKERS, &obs, &unlimited, &chaos, fill,
        )
        .unwrap();
        black_box(buf[0])
    });

    // --- Full generator, informational. ---
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let kernel = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let noise = NoiseField::new(42);
    let win = Window::sized(N, N);

    let plain = ConvolutionGenerator::from_kernel(kernel.clone()).with_workers(1);
    h.bench_elems("runtime/conv_no_budget", (N * N) as u64, || {
        black_box(plain.generate(&noise, win))
    });

    let armed_gen = ConvolutionGenerator::from_kernel(kernel)
        .with_workers(1)
        .with_budget(
            Budget::unlimited()
                .with_cancel_token(CancelToken::new())
                .with_timeout(Duration::from_secs(3600))
                .with_max_bytes(usize::MAX),
        );
    h.bench_elems("runtime/conv_armed_budget", (N * N) as u64, || {
        black_box(armed_gen.try_generate(&noise, win).unwrap())
    });

    // Cross-check while we are here: budgets must never steer output.
    assert_eq!(
        plain.generate(&noise, win),
        armed_gen.try_generate(&noise, win).unwrap(),
        "armed budget changed the surface"
    );

    let records = h.finish().expect("write BENCH_runtime.json");
    let min_of = |name: &str| {
        records
            .iter()
            .find(|r| r.name.ends_with(name))
            .map(|r| r.min_ns)
            .expect("record present")
    };
    let base = min_of("par_baseline");
    let unlimited_ratio = min_of("budgeted_unlimited") / base;
    let armed_ratio = min_of("budgeted_armed") / base;
    let chaos_ratio = min_of("chaos_disabled") / min_of("budgeted_unlimited");
    let conv_ratio = min_of("conv_armed_budget") / min_of("conv_no_budget");
    println!("budgeted-unlimited/baseline (min-of-reps): {unlimited_ratio:.3}x  (gate: < 1.5x)");
    println!("budgeted-armed/baseline     (min-of-reps): {armed_ratio:.3}x  (informational)");
    println!("chaos-off/budgeted          (min-of-reps): {chaos_ratio:.3}x  (gate: < 1.05x)");
    println!("conv armed/no-budget        (min-of-reps): {conv_ratio:.3}x  (informational)");

    if unlimited_ratio >= 1.5 {
        eprintln!(
            "FAIL: the unlimited budget costs {unlimited_ratio:.3}x the pre-budget \
             primitive — the no-budget path is no longer free"
        );
        std::process::exit(1);
    }
    if chaos_ratio >= 1.05 {
        eprintln!(
            "FAIL: the disabled chaos injector costs {chaos_ratio:.3}x the budgeted \
             primitive — fault-site registration is no longer a single branch"
        );
        std::process::exit(1);
    }
    println!("runtime budget overhead gate passed");
}
