//! Observability overhead guard.
//!
//! The `rrs-obs` contract is that a disabled recorder is free: every hook
//! reduces to one `Option` discriminant test and never reads the clock.
//! This suite measures the same generation workload three ways — no
//! recorder touched (the pre-obs baseline shape), a disabled recorder
//! threaded through every hook, and an enabled recorder — and **fails**
//! (exit code 1) if the disabled path is measurably slower than baseline,
//! so a regression that sneaks clock reads or locks into the hot loops
//! breaks CI rather than silently taxing every caller.
//!
//! The guard compares min-of-reps (the stablest point estimate under
//! scheduler noise) and allows a generous 1.5× ratio: the real figure
//! should be ~1.0, and anything past 1.5× means a genuine hot-loop cost,
//! not jitter. Enabled-recorder overhead is reported for information but
//! not gated — it buys the stage breakdown and is allowed to cost a few
//! percent.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_obs`; writes
//! `BENCH_obs.json`.

use rrs_bench::Harness;
use rrs_grid::Window;
use rrs_obs::Recorder;
use rrs_spectrum::{Gaussian, SurfaceParams};
use rrs_surface::{ConvolutionGenerator, ConvolutionKernel, KernelSizing, NoiseField};
use std::hint::black_box;

const N: usize = 192;

fn main() {
    let mut h = Harness::new("obs").with_reps(15);

    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let kernel = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let noise = NoiseField::new(42);
    let win = Window::sized(N, N);

    let plain = ConvolutionGenerator::from_kernel(kernel.clone()).with_workers(1);
    h.bench_elems("obs/baseline_no_recorder", (N * N) as u64, || {
        black_box(plain.generate(&noise, win))
    });

    let disabled = ConvolutionGenerator::from_kernel(kernel.clone())
        .with_workers(1)
        .with_recorder(Recorder::disabled());
    h.bench_elems("obs/disabled_recorder", (N * N) as u64, || {
        black_box(disabled.generate(&noise, win))
    });

    let rec = Recorder::enabled();
    let enabled = ConvolutionGenerator::from_kernel(kernel)
        .with_workers(1)
        .with_recorder(rec.clone());
    h.bench_elems("obs/enabled_recorder", (N * N) as u64, || {
        black_box(enabled.generate(&noise, win))
    });

    // Cross-check while we are here: observation must never steer output.
    assert_eq!(
        plain.generate(&noise, win),
        enabled.generate(&noise, win),
        "enabled recorder changed the surface"
    );

    let records = h.finish().expect("write BENCH_obs.json");
    let min_of = |name: &str| {
        records
            .iter()
            .find(|r| r.name.ends_with(name))
            .map(|r| r.min_ns)
            .expect("record present")
    };
    let base = min_of("baseline_no_recorder");
    let disabled_ratio = min_of("disabled_recorder") / base;
    let enabled_ratio = min_of("enabled_recorder") / base;
    println!("disabled/baseline (min-of-reps): {disabled_ratio:.3}x  (gate: < 1.5x)");
    println!("enabled/baseline  (min-of-reps): {enabled_ratio:.3}x  (informational)");

    if disabled_ratio >= 1.5 {
        eprintln!(
            "FAIL: the disabled recorder costs {disabled_ratio:.3}x baseline — \
             the obs hooks are no longer free when off"
        );
        std::process::exit(1);
    }
    println!("obs overhead gate passed");
}
