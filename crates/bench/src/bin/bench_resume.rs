//! Crash-safe streaming ablation: what does checkpointing after every
//! tile cost?
//!
//! The resumable state of a sequential strip stream is 40 bytes —
//! (seed, height, cursor) plus magic and checksum — so the expectation
//! is that per-tile checkpointing is noise next to tile generation.
//! This suite measures a strip-generation tile alone, the same tile plus
//! an in-memory checkpoint encode, and the same tile plus a durable
//! file-backed checkpoint (create + write + fsync), and reports the
//! relative overhead. Target: < 2% per tile for the durable variant.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_resume`;
//! writes `BENCH_resume.json`. Pass `--obs` to time strip generation and
//! the checkpoint write/fsync stages separately and embed the breakdown
//! as an `"obs"` section — the write-vs-fsync split is the interesting
//! figure on most filesystems.

use rrs_bench::Harness;
use rrs_io::{
    write_checkpoint, write_checkpoint_file_observed, write_checkpoint_file_retrying,
    RetryPolicy, StreamCheckpoint,
};
use rrs_obs::Recorder;
use rrs_spectrum::{Gaussian, SurfaceParams};
use rrs_surface::{KernelSizing, StripGenerator};
use std::hint::black_box;

const NY: usize = 256;
const STRIP_W: usize = 64;

fn checkpoint_of(sg: &StripGenerator) -> StreamCheckpoint {
    StreamCheckpoint { seed: sg.seed(), height: sg.height() as u64, cursor: sg.cursor() }
}

fn main() {
    let obs_on = std::env::args().any(|a| a == "--obs");
    let rec = if obs_on { Recorder::enabled() } else { Recorder::disabled() };
    let mut h = Harness::new("resume").with_reps(20);

    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let mut sg =
        StripGenerator::new(&s, KernelSizing::default(), NY, 11).with_recorder(rec.clone());

    h.bench_elems("resume/strip_only", (NY * STRIP_W) as u64, || {
        black_box(sg.next_strip(STRIP_W))
    });

    let mut sg =
        StripGenerator::new(&s, KernelSizing::default(), NY, 11).with_recorder(rec.clone());
    h.bench_elems("resume/strip_plus_mem_checkpoint", (NY * STRIP_W) as u64, || {
        let strip = sg.next_strip(STRIP_W);
        let mut buf = Vec::with_capacity(64);
        write_checkpoint(&mut buf, &checkpoint_of(&sg)).expect("encode");
        black_box((strip, buf))
    });

    let dir = std::env::var("RRS_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/bench_resume.ckpt");
    let mut sg =
        StripGenerator::new(&s, KernelSizing::default(), NY, 11).with_recorder(rec.clone());
    h.bench_elems("resume/strip_plus_file_checkpoint", (NY * STRIP_W) as u64, || {
        let strip = sg.next_strip(STRIP_W);
        write_checkpoint_file_observed(&path, &checkpoint_of(&sg), &rec).expect("checkpoint");
        black_box(strip)
    });

    let sg = StripGenerator::new(&s, KernelSizing::default(), NY, 11);
    h.bench("resume/file_checkpoint_only", || {
        write_checkpoint_file_observed(&path, &checkpoint_of(&sg), &rec).expect("checkpoint");
    });

    // The production streaming loop wraps the durable write in a retry
    // policy; on a healthy disk every write succeeds first try, so this
    // measures the policy's bookkeeping overhead and (with --obs) surfaces
    // the retry/attempts counter in the report.
    h.bench("resume/file_checkpoint_retrying", || {
        write_checkpoint_file_retrying(&path, &checkpoint_of(&sg), RetryPolicy::default(), &rec)
            .expect("checkpoint");
    });

    if obs_on {
        let report = rec.report();
        println!("\nstage breakdown (--obs):");
        for (name, hist) in &report.durations {
            println!(
                "  {name:<28} count {:>8}  total {:>12} ns  mean {:>12.0} ns",
                hist.count,
                hist.total_ns,
                hist.mean_ns(),
            );
        }
        for (name, value) in &report.counters {
            println!("  {name:<28} {value}");
        }
        h.attach_section("obs", report.to_json("  "));
    }

    let records = h.finish().expect("write BENCH_resume.json");
    let _ = std::fs::remove_file(&path);

    let median = |name: &str| {
        records
            .iter()
            .find(|r| r.name.ends_with(name))
            .map(|r| r.median_ns)
            .expect("record present")
    };
    let base = median("strip_only");
    for variant in ["strip_plus_mem_checkpoint", "strip_plus_file_checkpoint"] {
        let pct = (median(variant) - base) / base * 100.0;
        println!("checkpoint overhead [{variant}]: {pct:+.3}% per tile (diff of medians)");
    }
    // The diff of two ~50 ms medians is dominated by run-to-run noise;
    // the directly timed checkpoint write is the robust overhead figure.
    let direct = median("file_checkpoint_only") / base * 100.0;
    println!("checkpoint overhead [direct measure]: {direct:.3}% per tile (target < 2%)");
}
