//! Serving front-end gate: sustained multi-tenant throughput, tail
//! latency, coalescing effectiveness, and the transparency contract.
//!
//! The suite runs a real `rrs-serve` server on a loopback socket and
//! drives it from concurrent client connections (one tenant each, a
//! fixed pipeline depth per connection), then **fails** (exit code 1)
//! if any of the serving promises regress:
//!
//! 1. **Tail latency** — p99 request latency under the pinned load must
//!    stay below a generous floor (the workload is a 64×64 FFT-backend
//!    window; anything near the floor means the scheduler is serialising
//!    or thrashing, not that generation got slower).
//! 2. **Coalescing reaches the plan cache** — across the run the shared
//!    `FftPlanCache` must hit more than it misses: batched same-key
//!    requests ride one cached generator and one set of plans.
//! 3. **Transparency** — a served window is bit-identical to the direct
//!    library call with the same spectrum, sizing, seed and window.
//! 4. **Backpressure** — a saturated server rejects with a typed
//!    `Overloaded` frame *before* queueing or generating anything.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_serve`;
//! writes `BENCH_serve.json` with a `serve` section embedding the
//! latency distribution and the server's own counter report.

use rrs_bench::Harness;
use rrs_grid::Window;
use rrs_obs::stage;
use rrs_serve::{serve, Client, GenerateRequest, ServeConfig, ServeError};
use rrs_spectrum::{SpectrumModel, SurfaceParams};
use rrs_surface::{ConvBackend, ConvolutionGenerator, ConvolutionKernel, KernelSizing, NoiseField};
use std::collections::HashMap;
use std::time::Instant;

const CONNECTIONS: usize = 4;
const REQUESTS_PER_CONNECTION: usize = 40;
const PIPELINE_DEPTH: usize = 4;
const WINDOW: usize = 64;
const P99_FLOOR_MS: f64 = 250.0;

fn model() -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0))
}

fn request(id: u64, tenant: u64, seed: u64) -> GenerateRequest {
    GenerateRequest::new(id, tenant, seed, model(), Window::sized(WINDOW, WINDOW))
        .with_truncation(1e-3)
        .with_sizing(8.0, 16, 64)
        .with_backend(ConvBackend::FftOverlapSave)
}

/// Drives one connection closed-loop at a fixed pipeline depth,
/// returning per-request latencies in nanoseconds.
fn drive_connection(addr: std::net::SocketAddr, tenant: u64) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect");
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let mut latencies = Vec::with_capacity(REQUESTS_PER_CONNECTION);
    let mut next = 0usize;
    let mut done = 0usize;
    while done < REQUESTS_PER_CONNECTION {
        while next < REQUESTS_PER_CONNECTION && sent_at.len() < PIPELINE_DEPTH {
            let id = (tenant << 32) | next as u64;
            let req = request(id, tenant, id);
            sent_at.insert(id, Instant::now());
            client.send(&req).expect("send");
            next += 1;
        }
        let (id, outcome) = client.recv().expect("recv");
        outcome.expect("request under pinned load must succeed");
        let started = sent_at.remove(&id).expect("response matches a sent request");
        latencies.push(started.elapsed().as_nanos() as f64);
        done += 1;
    }
    latencies
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let i = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[i]
}

fn main() {
    let mut h = Harness::new("serve").with_reps(10);

    // -- single-request round-trip microbench ---------------------------
    let server = serve(ServeConfig { workers: 2, max_batch: 16, ..ServeConfig::default() })
        .expect("bind");
    let addr = server.addr();
    {
        let mut client = Client::connect(addr).expect("connect");
        let mut seq = 0u64;
        h.bench_elems("serve/roundtrip_64x64", (WINDOW * WINDOW) as u64, || {
            seq += 1;
            client.try_generate(&request(1_000_000 + seq, 0, 9)).expect("roundtrip")
        });
    }

    // -- sustained concurrent multi-tenant load -------------------------
    let wall = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONNECTIONS)
            .map(|tenant| s.spawn(move || drive_connection(addr, tenant as u64)))
            .collect();
        handles.into_iter().flat_map(|t| t.join().expect("connection thread")).collect()
    });
    let elapsed = wall.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let total = latencies.len();
    let windows_per_sec = total as f64 / elapsed;
    let p50_ms = percentile(&latencies, 0.50) / 1e6;
    let p99_ms = percentile(&latencies, 0.99) / 1e6;
    println!(
        "sustained: {total} windows over {CONNECTIONS} connections in {elapsed:.3}s \
         = {windows_per_sec:.1} windows/s, p50 {p50_ms:.2}ms, p99 {p99_ms:.2}ms"
    );

    // -- transparency: served output == direct library call -------------
    let mut client = Client::connect(addr).expect("connect");
    let probe = request(7_000_000, 0, 0xD1CE);
    let served = client.try_generate(&probe).expect("probe");
    let reference = {
        let kernel = ConvolutionKernel::build(&model(), KernelSizing::Auto {
            factor: 8.0,
            min: 16,
            max: 64,
        })
        .truncated(1e-3);
        ConvolutionGenerator::from_kernel(kernel)
            .with_backend(ConvBackend::FftOverlapSave)
            .generate(&NoiseField::new(0xD1CE), Window::sized(WINDOW, WINDOW))
    };
    let transparent = served == reference;

    let report = server.report();
    let plan_hits = report.counter(stage::FFT_PLAN_HIT);
    let plan_misses = report.counter(stage::FFT_PLAN_MISS);
    let coalesced = report.counter(stage::SERVE_COALESCED);
    let batches = report.counter(stage::SERVE_BATCHES);
    println!(
        "server counters: {} requests, {batches} batches ({coalesced} coalesced), \
         kernel {}H/{}M, plans {plan_hits}H/{plan_misses}M",
        report.counter(stage::SERVE_REQUESTS),
        report.counter(stage::SERVE_KERNEL_HIT),
        report.counter(stage::SERVE_KERNEL_MISS),
    );
    server.shutdown();

    // -- backpressure: a saturated server rejects typed, pre-allocation -
    let tiny = serve(ServeConfig { queue_capacity: 0, ..ServeConfig::default() }).expect("bind");
    let mut starved = Client::connect(tiny.addr()).expect("connect");
    let overload_typed = matches!(
        starved.try_generate(&request(1, 0, 1)),
        Err(ServeError::Overloaded { .. })
    );
    let overload_report = tiny.report();
    let overload_counted = overload_report.counter(stage::SERVE_OVERLOADED) >= 1;
    let overload_pre_alloc = overload_report.counter(stage::SERVE_GENERATE) == 0;
    tiny.shutdown();

    h.attach_section(
        "serve",
        format!(
            "{{\n    \"connections\": {CONNECTIONS},\n    \"requests\": {total},\n    \
             \"windows_per_sec\": {windows_per_sec:.2},\n    \"p50_ms\": {p50_ms:.3},\n    \
             \"p99_ms\": {p99_ms:.3},\n    \"coalesced\": {coalesced},\n    \
             \"batches\": {batches},\n    \"plan_hits\": {plan_hits},\n    \
             \"plan_misses\": {plan_misses},\n    \"report\": {}\n  }}",
            report.to_json("  ")
        ),
    );
    h.finish().expect("write BENCH_serve.json");

    let mut failed = false;
    if p99_ms >= P99_FLOOR_MS {
        eprintln!("FAIL: p99 latency {p99_ms:.2}ms >= {P99_FLOOR_MS}ms under pinned load");
        failed = true;
    }
    if plan_hits <= plan_misses {
        eprintln!(
            "FAIL: shared plan cache hit {plan_hits} <= missed {plan_misses} — \
             coalesced batches are not reusing plans"
        );
        failed = true;
    }
    if !transparent {
        eprintln!("FAIL: served window differs from the direct library call");
        failed = true;
    }
    if !overload_typed || !overload_counted || !overload_pre_alloc {
        eprintln!(
            "FAIL: overload handling (typed {overload_typed}, counted {overload_counted}, \
             pre-allocation {overload_pre_alloc})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("serve gates passed: p99 {p99_ms:.2}ms, plans {plan_hits}H/{plan_misses}M, bit-identical, typed overload");
}
