//! FFT substrate benchmarks: radix-2 vs Bluestein, 1-D vs 2-D, serial vs
//! parallel — the costs underneath the direct DFT method.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_fft`; writes
//! `BENCH_fft.json`.

use rrs_bench::Harness;
use rrs_fft::{Direction, Fft, Fft2d};
use rrs_num::Complex64;
use rrs_rng::{RandomSource, Xoshiro256pp};
use std::hint::black_box;

fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n).map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect()
}

fn main() {
    let mut h = Harness::new("fft");
    for &n in &[256usize, 1024, 4096, 16384] {
        let fft = Fft::new(n);
        let signal = random_signal(n, n as u64);
        h.bench_elems(&format!("fft_1d/radix2/{n}"), n as u64, || {
            let mut buf = signal.clone();
            fft.process(black_box(&mut buf), Direction::Forward);
            buf
        });
        // The adjacent non-power-of-two length exercises Bluestein.
        let m = n + 1;
        let bfft = Fft::new(m);
        let bsignal = random_signal(m, m as u64);
        h.bench_elems(&format!("fft_1d/bluestein/{m}"), m as u64, || {
            let mut buf = bsignal.clone();
            bfft.process(black_box(&mut buf), Direction::Forward);
            buf
        });
    }
    for &n in &[128usize, 256, 512] {
        let field = random_signal(n * n, 7);
        for workers in [1usize, 4] {
            let fft = Fft2d::with_workers(n, n, workers);
            h.bench_elems(&format!("fft_2d/w{workers}/{n}"), (n * n) as u64, || {
                let mut buf = field.clone();
                fft.process(black_box(&mut buf), Direction::Forward);
                buf
            });
        }
    }
    h.finish().expect("write BENCH_fft.json");
}
