//! Homogeneous generation benchmarks — the quantitative backbone of the
//! paper's §4 remarks:
//!
//! * `kernel_scaling` (claim C3): convolution time grows with the
//!   weighting-array size, i.e. with correlation length;
//! * `kernel_truncation` (ablation): the §2.4 "reduce the size of the
//!   weighting array" trade-off;
//! * `direct_vs_conv` (claim C2 cost side): where the one-shot FFT method
//!   beats per-sample convolution and vice versa;
//! * `parallel_scaling` (ablation): row-band workers;
//! * `streaming` (claim C4): successive-computation throughput.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_generation`;
//! writes `BENCH_generation.json` — the perf baseline future PRs diff
//! against.

use rrs_bench::Harness;
use rrs_spectrum::{Gaussian, GridSpec, SurfaceParams};
use rrs_surface::{
    ConvolutionGenerator, ConvolutionKernel, DirectDftGenerator, KernelSizing, NoiseField,
    StripGenerator,
};
use std::hint::black_box;

const OUT: usize = 128;

fn main() {
    let mut h = Harness::new("generation");

    let noise = NoiseField::new(1);
    for cl in [4.0, 8.0, 16.0, 32.0] {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, cl));
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(1);
        h.bench_elems(&format!("kernel_scaling/cl{}", cl as u64), (OUT * OUT) as u64, || {
            black_box(gen.generate_window(&noise, 0, 0, OUT, OUT))
        });
    }

    let noise = NoiseField::new(2);
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 12.0));
    let full = ConvolutionKernel::build(&s, KernelSizing::default());
    for (label, kernel) in [
        ("full", full.clone()),
        ("eps1e-1", full.truncated(1e-1)),
        ("eps1e-2", full.truncated(1e-2)),
        ("eps1e-4", full.truncated(1e-4)),
    ] {
        let extent = kernel.extent().0;
        let gen = ConvolutionGenerator::from_kernel(kernel).with_workers(1);
        h.bench(&format!("kernel_truncation/{label}/{extent}"), || {
            black_box(gen.generate_window(&noise, 0, 0, OUT, OUT))
        });
    }

    let p = SurfaceParams::isotropic(1.0, 8.0);
    let s = Gaussian::new(p);
    let noise = NoiseField::new(3);
    for &n in &[64usize, 128, 256] {
        let direct = DirectDftGenerator::with_workers(s, GridSpec::unit(n, n), 1);
        let mut seed = 0u64;
        h.bench_elems(&format!("direct_vs_conv/direct_dft/{n}"), (n * n) as u64, move || {
            seed += 1;
            black_box(direct.generate(seed))
        });
        let conv = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(1);
        h.bench_elems(&format!("direct_vs_conv/convolution/{n}"), (n * n) as u64, || {
            black_box(conv.generate_window(&noise, 0, 0, n, n))
        });
        let conv_t = ConvolutionGenerator::from_kernel(
            ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-2),
        )
        .with_workers(1);
        h.bench_elems(&format!("direct_vs_conv/convolution_trunc/{n}"), (n * n) as u64, || {
            black_box(conv_t.generate_window(&noise, 0, 0, n, n))
        });
    }

    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 12.0));
    let noise = NoiseField::new(4);
    let kernel = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    for workers in [1usize, 2, 4, 8] {
        let gen = ConvolutionGenerator::from_kernel(kernel.clone()).with_workers(workers);
        h.bench(&format!("parallel_scaling/w{workers}"), || {
            black_box(gen.generate_window(&noise, 0, 0, 256, 256))
        });
    }

    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let mut sg = StripGenerator::new(&s, KernelSizing::default(), 64, 5);
    h.bench_elems("streaming/next_strip_256x64", (256 * 64) as u64, || {
        black_box(sg.next_strip(256))
    });

    h.finish().expect("write BENCH_generation.json");
}
