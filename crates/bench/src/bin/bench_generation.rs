//! Homogeneous generation benchmarks — the quantitative backbone of the
//! paper's §4 remarks:
//!
//! * `kernel_scaling` (claim C3): convolution time grows with the
//!   weighting-array size, i.e. with correlation length;
//! * `kernel_truncation` (ablation): the §2.4 "reduce the size of the
//!   weighting array" trade-off;
//! * `direct_vs_conv` (claim C2 cost side): where the one-shot FFT method
//!   beats per-sample convolution and vice versa;
//! * `parallel_scaling` (ablation): row-band workers;
//! * `streaming` (claim C4): successive-computation throughput.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_generation`;
//! writes `BENCH_generation.json` — the perf baseline future PRs diff
//! against. Pass `--obs` to attach an enabled `rrs_obs::Recorder` to
//! every generator and embed the stage breakdown (kernel build / window
//! materialise / correlate / per-band counters) as an `"obs"` section of
//! the JSON report.

use rrs_bench::Harness;
use rrs_grid::Window;
use rrs_obs::Recorder;
use rrs_spectrum::{Gaussian, GridSpec, SurfaceParams};
use rrs_surface::{
    ConvolutionGenerator, ConvolutionKernel, DirectDftGenerator, KernelSizing, NoiseField,
    StripGenerator,
};
use std::hint::black_box;

const OUT: usize = 128;

fn main() {
    let obs_on = std::env::args().any(|a| a == "--obs");
    let rec = if obs_on { Recorder::enabled() } else { Recorder::disabled() };
    let mut h = Harness::new("generation");

    let noise = NoiseField::new(1);
    let out_win = Window::sized(OUT, OUT);
    for cl in [4.0, 8.0, 16.0, 32.0] {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, cl));
        let gen = ConvolutionGenerator::new_observed(&s, KernelSizing::default(), rec.clone())
            .with_workers(1);
        h.bench_elems(&format!("kernel_scaling/cl{}", cl as u64), (OUT * OUT) as u64, || {
            black_box(gen.generate(&noise, out_win))
        });
    }

    let noise = NoiseField::new(2);
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 12.0));
    let full = ConvolutionKernel::build_observed(&s, KernelSizing::default(), &rec);
    for (label, kernel) in [
        ("full", full.clone()),
        ("eps1e-1", full.try_truncated_observed(1e-1, &rec).expect("valid epsilon")),
        ("eps1e-2", full.try_truncated_observed(1e-2, &rec).expect("valid epsilon")),
        ("eps1e-4", full.try_truncated_observed(1e-4, &rec).expect("valid epsilon")),
    ] {
        let extent = kernel.extent().0;
        let gen = ConvolutionGenerator::from_kernel(kernel)
            .with_workers(1)
            .with_recorder(rec.clone());
        h.bench(&format!("kernel_truncation/{label}/{extent}"), || {
            black_box(gen.generate(&noise, out_win))
        });
    }

    let p = SurfaceParams::isotropic(1.0, 8.0);
    let s = Gaussian::new(p);
    let noise = NoiseField::new(3);
    for &n in &[64usize, 128, 256] {
        let direct = DirectDftGenerator::with_workers(s, GridSpec::unit(n, n), 1);
        let mut seed = 0u64;
        h.bench_elems(&format!("direct_vs_conv/direct_dft/{n}"), (n * n) as u64, move || {
            seed += 1;
            black_box(direct.generate(seed))
        });
        let win = Window::sized(n, n);
        let conv = ConvolutionGenerator::new(&s, KernelSizing::default())
            .with_workers(1)
            .with_recorder(rec.clone());
        h.bench_elems(&format!("direct_vs_conv/convolution/{n}"), (n * n) as u64, || {
            black_box(conv.generate(&noise, win))
        });
        let conv_t = ConvolutionGenerator::from_kernel(
            ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-2),
        )
        .with_workers(1)
        .with_recorder(rec.clone());
        h.bench_elems(&format!("direct_vs_conv/convolution_trunc/{n}"), (n * n) as u64, || {
            black_box(conv_t.generate(&noise, win))
        });
    }

    // Row-band workers parallelise the *correlate* loop only; window
    // materialisation is serial and used to be timed with it, which
    // flattened the curve regardless of worker count. Prefetch the noise
    // window once and time the correlate stage in isolation, then record
    // each worker count's speedup over w1 next to the machine's actual
    // parallelism so a flat curve on a 1-CPU runner reads as the hardware
    // limit it is, not a scheduling bug.
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 12.0));
    let noise = NoiseField::new(4);
    let kernel = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let (bx, by) = (256usize, 256usize);
    let (kw, kh) = kernel.extent();
    let (ox, oy) = kernel.origin();
    let win_buf = noise.window(
        -(ox + kw as i64 - 1),
        -(oy + kh as i64 - 1),
        bx + kw - 1,
        by + kh - 1,
    );
    let available =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let gen = ConvolutionGenerator::from_kernel(kernel.clone())
            .with_workers(workers)
            .with_recorder(rec.clone());
        h.bench_elems(&format!("parallel_scaling/w{workers}"), (bx * by) as u64, || {
            black_box(gen.try_correlate_window(&win_buf, bx, by).expect("correlate"))
        });
        scaling.push((workers, h.last_record().expect("just recorded").median_ns));
    }
    let w1_median = scaling[0].1;
    let entries: Vec<String> = scaling
        .iter()
        .map(|&(w, m)| {
            format!(
                "{{\"workers\": {w}, \"median_ns\": {m:.1}, \"speedup_vs_w1\": {:.3}}}",
                w1_median / m
            )
        })
        .collect();
    h.attach_section(
        "parallel_scaling",
        format!(
            "{{\"available_parallelism\": {available}, \"measures\": \"correlate stage only \
             (noise window prefetched)\", \"points\": [{}]}}",
            entries.join(", ")
        ),
    );

    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let mut sg =
        StripGenerator::new(&s, KernelSizing::default(), 64, 5).with_recorder(rec.clone());
    h.bench_elems("streaming/next_strip_256x64", (256 * 64) as u64, || {
        black_box(sg.next_strip(256))
    });

    let surface = sg.strip_at(0, 256);
    h.bench_elems("export/snapshot_256x64", (256 * 64) as u64, || {
        let mut buf = Vec::with_capacity(surface.len() * 8 + 32);
        rrs_io::try_write_snapshot_observed(&mut buf, &surface, &rec).expect("encode");
        black_box(buf.len())
    });

    if obs_on {
        let report = rec.report();
        println!("\nstage breakdown (--obs):");
        for (name, hist) in &report.durations {
            println!(
                "  {name:<28} count {:>8}  total {:>12} ns  mean {:>12.0} ns",
                hist.count,
                hist.total_ns,
                hist.mean_ns(),
            );
        }
        for (name, value) in &report.counters {
            println!("  {name:<28} {value}");
        }
        h.attach_section("obs", report.to_json("  "));
    }

    h.finish().expect("write BENCH_generation.json");
}
