//! Convolution backend benchmarks and dispatch gate.
//!
//! Measures four engines on the `kernel_scaling` shapes (Gaussian,
//! `KernelSizing::default()`, 128×128 output):
//!
//! * `direct` — [`ConvBackend::Direct`], the spatial reference loop;
//! * `fft` — [`ConvBackend::FftComplexSerial`], the PR 5 complex
//!   overlap-save engine, kept as the measurable baseline (the row name
//!   is unchanged so the JSON stays comparable across releases);
//! * `rfft` — [`ConvBackend::FftOverlapSave`] at one worker: the
//!   real-input half-size-trick pipeline, serial tile loop;
//! * `rfft_par` — the same engine at [`PAR_WORKERS`] workers (parallel
//!   tile dispatch; on shapes that fit one tile the engine clamps to a
//!   serial run, so this row also documents the clamp's overhead-freeness).
//!
//! **Fails** (exit code 1) if any of:
//!
//! * the real-input engine is not at least 6× the direct loop on the
//!   `cl32` shape (the seed complex engine measured 12.6×; the real-input
//!   refactor re-measured 25.3× — 6× leaves room for machine noise, not
//!   drift);
//! * `rfft_par` is not at least 1.2× the complex-serial baseline on
//!   `cl32` — the half-size trick halves transform arithmetic (measured
//!   1.33–1.56× across runs on the single-core reference host, where
//!   cl32 fits one tile and the worker clamp keeps the run serial;
//!   multi-core hosts add the tile-parallel speedup on top), so the
//!   margin must not erode below the arithmetic floor;
//! * [`ConvBackend::Auto`] resolves to a backend measurably slower than
//!   the other engine on any measured shape — i.e. the
//!   `AUTO_CROSSOVER_KERNEL_AREA` model has drifted from reality.
//!
//! `crossover/k13..k31` probes ride along informationally: cropped
//! kernels bracketing the modelled crossover area show which side of the
//! Direct/rfft boundary this machine actually favours.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_convolution`;
//! writes `BENCH_convolution.json` with a `dispatch` section recording
//! per-shape minima for all four engines and the resolved backend.

use rrs_bench::Harness;
use rrs_grid::Window;
use rrs_spectrum::{Gaussian, SurfaceParams};
use rrs_surface::{
    ConvBackend, ConvolutionGenerator, ConvolutionKernel, KernelSizing, NoiseField,
};
use std::hint::black_box;

const OUT: usize = 128;
/// Pinned worker count for the `rfft_par` rows: fixed (not
/// `available_parallelism`) so the JSON is comparable across hosts.
const PAR_WORKERS: usize = 4;

struct Shape {
    label: String,
    kernel: ConvolutionKernel,
    gated: bool,
}

fn main() {
    let mut h = Harness::new("convolution").with_reps(5);
    let noise = NoiseField::new(1);
    let win = Window::sized(OUT, OUT);

    let mut shapes: Vec<Shape> = [8.0, 16.0, 32.0]
        .iter()
        .map(|&cl| {
            let s = Gaussian::new(SurfaceParams::isotropic(1.0, cl));
            Shape {
                label: format!("cl{}", cl as u64),
                kernel: ConvolutionKernel::build(&s, KernelSizing::default()),
                gated: cl == 32.0,
            }
        })
        .collect();
    // Crossover probes: cropped kernels bracketing the modelled
    // AUTO_CROSSOVER_KERNEL_AREA, where Direct and the real-input engine
    // trade places — informational (the exact boundary is machine- and
    // noise-sensitive), never gated.
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let base = ConvolutionKernel::build(&s, KernelSizing::default());
    for r in [6i64, 9, 12, 15] {
        let kernel = base.crop(r, r);
        shapes.push(Shape {
            label: format!("k{}", 2 * r + 1),
            kernel,
            gated: false,
        });
    }

    let mut dispatch_entries: Vec<String> = Vec::new();
    let mut failed = false;

    for shape in &shapes {
        let crossover = shape.label.starts_with('k');
        let group = if crossover { "crossover" } else { "backend" };
        // Crossover probes only need the two engines Auto picks between;
        // backend shapes measure the full four-engine grid.
        let engines: &[(&str, ConvBackend, usize)] = if crossover {
            &[
                ("direct", ConvBackend::Direct, 1),
                ("rfft", ConvBackend::FftOverlapSave, 1),
            ]
        } else {
            &[
                ("direct", ConvBackend::Direct, 1),
                ("fft", ConvBackend::FftComplexSerial, 1),
                ("rfft", ConvBackend::FftOverlapSave, 1),
                ("rfft_par", ConvBackend::FftOverlapSave, PAR_WORKERS),
            ]
        };
        let mut mins = vec![0.0f64; engines.len()];
        for (i, &(tag, backend, workers)) in engines.iter().enumerate() {
            let gen = ConvolutionGenerator::from_kernel(shape.kernel.clone())
                .with_workers(workers)
                .with_backend(backend);
            h.bench_elems(
                &format!("{group}/{}/{tag}", shape.label),
                (OUT * OUT) as u64,
                || black_box(gen.generate(&noise, win)),
            );
            mins[i] = h.last_record().expect("just recorded").min_ns;
        }
        let min_of = |tag: &str| {
            engines
                .iter()
                .position(|&(t, _, _)| t == tag)
                .map(|i| mins[i])
        };
        let direct_min = min_of("direct").expect("direct always measured");
        let rfft_min = min_of("rfft").expect("rfft always measured");

        let auto = ConvolutionGenerator::from_kernel(shape.kernel.clone())
            .with_workers(1)
            .with_backend(ConvBackend::Auto);
        let resolved = auto.resolved_backend();
        h.bench_elems(&format!("{group}/{}/auto", shape.label), (OUT * OUT) as u64, || {
            black_box(auto.generate(&noise, win))
        });

        let ratio = direct_min / rfft_min;
        let (kw, kh) = shape.kernel.extent();
        println!(
            "{}/{}: kernel {kw}x{kh}, direct/rfft (min-of-reps) = {ratio:.2}x, Auto -> {resolved:?}",
            group, shape.label
        );
        let mut entry = format!(
            "{{\"shape\": \"{}\", \"kernel\": [{kw}, {kh}], \"direct_min_ns\": {direct_min:.1}, \
             \"rfft_min_ns\": {rfft_min:.1}, \"direct_over_rfft\": {ratio:.3}",
            shape.label
        );
        if let (Some(fft_min), Some(par_min)) = (min_of("fft"), min_of("rfft_par")) {
            entry.push_str(&format!(
                ", \"fft_min_ns\": {fft_min:.1}, \"rfft_par_min_ns\": {par_min:.1}, \
                 \"fft_over_rfft_par\": {:.3}",
                fft_min / par_min
            ));
        }
        entry.push_str(&format!(", \"auto_resolved\": \"{resolved:?}\"}}"));
        dispatch_entries.push(entry);

        if shape.gated {
            if ratio < 6.0 {
                eprintln!(
                    "FAIL: real-input FFT engine is only {ratio:.2}x the direct loop on {} \
                     (gate: >= 6x)",
                    shape.label
                );
                failed = true;
            }
            let fft_min = min_of("fft").expect("gated shapes measure the full grid");
            let par_min = min_of("rfft_par").expect("gated shapes measure the full grid");
            let gain = fft_min / par_min;
            if gain < 1.2 {
                eprintln!(
                    "FAIL: parallel real-input engine is only {gain:.2}x the complex-serial \
                     baseline on {} (gate: >= 1.2x)",
                    shape.label
                );
                failed = true;
            }
        }
        // Auto must land on the measured winner; 10% slack absorbs timing
        // noise on shapes where the engines are close.
        let (resolved_min, other_min) = match resolved {
            ConvBackend::FftOverlapSave => (rfft_min, direct_min),
            _ => (direct_min, rfft_min),
        };
        if group == "backend" && resolved_min > other_min * 1.1 {
            eprintln!(
                "FAIL: Auto resolved to {resolved:?} on {} but the other backend is \
                 {:.2}x faster — AUTO_CROSSOVER_KERNEL_AREA no longer matches this machine",
                shape.label,
                resolved_min / other_min
            );
            failed = true;
        }
    }

    h.attach_section("dispatch", format!("[{}]", dispatch_entries.join(", ")));
    h.finish().expect("write BENCH_convolution.json");

    if failed {
        std::process::exit(1);
    }
    println!("convolution backend gates passed");
}
