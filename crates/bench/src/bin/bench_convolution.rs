//! Convolution backend benchmarks and dispatch gate.
//!
//! Measures [`ConvBackend::Direct`] against [`ConvBackend::FftOverlapSave`]
//! on the `kernel_scaling` shapes (Gaussian, `KernelSizing::default()`,
//! 128×128 output) and **fails** (exit code 1) if either
//!
//! * the FFT engine is not at least 3× faster than the direct loop on the
//!   `cl32` shape — the configuration whose direct cost motivated the
//!   backend (~0.8 s per window at seed); or
//! * [`ConvBackend::Auto`] resolves to a backend measurably slower than
//!   the other engine on any measured shape — i.e. the
//!   `AUTO_CROSSOVER_KERNEL_AREA` model has drifted from reality.
//!
//! A `crossover/k13` pair rides along informationally: a cropped 13×13
//! kernel sits right at the modelled crossover area, so its Direct/FFT
//! ratio shows which side of the boundary this machine actually favours.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_convolution`;
//! writes `BENCH_convolution.json` with a `dispatch` section recording
//! the resolved backend and measured ratio per shape.

use rrs_bench::Harness;
use rrs_grid::Window;
use rrs_spectrum::{Gaussian, SurfaceParams};
use rrs_surface::{
    ConvBackend, ConvolutionGenerator, ConvolutionKernel, KernelSizing, NoiseField,
};
use std::hint::black_box;

const OUT: usize = 128;

struct Shape {
    label: String,
    kernel: ConvolutionKernel,
    gated: bool,
}

fn main() {
    let mut h = Harness::new("convolution").with_reps(5);
    let noise = NoiseField::new(1);
    let win = Window::sized(OUT, OUT);

    let mut shapes: Vec<Shape> = [8.0, 16.0, 32.0]
        .iter()
        .map(|&cl| {
            let s = Gaussian::new(SurfaceParams::isotropic(1.0, cl));
            Shape {
                label: format!("cl{}", cl as u64),
                kernel: ConvolutionKernel::build(&s, KernelSizing::default()),
                gated: cl == 32.0,
            }
        })
        .collect();
    // Crossover probes: cropped kernels bracketing the modelled
    // AUTO_CROSSOVER_KERNEL_AREA, where the two engines trade places —
    // informational (the exact boundary is machine- and noise-sensitive),
    // never gated.
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let base = ConvolutionKernel::build(&s, KernelSizing::default());
    for r in [6i64, 9, 12, 15] {
        let kernel = base.crop(r, r);
        shapes.push(Shape {
            label: format!("k{}", 2 * r + 1),
            kernel,
            gated: false,
        });
    }

    let mut dispatch_entries: Vec<String> = Vec::new();
    let mut failed = false;

    for shape in &shapes {
        let group = if shape.label.starts_with('k') { "crossover" } else { "backend" };
        let mut mins = [0.0f64; 2];
        for (i, backend) in [ConvBackend::Direct, ConvBackend::FftOverlapSave]
            .into_iter()
            .enumerate()
        {
            let gen = ConvolutionGenerator::from_kernel(shape.kernel.clone())
                .with_workers(1)
                .with_backend(backend);
            let tag = match backend {
                ConvBackend::FftOverlapSave => "fft",
                _ => "direct",
            };
            h.bench_elems(
                &format!("{group}/{}/{tag}", shape.label),
                (OUT * OUT) as u64,
                || black_box(gen.generate(&noise, win)),
            );
            mins[i] = h.last_record().expect("just recorded").min_ns;
        }
        let [direct_min, fft_min] = mins;

        let auto = ConvolutionGenerator::from_kernel(shape.kernel.clone())
            .with_workers(1)
            .with_backend(ConvBackend::Auto);
        let resolved = auto.resolved_backend();
        h.bench_elems(&format!("{group}/{}/auto", shape.label), (OUT * OUT) as u64, || {
            black_box(auto.generate(&noise, win))
        });

        let ratio = direct_min / fft_min;
        let (kw, kh) = shape.kernel.extent();
        println!(
            "{}/{}: kernel {kw}x{kh}, direct/fft (min-of-reps) = {ratio:.2}x, Auto -> {resolved:?}",
            group, shape.label
        );
        dispatch_entries.push(format!(
            "{{\"shape\": \"{}\", \"kernel\": [{kw}, {kh}], \"direct_min_ns\": {direct_min:.1}, \
             \"fft_min_ns\": {fft_min:.1}, \"direct_over_fft\": {ratio:.3}, \
             \"auto_resolved\": \"{resolved:?}\"}}",
            shape.label
        ));

        if shape.gated && ratio < 3.0 {
            eprintln!(
                "FAIL: FFT backend is only {ratio:.2}x the direct loop on {} \
                 (gate: >= 3x)",
                shape.label
            );
            failed = true;
        }
        // Auto must land on the measured winner; 10% slack absorbs timing
        // noise on shapes where the engines are close.
        let (resolved_min, other_min) = match resolved {
            ConvBackend::FftOverlapSave => (fft_min, direct_min),
            _ => (direct_min, fft_min),
        };
        if group == "backend" && resolved_min > other_min * 1.1 {
            eprintln!(
                "FAIL: Auto resolved to {resolved:?} on {} but the other backend is \
                 {:.2}x faster — AUTO_CROSSOVER_KERNEL_AREA no longer matches this machine",
                shape.label,
                resolved_min / other_min
            );
            failed = true;
        }
    }

    h.attach_section("dispatch", format!("[{}]", dispatch_entries.join(", ")));
    h.finish().expect("write BENCH_convolution.json");

    if failed {
        std::process::exit(1);
    }
    println!("convolution backend gates passed");
}
