//! Regenerates every figure and quantitative claim of the paper.
//!
//! ```text
//! reproduce [--fig 1|2|3|4|all] [--claim c1|c2|c3|c4|all]
//!           [--scale 0.25] [--eps 0.01] [--seed 42] [--out out]
//! ```
//!
//! With no selection arguments, everything runs. Figures are written as
//! PGM/PPM images plus gnuplot matrices under `--out`, and a
//! paper-target-vs-measured validation table is printed for every
//! homogeneous sub-region (the data recorded in EXPERIMENTS.md).
//! `--scale 1.0` is the paper's full parameterisation; the default 0.25
//! keeps a laptop run in seconds while preserving every shape.

use rrs_bench::figures::{fig1, fig2, fig3, fig4, Figure};
use rrs_grid::Window;
use rrs_spectrum::{
    verify_weight_dft, Exponential, Gaussian, GridSpec, PowerLaw, SurfaceParams,
};
use rrs_stats::Moments;
use rrs_surface::{
    ConvolutionGenerator, ConvolutionKernel, DirectDftGenerator, KernelSizing, NoiseField,
    StripGenerator,
};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Options {
    figs: Vec<u32>,
    claims: Vec<u32>,
    scale: f64,
    eps: f64,
    seed: u64,
    reps: u64,
    out: PathBuf,
}

fn parse_args() -> Options {
    let mut opts = Options {
        figs: vec![],
        claims: vec![],
        scale: 0.25,
        eps: 0.01,
        seed: 42,
        reps: 6,
        out: PathBuf::from("out"),
    };
    let mut picked_any = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--fig" => {
                picked_any = true;
                let v = need(i);
                if v == "all" {
                    opts.figs = vec![1, 2, 3, 4];
                } else {
                    opts.figs.push(v.parse().expect("--fig takes 1..4 or all"));
                }
                i += 2;
            }
            "--claim" => {
                picked_any = true;
                let v = need(i);
                if v == "all" {
                    opts.claims = vec![1, 2, 3, 4];
                } else {
                    let v = v.trim_start_matches('c');
                    opts.claims.push(v.parse().expect("--claim takes c1..c4 or all"));
                }
                i += 2;
            }
            "--scale" => {
                opts.scale = need(i).parse().expect("--scale takes a float");
                i += 2;
            }
            "--eps" => {
                opts.eps = need(i).parse().expect("--eps takes a float");
                i += 2;
            }
            "--seed" => {
                opts.seed = need(i).parse().expect("--seed takes an integer");
                i += 2;
            }
            "--reps" => {
                opts.reps = need(i).parse().expect("--reps takes an integer");
                i += 2;
            }
            "--out" => {
                opts.out = PathBuf::from(need(i));
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: reproduce [--fig 1|2|3|4|all] [--claim c1..c4|all] \
                     [--scale S] [--eps E] [--seed N] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    if !picked_any {
        opts.figs = vec![1, 2, 3, 4];
        opts.claims = vec![1, 2, 3, 4];
    }
    opts
}

fn main() {
    let opts = parse_args();
    std::fs::create_dir_all(&opts.out).expect("cannot create output directory");
    println!(
        "reproduce: scale={} eps={} seed={} out={}",
        opts.scale,
        opts.eps,
        opts.seed,
        opts.out.display()
    );
    for &f in &opts.figs {
        let figure = match f {
            1 => fig1(opts.scale, opts.eps, opts.seed),
            2 => fig2(opts.scale, opts.eps, opts.seed),
            3 => fig3(opts.scale, opts.eps, opts.seed),
            4 => fig4(opts.scale, opts.eps, opts.seed),
            _ => {
                eprintln!("no such figure: {f}");
                continue;
            }
        };
        run_figure(&figure, &opts.out, opts.reps);
    }
    for &c in &opts.claims {
        match c {
            1 => claim_c1(),
            2 => claim_c2(opts.seed),
            3 => claim_c3(opts.seed),
            4 => claim_c4(opts.seed),
            _ => eprintln!("no such claim: c{c}"),
        }
    }
}

fn run_figure(figure: &Figure, out: &Path, reps: u64) {
    println!("\n=== {} — {}", figure.id, figure.title);
    let t0 = Instant::now();
    let surface = figure.generate();
    let dt = t0.elapsed();
    println!(
        "generated {}x{} in {:.2?} (overall h_hat = {:.3})",
        figure.nx,
        figure.ny,
        dt,
        surface.std_dev()
    );
    let base = out.join(figure.id);
    rrs_io::write_pgm(File::create(base.with_extension("pgm")).unwrap(), &surface).unwrap();
    rrs_io::write_ppm(File::create(base.with_extension("ppm")).unwrap(), &surface).unwrap();
    rrs_io::write_gnuplot_matrix(
        File::create(base.with_extension("dat")).unwrap(),
        &surface,
        &figure.title,
    )
    .unwrap();

    println!(
        "validation over {reps} independent realisations:"
    );
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7}",
        "region", "h", "h_hat", "err%", "cl_1/e", "cl_hat", "skew", "kurt"
    );
    let mut csv = String::from("region,h_target,h_measured,h_rel_err,clx_target,clx_measured\n");
    for (name, r) in figure.validate_ensemble(reps) {
        let cl_hat = r
            .clx_measured
            .map(|v| format!("{v:9.2}"))
            .unwrap_or_else(|| "      n/a".into());
        println!(
            "{:<28} {:>8.3} {:>8.3} {:>7.1}% {:>9.1} {} {:>7.2} {:>7.2}",
            name,
            r.target.h,
            r.h_measured,
            100.0 * r.h_rel_error(),
            r.clx_expected,
            cl_hat,
            r.skewness,
            r.kurtosis
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            name,
            r.target.h,
            r.h_measured,
            r.h_rel_error(),
            r.clx_expected,
            r.clx_measured.map(|v| v.to_string()).unwrap_or_default()
        ));
    }
    std::fs::write(out.join(format!("{}_validation.csv", figure.id)), csv).unwrap();
}

/// Claim C1 (§2.2): `DFT(w)` reproduces the closed-form autocorrelation.
fn claim_c1() {
    println!("\n=== claim C1: DFT(weight array) reproduces the autocorrelation (paper §2.2)");
    let p = SurfaceParams::isotropic(1.0, 10.0);
    let spec = GridSpec::unit(256, 256);
    let cases: Vec<(&str, f64)> = vec![
        ("Gaussian", verify_weight_dft(&Gaussian::new(p), spec)),
        ("Power-Law N=2", verify_weight_dft(&PowerLaw::new(p, 2.0), spec)),
        ("Power-Law N=3", verify_weight_dft(&PowerLaw::new(p, 3.0), spec)),
        ("Exponential", verify_weight_dft(&Exponential::new(p), spec)),
    ];
    println!("{:<16} {:>14}", "spectrum", "max |err|/h^2");
    for (name, err) in cases {
        println!("{name:<16} {err:>14.3e}");
    }
}

/// Claim C2 (§2.4): the convolution method is statistically equivalent to
/// the direct DFT method.
fn claim_c2(seed: u64) {
    println!("\n=== claim C2: convolution method ≡ direct DFT method");
    let p = SurfaceParams::isotropic(1.0, 8.0);
    let s = Gaussian::new(p);
    let n = 256usize;
    let reps = 8u64;
    let direct = DirectDftGenerator::new(s, GridSpec::unit(n, n));
    let conv = ConvolutionGenerator::new(&s, KernelSizing::default());
    let mut m_direct = Moments::new();
    let mut m_conv = Moments::new();
    for r in 0..reps {
        m_direct.push_all(direct.generate(seed + r).as_slice());
        m_conv
            .push_all(conv.generate(&NoiseField::new(seed + r), Window::sized(n, n)).as_slice());
    }
    println!("{:<14} {:>10} {:>10} {:>10}", "method", "mean", "h_hat", "kurtosis");
    for (name, m) in [("direct DFT", m_direct), ("convolution", m_conv)] {
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>10.3}",
            name,
            m.mean(),
            m.std_dev(),
            m.kurtosis()
        );
    }
    println!("target          {:>10.4} {:>10.4} {:>10.3}", 0.0, p.h, 3.0);
}

/// Claim C3 (§4): run time scales with the weighting-array size, i.e.
/// with correlation length.
fn claim_c3(seed: u64) {
    println!("\n=== claim C3: computation time grows with correlation length");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "cl", "kernel", "t(full)", "t(trunc 1e-2)"
    );
    let n = 192usize;
    let noise = NoiseField::new(seed);
    for cl in [5.0, 10.0, 20.0, 40.0] {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, cl));
        let kernel = ConvolutionKernel::build(&s, KernelSizing::default());
        let full_extent = kernel.extent();
        let t0 = Instant::now();
        let _ = ConvolutionGenerator::from_kernel(kernel.clone())
            .generate(&noise, Window::sized(n, n));
        let t_full = t0.elapsed();
        let trunc = kernel.truncated(1e-2);
        let t1 = Instant::now();
        let _ =
            ConvolutionGenerator::from_kernel(trunc).generate(&noise, Window::sized(n, n));
        let t_trunc = t1.elapsed();
        println!(
            "{:>6} {:>7}x{:<4} {:>14.2?} {:>14.2?}",
            cl, full_extent.0, full_extent.1, t_full, t_trunc
        );
    }
}

/// Claim C4 (§2.4): arbitrarily long surfaces by successive computations,
/// seamlessly.
fn claim_c4(seed: u64) {
    println!("\n=== claim C4: streaming strips are seamless and stationary");
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let mut sg = StripGenerator::new(&s, KernelSizing::default(), 128, seed);
    let tile = 256usize;
    let tiles = 8usize;
    let t0 = Instant::now();
    let mut stds = Vec::new();
    for _ in 0..tiles {
        let strip = sg.next_strip(tile);
        stds.push(strip.std_dev());
    }
    let dt = t0.elapsed();
    // Seam check: regenerate a window straddling the first boundary and
    // compare against freshly generated halves.
    let straddle = sg.strip_at(tile as i64 - 32, 64);
    let left = sg.strip_at(tile as i64 - 32, 32);
    let mut max_err: f64 = 0.0;
    for iy in 0..128 {
        for ix in 0..32 {
            max_err = max_err.max((straddle.get(ix, iy) - left.get(ix, iy)).abs());
        }
    }
    println!(
        "{} tiles of {}x128 in {:.2?}; per-tile h_hat: {:?}",
        tiles,
        tile,
        dt,
        stds.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    );
    println!("seam reconstruction max |err| = {max_err:.3e} (0 = exact)");
}
