//! End-to-end generation cost of each paper figure (at bench scale 1/8 —
//! the geometry and spectra mix are the paper's; only linear dimensions
//! shrink). Regenerate the full-size figures with the `reproduce` binary.
//!
//! Run with `cargo run --release -p rrs-bench --bin bench_figures`;
//! writes `BENCH_figures.json`.

use rrs_bench::figures::{fig1, fig2, fig3, fig4};
use rrs_bench::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("figures");
    let scale = 0.125;
    let eps = 0.01;
    for (name, fig) in [
        ("paper_figures/fig1_quadrants", fig1(scale, eps, 1)),
        ("paper_figures/fig2_spectra", fig2(scale, eps, 1)),
        ("paper_figures/fig3_circle", fig3(scale, eps, 1)),
        ("paper_figures/fig4_points", fig4(scale, eps, 1)),
    ] {
        h.bench(name, || black_box(fig.generate()));
    }
    h.finish().expect("write BENCH_figures.json");
}
