//! Reproduction harness for the paper's evaluation (Figures 1–4 and the
//! quantitative claims C1–C4 of DESIGN.md).
//!
//! [`figures`] builds each figure's generator and the list of homogeneous
//! sub-regions to validate, parameterised by a linear `scale` so the same
//! definitions serve the full-size `reproduce` binary, the criterion
//! benches, and the fast integration tests.

pub mod figures;

pub use figures::{Figure, FigureRegion};
