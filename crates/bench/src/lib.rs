//! Reproduction harness for the paper's evaluation (Figures 1–4 and the
//! quantitative claims C1–C4 of DESIGN.md).
//!
//! [`figures`] builds each figure's generator and the list of homogeneous
//! sub-regions to validate, parameterised by a linear `scale` so the same
//! definitions serve the full-size `reproduce` binary, the `bench_*`
//! timing binaries, and the fast integration tests.
//!
//! [`harness`] is the in-repo timing substrate those binaries share:
//! warmup + repeated timed runs, median/min/stddev summaries, and
//! machine-readable `BENCH_*.json` output.

pub mod figures;
pub mod harness;

pub use figures::{Figure, FigureRegion};
pub use harness::{BenchRecord, Harness};
