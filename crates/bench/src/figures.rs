//! The paper's four numerical examples, parameterised by scale.
//!
//! All linear dimensions (domain size, correlation lengths, radii,
//! transition widths) multiply by `scale`; `scale = 1.0` is the paper's
//! own parameterisation (e.g. Figure 3's radius-500 circle). The OCR of
//! the paper lost decimal points; the reconstructed parameters are
//! documented in EXPERIMENTS.md §Assumed parameters.

use rrs_grid::{Grid2, Window};
use rrs_inhomo::{
    InhomogeneousGenerator, Plate, PlateLayout, PointLayout, Region, RepresentativePoint,
    WeightMap,
};
use rrs_spectrum::{SpectrumModel, SurfaceParams};
use rrs_stats::{validate_region, RegionReport};
use rrs_surface::{KernelSizing, NoiseField};

/// A homogeneous sub-region of a figure with its target spectrum, used
/// for quantitative validation.
#[derive(Clone, Debug)]
pub struct FigureRegion {
    /// Human-readable label (quadrant, pond, ring cell, ...).
    pub name: &'static str,
    /// Validation window `(x0, y0, w, h)` in output-grid coordinates.
    pub window: (usize, usize, usize, usize),
    /// The spectrum the generator was asked for there.
    pub spectrum: SpectrumModel,
}

/// One reproducible paper figure.
pub struct Figure {
    /// Identifier (`fig1` ... `fig4`).
    pub id: &'static str,
    /// Description shown in reports.
    pub title: String,
    /// Output width in samples.
    pub nx: usize,
    /// Output height in samples.
    pub ny: usize,
    /// Window origin in absolute surface coordinates.
    pub origin: (i64, i64),
    /// Noise seed (any value reproduces the paper's *statistics*; the
    /// exact pixels are seed-dependent, as in the paper).
    pub seed: u64,
    /// The configured generator.
    pub generator: InhomogeneousGenerator<Box<dyn WeightMap>>,
    /// Homogeneous sub-regions to validate.
    pub regions: Vec<FigureRegion>,
}

impl Figure {
    /// Generates the figure's surface.
    pub fn generate(&self) -> Grid2<f64> {
        self.generator.generate(
            &NoiseField::new(self.seed),
            Window::new(self.origin.0, self.origin.1, self.nx, self.ny),
        )
    }

    /// Validates every declared region of a generated surface.
    pub fn validate(&self, surface: &Grid2<f64>) -> Vec<(&'static str, RegionReport)> {
        self.regions
            .iter()
            .map(|r| {
                let (x0, y0, w, h) = r.window;
                (r.name, validate_region(surface, &r.spectrum, x0, y0, w, h))
            })
            .collect()
    }

    /// Ensemble validation over `reps` independent noise seeds: per-seed
    /// estimates fluctuate by `O(h/√patches)`; averaging shrinks that by
    /// `√reps`. Costs `reps ×` one figure generation; every region is
    /// validated on each realisation.
    pub fn validate_ensemble(&self, reps: u64) -> Vec<(&'static str, RegionReport)> {
        use rrs_spectrum::Spectrum;
        let mut per_region: Vec<Vec<RegionReport>> =
            vec![Vec::with_capacity(reps as usize); self.regions.len()];
        for seed in self.seed..self.seed + reps {
            let surface = self.generator.generate(
                &NoiseField::new(seed),
                Window::new(self.origin.0, self.origin.1, self.nx, self.ny),
            );
            for (i, r) in self.regions.iter().enumerate() {
                let (x0, y0, w, h) = r.window;
                per_region[i].push(validate_region(&surface, &r.spectrum, x0, y0, w, h));
            }
        }
        self.regions
            .iter()
            .zip(per_region)
            .map(|(r, reports)| {
                (r.name, rrs_stats::validate::aggregate_reports(r.spectrum.params(), &reports))
            })
            .collect()
    }
}

fn even(x: f64) -> usize {
    let n = x.round().max(2.0) as usize;
    n + n % 2
}

fn sizing() -> KernelSizing {
    KernelSizing::Auto { factor: 8.0, min: 16, max: 2048 }
}

/// Validation-window inset for a region with transition `t` and
/// correlation length `cl`.
fn margin(t: f64, cl: f64) -> usize {
    (0.5 * t + 2.0 * cl).ceil() as usize
}

/// Figure 1 — plate-oriented, one spectrum family (Gaussian), four
/// quadrants with different `(h, cl)`:
/// q1 `(1.0, 40)`, q2 `(1.5, 60)`, q3 `(2.0, 80)`, q4 `(1.5, 60)`.
pub fn fig1(scale: f64, trunc_eps: f64, seed: u64) -> Figure {
    let n = even(1024.0 * scale);
    let t = (40.0 * scale).max(2.0);
    let q = |h: f64, cl: f64| {
        SpectrumModel::gaussian(SurfaceParams::isotropic(h, (cl * scale).max(3.0)))
    };
    let spectra = [q(1.0, 40.0), q(1.5, 60.0), q(2.0, 80.0), q(1.5, 60.0)];
    quadrant_figure("fig1", "Figure 1: same spectrum, four parameter sets", n, t, spectra, trunc_eps, seed)
}

/// Figure 2 — plate-oriented, four different spectra:
/// q1 Gaussian `(1.0, 40)`, q2 2nd-order Power-Law `(1.5, 60)`,
/// q3 Exponential `(2.0, 80)`, q4 3rd-order Power-Law `(1.5, 60)`.
pub fn fig2(scale: f64, trunc_eps: f64, seed: u64) -> Figure {
    let n = even(1024.0 * scale);
    let t = (40.0 * scale).max(2.0);
    let cl = |c: f64| (c * scale).max(3.0);
    let spectra = [
        SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, cl(40.0))),
        SpectrumModel::power_law(SurfaceParams::isotropic(1.5, cl(60.0)), 2.0),
        SpectrumModel::exponential(SurfaceParams::isotropic(2.0, cl(80.0))),
        SpectrumModel::power_law(SurfaceParams::isotropic(1.5, cl(60.0)), 3.0),
    ];
    quadrant_figure("fig2", "Figure 2: four different spectra", n, t, spectra, trunc_eps, seed)
}

fn quadrant_figure(
    id: &'static str,
    title: &str,
    n: usize,
    t: f64,
    spectra: [SpectrumModel; 4],
    trunc_eps: f64,
    seed: u64,
) -> Figure {
    use rrs_spectrum::Spectrum;
    let layout = rrs_inhomo::plate::quadrant_layout(n as f64, n as f64, spectra, t);
    let boxed: Box<dyn WeightMap> = Box::new(layout);
    let generator = InhomogeneousGenerator::new_truncated(boxed, sizing(), trunc_eps);
    let h = n / 2;
    // Window builders per quadrant, inset by the region's own margin.
    let win = |qx: usize, qy: usize, s: &SpectrumModel| {
        let m = margin(t, s.params().clx).min(h / 3);
        (qx * h + m, qy * h + m, h - 2 * m, h - 2 * m)
    };
    let regions = vec![
        FigureRegion { name: "q1 (upper right)", window: win(1, 1, &spectra[0]), spectrum: spectra[0] },
        FigureRegion { name: "q2 (upper left)", window: win(0, 1, &spectra[1]), spectrum: spectra[1] },
        FigureRegion { name: "q3 (lower left)", window: win(0, 0, &spectra[2]), spectrum: spectra[2] },
        FigureRegion { name: "q4 (lower right)", window: win(1, 0, &spectra[3]), spectrum: spectra[3] },
    ];
    Figure {
        id,
        title: format!("{title} ({n}x{n}, T={t})"),
        nx: n,
        ny: n,
        origin: (0, 0),
        seed,
        generator,
        regions,
    }
}

/// Figure 3 — plate-oriented circular region: an Exponential-spectrum
/// "pond" `(h=0.2, cl=50)` of radius 500 inside a Gaussian field
/// `(h=1.0, cl=50)`, transition `T = 100`.
pub fn fig3(scale: f64, trunc_eps: f64, seed: u64) -> Figure {
    let n = even(1536.0 * scale);
    let c = n as f64 / 2.0;
    let radius = 500.0 * scale;
    let t = (100.0 * scale).max(2.0);
    let cl = (50.0 * scale).max(3.0);
    let pond_spectrum = SpectrumModel::exponential(SurfaceParams::isotropic(0.2, cl));
    let field_spectrum = SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, cl));
    let layout = PlateLayout::new(
        vec![Plate {
            region: Region::Circle { cx: c, cy: c, r: radius },
            spectrum: pond_spectrum,
        }],
        Some(field_spectrum),
        t,
    );
    let boxed: Box<dyn WeightMap> = Box::new(layout);
    let generator = InhomogeneousGenerator::new_truncated(boxed, sizing(), trunc_eps);
    // Pond window: centred square fully inside the circle minus margins.
    let m = margin(t, cl) as f64;
    let half_side = ((radius - m) / 2.0_f64.sqrt()).max(4.0) as usize;
    let cy = n / 2;
    let pond_window = (cy - half_side, cy - half_side, 2 * half_side, 2 * half_side);
    // Field window: the full-width strip below the circle's influence —
    // wide in x so the correlation profile has room.
    let strip_h = ((c - radius - m).max(8.0) as usize).min(n);
    let field_window = (0, 0, n, strip_h);
    Figure {
        id: "fig3",
        title: format!("Figure 3: circular pond in a field ({n}x{n}, r={radius}, T={t})"),
        nx: n,
        ny: n,
        origin: (0, 0),
        seed,
        generator,
        regions: vec![
            FigureRegion { name: "pond (inside circle)", window: pond_window, spectrum: pond_spectrum },
            FigureRegion { name: "field (outside circle)", window: field_window, spectrum: field_spectrum },
        ],
    }
}

/// Figure 4 — point-oriented: nine points on a radius-500 ring at angles
/// `2πi/9` plus the origin. Gaussian `(1.0, 50)` for `i = 1..3`,
/// Gaussian `(1.5, 75)` for `i = 4..6`, Gaussian `(2.0, 100)` for
/// `i = 7..9`, Exponential `(0.5, 100)` at the origin; `T = 100`.
pub fn fig4(scale: f64, trunc_eps: f64, seed: u64) -> Figure {
    let n = even(1536.0 * scale);
    let ring = 500.0 * scale;
    let t = (100.0 * scale).max(2.0);
    let cl = |c: f64| (c * scale).max(3.0);
    let group = |i: usize| -> SpectrumModel {
        match i {
            1..=3 => SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, cl(50.0))),
            4..=6 => SpectrumModel::gaussian(SurfaceParams::isotropic(1.5, cl(75.0))),
            7..=9 => SpectrumModel::gaussian(SurfaceParams::isotropic(2.0, cl(100.0))),
            _ => unreachable!(),
        }
    };
    let mut points = Vec::with_capacity(10);
    for i in 1..=9usize {
        let th = core::f64::consts::TAU * i as f64 / 9.0;
        points.push(RepresentativePoint { x: ring * th.cos(), y: ring * th.sin(), spectrum: group(i) });
    }
    let centre_spectrum = SpectrumModel::exponential(SurfaceParams::isotropic(0.5, cl(100.0)));
    points.push(RepresentativePoint { x: 0.0, y: 0.0, spectrum: centre_spectrum });
    let layout = PointLayout::new(points.clone(), t);
    let boxed: Box<dyn WeightMap> = Box::new(layout);
    let generator = InhomogeneousGenerator::new_truncated(boxed, sizing(), trunc_eps);

    let half = (n / 2) as i64;
    let origin = (-half, -half);
    // Validation windows: a centred square for the origin cell, plus a
    // square at one representative of each ring group, shrunk to stay
    // inside the Voronoi cell.
    let side = ((ring * 0.4) as usize).max(8);
    let to_window = |px: f64, py: f64| -> (usize, usize, usize, usize) {
        let x0 = (px as i64 + half) as usize;
        let y0 = (py as i64 + half) as usize;
        (x0.saturating_sub(side / 2), y0.saturating_sub(side / 2), side, side)
    };
    let rep = |i: usize| {
        let th = core::f64::consts::TAU * i as f64 / 9.0;
        // Sample slightly outside the ring, away from the centre cell.
        (1.15 * ring * th.cos(), 1.15 * ring * th.sin())
    };
    let (x2, y2) = rep(2);
    let (x5, y5) = rep(5);
    let (x8, y8) = rep(8);
    let regions = vec![
        FigureRegion { name: "centre cell (exponential)", window: to_window(0.0, 0.0), spectrum: centre_spectrum },
        FigureRegion { name: "ring cell i=2 (h=1.0)", window: to_window(x2, y2), spectrum: group(2) },
        FigureRegion { name: "ring cell i=5 (h=1.5)", window: to_window(x5, y5), spectrum: group(5) },
        FigureRegion { name: "ring cell i=8 (h=2.0)", window: to_window(x8, y8), spectrum: group(8) },
    ];
    Figure {
        id: "fig4",
        title: format!("Figure 4: point-oriented ring of nine + centre ({n}x{n}, R={ring}, T={t})"),
        nx: n,
        ny: n,
        origin,
        seed,
        generator,
        regions,
    }
}

/// All four figures at the given scale.
pub fn all_figures(scale: f64, trunc_eps: f64, seed: u64) -> Vec<Figure> {
    vec![
        fig1(scale, trunc_eps, seed),
        fig2(scale, trunc_eps, seed),
        fig3(scale, trunc_eps, seed),
        fig4(scale, trunc_eps, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_construct_at_small_scale() {
        for f in all_figures(0.125, 0.05, 1) {
            assert!(f.nx >= 64, "{}: nx = {}", f.id, f.nx);
            assert_eq!(f.nx % 2, 0);
            assert!(!f.regions.is_empty());
            for r in &f.regions {
                let (x0, y0, w, h) = r.window;
                assert!(w > 0 && h > 0, "{}: empty window {:?}", f.id, r.window);
                assert!(x0 + w <= f.nx && y0 + h <= f.ny, "{}: window out of bounds", f.id);
            }
        }
    }

    #[test]
    fn fig1_small_scale_validates() {
        let f = fig1(0.125, 0.05, 7);
        let surface = f.generate();
        assert_eq!(surface.shape(), (f.nx, f.ny));
        let reports = f.validate(&surface);
        assert_eq!(reports.len(), 4);
        // The quadrant ordering of roughness must match the paper:
        // q3 (h=2.0) > q2 = q4 (1.5) > q1 (1.0).
        let h: Vec<f64> = reports.iter().map(|(_, r)| r.h_measured).collect();
        assert!(h[2] > h[1] && h[2] > h[3] && h[1] > h[0] && h[3] > h[0], "ĥ = {h:?}");
        for (name, r) in &reports {
            assert!(r.h_rel_error() < 0.5, "{name}: ĥ = {}, target {}", r.h_measured, r.target.h);
        }
    }

    #[test]
    fn fig3_small_scale_pond_is_flat() {
        let f = fig3(0.125, 0.05, 3);
        let surface = f.generate();
        let reports = f.validate(&surface);
        let pond = &reports[0].1;
        let field = &reports[1].1;
        assert!(pond.h_measured < 0.45, "pond ĥ = {}", pond.h_measured);
        assert!(field.h_measured > 0.5, "field ĥ = {}", field.h_measured);
        assert!(field.h_measured > 2.0 * pond.h_measured);
    }
}
