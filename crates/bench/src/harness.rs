//! In-repo timing harness — the workspace's replacement for criterion.
//!
//! Each bench binary builds a [`Harness`], registers closures with
//! [`Harness::bench`], and calls [`Harness::finish`], which prints a
//! human-readable table and writes `BENCH_<suite>.json` (machine-readable,
//! one record per benchmark) so successive PRs can diff performance
//! baselines without a plotting stack.
//!
//! Methodology: every benchmark runs `warmup` untimed iterations, then
//! `reps` timed iterations; the summary records min / median / mean /
//! sample standard deviation over the timed reps. Defaults (3 warmup,
//! 10 reps) are tuned for the paper-scale workloads; override globally
//! with `RRS_BENCH_WARMUP` / `RRS_BENCH_REPS` or per-suite via
//! [`Harness::with_reps`].

use std::hint::black_box;
use std::time::Instant;

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark id, e.g. `fft_1d/radix2/1024`.
    pub name: String,
    /// Timed iterations contributing to the statistics.
    pub reps: u64,
    /// Fastest rep.
    pub min_ns: f64,
    /// Median rep (midpoint of the two central reps for even counts).
    pub median_ns: f64,
    /// Mean over all reps.
    pub mean_ns: f64,
    /// Sample standard deviation (0 for a single rep).
    pub stddev_ns: f64,
    /// Optional elements-per-iteration for throughput reporting.
    pub elements: Option<u64>,
}

impl BenchRecord {
    /// Million elements per second at the median rep, when known.
    pub fn throughput_melems(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 * 1e3 / self.median_ns)
    }
}

/// Collects benchmark records for one suite and serialises them on
/// [`finish`](Harness::finish).
pub struct Harness {
    suite: String,
    warmup: u64,
    reps: u64,
    records: Vec<BenchRecord>,
    sections: Vec<(String, String)>,
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

impl Harness {
    /// Creates a harness for `suite`; output lands in `BENCH_<suite>.json`.
    pub fn new(suite: &str) -> Self {
        Self {
            suite: suite.to_string(),
            warmup: env_u64("RRS_BENCH_WARMUP").unwrap_or(3),
            reps: env_u64("RRS_BENCH_REPS").unwrap_or(10).max(1),
            records: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Overrides the timed-rep count for subsequently registered benches.
    pub fn with_reps(mut self, reps: u64) -> Self {
        if env_u64("RRS_BENCH_REPS").is_none() {
            self.reps = reps.max(1);
        }
        self
    }

    /// Times `f`, recording the suite-configured warmup + reps.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        self.bench_inner(name, None, f);
    }

    /// Like [`bench`](Harness::bench) but tags the record with an
    /// elements-per-iteration count so the report includes throughput.
    pub fn bench_elems<T>(&mut self, name: &str, elements: u64, f: impl FnMut() -> T) {
        self.bench_inner(name, Some(elements), f);
    }

    fn bench_inner<T>(&mut self, name: &str, elements: Option<u64>, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.reps as usize);
        for _ in 0..self.reps {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = samples.len();
        let median = if n % 2 == 1 {
            samples[n / 2]
        } else {
            0.5 * (samples[n / 2 - 1] + samples[n / 2])
        };
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let record = BenchRecord {
            name: name.to_string(),
            reps: self.reps,
            min_ns: samples[0],
            median_ns: median,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            elements,
        };
        let tp = record
            .throughput_melems()
            .map(|v| format!(" {v:>10.2} Melem/s"))
            .unwrap_or_default();
        println!(
            "{:<44} median {:>12} min {:>12} ± {:>10}{tp}",
            record.name,
            fmt_ns(record.median_ns),
            fmt_ns(record.min_ns),
            fmt_ns(record.stddev_ns),
        );
        self.records.push(record);
    }

    /// The most recently recorded benchmark, if any — lets a suite derive
    /// summary sections (speedups, dispatch checks) from its own records
    /// before [`finish`](Harness::finish) consumes them.
    pub fn last_record(&self) -> Option<&BenchRecord> {
        self.records.last()
    }

    /// Attaches an extra top-level JSON section to the suite report —
    /// `value` must already be rendered JSON (object, array or scalar).
    /// Used by the `--obs` bench modes to embed the stage-breakdown
    /// [`rrs_obs::report::ObsReport`] next to the timing records.
    pub fn attach_section(&mut self, key: &str, value: String) {
        self.sections.push((key.to_string(), value));
    }

    /// Writes `BENCH_<suite>.json` into the current directory (or
    /// `RRS_BENCH_DIR` when set) and returns the records.
    pub fn finish(self) -> std::io::Result<Vec<BenchRecord>> {
        let dir = std::env::var("RRS_BENCH_DIR").unwrap_or_else(|_| ".".into());
        let path = format!("{dir}/BENCH_{}.json", self.suite);
        std::fs::write(
            &path,
            to_json(&self.suite, self.warmup, &self.records, &self.sections),
        )?;
        println!("\nwrote {path}");
        Ok(self.records)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Minimal JSON emission: names are workspace-controlled identifiers
/// (`group/label/param`), so escaping backslashes and quotes suffices.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(
    suite: &str,
    warmup: u64,
    records: &[BenchRecord],
    sections: &[(String, String)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", json_escape(suite)));
    out.push_str(&format!("  \"warmup\": {warmup},\n"));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let elems = r.elements.map(|e| e.to_string()).unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"reps\": {}, \"min_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"mean_ns\": {:.1}, \"stddev_ns\": {:.1}, \"elements\": {}}}{}\n",
            json_escape(&r.name),
            r.reps,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.stddev_ns,
            elems,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    if sections.is_empty() {
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("  ],\n");
        for (i, (key, value)) in sections.iter().enumerate() {
            let sep = if i + 1 == sections.len() { "" } else { "," };
            out.push_str(&format!("  \"{}\": {value}{sep}\n", json_escape(key)));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_are_consistent() {
        let mut h = Harness::new("selftest").with_reps(5);
        h.bench("noop", || 1 + 1);
        let r = &h.records[0];
        assert_eq!(r.reps, 5);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.mean_ns + r.stddev_ns * 3.0 + 1.0);
        assert!(r.stddev_ns >= 0.0);
    }

    #[test]
    fn json_shape_is_parseable_by_eye_and_machine() {
        let records = vec![BenchRecord {
            name: "g/one\"quoted\"".into(),
            reps: 3,
            min_ns: 1.0,
            median_ns: 2.0,
            mean_ns: 2.5,
            stddev_ns: 0.5,
            elements: Some(64),
        }];
        let j = to_json("unit", 2, &records, &[]);
        assert!(j.contains("\"suite\": \"unit\""));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"elements\": 64"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());

        // Attached sections land as additional top-level keys and keep
        // the document balanced.
        let sections = vec![("obs".to_string(), "{\"counters\": {}}".to_string())];
        let j = to_json("unit", 2, &records, &sections);
        assert!(j.contains("\"obs\": {\"counters\": {}}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn throughput_uses_median() {
        let r = BenchRecord {
            name: "t".into(),
            reps: 1,
            min_ns: 500.0,
            median_ns: 1000.0,
            mean_ns: 1000.0,
            stddev_ns: 0.0,
            elements: Some(1000),
        };
        // 1000 elements / 1000 ns = 1e9 elem/s = 1000 Melem/s.
        assert!((r.throughput_melems().unwrap() - 1000.0).abs() < 1e-9);
    }
}
