//! Radio propagation over rough terrain profiles.
//!
//! The paper motivates inhomogeneous surface generation with wireless
//! sensor networks: nodes scattered over deserts, fields and water whose
//! links run *along* the rough ground. This crate is the downstream
//! consumer that closes that loop — it takes 1-D profiles cut from
//! generated surfaces (`rrs_grid::extract_profile`) and evaluates link
//! budgets over them:
//!
//! * [`freespace`] — free-space and plane-earth reference losses;
//! * [`diffraction`] — single knife-edge loss (ITU-R P.526 approximation)
//!   and the Epstein–Peterson / Deygout multiple-edge constructions over a
//!   terrain profile;
//! * [`hata`] — the Hata empirical model (the paper's ref [7]), kept as
//!   the urban-area contrast the introduction argues is inapplicable to
//!   sensor fields;
//! * [`link`] — distance sweeps of total loss along a profile.
//!
//! This is an *application substrate*, not a paper result: the paper
//! itself stops at surface generation.

#![warn(missing_docs)]

pub mod diffraction;
pub mod freespace;
pub mod hata;
pub mod link;

pub use diffraction::{deygout_loss_db, epstein_peterson_loss_db, knife_edge_loss_db};
pub use freespace::{free_space_loss_db, plane_earth_loss_db};
pub use hata::{hata_loss_db, HataEnvironment};
pub use link::{link_budget_sweep, LinkSample};

/// Speed of light in vacuum (m/s).
pub const C0: f64 = 299_792_458.0;

/// Wavelength (m) at frequency `f_hz`.
#[inline]
pub fn wavelength(f_hz: f64) -> f64 {
    assert!(f_hz > 0.0, "frequency must be positive");
    C0 / f_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_anchors() {
        assert!((wavelength(300e6) - 0.999_308_193_3).abs() < 1e-6);
        assert!((wavelength(2.4e9) - 0.1249).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        wavelength(0.0);
    }
}
