//! The Hata empirical propagation model (Hata 1980 — the paper's ref [7]).
//!
//! The paper's introduction cites Hata's urban formula as the established
//! tool for cellular planning and argues it does not transfer to sensor
//! networks on natural terrain; we implement it as the contrast baseline
//! for the link-budget examples.

/// Environment class of the Hata model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HataEnvironment {
    /// Small/medium city (the base formula).
    Urban,
    /// Suburban correction.
    Suburban,
    /// Open/rural correction.
    Open,
}

/// Median path loss (dB) by Hata's formulas.
///
/// * `f_mhz` — carrier frequency, valid 150–1500 MHz;
/// * `hb_m` — base-station antenna height, 30–200 m;
/// * `hm_m` — mobile antenna height, 1–10 m;
/// * `d_km` — distance, 1–20 km.
///
/// # Panics
/// Panics outside the model's published validity ranges.
pub fn hata_loss_db(env: HataEnvironment, f_mhz: f64, hb_m: f64, hm_m: f64, d_km: f64) -> f64 {
    assert!((150.0..=1500.0).contains(&f_mhz), "Hata valid for 150-1500 MHz, got {f_mhz}");
    assert!((30.0..=200.0).contains(&hb_m), "Hata valid for hb 30-200 m, got {hb_m}");
    assert!((1.0..=10.0).contains(&hm_m), "Hata valid for hm 1-10 m, got {hm_m}");
    assert!((1.0..=20.0).contains(&d_km), "Hata valid for 1-20 km, got {d_km}");
    let lf = f_mhz.log10();
    // Mobile-antenna correction for a small/medium city.
    let a_hm = (1.1 * lf - 0.7) * hm_m - (1.56 * lf - 0.8);
    let urban = 69.55 + 26.16 * lf - 13.82 * hb_m.log10() - a_hm
        + (44.9 - 6.55 * hb_m.log10()) * d_km.log10();
    match env {
        HataEnvironment::Urban => urban,
        HataEnvironment::Suburban => {
            urban - 2.0 * (f_mhz / 28.0).log10().powi(2) - 5.4
        }
        HataEnvironment::Open => {
            urban - 4.78 * lf * lf + 18.33 * lf - 40.94
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urban_reference_value() {
        // Classic worked example: f=900 MHz, hb=30 m, hm=1.5 m, d=1 km.
        let l = hata_loss_db(HataEnvironment::Urban, 900.0, 30.0, 1.5, 1.0);
        // Published value ≈ 126.4 dB.
        assert!((l - 126.4).abs() < 1.0, "L = {l}");
    }

    #[test]
    fn environment_ordering() {
        // Urban > suburban > open, always.
        let args = (900.0, 50.0, 1.5, 5.0);
        let u = hata_loss_db(HataEnvironment::Urban, args.0, args.1, args.2, args.3);
        let s = hata_loss_db(HataEnvironment::Suburban, args.0, args.1, args.2, args.3);
        let o = hata_loss_db(HataEnvironment::Open, args.0, args.1, args.2, args.3);
        assert!(u > s && s > o, "u={u} s={s} o={o}");
    }

    #[test]
    fn loss_grows_with_distance_and_frequency() {
        let near = hata_loss_db(HataEnvironment::Urban, 900.0, 30.0, 1.5, 2.0);
        let far = hata_loss_db(HataEnvironment::Urban, 900.0, 30.0, 1.5, 10.0);
        assert!(far > near);
        let lo_f = hata_loss_db(HataEnvironment::Urban, 450.0, 30.0, 1.5, 5.0);
        let hi_f = hata_loss_db(HataEnvironment::Urban, 1400.0, 30.0, 1.5, 5.0);
        assert!(hi_f > lo_f);
    }

    #[test]
    fn taller_base_station_reduces_loss() {
        let low = hata_loss_db(HataEnvironment::Urban, 900.0, 30.0, 1.5, 5.0);
        let high = hata_loss_db(HataEnvironment::Urban, 900.0, 150.0, 1.5, 5.0);
        assert!(high < low);
    }

    #[test]
    #[should_panic(expected = "150-1500 MHz")]
    fn out_of_band_rejected() {
        hata_loss_db(HataEnvironment::Urban, 2400.0, 30.0, 1.5, 5.0);
    }

    #[test]
    #[should_panic(expected = "1-20 km")]
    fn out_of_range_distance_rejected() {
        hata_loss_db(HataEnvironment::Urban, 900.0, 30.0, 1.5, 0.1);
    }
}
