//! Knife-edge diffraction over terrain profiles.
//!
//! Rough terrain between two low antennas attenuates mainly by
//! diffraction over the intervening crests. The standard engineering
//! treatment models each crest as a knife edge with Fresnel parameter
//!
//! ```text
//! ν = h · sqrt( 2(d1+d2) / (λ·d1·d2) )
//! ```
//!
//! (`h` the obstruction height above the line of sight, `d1`, `d2` the
//! distances to the terminals) and loss `J(ν)` from the ITU-R P.526
//! approximation. Multiple crests combine by the Epstein–Peterson
//! (neighbour-to-neighbour) or Deygout (main-edge recursive)
//! constructions.

use rrs_grid::Profile;

/// Single knife-edge loss `J(ν)` in dB (ITU-R P.526-15 eqn 31):
/// `J(ν) = 6.9 + 20·log10( sqrt((ν−0.1)² + 1) + ν − 0.1 )` for
/// `ν > −0.78`, zero below.
pub fn knife_edge_loss_db(nu: f64) -> f64 {
    if nu <= -0.78 {
        return 0.0;
    }
    let t = nu - 0.1;
    6.9 + 20.0 * ((t * t + 1.0).sqrt() + t).log10()
}

/// Fresnel diffraction parameter for an obstruction `h_m` metres above
/// the direct ray, `d1_m` from the transmitter, `d2_m` from the receiver.
///
/// # Panics
/// Panics unless the distances and wavelength are positive.
pub fn fresnel_nu(h_m: f64, d1_m: f64, d2_m: f64, lambda_m: f64) -> f64 {
    assert!(d1_m > 0.0 && d2_m > 0.0, "segment lengths must be positive");
    assert!(lambda_m > 0.0, "wavelength must be positive");
    h_m * (2.0 * (d1_m + d2_m) / (lambda_m * d1_m * d2_m)).sqrt()
}

/// Height of the profile above the straight line joining the terminal
/// antennas, at sample `i`. Terminals sit at the profile ends, raised by
/// `ht` and `hr`.
fn clearance(profile: &Profile, ht: f64, hr: f64, i: usize) -> f64 {
    let n = profile.heights.len();
    let a = profile.heights[0] + ht;
    let b = profile.heights[n - 1] + hr;
    let t = i as f64 / (n - 1) as f64;
    let los = a + t * (b - a);
    profile.heights[i] - los
}

/// Epstein–Peterson multiple-edge loss (dB) over a terrain profile with
/// terminal antenna heights `ht_m`, `hr_m` and wavelength `lambda_m`.
///
/// Local maxima of the clearance that protrude above the line of sight of
/// their neighbouring edges are treated as knife edges; their `J(ν)`
/// losses add.
///
/// # Panics
/// Panics on profiles with fewer than 3 samples.
pub fn epstein_peterson_loss_db(profile: &Profile, ht_m: f64, hr_m: f64, lambda_m: f64) -> f64 {
    let edges = significant_edges(profile, ht_m, hr_m);
    if edges.is_empty() {
        return 0.0;
    }
    // Endpoints (terminal indices) bracket the edge list.
    let n = profile.heights.len();
    let mut nodes = Vec::with_capacity(edges.len() + 2);
    nodes.push(0usize);
    nodes.extend(edges.iter().copied());
    nodes.push(n - 1);
    let node_height = |i: usize| -> f64 {
        if i == 0 {
            profile.heights[0] + ht_m
        } else if i == n - 1 {
            profile.heights[n - 1] + hr_m
        } else {
            profile.heights[i]
        }
    };
    let mut total = 0.0;
    for w in nodes.windows(3) {
        let (l, m, r) = (w[0], w[1], w[2]);
        let d1 = profile.distance(m) - profile.distance(l);
        let d2 = profile.distance(r) - profile.distance(m);
        if d1 <= 0.0 || d2 <= 0.0 {
            continue;
        }
        // Height of edge m above the sub-path line l→r.
        let t = d1 / (d1 + d2);
        let los = node_height(l) + t * (node_height(r) - node_height(l));
        let h = node_height(m) - los;
        let nu = fresnel_nu(h, d1, d2, lambda_m);
        // Only edges that actually obstruct the sub-path count; grazing
        // (ν ≤ 0) contributions are dropped so open terrain costs nothing.
        if nu > 0.0 {
            total += knife_edge_loss_db(nu);
        }
    }
    total
}

/// Deygout multiple-edge loss (dB): pick the edge with the largest ν as
/// the main edge, add its loss, then recurse on the two sub-paths. Depth
/// is capped at 3 levels (the standard engineering practice — deeper
/// recursion overestimates).
pub fn deygout_loss_db(profile: &Profile, ht_m: f64, hr_m: f64, lambda_m: f64) -> f64 {
    let n = profile.heights.len();
    assert!(n >= 3, "profile too short for diffraction analysis");
    deygout_recurse(profile, ht_m, hr_m, lambda_m, 0, n - 1, 0)
}

fn deygout_recurse(
    profile: &Profile,
    ht_m: f64,
    hr_m: f64,
    lambda_m: f64,
    l: usize,
    r: usize,
    depth: usize,
) -> f64 {
    if depth >= 3 || r - l < 2 {
        return 0.0;
    }
    let n = profile.heights.len();
    let node_height = |i: usize| -> f64 {
        if i == 0 {
            profile.heights[0] + ht_m
        } else if i == n - 1 {
            profile.heights[n - 1] + hr_m
        } else {
            profile.heights[i]
        }
    };
    // Find the edge with maximum ν within (l, r).
    let mut best: Option<(usize, f64)> = None;
    for m in l + 1..r {
        let d1 = profile.distance(m) - profile.distance(l);
        let d2 = profile.distance(r) - profile.distance(m);
        let t = d1 / (d1 + d2);
        let los = node_height(l) + t * (node_height(r) - node_height(l));
        let h = node_height(m) - los;
        let nu = fresnel_nu(h, d1, d2, lambda_m);
        if best.is_none_or(|(_, bn)| nu > bn) {
            best = Some((m, nu));
        }
    }
    let Some((m, nu)) = best else { return 0.0 };
    // A main edge below the line of sight (ν ≤ 0) means the sub-path is
    // clear; grazing corrections are not accumulated.
    if nu <= 0.0 {
        return 0.0;
    }
    let main_loss = knife_edge_loss_db(nu);
    main_loss
        + deygout_recurse(profile, ht_m, hr_m, lambda_m, l, m, depth + 1)
        + deygout_recurse(profile, ht_m, hr_m, lambda_m, m, r, depth + 1)
}

/// Indices of profile samples that are local clearance maxima protruding
/// above the terminal line of sight.
fn significant_edges(profile: &Profile, ht_m: f64, hr_m: f64) -> Vec<usize> {
    let n = profile.heights.len();
    assert!(n >= 3, "profile too short for diffraction analysis");
    let mut edges = Vec::new();
    for i in 1..n - 1 {
        let c = clearance(profile, ht_m, hr_m, i);
        if c > 0.0
            && clearance(profile, ht_m, hr_m, i - 1) <= c
            && clearance(profile, ht_m, hr_m, i + 1) < c
        {
            edges.push(i);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knife_edge_anchors() {
        // Grazing incidence ν = 0: J = 6.02 dB (6.9 + 20·log10(sqrt(1.01)−0.1)).
        let j0 = knife_edge_loss_db(0.0);
        assert!((j0 - 6.02).abs() < 0.1, "J(0) = {j0}");
        // Deep shadow grows ~ 20·log10(ν) + 13: J(10) ≈ 32.9 dB.
        let j10 = knife_edge_loss_db(10.0);
        assert!((j10 - 32.9).abs() < 0.5, "J(10) = {j10}");
        // Clear path: no loss.
        assert_eq!(knife_edge_loss_db(-1.0), 0.0);
        // Monotone increasing.
        assert!(knife_edge_loss_db(2.0) > knife_edge_loss_db(1.0));
    }

    #[test]
    fn fresnel_nu_scales() {
        let nu = fresnel_nu(10.0, 1000.0, 1000.0, 0.3);
        // ν = 10·sqrt(2·2000/(0.3·1e6)) = 10·sqrt(1/75) ≈ 1.1547
        assert!((nu - 1.1547).abs() < 1e-3, "ν = {nu}");
        // Negative obstruction height gives negative ν.
        assert!(fresnel_nu(-5.0, 100.0, 100.0, 0.3) < 0.0);
    }

    fn flat_profile(n: usize, spacing: f64) -> Profile {
        Profile { spacing, heights: vec![0.0; n] }
    }

    #[test]
    fn flat_ground_has_no_diffraction_loss() {
        let p = flat_profile(101, 10.0);
        assert_eq!(epstein_peterson_loss_db(&p, 5.0, 5.0, 0.3), 0.0);
        assert_eq!(deygout_loss_db(&p, 5.0, 5.0, 0.3), 0.0);
    }

    #[test]
    fn single_hill_matches_single_knife_edge() {
        // One triangular hill in the middle; both constructions must give
        // exactly the single-edge loss.
        let n = 101;
        let spacing = 10.0;
        let mut heights = vec![0.0; n];
        for (i, h) in heights.iter_mut().enumerate() {
            let x = i as f64;
            *h = (20.0 - (x - 50.0).abs()).max(0.0); // peak 20 m at centre
        }
        let p = Profile { spacing, heights };
        let lambda = 0.3;
        let (ht, hr) = (2.0, 2.0);
        let d1 = 50.0 * spacing;
        let d2 = 50.0 * spacing;
        let h_los = 20.0 - 2.0; // peak minus the flat antenna line
        let expect = knife_edge_loss_db(fresnel_nu(h_los, d1, d2, lambda));
        let ep = epstein_peterson_loss_db(&p, ht, hr, lambda);
        let dg = deygout_loss_db(&p, ht, hr, lambda);
        assert!((ep - expect).abs() < 0.5, "EP {ep} vs {expect}");
        assert!((dg - expect).abs() < 0.5, "Deygout {dg} vs {expect}");
        assert!(expect > 10.0, "a 18 m obstruction must matter");
    }

    #[test]
    fn two_hills_lose_more_than_one() {
        let n = 101;
        let spacing = 10.0;
        let hill = |centre: f64, i: usize| (15.0 - (i as f64 - centre).abs()).max(0.0);
        let one = Profile {
            spacing,
            heights: (0..n).map(|i| hill(50.0, i)).collect(),
        };
        let two = Profile {
            spacing,
            heights: (0..n).map(|i| hill(33.0, i) + hill(66.0, i)).collect(),
        };
        let lambda = 0.3;
        assert!(
            epstein_peterson_loss_db(&two, 2.0, 2.0, lambda)
                > epstein_peterson_loss_db(&one, 2.0, 2.0, lambda)
        );
        assert!(deygout_loss_db(&two, 2.0, 2.0, lambda) > deygout_loss_db(&one, 2.0, 2.0, lambda));
    }

    #[test]
    fn raising_antennas_reduces_loss() {
        let n = 81;
        let heights: Vec<f64> =
            (0..n).map(|i| (10.0 - (i as f64 - 40.0).abs() * 0.5).max(0.0)).collect();
        let p = Profile { spacing: 25.0, heights };
        let low = deygout_loss_db(&p, 1.0, 1.0, 0.125);
        let high = deygout_loss_db(&p, 15.0, 15.0, 0.125);
        assert!(high < low, "high antennas {high} vs low {low}");
    }

    #[test]
    fn shorter_wavelength_increases_loss() {
        let n = 81;
        let heights: Vec<f64> =
            (0..n).map(|i| (8.0 - (i as f64 - 40.0).abs() * 0.4).max(0.0)).collect();
        let p = Profile { spacing: 25.0, heights };
        let uhf = epstein_peterson_loss_db(&p, 2.0, 2.0, 0.333); // 900 MHz
        let wifi = epstein_peterson_loss_db(&p, 2.0, 2.0, 0.125); // 2.4 GHz
        assert!(wifi > uhf);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_profile_rejected() {
        deygout_loss_db(&flat_profile(2, 1.0), 1.0, 1.0, 0.3);
    }
}
