//! Link-budget sweeps along terrain profiles.
//!
//! The quantity the paper's follow-on work studies (refs [12–13]) is how
//! received power decays with distance *along* a rough surface, and how
//! that decay changes when the surface statistics change from place to
//! place. [`link_budget_sweep`] walks a profile, truncating it at each
//! candidate receiver position, and records free-space plus diffraction
//! loss.

use crate::diffraction::deygout_loss_db;
use crate::freespace::free_space_loss_db;
use rrs_grid::Profile;

/// One point of a distance sweep.
#[derive(Clone, Copy, Debug)]
pub struct LinkSample {
    /// Transmitter→receiver ground distance (same units as the profile
    /// spacing, interpreted as metres).
    pub distance_m: f64,
    /// Free-space component (dB).
    pub free_space_db: f64,
    /// Terrain diffraction component (dB).
    pub diffraction_db: f64,
}

impl LinkSample {
    /// Total path loss (dB).
    pub fn total_db(&self) -> f64 {
        self.free_space_db + self.diffraction_db
    }
}

/// Sweeps the receiver along `profile` (transmitter fixed at sample 0)
/// and evaluates the loss at every `step`-th sample from `start`.
///
/// * `ht_m`, `hr_m` — antenna heights above local ground;
/// * `f_hz` — carrier frequency.
///
/// # Panics
/// Panics if `step == 0`, `start < 2`, or the profile is shorter than
/// `start + 1` samples.
pub fn link_budget_sweep(
    profile: &Profile,
    ht_m: f64,
    hr_m: f64,
    f_hz: f64,
    start: usize,
    step: usize,
) -> Vec<LinkSample> {
    assert!(step > 0, "step must be positive");
    assert!(start >= 2, "start must leave at least one interior sample");
    assert!(profile.heights.len() > start, "profile shorter than start");
    let lambda = crate::wavelength(f_hz);
    let mut out = Vec::new();
    let mut i = start;
    while i < profile.heights.len() {
        let sub = Profile { spacing: profile.spacing, heights: profile.heights[..=i].to_vec() };
        let d = sub.length().max(profile.spacing);
        out.push(LinkSample {
            distance_m: d,
            free_space_db: free_space_loss_db(d, f_hz),
            diffraction_db: deygout_loss_db(&sub, ht_m, hr_m, lambda),
        });
        i += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile_reduces_to_free_space() {
        let p = Profile { spacing: 10.0, heights: vec![0.0; 200] };
        let sweep = link_budget_sweep(&p, 3.0, 3.0, 900e6, 10, 20);
        assert!(!sweep.is_empty());
        for s in &sweep {
            assert_eq!(s.diffraction_db, 0.0, "flat ground diffracts nothing");
            assert!((s.total_db() - s.free_space_db).abs() < 1e-12);
        }
        // Loss grows with distance.
        for w in sweep.windows(2) {
            assert!(w[1].total_db() > w[0].total_db());
        }
    }

    #[test]
    fn rough_profile_loses_more_than_flat() {
        let flat = Profile { spacing: 10.0, heights: vec![0.0; 150] };
        let rough = Profile {
            spacing: 10.0,
            heights: (0..150).map(|i| 4.0 * ((i as f64) * 0.7).sin().abs()).collect(),
        };
        let fs = link_budget_sweep(&flat, 2.0, 2.0, 900e6, 20, 40);
        let rs = link_budget_sweep(&rough, 2.0, 2.0, 900e6, 20, 40);
        let f_total: f64 = fs.iter().map(|s| s.total_db()).sum();
        let r_total: f64 = rs.iter().map(|s| s.total_db()).sum();
        assert!(r_total > f_total, "rough {r_total} vs flat {f_total}");
    }

    #[test]
    fn sweep_distances_match_step() {
        let p = Profile { spacing: 5.0, heights: vec![0.0; 101] };
        let sweep = link_budget_sweep(&p, 2.0, 2.0, 2.4e9, 10, 10);
        assert_eq!(sweep.len(), 10);
        assert!((sweep[0].distance_m - 50.0).abs() < 1e-12);
        assert!((sweep[1].distance_m - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let p = Profile { spacing: 1.0, heights: vec![0.0; 10] };
        link_budget_sweep(&p, 1.0, 1.0, 1e9, 2, 0);
    }
}
