//! Reference path-loss models.

use crate::wavelength;

/// Free-space path loss in dB at distance `d_m` metres and frequency
/// `f_hz`: `20·log10(4πd/λ)`.
///
/// # Panics
/// Panics unless `d_m > 0` and `f_hz > 0`.
pub fn free_space_loss_db(d_m: f64, f_hz: f64) -> f64 {
    assert!(d_m > 0.0, "distance must be positive");
    let lambda = wavelength(f_hz);
    20.0 * (4.0 * core::f64::consts::PI * d_m / lambda).log10()
}

/// Plane-earth (two-ray) loss in dB for antenna heights `ht_m`, `hr_m`
/// over a flat reflecting ground, in the far-field regime
/// `d ≫ √(ht·hr)`: `40·log10(d) − 20·log10(ht·hr)`.
///
/// # Panics
/// Panics unless all arguments are positive.
pub fn plane_earth_loss_db(d_m: f64, ht_m: f64, hr_m: f64) -> f64 {
    assert!(d_m > 0.0 && ht_m > 0.0 && hr_m > 0.0, "arguments must be positive");
    40.0 * d_m.log10() - 20.0 * (ht_m * hr_m).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_reference_value() {
        // 1 km at 900 MHz: 91.53 dB (standard textbook value).
        let l = free_space_loss_db(1000.0, 900e6);
        assert!((l - 91.53).abs() < 0.05, "FSPL = {l}");
    }

    #[test]
    fn fspl_slope_is_20db_per_decade() {
        let l1 = free_space_loss_db(100.0, 2.4e9);
        let l2 = free_space_loss_db(1000.0, 2.4e9);
        assert!((l2 - l1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fspl_increases_with_frequency() {
        assert!(free_space_loss_db(500.0, 2.4e9) > free_space_loss_db(500.0, 900e6));
    }

    #[test]
    fn plane_earth_slope_is_40db_per_decade() {
        let l1 = plane_earth_loss_db(1000.0, 10.0, 2.0);
        let l2 = plane_earth_loss_db(10_000.0, 10.0, 2.0);
        assert!((l2 - l1 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn plane_earth_is_frequency_independent_and_height_sensitive() {
        let low = plane_earth_loss_db(5000.0, 2.0, 2.0);
        let high = plane_earth_loss_db(5000.0, 20.0, 2.0);
        assert!(high < low, "taller mast reduces loss");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_rejected() {
        free_space_loss_db(0.0, 1e9);
    }
}
