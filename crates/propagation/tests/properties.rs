//! Property-based tests for the propagation models.

use rrs_check::any;
use rrs_grid::Profile;
use rrs_propagation::diffraction::fresnel_nu;
use rrs_propagation::{
    deygout_loss_db, epstein_peterson_loss_db, free_space_loss_db, hata_loss_db,
    knife_edge_loss_db, plane_earth_loss_db, HataEnvironment,
};

rrs_check::props! {
    #![cases = 256]

    fn fspl_is_monotone_in_distance_and_frequency(
        d in 1.0f64..1e5, f in 1e6f64..1e11, kd in 1.01f64..10.0, kf in 1.01f64..10.0,
    ) {
        assert!(free_space_loss_db(d * kd, f) > free_space_loss_db(d, f));
        assert!(free_space_loss_db(d, f * kf) > free_space_loss_db(d, f));
    }

    fn plane_earth_beats_free_space_far_out(ht in 1.0f64..30.0, hr in 1.0f64..30.0) {
        // Beyond the crossover the 40 dB/decade plane-earth law always
        // exceeds free space at 900 MHz.
        let d = 1e5;
        assert!(plane_earth_loss_db(d, ht, hr) > free_space_loss_db(d, 900e6));
    }

    fn knife_edge_loss_is_monotone_and_clamped(nu in -3.0f64..10.0, dnu in 0.001f64..2.0) {
        let a = knife_edge_loss_db(nu);
        let b = knife_edge_loss_db(nu + dnu);
        assert!(b >= a, "J must be non-decreasing: J({nu})={a}, J({})={b}", nu + dnu);
        assert!(a >= 0.0);
    }

    fn fresnel_nu_is_linear_in_height(h in -50.0f64..50.0, d1 in 1.0f64..1e4, d2 in 1.0f64..1e4, lambda in 0.01f64..1.0) {
        let n1 = fresnel_nu(h, d1, d2, lambda);
        let n2 = fresnel_nu(2.0 * h, d1, d2, lambda);
        assert!((n2 - 2.0 * n1).abs() < 1e-9 * n1.abs().max(1.0));
    }

    fn diffraction_losses_are_nonnegative(seed in any::<u64>(), n in 8usize..60, amp in 0.0f64..20.0) {
        let heights: Vec<f64> = (0..n)
            .map(|i| {
                let k = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                amp * ((k >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect();
        let p = Profile { spacing: 10.0, heights };
        let ep = epstein_peterson_loss_db(&p, 2.0, 2.0, 0.3);
        let dg = deygout_loss_db(&p, 2.0, 2.0, 0.3);
        assert!(ep >= 0.0 && ep.is_finite());
        assert!(dg >= 0.0 && dg.is_finite());
    }

    fn flat_terrain_never_diffracts(n in 3usize..100, level in -10.0f64..10.0, ht in 0.5f64..20.0) {
        let p = Profile { spacing: 5.0, heights: vec![level; n] };
        assert_eq!(epstein_peterson_loss_db(&p, ht, ht, 0.125), 0.0);
        assert_eq!(deygout_loss_db(&p, ht, ht, 0.125), 0.0);
    }

    fn hata_ordering_holds_everywhere(
        f in 150.0f64..1500.0, hb in 30.0f64..200.0, hm in 1.0f64..10.0, d in 1.0f64..20.0,
    ) {
        let u = hata_loss_db(HataEnvironment::Urban, f, hb, hm, d);
        let s = hata_loss_db(HataEnvironment::Suburban, f, hb, hm, d);
        let o = hata_loss_db(HataEnvironment::Open, f, hb, hm, d);
        assert!(u > s && s > o, "u={u} s={s} o={o}");
        assert!(u.is_finite() && u > 0.0);
    }

    fn hata_is_monotone_in_distance(f in 150.0f64..1500.0, hb in 30.0f64..200.0, d in 1.0f64..19.0) {
        let near = hata_loss_db(HataEnvironment::Urban, f, hb, 1.5, d);
        let far = hata_loss_db(HataEnvironment::Urban, f, hb, 1.5, d + 1.0);
        assert!(far > near);
    }
}
