//! Property-based tests for the surface generators.

use rrs_check::any;
use rrs_grid::Window;
use rrs_spectrum::{Gaussian, GridSpec, SurfaceParams};
use rrs_surface::{
    ConvolutionGenerator, ConvolutionKernel, DirectDftGenerator, KernelSizing, NoiseField,
};

rrs_check::props! {
    #![cases = 32]

    fn noise_field_is_a_pure_function(seed in any::<u64>(), x in -1000i64..1000, y in -1000i64..1000) {
        let f = NoiseField::new(seed);
        let v = f.at(x, y);
        assert!(v.is_finite());
        assert_eq!(v, NoiseField::new(seed).at(x, y));
    }

    fn noise_windows_always_agree_with_points(
        seed in any::<u64>(),
        x0 in -100i64..100,
        y0 in -100i64..100,
        w in 1usize..16,
        h in 1usize..16,
    ) {
        let f = NoiseField::new(seed);
        let win = f.window(x0, y0, w, h);
        for iy in 0..h {
            for ix in 0..w {
                assert_eq!(win[iy * w + ix], f.at(x0 + ix as i64, y0 + iy as i64));
            }
        }
    }

    fn kernels_are_even_for_any_parameters(h in 0.1f64..3.0, clx in 2.0f64..10.0, cly in 2.0f64..10.0) {
        let s = Gaussian::new(SurfaceParams::new(h, clx, cly));
        let k = ConvolutionKernel::build(&s, KernelSizing::Auto { factor: 6.0, min: 16, max: 96 });
        let (kw, kh) = k.extent();
        for jy in -(kh as i64) / 2 + 1..(kh as i64) / 2 {
            for jx in -(kw as i64) / 2 + 1..(kw as i64) / 2 {
                assert!((k.weight_at(jx, jy) - k.weight_at(-jx, -jy)).abs() < 1e-12);
            }
        }
    }

    fn truncation_never_gains_energy(h in 0.1f64..3.0, cl in 2.0f64..10.0, eps in 0.001f64..0.5) {
        let s = Gaussian::new(SurfaceParams::isotropic(h, cl));
        let k = ConvolutionKernel::build(&s, KernelSizing::Auto { factor: 8.0, min: 16, max: 128 });
        let t = k.truncated(eps);
        assert!(t.energy() <= k.energy() + 1e-12);
        let loss = ((k.energy() - t.energy()).max(0.0) / k.energy()).sqrt();
        assert!(loss <= eps * 1.05, "loss {loss} vs eps {eps}");
        assert!(t.extent().0 <= k.extent().0);
    }

    fn direct_generator_output_is_finite_and_shaped(seed in any::<u64>(), exp in 2u32..6) {
        let n = 1usize << exp;
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 3.0));
        let f = DirectDftGenerator::with_workers(s, GridSpec::unit(n, n), 1).generate(seed);
        assert_eq!(f.shape(), (n, n));
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
    }

    fn convolution_windows_translate_consistently(
        seed in any::<u64>(),
        dx in -32i64..32,
        dy in -32i64..32,
    ) {
        // Generating at a shifted origin equals shifting the noise origin:
        // the surface is a fixed function of absolute coordinates.
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 3.0));
        let gen = ConvolutionGenerator::new(
            &s,
            KernelSizing::Auto { factor: 6.0, min: 16, max: 48 },
        )
        .with_workers(1);
        let noise = NoiseField::new(seed);
        let a = gen.generate(&noise, Window::new(dx, dy, 8, 8));
        let b = gen.generate(&noise, Window::new(dx, dy, 16, 16));
        for iy in 0..8 {
            for ix in 0..8 {
                assert_eq!(*a.get(ix, iy), *b.get(ix, iy));
            }
        }
    }

    fn variance_tracks_h_squared(h in 0.2f64..3.0, seed in any::<u64>()) {
        let s = Gaussian::new(SurfaceParams::isotropic(h, 4.0));
        let gen = ConvolutionGenerator::new(
            &s,
            KernelSizing::Auto { factor: 8.0, min: 16, max: 64 },
        );
        let f = gen.generate(&NoiseField::new(seed), Window::sized(128, 128));
        let raw = f.as_slice().iter().map(|v| v * v).sum::<f64>() / f.len() as f64;
        // 32² patches ⇒ ~4.4% relative sigma on the variance; 6 sigma guard.
        assert!((raw - h * h).abs() < 0.3 * h * h, "raw var {raw} vs h² {}", h * h);
    }
}
