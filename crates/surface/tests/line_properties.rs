//! Property-based tests for the 1-D profile pipeline.

use rrs_check::any;
use rrs_spectrum::line::{Exponential1d, Gaussian1d, LineParams};
use rrs_surface::{LineGenerator, LineKernel};

rrs_check::props! {
    #![cases = 48]

    fn kernel_energy_matches_variance(h in 0.1f64..3.0, cl in 3.0f64..20.0) {
        let k = LineKernel::build_auto(&Gaussian1d::new(LineParams::new(h, cl)));
        let rel = (k.energy() - h * h).abs() / (h * h);
        assert!(rel < 1e-6, "energy {}, h² {}", k.energy(), h * h);
    }

    fn exponential_kernel_energy_within_tail(h in 0.1f64..3.0, cl in 3.0f64..20.0) {
        let k = LineKernel::build_auto(&Exponential1d::new(LineParams::new(h, cl)));
        // Lorentzian density loses ≈ 2/(π²·cl/dx·...) — bounded by ~1/cl.
        let rel = (k.energy() - h * h).abs() / (h * h);
        assert!(rel < 0.05 + 1.0 / cl, "energy {}, h² {}", k.energy(), h * h);
    }

    fn kernels_are_even(h in 0.1f64..2.0, cl in 3.0f64..15.0) {
        let k = LineKernel::build(&Gaussian1d::new(LineParams::new(h, cl)), 128);
        let w = k.weights();
        let n = w.len();
        for i in 1..n / 2 {
            // Centred layout: w[c+i] == w[c−i] around the centre c = n/2.
            assert!((w[n / 2 + i] - w[n / 2 - i]).abs() < 1e-12, "offset {i}");
        }
    }

    fn windows_tile_for_any_geometry(
        seed in any::<u64>(),
        x0 in -500i64..500,
        len in 2usize..100,
        cut in 1usize..99,
    ) {
        let cut = cut.min(len - 1);
        let gen = LineGenerator::new(&Gaussian1d::new(LineParams::new(1.0, 4.0)), seed);
        let whole = gen.generate(x0, len);
        let left = gen.generate(x0, cut);
        let right = gen.generate(x0 + cut as i64, len - cut);
        for i in 0..cut {
            assert_eq!(whole.heights[i], left.heights[i]);
        }
        for i in 0..len - cut {
            assert_eq!(whole.heights[cut + i], right.heights[i]);
        }
    }

    fn truncation_never_gains_energy(eps in 0.002f64..0.3, cl in 3.0f64..12.0) {
        let k = LineKernel::build(&Gaussian1d::new(LineParams::new(1.0, cl)), 256);
        let t = k.truncated(eps);
        assert!(t.energy() <= k.energy() + 1e-12);
        let loss = ((k.energy() - t.energy()).max(0.0) / k.energy()).sqrt();
        assert!(loss <= eps * 1.05, "loss {loss} vs {eps}");
    }

    fn different_rows_differ(seed in any::<u64>(), r1 in -10i64..10, r2 in -10i64..10) {
        rrs_check::assume!(r1 != r2);
        let s = Gaussian1d::new(LineParams::new(1.0, 4.0));
        let a = LineGenerator::new(&s, seed).with_row(r1).generate(0, 64);
        let b = LineGenerator::new(&s, seed).with_row(r2).generate(0, 64);
        assert_ne!(a.heights, b.heights);
    }
}
