//! Properties of the fallible generator entry points: invalid windows,
//! truncation budgets, stream heights and undersized periodic grids are
//! rejected with typed errors; the valid domain matches the panicking
//! wrappers bit-for-bit.

use rrs_check::{from_fn, props, CaseRng};
use rrs_error::ErrorKind;
use rrs_grid::{Grid2, Window};
use rrs_spectrum::{Gaussian, GridSpec, SurfaceParams};
use rrs_surface::{ConvolutionGenerator, ConvolutionKernel, NoiseField, StripGenerator};

fn small_kernel(cl: f64) -> ConvolutionKernel {
    ConvolutionKernel::build_on(
        &Gaussian::new(SurfaceParams::isotropic(1.0, cl)),
        GridSpec::unit(16, 16),
    )
}

props! {
    #![cases = 48]

    fn empty_windows_rejected(nx in 0usize..3, ny in 0usize..3, seed in rrs_check::any::<u64>()) {
        let gen = ConvolutionGenerator::from_kernel(small_kernel(2.0)).with_workers(1);
        let noise = NoiseField::new(seed);
        match Window::try_new(0, 0, nx, ny).and_then(|w| gen.try_generate(&noise, w)) {
            Ok(g) => {
                assert!(nx > 0 && ny > 0);
                assert_eq!(g.shape(), (nx, ny));
                assert_eq!(g, gen.generate(&noise, Window::new(0, 0, nx, ny)));
            }
            Err(e) => {
                assert!(nx == 0 || ny == 0);
                assert_eq!(e.kind(), ErrorKind::InvalidParam, "{e}");
                assert!(e.to_string().contains("non-empty"), "{e}");
            }
        }
    }

    fn bad_epsilon_rejected(eps in from_fn(|rng: &mut CaseRng| {
        match rng.next_below(6) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => 1.0,
            _ => 1.0 + rng.next_f64() * 10.0,
        }
    })) {
        let e = small_kernel(3.0).try_truncated(eps).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidParam, "eps={eps}: {e}");
        assert!(e.to_string().contains("epsilon"), "{e}");
    }

    fn good_epsilon_accepted(eps in 1e-6f64..0.999) {
        let k = small_kernel(3.0);
        let t = k.try_truncated(eps).expect("valid epsilon accepted");
        assert_eq!(t, k.truncated(eps));
    }

    fn kernel_larger_than_periodic_grid_rejected(n in 1usize..40) {
        // The kernel extent is fixed at 16x16; periodic convolution only
        // accepts noise grids at least that large on both axes.
        let gen = ConvolutionGenerator::from_kernel(small_kernel(2.0)).with_workers(1);
        let noise = Grid2::filled(n, n, 0.5);
        match gen.try_convolve_periodic(&noise) {
            Ok(out) => {
                assert!(n >= 16, "{n}x{n} accepted");
                assert_eq!(out.shape(), (n, n));
            }
            Err(e) => {
                assert!(n < 16, "{n}x{n} rejected: {e}");
                assert_eq!(e.kind(), ErrorKind::ShapeMismatch);
                assert!(e.to_string().contains("kernel larger than the noise grid"), "{e}");
            }
        }
    }

    fn stream_height_boundary(ny in 0usize..6, seed in rrs_check::any::<u64>()) {
        let gen = ConvolutionGenerator::from_kernel(small_kernel(2.0)).with_workers(1);
        match StripGenerator::try_from_generator(gen, ny, seed) {
            Ok(sg) => {
                assert!(ny > 0);
                assert_eq!(sg.height(), ny);
                assert_eq!(sg.seed(), seed);
                assert_eq!(sg.cursor(), 0);
            }
            Err(e) => {
                assert_eq!(ny, 0);
                assert!(e.to_string().contains("strip height must be positive"), "{e}");
            }
        }
    }
}
