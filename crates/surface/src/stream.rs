//! Streaming strip generation — "arbitrarily long RRS by successive
//! computations" (paper §2.4).
//!
//! A [`StripGenerator`] fixes the transverse extent `ny` and produces
//! consecutive (or arbitrary) spans of an unbounded-in-`x` surface. Because
//! the backing [`NoiseField`] is a pure function of coordinates, strips are
//! seamless by construction and can be produced out of order or in
//! parallel across processes.

use crate::conv::ConvolutionGenerator;
use crate::kernel::KernelSizing;
use crate::noise::NoiseField;
use rrs_error::RrsError;
use rrs_fft::FftPlanCache;
use rrs_grid::{Grid2, Window};
use rrs_obs::{stage, ObsSink, Recorder};
use rrs_spectrum::Spectrum;
use std::sync::Arc;

/// Generates an unbounded-in-`x` surface strip by strip.
pub struct StripGenerator {
    gen: ConvolutionGenerator,
    noise: NoiseField,
    ny: usize,
    cursor: i64,
}

impl StripGenerator {
    /// Fallible [`StripGenerator::new`]: the transverse extent must be
    /// positive.
    pub fn try_new<S: Spectrum + ?Sized>(
        spectrum: &S,
        sizing: KernelSizing,
        ny: usize,
        seed: u64,
    ) -> Result<Self, RrsError> {
        Self::try_from_generator(ConvolutionGenerator::new(spectrum, sizing), ny, seed)
    }

    /// Builds a strip generator of transverse extent `ny` from a spectrum.
    ///
    /// # Panics
    /// Panics if `ny == 0`. Fallible callers use
    /// [`StripGenerator::try_new`].
    pub fn new<S: Spectrum + ?Sized>(spectrum: &S, sizing: KernelSizing, ny: usize, seed: u64) -> Self {
        Self::try_new(spectrum, sizing, ny, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`StripGenerator::from_generator`].
    pub fn try_from_generator(
        gen: ConvolutionGenerator,
        ny: usize,
        seed: u64,
    ) -> Result<Self, RrsError> {
        if ny == 0 {
            return Err(RrsError::invalid_param(
                "ny",
                "strip height must be positive, got 0",
            ));
        }
        Ok(Self { gen, noise: NoiseField::new(seed), ny, cursor: 0 })
    }

    /// Wraps an existing convolution generator.
    ///
    /// # Panics
    /// Panics if `ny == 0`. Fallible callers use
    /// [`StripGenerator::try_from_generator`].
    pub fn from_generator(gen: ConvolutionGenerator, ny: usize, seed: u64) -> Self {
        Self::try_from_generator(gen, ny, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Replaces the inner generator's whole [`GenContext`] at once —
    /// the entry point every `with_*` builder below delegates through.
    /// See [`ConvolutionGenerator::with_context`].
    pub fn with_context(mut self, ctx: crate::GenContext) -> Self {
        self.gen = self.gen.with_context(ctx);
        self
    }

    /// The inner generator's generation context.
    pub fn context(&self) -> &crate::GenContext {
        self.gen.context()
    }

    /// Attaches a recorder to the inner convolution generator: strips
    /// count under `strip/tiles` and generation stages are timed. Output
    /// is unchanged.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.gen = self.gen.with_recorder(obs);
        self
    }

    /// Selects the convolution engine for every strip — see
    /// [`ConvBackend`](crate::ConvBackend). Strips from the FFT engines
    /// ([`ConvBackend::FftOverlapSave`](crate::ConvBackend)'s parallel
    /// real-input tiles included) tile as seamlessly as direct ones (the
    /// backend changes arithmetic order, not the window geometry), within
    /// floating-point roundoff.
    pub fn with_backend(mut self, backend: crate::ConvBackend) -> Self {
        self.gen = self.gen.with_backend(backend);
        self
    }

    /// The backend policy of the inner generator.
    pub fn backend(&self) -> crate::ConvBackend {
        self.gen.backend()
    }

    /// Shares an [`FftPlanCache`] with the inner generator, so several
    /// streams (or a stream and a plain generator) transforming the same
    /// overlap-save tile shapes reuse one set of twiddle tables and
    /// real-input plans instead of rebuilding them per stream.
    pub fn with_plan_cache(mut self, plans: Arc<FftPlanCache>) -> Self {
        self.gen = self.gen.with_plan_cache(plans);
        self
    }

    /// The FFT plan cache backing the inner generator's overlap-save
    /// engines.
    pub fn plan_cache(&self) -> &Arc<FftPlanCache> {
        self.gen.plan_cache()
    }

    /// Attaches a resource [`Budget`](rrs_error::Budget) to the inner
    /// convolution generator. Every strip request —
    /// [`StripGenerator::try_strip_at`] as well as the sequential
    /// [`StripGenerator::try_next_strip`] loop — re-runs the budget's
    /// pre-flight check and admission control before allocating, and polls
    /// the deadline/cancel token at band granularity while correlating, so
    /// a tripped budget stops the stream within one tile. The cursor only
    /// advances on success, so a cancelled stream resumes exactly where it
    /// stopped.
    pub fn with_budget(mut self, budget: rrs_error::Budget) -> Self {
        self.gen = self.gen.with_budget(budget);
        self
    }

    /// The budget attached to the inner generator.
    pub fn budget(&self) -> &rrs_error::Budget {
        self.gen.budget()
    }

    /// Arms a deterministic fault schedule on the inner generator and on
    /// this stream's own strip boundary: each strip request polls
    /// [`FaultSite::StripTile`](rrs_chaos::FaultSite) (panic-contained)
    /// before generating, and the inner generator's band/tile/plan sites
    /// poll the same shared schedule. The cursor advances only on
    /// success, so an injected fault leaves the stream resumable exactly
    /// like a real one.
    pub fn with_chaos(mut self, chaos: rrs_chaos::ChaosInjector) -> Self {
        self.gen = self.gen.with_chaos(chaos);
        self
    }

    /// The chaos injector attached to the inner generator.
    pub fn chaos(&self) -> &rrs_chaos::ChaosInjector {
        self.gen.chaos()
    }

    /// The recorder attached to the inner generator.
    pub fn recorder(&self) -> &Recorder {
        self.gen.recorder()
    }

    /// Transverse extent.
    pub fn height(&self) -> usize {
        self.ny
    }

    /// Position of the next sequential strip.
    pub fn cursor(&self) -> i64 {
        self.cursor
    }

    /// Seed of the backing noise lattice. Together with
    /// [`StripGenerator::cursor`] and [`StripGenerator::height`] this is
    /// the complete resumable state of a sequential stream: a new
    /// generator built from the same spectrum/kernel with this seed,
    /// `seek`ed to the saved cursor, continues the identical surface.
    pub fn seed(&self) -> u64 {
        self.noise.seed()
    }

    /// Fallible [`StripGenerator::strip_at`]. Routed through the attached
    /// budget: an oversized strip fails with
    /// [`RrsError::BudgetExceeded`] before anything is allocated instead
    /// of aborting inside the allocator.
    pub fn try_strip_at(&self, x0: i64, width: usize) -> Result<Grid2<f64>, RrsError> {
        let win = Window::try_new(x0, 0, width, self.ny)?;
        // The strip boundary is a registered fault site; the poll
        // contains its own injected panic, so a scheduled fault here
        // surfaces as a typed error with the cursor unadvanced.
        self.gen.chaos().poll_contained(rrs_chaos::FaultSite::StripTile)?;
        let out = self.gen.try_generate(&self.noise, win)?;
        self.gen.recorder().add_counter(stage::STRIP_TILES, 1);
        Ok(out)
    }

    /// The strip `[x0, x0+width) × [0, ny)` — random access, stateless.
    pub fn strip_at(&self, x0: i64, width: usize) -> Grid2<f64> {
        self.try_strip_at(x0, width).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`StripGenerator::next_strip`]. The cursor advances only
    /// on success, so a failed call can simply be retried.
    pub fn try_next_strip(&mut self, width: usize) -> Result<Grid2<f64>, RrsError> {
        let s = self.try_strip_at(self.cursor, width)?;
        self.cursor += width as i64;
        Ok(s)
    }

    /// The next sequential strip of `width` samples; advances the cursor.
    pub fn next_strip(&mut self, width: usize) -> Grid2<f64> {
        self.try_next_strip(width).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Resets the cursor to `x`.
    pub fn seek(&mut self, x: i64) {
        self.cursor = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::{Gaussian, SurfaceParams};

    fn make(seed: u64) -> StripGenerator {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
        StripGenerator::new(&s, KernelSizing::default(), 24, seed)
    }

    #[test]
    fn sequential_strips_tile_the_long_surface() {
        let mut sg = make(42);
        let a = sg.next_strip(16);
        let b = sg.next_strip(16);
        assert_eq!(sg.cursor(), 32);
        let whole = sg.strip_at(0, 32);
        for iy in 0..24 {
            for ix in 0..16 {
                assert_eq!(*whole.get(ix, iy), *a.get(ix, iy));
                assert_eq!(*whole.get(ix + 16, iy), *b.get(ix, iy));
            }
        }
    }

    #[test]
    fn random_access_matches_sequential() {
        let mut sg = make(7);
        sg.seek(100);
        let seq = sg.next_strip(8);
        let rand = sg.strip_at(100, 8);
        assert_eq!(seq, rand);
    }

    #[test]
    fn long_surface_is_stationary() {
        // Strip means/stds must not drift with x — no seams, no trends.
        let sg = make(3);
        let mut stds = Vec::new();
        for i in 0..8 {
            let s = sg.strip_at(i * 512, 128);
            stds.push(s.std_dev());
        }
        let mean_std = stds.iter().sum::<f64>() / stds.len() as f64;
        for (i, &s) in stds.iter().enumerate() {
            assert!((s - mean_std).abs() < 0.35, "strip {i}: std {s} vs mean {mean_std}");
        }
        assert!((mean_std - 1.0).abs() < 0.2, "overall std {mean_std}");
    }

    #[test]
    fn negative_x_works() {
        let sg = make(5);
        let s = sg.strip_at(-1000, 16);
        assert_eq!(s.shape(), (16, 24));
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_height_rejected() {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
        StripGenerator::new(&s, KernelSizing::default(), 0, 1);
    }

    #[test]
    fn oversized_strip_is_rejected_not_aborted() {
        use rrs_error::Budget;
        let sg = make(9).with_budget(Budget::unlimited().with_max_bytes(1 << 20));
        // Wide enough that the alloc would abort; admission must fire first.
        let err = sg.try_strip_at(0, 1 << 30).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::BudgetExceeded);
        // A strip within the ceiling still works and matches an unbudgeted run.
        assert_eq!(sg.try_strip_at(40, 8).unwrap(), make(9).strip_at(40, 8));
    }

    #[test]
    fn cancelled_stream_leaves_cursor_unadvanced() {
        use rrs_error::{Budget, CancelToken};
        let token = CancelToken::new();
        let mut sg = make(11).with_budget(Budget::unlimited().with_cancel_token(token.clone()));
        sg.next_strip(8);
        assert_eq!(sg.cursor(), 8);
        token.cancel();
        let err = sg.try_next_strip(8).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::Cancelled);
        assert_eq!(sg.cursor(), 8, "failed strip must not advance the cursor");
        // The resumable state still continues the identical surface.
        let resumed = make(11).strip_at(8, 8);
        let mut fresh = make(11).with_budget(Budget::unlimited().with_cancel_token(CancelToken::new()));
        fresh.seek(8);
        assert_eq!(fresh.try_next_strip(8).unwrap(), resumed);
    }

    #[test]
    fn recorder_counts_tiles_without_changing_output() {
        let rec = Recorder::enabled();
        let mut plain = make(42);
        let mut observed = make(42).with_recorder(rec.clone());
        for _ in 0..3 {
            assert_eq!(plain.next_strip(8), observed.next_strip(8));
        }
        let report = rec.report();
        assert_eq!(report.counter(stage::STRIP_TILES), 3);
        assert!(report.durations.contains_key(stage::WINDOW_MATERIALISE));
    }

    #[test]
    fn chaos_fault_at_a_strip_boundary_is_typed_and_resumable() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule, FaultSite};
        // The second strip boundary faults; strips 0 and 2 are clean.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(21).with_fault(FaultSite::StripTile, FaultKind::Error, 1),
        );
        let mut sg = make(42).with_chaos(chaos);
        let mut clean = make(42);
        assert_eq!(sg.next_strip(8), clean.next_strip(8));
        let err = sg.try_next_strip(8).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::FaultInjected);
        assert_eq!(sg.cursor(), 8, "a faulted strip must not advance the cursor");
        // The stream resumes the identical surface after the fault.
        assert_eq!(sg.try_next_strip(8).unwrap(), clean.next_strip(8));
    }

    #[test]
    fn with_context_matches_the_sugar_builders() {
        let rec = Recorder::enabled();
        let ctx = crate::GenContext::new().with_workers(1).with_recorder(rec.clone());
        let mut via_ctx = make(42).with_context(ctx);
        let mut sugar = make(42).with_recorder(Recorder::enabled());
        assert_eq!(via_ctx.next_strip(8), sugar.next_strip(8));
        assert!(via_ctx.context().recorder().is_enabled());
        assert_eq!(rec.report().counter(stage::STRIP_TILES), 1);
    }

    #[test]
    fn chaos_panic_at_a_strip_boundary_is_contained() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule, FaultSite};
        let chaos = ChaosInjector::new(
            FaultSchedule::new(23).with_fault(FaultSite::StripTile, FaultKind::Panic, 0),
        );
        let sg = make(7).with_chaos(chaos);
        let err = sg.try_strip_at(0, 8).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::WorkerPanicked);
        assert_eq!(sg.try_strip_at(0, 8).unwrap(), make(7).strip_at(0, 8));
    }
}
