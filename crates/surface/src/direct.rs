//! The direct DFT method (paper §2.4, eqn 30) — the classical baseline.
//!
//! `f = DFT(v·u)`: the amplitude array `v = √w` shapes a Hermitian complex
//! Gaussian array `u`, and one 2-D FFT produces the surface. With the
//! workspace's DFT conventions the result is exactly real, and
//! `Var f = Σw ≈ h²` without further normalisation.

use crate::hermitian::hermitian_gaussian_array;
use rrs_error::RrsError;
use rrs_fft::{Direction, Fft2d};
use rrs_grid::Grid2;
use rrs_num::Complex64;
use rrs_rng::{RandomSource, Xoshiro256pp};
use rrs_spectrum::{amplitude_array, GridSpec, Spectrum};

/// One-shot periodic surface generator by the direct DFT method.
pub struct DirectDftGenerator<S> {
    spectrum: S,
    spec: GridSpec,
    workers: usize,
}

impl<S: Spectrum> DirectDftGenerator<S> {
    /// Prepares a generator on the lattice `spec` with default parallelism.
    pub fn new(spectrum: S, spec: GridSpec) -> Self {
        Self::with_workers(spectrum, spec, rrs_par::default_workers())
    }

    /// Prepares a generator with an explicit worker count.
    pub fn with_workers(spectrum: S, spec: GridSpec, workers: usize) -> Self {
        Self { spectrum, spec, workers: workers.max(1) }
    }

    /// The sampling lattice.
    pub fn grid_spec(&self) -> GridSpec {
        self.spec
    }

    /// Generates one realisation from `seed`.
    pub fn generate(&self, seed: u64) -> Grid2<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        self.generate_with(&mut rng)
    }

    /// Generates one realisation from a caller-provided uniform source.
    pub fn generate_with<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Grid2<f64> {
        let u = hermitian_gaussian_array(self.spec.nx, self.spec.ny, rng);
        self.generate_from_bins(&u)
    }

    /// Generates the surface determined by an explicit Hermitian bin array
    /// `u`. Exposed so the test suite can drive the direct and convolution
    /// methods with the *same* randomness and compare outputs exactly.
    ///
    /// # Panics
    /// Panics if `u.len() != nx * ny`. Fallible callers use
    /// [`DirectDftGenerator::try_generate_from_bins`].
    pub fn generate_from_bins(&self, u: &[Complex64]) -> Grid2<f64> {
        self.try_generate_from_bins(u).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`DirectDftGenerator::generate_from_bins`]: the bin array
    /// must have exactly `nx · ny` entries.
    pub fn try_generate_from_bins(&self, u: &[Complex64]) -> Result<Grid2<f64>, RrsError> {
        let (nx, ny) = (self.spec.nx, self.spec.ny);
        if u.len() != nx * ny {
            return Err(RrsError::shape_mismatch(
                "bin array shape mismatch",
                nx * ny,
                u.len(),
            ));
        }
        let v = amplitude_array(&self.spectrum, self.spec);
        let mut z: Vec<Complex64> =
            v.as_slice().iter().zip(u).map(|(&a, &b)| b.scale(a)).collect();
        Fft2d::with_workers(nx, ny, self.workers).process(&mut z, Direction::Forward);
        // The transform of a Hermitian array is real up to rounding.
        debug_assert!(
            z.iter().map(|c| c.im.abs()).fold(0.0, f64::max) < 1e-8,
            "direct DFT output is not real"
        );
        Ok(Grid2::from_vec(nx, ny, z.into_iter().map(|c| c.re).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::{Exponential, Gaussian, PowerLaw, SurfaceParams};

    #[test]
    fn output_shape_matches_spec() {
        let gen = DirectDftGenerator::with_workers(
            Gaussian::new(SurfaceParams::isotropic(1.0, 8.0)),
            GridSpec::unit(64, 32),
            1,
        );
        let f = gen.generate(1);
        assert_eq!(f.shape(), (64, 32));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let gen = DirectDftGenerator::with_workers(
            Gaussian::new(SurfaceParams::isotropic(1.0, 8.0)),
            GridSpec::unit(32, 32),
            1,
        );
        assert_eq!(gen.generate(42), gen.generate(42));
        assert_ne!(gen.generate(42), gen.generate(43));
    }

    #[test]
    fn height_std_matches_target_gaussian() {
        // Single realisation on a domain >> cl: spatial std ≈ h within the
        // ensemble fluctuation of order h/sqrt(#independent patches).
        let h = 1.5;
        let cl = 8.0;
        let n = 256;
        let gen = DirectDftGenerator::with_workers(
            Gaussian::new(SurfaceParams::isotropic(h, cl)),
            GridSpec::unit(n, n),
            1,
        );
        let f = gen.generate(7);
        let measured = f.std_dev();
        let patches = (n as f64 / cl) * (n as f64 / cl);
        let tol = 4.5 * h / patches.sqrt();
        assert!((measured - h).abs() < tol, "ĥ = {measured}, target {h} ± {tol}");
        assert!(f.mean().abs() < tol, "mean = {}", f.mean());
    }

    #[test]
    fn height_std_matches_target_all_spectra() {
        let h = 1.0;
        let cl = 6.0;
        let spec = GridSpec::unit(256, 256);
        let p = SurfaceParams::isotropic(h, cl);
        let measured = [
            DirectDftGenerator::with_workers(Gaussian::new(p), spec, 1).generate(3).std_dev(),
            DirectDftGenerator::with_workers(Exponential::new(p), spec, 1).generate(3).std_dev(),
            DirectDftGenerator::with_workers(PowerLaw::new(p, 2.0), spec, 1).generate(3).std_dev(),
        ];
        for (i, &m) in measured.iter().enumerate() {
            assert!((m - h).abs() < 0.25, "spectrum {i}: ĥ = {m}");
        }
    }

    #[test]
    fn ensemble_variance_converges_to_h_squared() {
        let h = 2.0;
        let gen = DirectDftGenerator::with_workers(
            Gaussian::new(SurfaceParams::isotropic(h, 10.0)),
            GridSpec::unit(64, 64),
            1,
        );
        let reps = 60;
        let mut acc = 0.0;
        for seed in 0..reps {
            let f = gen.generate(seed);
            acc += f.as_slice().iter().map(|&v| v * v).sum::<f64>() / f.len() as f64;
        }
        let var = acc / reps as f64;
        assert!((var - h * h).abs() < 0.3, "ensemble Var = {var}, target {}", h * h);
    }

    #[test]
    fn parallel_output_is_identical_to_serial() {
        let p = SurfaceParams::isotropic(1.0, 8.0);
        let spec = GridSpec::unit(64, 64);
        let serial = DirectDftGenerator::with_workers(Gaussian::new(p), spec, 1).generate(9);
        let parallel = DirectDftGenerator::with_workers(Gaussian::new(p), spec, 4).generate(9);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn anisotropic_surface_decorrelates_faster_on_short_axis() {
        // Sample-estimate lag-k autocorrelation along each axis.
        let p = SurfaceParams::new(1.0, 24.0, 4.0);
        let n = 256;
        let f = DirectDftGenerator::with_workers(Gaussian::new(p), GridSpec::unit(n, n), 1)
            .generate(11);
        let lag = 6usize;
        let mut ax = 0.0;
        let mut ay = 0.0;
        let mut count = 0.0;
        for iy in 0..n - lag {
            for ix in 0..n - lag {
                let c = *f.get(ix, iy);
                ax += c * *f.get(ix + lag, iy);
                ay += c * *f.get(ix, iy + lag);
                count += 1.0;
            }
        }
        ax /= count;
        ay /= count;
        assert!(ax > ay + 0.1, "autocorr x-lag {ax} should exceed y-lag {ay}");
    }
}
