//! The convolution method (paper §2.4, eqn 36).
//!
//! `f[n] = Σ_k w̃[k] · X[n − k]` with `w̃` the centred kernel and `X` unit
//! lattice noise. Two noise backings are provided:
//!
//! * **open** — [`NoiseField`], an unbounded deterministic lattice: any
//!   output [`Window`] can be generated independently and windows tile
//!   seamlessly (the paper's "arbitrarily long or wide RRS by successive
//!   computations");
//! * **periodic** — an explicit `Nx × Ny` noise grid with wrap-around
//!   indexing, matching the direct DFT method *exactly* when the noise is
//!   the transform of the same Hermitian array (this identity is what the
//!   convolution theorem derivation promises, and the tests enforce it).
//!
//! Attach an enabled [`Recorder`] with
//! [`ConvolutionGenerator::with_recorder`] to time window materialisation
//! and the correlation loops (`window/materialise`, `correlate/inner`)
//! and count per-band output samples (`correlate/samples`); the default
//! disabled recorder records nothing and costs nothing, and enabling it
//! never changes a single output bit.

use crate::context::GenContext;
use crate::fftconv::{self, FftEngine};
use crate::kernel::{ConvolutionKernel, KernelSizing};
use crate::noise::NoiseField;
use rrs_chaos::ChaosInjector;
use rrs_error::{Budget, ErrorKind, RrsError};
use rrs_fft::FftPlanCache;
use rrs_grid::{Grid2, Window};
use rrs_obs::{stage, ObsSink, Recorder};
use rrs_spectrum::Spectrum;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Kernel area (`kw·kh`) above which [`ConvBackend::Auto`] dispatches to
/// the FFT overlap-save engine. Measured with `bench_convolution`'s
/// crossover probes (128×128 output, cropped kernels): at 13×13 the
/// direct path's vectorised row accumulation still wins (FFT ~1.4× slower
/// — tile setup dominates), the engines tie around 19×19–25×25, and FFT
/// pulls ahead monotonically beyond (1.6× at 31×31, 4× at 64×64, 12× at
/// 256×256). The boundary is placed at the last probed size where direct
/// wins; `bench_convolution` fails CI if `Auto` ever resolves to a
/// measurably slower engine, so drift shows up as a gate failure rather
/// than a silent slowdown.
pub(crate) const AUTO_CROSSOVER_KERNEL_AREA: usize = 169;

/// Which engine evaluates the convolution sum (paper eqn 36).
///
/// `#[non_exhaustive]`: backends are an open set; match with a wildcard
/// arm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvBackend {
    /// The spatial-domain loop: exact reference semantics, bit-identical
    /// across releases, fastest for small kernels. The default.
    #[default]
    Direct,
    /// Frequency-domain overlap-save tiling (`O(N log N)`) through the
    /// **real-input** pipeline: half-size-trick transforms on packed
    /// Hermitian spectra, tiles dispatched across the generator's
    /// workers with per-worker scratch arenas. Equal to `Direct` within
    /// floating-point roundoff (≤ 1e-9 relative — the property suite
    /// enforces it), bit-identical across worker counts, and dramatically
    /// faster than both `Direct` and [`ConvBackend::FftComplexSerial`]
    /// for large kernels.
    FftOverlapSave,
    /// The previous frequency-domain engine: full complex transforms,
    /// serial tile loop. Kept reachable as the bit-for-bit measurable
    /// baseline the real-input pipeline is benchmarked and
    /// property-tested against; prefer [`ConvBackend::FftOverlapSave`]
    /// everywhere else.
    FftComplexSerial,
    /// Picks per request: `FftOverlapSave` when the kernel area exceeds
    /// the measured crossover
    /// ([`AUTO_CROSSOVER_KERNEL_AREA`](self::AUTO_CROSSOVER_KERNEL_AREA)
    /// = 13×13), `Direct` below it. What benches and examples advertise.
    Auto,
}

impl ConvBackend {
    /// The backend this policy actually runs for a `kw × kh` kernel:
    /// `Auto` resolves through the measured crossover, the explicit
    /// choices return themselves.
    pub fn resolve(self, kw: usize, kh: usize) -> ConvBackend {
        match self {
            ConvBackend::Auto => {
                if kw * kh > AUTO_CROSSOVER_KERNEL_AREA {
                    ConvBackend::FftOverlapSave
                } else {
                    ConvBackend::Direct
                }
            }
            other => other,
        }
    }
}

/// Consecutive failures after which the circuit breaker stops offering a
/// backend (except as the ladder's last rung, which always runs).
const BREAKER_THRESHOLD: u64 = 3;
/// While a backend is held open, every Nth skipped request is let
/// through as a probe so a recovered backend closes the breaker again.
const BREAKER_PROBE_EVERY: u64 = 16;

/// Per-generator circuit breaker over the degradation ladder
/// `FftOverlapSave → FftComplexSerial → Direct`.
///
/// Every backend attempt reports success or failure here; after
/// [`BREAKER_THRESHOLD`] *consecutive* failures the breaker opens and
/// the dispatcher skips that rung (ticking
/// [`stage::CONV_BREAKER_SKIPS`]) instead of re-running a backend that
/// keeps panicking — except as the last rung of the ladder, which is
/// always attempted so a request never fails purely because the breaker
/// is open. Every [`BREAKER_PROBE_EVERY`]th skipped request probes the
/// open backend; one success closes the breaker.
///
/// All state is atomic, so the breaker works under `&self` from
/// concurrent requests; it is heuristic routing state only and never
/// influences the *bits* of a successful result (every backend the
/// ladder can land on is the same convolution sum).
#[derive(Debug, Default)]
pub struct BackendHealth {
    consec_failures: [AtomicU64; 3],
    skipped: [AtomicU64; 3],
}

impl BackendHealth {
    /// A breaker with every backend closed (healthy).
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(backend: ConvBackend) -> usize {
        match backend {
            ConvBackend::FftOverlapSave => 0,
            ConvBackend::FftComplexSerial => 1,
            _ => 2,
        }
    }

    /// Whether the dispatcher should attempt `backend`, advancing the
    /// probe counter when the breaker is open.
    pub fn should_try(&self, backend: ConvBackend) -> bool {
        let s = Self::slot(backend);
        if self.consec_failures[s].load(Ordering::Relaxed) < BREAKER_THRESHOLD {
            return true;
        }
        let k = self.skipped[s].fetch_add(1, Ordering::Relaxed);
        (k + 1) % BREAKER_PROBE_EVERY == 0
    }

    /// Records a successful run: closes the breaker for `backend`.
    pub fn record_success(&self, backend: ConvBackend) {
        self.consec_failures[Self::slot(backend)].store(0, Ordering::Relaxed);
    }

    /// Records a failed run of `backend`.
    pub fn record_failure(&self, backend: ConvBackend) {
        self.consec_failures[Self::slot(backend)].fetch_add(1, Ordering::Relaxed);
    }

    /// Current consecutive-failure count for `backend`.
    pub fn consecutive_failures(&self, backend: ConvBackend) -> u64 {
        self.consec_failures[Self::slot(backend)].load(Ordering::Relaxed)
    }

    /// True when `backend` has failed often enough that the dispatcher
    /// skips it (outside probe requests and last-rung duty).
    pub fn is_open(&self, backend: ConvBackend) -> bool {
        self.consec_failures[Self::slot(backend)].load(Ordering::Relaxed) >= BREAKER_THRESHOLD
    }
}

/// The degradation ladder a resolved backend retries down: each rung is
/// the same convolution sum on a slower, simpler engine, ending at the
/// reference `Direct` loop (which has no further fallback).
fn ladder(resolved: ConvBackend) -> &'static [ConvBackend] {
    match resolved {
        ConvBackend::FftOverlapSave => {
            &[ConvBackend::FftOverlapSave, ConvBackend::FftComplexSerial, ConvBackend::Direct]
        }
        ConvBackend::FftComplexSerial => &[ConvBackend::FftComplexSerial, ConvBackend::Direct],
        _ => &[ConvBackend::Direct],
    }
}

/// Whether a failed backend attempt should fall to the next rung.
/// Worker panics (real or chaos-injected) and injected faults degrade;
/// everything else — cancellation, deadline expiry, admission rejection,
/// invalid input — reflects the *request*, not the engine, and must
/// surface unchanged no matter which rung produced it.
fn is_degradable(e: &RrsError) -> bool {
    matches!(e.kind(), ErrorKind::WorkerPanicked | ErrorKind::FaultInjected)
}

/// Homogeneous surface generator by real-space convolution.
pub struct ConvolutionGenerator {
    kernel: ConvolutionKernel,
    ctx: GenContext,
    fft: FftEngine,
    health: BackendHealth,
    /// Noise-window scratch reused across requests (the streaming bench
    /// materialises hundreds of same-shape windows per run); concurrent
    /// requests that lose the `try_lock` race fall back to a fresh
    /// allocation, so sharing a generator across threads stays safe.
    scratch: Mutex<Vec<f64>>,
}

impl ConvolutionGenerator {
    /// Builds a generator from a spectrum with the given kernel sizing and
    /// default parallelism.
    pub fn new<S: Spectrum + ?Sized>(spectrum: &S, sizing: KernelSizing) -> Self {
        Self::from_kernel(ConvolutionKernel::build(spectrum, sizing))
    }

    /// [`ConvolutionGenerator::new`] with kernel construction stages timed
    /// into `obs`, which the generator then keeps for generation-time
    /// observations (equivalent to `new` + [`with_recorder`]).
    ///
    /// [`with_recorder`]: ConvolutionGenerator::with_recorder
    pub fn new_observed<S: Spectrum + ?Sized>(
        spectrum: &S,
        sizing: KernelSizing,
        obs: Recorder,
    ) -> Self {
        Self::from_kernel(ConvolutionKernel::build_observed(spectrum, sizing, &obs))
            .with_recorder(obs)
    }

    /// Wraps a prebuilt (possibly truncated) kernel with the default
    /// [`GenContext`].
    pub fn from_kernel(kernel: ConvolutionKernel) -> Self {
        let ctx = GenContext::new();
        Self {
            kernel,
            fft: FftEngine::new(Arc::clone(&ctx.plans)),
            ctx,
            health: BackendHealth::new(),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the whole [`GenContext`] at once — the single entry
    /// point every `with_*` builder delegates to, and the one a serving
    /// front-end uses to apply wire-decoded per-request options. The FFT
    /// engine is rebuilt only when the context carries a *different*
    /// plan cache, so re-applying a context that shares the current
    /// cache keeps this generator's cached kernel spectra warm.
    pub fn with_context(mut self, ctx: GenContext) -> Self {
        if !Arc::ptr_eq(self.fft.plans(), &ctx.plans) {
            self.fft = FftEngine::new(Arc::clone(&ctx.plans));
        }
        self.ctx = ctx;
        self
    }

    /// The generation context (workers, backend, plan cache, recorder,
    /// budget, chaos).
    pub fn context(&self) -> &GenContext {
        &self.ctx
    }

    /// Sets the worker count (1 = serial). Output is identical for any
    /// worker count. Sugar for [`GenContext::with_workers`] via
    /// [`ConvolutionGenerator::with_context`].
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.ctx = self.ctx.with_workers(workers);
        self
    }

    /// Selects the convolution engine. [`ConvBackend::Direct`] (the
    /// default) keeps the reference spatial loop — bit-identical across
    /// releases; [`ConvBackend::FftOverlapSave`] evaluates the same sum
    /// in the frequency domain (equal within 1e-9 relative);
    /// [`ConvBackend::Auto`] picks per kernel size. Each request ticks
    /// [`stage::CONV_BACKEND_DIRECT`] or [`stage::CONV_BACKEND_FFT`] for
    /// the engine it actually ran.
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.ctx = self.ctx.with_backend(backend);
        self
    }

    /// The configured backend policy (not yet resolved — see
    /// [`ConvolutionGenerator::resolved_backend`]).
    pub fn backend(&self) -> ConvBackend {
        self.ctx.backend
    }

    /// The backend this generator actually runs for its kernel:
    /// `Auto` resolved through the measured crossover.
    pub fn resolved_backend(&self) -> ConvBackend {
        let (kw, kh) = self.kernel.extent();
        self.ctx.backend.resolve(kw, kh)
    }

    /// Shares an [`FftPlanCache`] with this generator (and, through
    /// [`StripGenerator`](crate::StripGenerator), with streams built on
    /// it), so several generators transforming the same tile shapes reuse
    /// one set of twiddle tables. Clears nothing: the generator's cached
    /// kernel spectra are keyed independently.
    pub fn with_plan_cache(self, plans: Arc<FftPlanCache>) -> Self {
        let ctx = self.ctx.clone().with_plan_cache(plans);
        self.with_context(ctx)
    }

    /// The FFT plan cache backing the overlap-save engine.
    pub fn plan_cache(&self) -> &Arc<FftPlanCache> {
        self.fft.plans()
    }

    /// Attaches a recorder for stage timings and counters. Observation
    /// never alters output: an enabled run is bit-identical to a disabled
    /// one.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.ctx = self.ctx.with_recorder(obs);
        self
    }

    /// Attaches a resource [`Budget`]: a deadline and/or cancel token is
    /// polled cooperatively at band granularity during correlation, and a
    /// byte ceiling is enforced by admission control *before* the noise
    /// window or output field is allocated. The default is
    /// [`Budget::unlimited`], under which every code path is bit-identical
    /// to (and as fast as) the unbudgeted generator.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.ctx = self.ctx.with_budget(budget);
        self
    }

    /// The attached budget ([`Budget::unlimited`] unless
    /// [`ConvolutionGenerator::with_budget`] was called).
    pub fn budget(&self) -> &Budget {
        &self.ctx.budget
    }

    /// Arms a deterministic fault schedule ([`ChaosInjector`]): every
    /// cooperative poll point this generator touches — parallel band
    /// slices, FFT tile loops, plan-cache lookups — polls the schedule
    /// and can be made to panic, error, cancel or expire on exact visit
    /// indices. The default is [`ChaosInjector::disabled`], under which
    /// every poll is a single branch and output is untouched (the
    /// `bench_runtime` gate holds the overhead under 1.05x).
    pub fn with_chaos(mut self, chaos: ChaosInjector) -> Self {
        self.ctx = self.ctx.with_chaos(chaos);
        self
    }

    /// The armed chaos injector (disabled unless
    /// [`ConvolutionGenerator::with_chaos`] was called).
    pub fn chaos(&self) -> &ChaosInjector {
        &self.ctx.chaos
    }

    /// This generator's circuit breaker over the degradation ladder.
    pub fn backend_health(&self) -> &BackendHealth {
        &self.health
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &ConvolutionKernel {
        &self.kernel
    }

    /// The attached recorder (disabled unless
    /// [`ConvolutionGenerator::with_recorder`] was called).
    pub fn recorder(&self) -> &Recorder {
        &self.ctx.obs
    }

    /// Admission control against the attached budget: `required_bytes` is
    /// the f64 footprint this request would materialise. A rejection ticks
    /// [`stage::BUDGET_REJECT`] and nothing has been allocated yet.
    fn admit(&self, what: &'static str, required_samples: u128) -> Result<(), RrsError> {
        self.ctx.budget.admit(what, required_samples * 8).inspect_err(|_| {
            self.ctx.obs.add_counter(stage::BUDGET_REJECT, 1);
        })
    }

    /// Fallible [`ConvolutionGenerator::generate`]: reports a worker
    /// panic as [`RrsError::WorkerPanicked`](rrs_error::RrsError) instead
    /// of propagating the unwind. With a [`Budget`] attached, an
    /// already-tripped cancel token / expired deadline returns before any
    /// allocation, and a byte ceiling rejects an oversized request
    /// ([`RrsError::BudgetExceeded`]) before the noise window or output
    /// field is materialised.
    pub fn try_generate(&self, noise: &NoiseField, win: Window) -> Result<Grid2<f64>, RrsError> {
        self.ctx.budget.check()?;
        let (kw, kh) = self.kernel.extent();
        let (ox, oy) = self.kernel.origin();
        // f(n) = Σ_j w̃(j)·X(n−j); offsets j span [ox, ox+kw) × [oy, oy+kh),
        // so the noise window spans [x0−(ox+kw−1), x0+nx−1−ox].
        let wx0 = win.x0 - (ox + kw as i64 - 1);
        let wy0 = win.y0 - (oy + kh as i64 - 1);
        let ww = win.nx + kw - 1;
        let wh = win.ny + kh - 1;
        // Noise window plus output field, in u128 so the estimate itself
        // cannot overflow even for windows far beyond addressable memory;
        // the FFT backends additionally admit their tile workspace (the
        // real-input engine's per-worker arenas included, using the same
        // deterministic worker clamp the engine applies).
        let mut samples = ww as u128 * wh as u128 + win.nx as u128 * win.ny as u128;
        match self.ctx.backend.resolve(kw, kh) {
            ConvBackend::FftOverlapSave => {
                let shape = fftconv::plan_tiles(win.nx, win.ny, kw, kh);
                let w =
                    fftconv::effective_workers(shape, win.nx, win.ny, kw, kh, self.ctx.workers);
                samples += shape.scratch_samples_real(w);
            }
            ConvBackend::FftComplexSerial => {
                samples += fftconv::plan_tiles(win.nx, win.ny, kw, kh).scratch_samples();
            }
            _ => {}
        }
        self.admit("convolution generation", samples)?;
        let span = self.ctx.obs.start(stage::WINDOW_MATERIALISE);
        // Reuse the generator's scratch window when uncontended; a second
        // concurrent request simply materialises into its own buffer.
        let mut local = Vec::new();
        let mut guard = self.scratch.try_lock().ok();
        let buf: &mut Vec<f64> = guard.as_deref_mut().unwrap_or(&mut local);
        noise.try_window_into(wx0, wy0, ww, wh, buf)?;
        self.ctx.obs.finish(span);
        self.dispatch(buf, ww, wh, win.nx, win.ny)
    }

    /// Generates the surface samples requested by `win` from the
    /// unbounded surface defined by `noise`. Windows of the same `noise`
    /// tile seamlessly.
    ///
    /// # Panics
    /// Panics if a worker panics. Fallible callers use
    /// [`ConvolutionGenerator::try_generate`].
    pub fn generate(&self, noise: &NoiseField, win: Window) -> Grid2<f64> {
        self.try_generate(noise, win).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Routes an already-materialised window down the degradation
    /// ladder: the resolved backend first, then — if an attempt fails
    /// degradably (worker panic or injected fault) or the circuit
    /// breaker holds it open — each slower rung in turn, ending at the
    /// reference `Direct` loop, which is always attempted. Each retry on
    /// a lower rung ticks the matching `conv/degraded_to_*` counter; a
    /// breaker skip ticks [`stage::CONV_BREAKER_SKIPS`]. Every attempt
    /// runs under its own `catch_unwind` and builds its own output grid,
    /// so a failed rung can neither leak a panic nor leave torn samples
    /// in the result a later rung returns.
    fn dispatch(
        &self,
        win: &[f64],
        ww: usize,
        wh: usize,
        nx: usize,
        ny: usize,
    ) -> Result<Grid2<f64>, RrsError> {
        let (kw, kh) = self.kernel.extent();
        let rungs = ladder(self.ctx.backend.resolve(kw, kh));
        let mut degraded = false;
        for (i, &rung) in rungs.iter().enumerate() {
            let is_last = i + 1 == rungs.len();
            if !is_last && !self.health.should_try(rung) {
                self.ctx.obs.add_counter(stage::CONV_BREAKER_SKIPS, 1);
                degraded = true;
                continue;
            }
            if degraded {
                match rung {
                    ConvBackend::FftComplexSerial => {
                        self.ctx.obs.add_counter(stage::CONV_DEGRADED_TO_FFT_SERIAL, 1)
                    }
                    _ => self.ctx.obs.add_counter(stage::CONV_DEGRADED_TO_DIRECT, 1),
                }
            }
            match self.run_backend(rung, win, ww, wh, nx, ny) {
                Ok(out) => {
                    self.health.record_success(rung);
                    return Ok(out);
                }
                Err(e) => {
                    self.health.record_failure(rung);
                    if is_last || !is_degradable(&e) {
                        return Err(e);
                    }
                    degraded = true;
                }
            }
        }
        unreachable!("the ladder's last rung always returns")
    }

    /// Runs one ladder rung under panic containment, ticking its
    /// per-request dispatch counter. A panic anywhere inside the engine
    /// — a real worker bug, a poisoning unwind, an injected chaos fault
    /// on a serial path — surfaces as [`RrsError::WorkerPanicked`], the
    /// degradable kind the ladder retries on.
    fn run_backend(
        &self,
        rung: ConvBackend,
        win: &[f64],
        ww: usize,
        wh: usize,
        nx: usize,
        ny: usize,
    ) -> Result<Grid2<f64>, RrsError> {
        catch_unwind(AssertUnwindSafe(|| match rung {
            ConvBackend::FftOverlapSave => {
                self.ctx.obs.add_counter(stage::CONV_BACKEND_FFT, 1);
                self.fft.convolve_rfft(
                    0,
                    &self.kernel,
                    win,
                    ww,
                    wh,
                    nx,
                    ny,
                    self.ctx.workers,
                    &self.ctx.obs,
                    &self.ctx.budget,
                    &self.ctx.chaos,
                )
            }
            ConvBackend::FftComplexSerial => {
                self.ctx.obs.add_counter(stage::CONV_BACKEND_FFT, 1);
                self.fft.convolve(
                    0,
                    &self.kernel,
                    win,
                    ww,
                    wh,
                    nx,
                    ny,
                    self.ctx.workers,
                    &self.ctx.obs,
                    &self.ctx.budget,
                    &self.ctx.chaos,
                )
            }
            _ => {
                self.ctx.obs.add_counter(stage::CONV_BACKEND_DIRECT, 1);
                self.correlate(win, ww, nx, ny)
            }
        }))
        .unwrap_or_else(|p| Err(RrsError::worker_panicked(0, p.as_ref())))
    }

    /// Correlates a pre-materialised noise window against the kernel
    /// through the configured backend: `win` must be the row-major
    /// `(nx+kw−1) × (ny+kh−1)` window a `nx × ny` request materialises
    /// (see [`ConvolutionGenerator::try_generate`] for its origin).
    /// Public so benchmarks and equivalence suites can time and compare
    /// the correlate stage in isolation from window materialisation.
    pub fn try_correlate_window(
        &self,
        win: &[f64],
        nx: usize,
        ny: usize,
    ) -> Result<Grid2<f64>, RrsError> {
        if nx == 0 || ny == 0 {
            return Err(RrsError::invalid_param(
                "window",
                format!("output window must be non-empty, got {nx}x{ny}"),
            ));
        }
        let (kw, kh) = self.kernel.extent();
        let ww = nx + kw - 1;
        let wh = ny + kh - 1;
        if win.len() != ww * wh {
            return Err(RrsError::shape_mismatch(
                "noise window does not match the requested output",
                format!("{ww}x{wh} = {} samples", ww * wh),
                win.len(),
            ));
        }
        self.ctx.budget.check()?;
        self.dispatch(win, ww, wh, nx, ny)
    }

    /// The inner correlation: `out[ix,iy] = Σ_{a,b} w̃[a,b] ·
    /// win[ix + kw−1−a, iy + kh−1−b]` — convolution with the kernel
    /// flipped, which realises `Σ_j w̃(j)·X(n−j)` on the materialised
    /// window.
    ///
    /// Loop structure: for each output row, each kernel row contributes a
    /// sub-sum `s_row` accumulated *elementwise over output columns* —
    /// `s_row[ix] += w̃[a,b]·win[ix + kw−1−a]` with `ix` innermost over
    /// contiguous, independent lanes, which the compiler autovectorizes.
    /// Per output sample the floating-point operation sequence (kernel
    /// row sub-sum in ascending `a`, then `acc += s` in ascending `b`) is
    /// exactly the historical scalar loop's, so output stays bit-identical
    /// to every seed release.
    fn correlate(&self, win: &[f64], ww: usize, nx: usize, ny: usize) -> Result<Grid2<f64>, RrsError> {
        let (kw, kh) = self.kernel.extent();
        let kernel = self.kernel.weights();
        let mut out = Grid2::zeros(nx, ny);
        let out_slice = out.as_mut_slice();
        let span = self.ctx.obs.start(stage::CORRELATE);
        rrs_par::try_par_row_chunks_mut_chaos(
            out_slice,
            nx,
            self.ctx.workers,
            &self.ctx.obs,
            &self.ctx.budget,
            &self.ctx.chaos,
            |iy0, chunk| {
                let mut s_row = vec![0.0f64; nx];
                for (row_off, row) in chunk.chunks_mut(nx).enumerate() {
                    let iy = iy0 + row_off;
                    // `row` starts zeroed and plays the per-sample
                    // accumulator; adding each kernel row's sub-sum in
                    // ascending `b` preserves the scalar op order.
                    for b in 0..kh {
                        let krow = kernel.row(b);
                        let wrow = &win[(iy + kh - 1 - b) * ww..][..ww];
                        s_row.fill(0.0);
                        for (a, &kv) in krow.iter().enumerate() {
                            // Σ_a w̃[a,b] · win[ix + kw−1−a]: the reversed
                            // window index becomes a forward slice offset.
                            let wseg = &wrow[kw - 1 - a..][..nx];
                            for (s, &w) in s_row.iter_mut().zip(wseg) {
                                *s += kv * w;
                            }
                        }
                        for (slot, &s) in row.iter_mut().zip(&s_row) {
                            *slot += s;
                        }
                    }
                }
                let mut shard = self.ctx.obs.shard();
                shard.add(stage::CORRELATE_SAMPLES, chunk.len() as u64);
                self.ctx.obs.absorb(shard);
            },
        )?;
        self.ctx.obs.finish(span);
        Ok(out)
    }

    /// Fallible [`ConvolutionGenerator::convolve_periodic`]: additionally
    /// rejects an empty noise grid and a kernel whose extent exceeds the
    /// grid (wrap-around would fold the kernel onto itself and the result
    /// would no longer carry the prescribed statistics).
    pub fn try_convolve_periodic(&self, noise: &Grid2<f64>) -> Result<Grid2<f64>, RrsError> {
        let (nx, ny) = noise.shape();
        let (kw, kh) = self.kernel.extent();
        if nx == 0 || ny == 0 {
            return Err(RrsError::invalid_param(
                "noise",
                format!("noise grid must be non-empty, got {nx}x{ny}"),
            ));
        }
        if kw > nx || kh > ny {
            return Err(RrsError::shape_mismatch(
                "kernel larger than the noise grid",
                format!("kernel extent at most {nx}x{ny}"),
                format!("{kw}x{kh}"),
            ));
        }
        self.ctx.budget.check()?;
        self.admit("periodic convolution", nx as u128 * ny as u128)?;
        let (ox, oy) = self.kernel.origin();
        let kernel = self.kernel.weights();
        let mut out = Grid2::zeros(nx, ny);
        let out_slice = out.as_mut_slice();
        let span = self.ctx.obs.start(stage::CORRELATE);
        rrs_par::try_par_row_chunks_mut_chaos(
            out_slice,
            nx,
            self.ctx.workers,
            &self.ctx.obs,
            &self.ctx.budget,
            &self.ctx.chaos,
            |iy0, chunk| {
                for (row_off, row) in chunk.chunks_mut(nx).enumerate() {
                    let iy = iy0 + row_off;
                    for (ix, slot) in row.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for b in 0..kh {
                            let jy = oy + b as i64;
                            let sy = (iy as i64 - jy).rem_euclid(ny as i64) as usize;
                            let krow = kernel.row(b);
                            for (a, &kv) in krow.iter().enumerate() {
                                let jx = ox + a as i64;
                                let sx = (ix as i64 - jx).rem_euclid(nx as i64) as usize;
                                acc += kv * *noise.get(sx, sy);
                            }
                        }
                        *slot = acc;
                    }
                }
                let mut shard = self.ctx.obs.shard();
                shard.add(stage::CORRELATE_SAMPLES, chunk.len() as u64);
                self.ctx.obs.absorb(shard);
            },
        )?;
        self.ctx.obs.finish(span);
        Ok(out)
    }

    /// Periodic convolution against an explicit `Nx × Ny` noise grid
    /// (wrap-around indexing): `f[n] = Σ_j w̃[j] · X[(n−j) mod N]`.
    ///
    /// With the full-size kernel and `X = DFT(u)/√(NxNy)` this reproduces
    /// the direct DFT method sample-for-sample.
    ///
    /// # Panics
    /// Panics on an empty noise grid or a kernel larger than it. Fallible
    /// callers use [`ConvolutionGenerator::try_convolve_periodic`].
    pub fn convolve_periodic(&self, noise: &Grid2<f64>) -> Grid2<f64> {
        self.try_convolve_periodic(noise).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectDftGenerator;
    use crate::hermitian::hermitian_gaussian_array;
    use rrs_fft::{Direction, Fft2d};
    use rrs_spectrum::{Gaussian, GridSpec, SurfaceParams};
    use rrs_rng::Xoshiro256pp;

    #[test]
    fn window_shape_and_determinism() {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(1);
        let noise = NoiseField::new(5);
        let a = gen.generate(&noise, Window::sized(32, 16));
        assert_eq!(a.shape(), (32, 16));
        let b = gen.generate(&noise, Window::sized(32, 16));
        assert_eq!(a, b);
    }

    #[test]
    fn windows_tile_seamlessly() {
        // The paper's "successive computations" claim, exactly.
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(1);
        let noise = NoiseField::new(11);
        let whole = gen.generate(&noise, Window::sized(64, 32));
        let left = gen.generate(&noise, Window::sized(32, 32));
        let right = gen.generate(&noise, Window::new(32, 0, 32, 32));
        for iy in 0..32 {
            for ix in 0..32 {
                assert!((*whole.get(ix, iy) - *left.get(ix, iy)).abs() < 1e-12);
                assert!((*whole.get(ix + 32, iy) - *right.get(ix, iy)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn vertical_tiles_are_seamless_too() {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(2);
        let noise = NoiseField::new(13);
        let whole = gen.generate(&noise, Window::new(-5, -5, 24, 48));
        let top = gen.generate(&noise, Window::new(-5, -5 + 24, 24, 24));
        for iy in 0..24 {
            for ix in 0..24 {
                assert!((*whole.get(ix, iy + 24) - *top.get(ix, iy)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let k = ConvolutionKernel::build(&s, KernelSizing::default());
        let noise = NoiseField::new(3);
        let serial = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(1)
            .generate(&noise, Window::sized(48, 48));
        let parallel = ConvolutionGenerator::from_kernel(k)
            .with_workers(5)
            .generate(&noise, Window::sized(48, 48));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn surface_statistics_match_target() {
        let h = 1.5;
        let cl = 6.0;
        let s = Gaussian::new(SurfaceParams::isotropic(h, cl));
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default());
        let f = gen.generate(&NoiseField::new(21), Window::sized(256, 256));
        let measured = f.std_dev();
        let patches = (256.0 / cl) * (256.0 / cl);
        let tol = 4.5 * h / patches.sqrt();
        assert!((measured - h).abs() < tol, "ĥ = {measured} (target {h} ± {tol})");
    }

    #[test]
    fn matches_direct_dft_method_exactly() {
        // Drive both methods with the same Hermitian array u:
        //   direct:      f = DFT(v·u)
        //   convolution: f = w̃ ⊛ X,  X = DFT(u)/√(NxNy)
        // The convolution theorem says these are the same surface.
        let p = SurfaceParams::isotropic(1.3, 5.0);
        let s = Gaussian::new(p);
        let spec = GridSpec::unit(32, 32);
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let u = hermitian_gaussian_array(spec.nx, spec.ny, &mut rng);

        let f_direct = DirectDftGenerator::with_workers(s, spec, 1).generate_from_bins(&u);

        let mut x = u.clone();
        Fft2d::with_workers(spec.nx, spec.ny, 1).process(&mut x, Direction::Forward);
        let scale = 1.0 / ((spec.nx * spec.ny) as f64).sqrt();
        let noise = Grid2::from_vec(
            spec.nx,
            spec.ny,
            x.iter().map(|z| z.re * scale).collect(),
        );
        let kernel = ConvolutionKernel::build_on(&s, spec);
        let f_conv =
            ConvolutionGenerator::from_kernel(kernel).with_workers(1).convolve_periodic(&noise);

        let max_err = f_direct
            .as_slice()
            .iter()
            .zip(f_conv.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_err < 1e-9, "methods disagree by {max_err}");
    }

    #[test]
    fn truncated_kernel_stays_statistically_faithful() {
        let h = 1.0;
        let s = Gaussian::new(SurfaceParams::isotropic(h, 5.0));
        let full = ConvolutionKernel::build(&s, KernelSizing::default());
        let trunc = full.truncated(1e-3);
        assert!(trunc.extent().0 < full.extent().0);
        let f = ConvolutionGenerator::from_kernel(trunc)
            .generate(&NoiseField::new(8), Window::sized(192, 192));
        assert!((f.std_dev() - h).abs() < 0.15, "ĥ = {}", f.std_dev());
    }

    #[test]
    fn empty_window_rejected() {
        // Window construction is where emptiness is rejected now that the
        // positional wrappers are gone.
        let err = Window::try_new(0, 0, 0, 4).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::InvalidParam);
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 3.0));
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default());
        let err = gen.try_correlate_window(&[], 0, 4).unwrap_err();
        assert!(err.to_string().contains("non-empty"), "{err}");
    }

    #[test]
    fn with_context_matches_the_sugar_builders() {
        use crate::context::GenContext;
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let k = ConvolutionKernel::build(&s, KernelSizing::default());
        let noise = NoiseField::new(77);
        let win = Window::new(-3, 9, 20, 12);
        let plans = Arc::new(FftPlanCache::new());
        let sugar = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(2)
            .with_backend(ConvBackend::FftOverlapSave)
            .with_plan_cache(Arc::clone(&plans));
        let ctx = GenContext::new()
            .with_workers(2)
            .with_backend(ConvBackend::FftOverlapSave)
            .with_plan_cache(Arc::clone(&plans));
        let via_ctx = ConvolutionGenerator::from_kernel(k).with_context(ctx);
        assert_eq!(
            sugar.try_generate(&noise, win).unwrap(),
            via_ctx.try_generate(&noise, win).unwrap(),
            "one with_context must equal the chained sugar builders bit-for-bit"
        );
        assert!(Arc::ptr_eq(sugar.plan_cache(), via_ctx.plan_cache()));
        assert_eq!(via_ctx.context().workers(), 2);
        assert_eq!(via_ctx.context().backend(), ConvBackend::FftOverlapSave);
    }

    #[test]
    fn reapplying_a_same_cache_context_keeps_the_fft_engine() {
        use crate::context::GenContext;
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default());
        let same = gen.context().clone().with_workers(3);
        let gen = gen.with_context(same);
        assert_eq!(gen.context().workers(), 3);
        // A context with a different cache swaps the engine's plans.
        let other = Arc::new(FftPlanCache::new());
        let ctx = GenContext::new().with_plan_cache(Arc::clone(&other));
        let gen = gen.with_context(ctx);
        assert!(Arc::ptr_eq(gen.plan_cache(), &other));
    }

    #[test]
    fn budgeted_idle_run_is_bit_identical() {
        use rrs_error::{Budget, CancelToken};
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let k = ConvolutionKernel::build(&s, KernelSizing::default());
        let noise = NoiseField::new(41);
        let win = Window::new(-7, 3, 40, 28);
        let plain = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(3)
            .generate(&noise, win);
        let budget = Budget::unlimited()
            .with_cancel_token(CancelToken::new())
            .with_timeout(std::time::Duration::from_secs(3600))
            .with_max_bytes(usize::MAX);
        let budgeted = ConvolutionGenerator::from_kernel(k)
            .with_workers(3)
            .with_budget(budget)
            .try_generate(&noise, win)
            .unwrap();
        assert_eq!(plain, budgeted, "armed-but-idle budget must not change a single bit");
    }

    #[test]
    fn pre_cancelled_request_fails_before_allocating() {
        use rrs_error::{Budget, CancelToken};
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let token = CancelToken::new();
        token.cancel();
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default())
            .with_budget(Budget::unlimited().with_cancel_token(token));
        // A window this large would abort the process if the generator
        // tried to materialise it; returning Cancelled proves the
        // pre-flight check fires first.
        let win = Window::new(0, 0, 1 << 30, 1 << 30);
        let err = gen.try_generate(&NoiseField::new(1), win).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::Cancelled);
    }

    #[test]
    fn admission_rejects_oversized_requests_before_allocating() {
        use rrs_error::Budget;
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let rec = Recorder::enabled();
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default())
            .with_recorder(rec.clone())
            .with_budget(Budget::unlimited().with_max_bytes(1 << 20));
        // Would abort the allocator if admission did not fire first.
        let win = Window::new(0, 0, 1 << 30, 1 << 30);
        let err = gen.try_generate(&NoiseField::new(1), win).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::BudgetExceeded);
        assert!(err.to_string().contains("convolution generation"), "{err}");
        assert_eq!(rec.report().counter(stage::BUDGET_REJECT), 1);
        // A window that fits the ceiling still generates.
        let small = Window::sized(8, 8);
        assert_eq!(gen.try_generate(&NoiseField::new(1), small).unwrap().shape(), (8, 8));
    }

    #[test]
    fn budgeted_periodic_convolution_admits_and_matches() {
        use rrs_error::Budget;
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let spec = GridSpec::unit(16, 16);
        let kernel = ConvolutionKernel::build_on(&s, spec);
        let noise = Grid2::from_vec(16, 16, (0..256).map(|i| (i as f64).sin()).collect());
        let plain = ConvolutionGenerator::from_kernel(kernel.clone())
            .with_workers(1)
            .convolve_periodic(&noise);
        let gen = ConvolutionGenerator::from_kernel(kernel)
            .with_workers(1)
            .with_budget(Budget::unlimited().with_max_bytes(16 * 16 * 8));
        assert_eq!(gen.try_convolve_periodic(&noise).unwrap(), plain);
        let tight = gen.with_budget(Budget::unlimited().with_max_bytes(16 * 16 * 8 - 1));
        let err = tight.try_convolve_periodic(&noise).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::BudgetExceeded);
    }

    #[test]
    fn observed_run_is_bit_identical_and_reports_stages() {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
        let plain = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(2);
        let rec = Recorder::enabled();
        let observed = ConvolutionGenerator::new_observed(&s, KernelSizing::default(), rec.clone())
            .with_workers(2);
        let noise = NoiseField::new(19);
        let win = Window::new(-4, 6, 40, 24);
        assert_eq!(plain.generate(&noise, win), observed.generate(&noise, win));
        let report = rec.report();
        for name in [
            stage::KERNEL_AMPLITUDE,
            stage::KERNEL_DFT,
            stage::KERNEL_PERMUTE,
            stage::WINDOW_MATERIALISE,
            stage::CORRELATE,
        ] {
            assert!(report.durations.contains_key(name), "missing stage {name}");
        }
        assert_eq!(report.counter(stage::CORRELATE_SAMPLES), 40 * 24);
        assert!(report.counter(stage::PAR_BANDS) >= 2);
    }

    #[test]
    fn injected_fft_faults_degrade_to_direct_bit_identical() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule, FaultSite};
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let k = ConvolutionKernel::build(&s, KernelSizing::default());
        let noise = NoiseField::new(41);
        let win = Window::sized(24, 24);
        let clean = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(1)
            .with_backend(ConvBackend::Direct)
            .generate(&noise, win);
        // Serial tile loops visit FftTile deterministically: the
        // overlap-save rung faults at visit 0, the complex-serial rung at
        // visit 1 (one fault a panic, to prove rung-level containment),
        // and the Direct rung — the reference loop — serves the request.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(1)
                .with_fault(FaultSite::FftTile, FaultKind::Error, 0)
                .with_fault(FaultSite::FftTile, FaultKind::Panic, 1),
        );
        let rec = Recorder::enabled();
        let gen = ConvolutionGenerator::from_kernel(k)
            .with_workers(1)
            .with_backend(ConvBackend::FftOverlapSave)
            .with_recorder(rec.clone())
            .with_chaos(chaos.clone());
        let got = gen.try_generate(&noise, win).unwrap();
        assert_eq!(got, clean, "degraded output must be bit-identical to clean Direct");
        let report = rec.report();
        assert_eq!(report.counter(stage::CONV_DEGRADED_TO_FFT_SERIAL), 1);
        assert_eq!(report.counter(stage::CONV_DEGRADED_TO_DIRECT), 1);
        assert_eq!(chaos.visits(FaultSite::FftTile), 2, "one poll per failed rung");
        assert_eq!(chaos.injected(), 2);
        let health = gen.backend_health();
        assert_eq!(health.consecutive_failures(ConvBackend::FftOverlapSave), 1);
        assert_eq!(health.consecutive_failures(ConvBackend::FftComplexSerial), 1);
        assert_eq!(health.consecutive_failures(ConvBackend::Direct), 0);

        // The schedule is exhausted: the same generator now serves the
        // FFT path cleanly and the breaker closes again.
        let again = gen.try_generate(&noise, win).unwrap();
        let scale = clean.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (a, b) in again.as_slice().iter().zip(clean.as_slice()) {
            assert!((a - b).abs() <= 1e-9 * scale);
        }
        assert_eq!(gen.backend_health().consecutive_failures(ConvBackend::FftOverlapSave), 0);
    }

    #[test]
    fn one_rung_degradation_matches_the_serial_fft_engine_exactly() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule, FaultSite};
        let s = Gaussian::new(SurfaceParams::isotropic(1.2, 5.0));
        let k = ConvolutionKernel::build(&s, KernelSizing::default());
        let noise = NoiseField::new(43);
        let win = Window::sized(20, 28);
        let serial_fft = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(1)
            .with_backend(ConvBackend::FftComplexSerial)
            .generate(&noise, win);
        let chaos = ChaosInjector::new(
            FaultSchedule::new(2).with_fault(FaultSite::FftTile, FaultKind::Error, 0),
        );
        let got = ConvolutionGenerator::from_kernel(k)
            .with_workers(1)
            .with_backend(ConvBackend::FftOverlapSave)
            .with_chaos(chaos)
            .try_generate(&noise, win)
            .unwrap();
        assert_eq!(
            got, serial_fft,
            "falling one rung must land on the serial FFT engine bit-for-bit"
        );
    }

    #[test]
    fn non_degradable_errors_surface_unchanged() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule, FaultSite};
        // A Cancel fault reflects the request, not the engine: no ladder
        // retry, no degradation counters.
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let chaos = ChaosInjector::new(
            FaultSchedule::new(3).with_fault(FaultSite::FftTile, FaultKind::Cancel, 0),
        );
        let rec = Recorder::enabled();
        let gen = ConvolutionGenerator::new(&s, KernelSizing::default())
            .with_workers(1)
            .with_backend(ConvBackend::FftOverlapSave)
            .with_recorder(rec.clone())
            .with_chaos(chaos);
        let err = gen.try_generate(&NoiseField::new(5), Window::sized(16, 16)).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::Cancelled);
        let report = rec.report();
        assert_eq!(report.counter(stage::CONV_DEGRADED_TO_FFT_SERIAL), 0);
        assert_eq!(report.counter(stage::CONV_DEGRADED_TO_DIRECT), 0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_every_16th() {
        let h = BackendHealth::new();
        let b = ConvBackend::FftOverlapSave;
        assert!(h.should_try(b));
        for _ in 0..BREAKER_THRESHOLD {
            h.record_failure(b);
        }
        assert!(h.is_open(b));
        let allowed = (0..BREAKER_PROBE_EVERY).filter(|_| h.should_try(b)).count();
        assert_eq!(allowed, 1, "exactly one probe per {BREAKER_PROBE_EVERY} skips");
        h.record_success(b);
        assert!(!h.is_open(b));
        assert!(h.should_try(b));
    }

    #[test]
    fn open_breakers_skip_straight_to_direct_but_never_fail_a_request() {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let k = ConvolutionKernel::build(&s, KernelSizing::default());
        let noise = NoiseField::new(47);
        let win = Window::sized(18, 18);
        let clean = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(1)
            .with_backend(ConvBackend::Direct)
            .generate(&noise, win);
        let rec = Recorder::enabled();
        let gen = ConvolutionGenerator::from_kernel(k)
            .with_workers(1)
            .with_backend(ConvBackend::FftOverlapSave)
            .with_recorder(rec.clone());
        for _ in 0..BREAKER_THRESHOLD {
            gen.backend_health().record_failure(ConvBackend::FftOverlapSave);
            gen.backend_health().record_failure(ConvBackend::FftComplexSerial);
        }
        let got = gen.try_generate(&noise, win).unwrap();
        assert_eq!(got, clean, "Direct always serves when upper rungs are open");
        let report = rec.report();
        assert_eq!(report.counter(stage::CONV_BREAKER_SKIPS), 2);
        assert_eq!(report.counter(stage::CONV_DEGRADED_TO_DIRECT), 1);
        assert_eq!(report.counter(stage::CONV_BACKEND_DIRECT), 1);
        assert_eq!(report.counter(stage::CONV_BACKEND_FFT), 0);
    }
}
