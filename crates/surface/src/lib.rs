//! Homogeneous random rough surface generation (paper §2.3–2.4).
//!
//! Two generation methods, exactly as the paper structures them:
//!
//! * **Direct DFT method** ([`direct`]): sample the amplitude array
//!   `v = √w`, multiply by a Hermitian-symmetric complex Gaussian array `u`
//!   (eqns 19–28), and DFT the product — `f = DFT(v·u)` (eqn 30). One
//!   shot, periodic, fixed-size.
//! * **Convolution method** ([`conv`], [`kernel`]): precompute the real
//!   even kernel `w̃ = DFT(v)/√(Nx·Ny)` re-centred per eqns (34–35), then
//!   synthesise `f[n] = Σ_k w̃[k]·X[n−k]` (eqn 36) against an i.i.d.
//!   `N(0,1)` lattice [`NoiseField`]. Because `X` is a *pure function* of
//!   `(seed, ix, iy)`, any window of an unbounded surface can be generated
//!   independently and seamlessly ([`stream`]), kernels can be truncated
//!   for speed, and — the point of the paper — the kernel may vary from
//!   sample to sample (see `rrs-inhomo`).
//!
//! The two methods are linked by the convolution theorem; the test suite
//! verifies they produce *identical* surfaces when driven by the same
//! Hermitian array, and statistically equivalent ensembles otherwise.

#![warn(missing_docs)]

pub mod context;
pub mod conv;
pub mod direct;
mod fftconv;
pub mod line;
pub mod hermitian;
pub mod kernel;
pub mod noise;
pub mod stream;

pub use context::GenContext;
pub use conv::{BackendHealth, ConvBackend, ConvolutionGenerator};

#[doc(hidden)]
pub mod internal {
    //! Workspace-internal seam: the overlap-save engine, shared with
    //! `rrs-inhomo` so pure-region windows dispatch to the same FFT path
    //! as the homogeneous generator. Not a stable public API.
    pub use crate::fftconv::{effective_workers, plan_tiles, FftEngine, TileShape};
}
pub use direct::DirectDftGenerator;
pub use kernel::{ConvolutionKernel, KernelSizing};
pub use line::{LineGenerator, LineKernel};
pub use noise::NoiseField;
pub use rrs_error::RrsError;
pub use stream::StripGenerator;
