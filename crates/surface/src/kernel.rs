//! The convolution kernel `w̃` (paper eqns 34–35).
//!
//! Transforming the amplitude array once gives a real, even, compactly
//! concentrated kernel
//!
//! ```text
//! w̃ = DFT(v) / √(Nx·Ny),   then re-centred (fftshift, eqn 35)
//! ```
//!
//! whose self-correlation equals the surface autocorrelation:
//! `Σ_k w̃[k]·w̃[k+d] = ρ(d)`, and in particular `Σ w̃² = h²`. Convolving it
//! with unit lattice noise therefore produces a surface with exactly the
//! prescribed second-order statistics (eqn 36).
//!
//! Kernels support *truncation* (paper §2.4: "we can reduce the size of
//! the weighting array to save computation time when the correlation
//! length of a RRS is small"): the smallest centred window holding all but
//! a requested fraction of the kernel energy.

use rrs_error::RrsError;
use rrs_fft::spectral::fftshift2;
use rrs_fft::{Direction, FftPlanCache};
use rrs_grid::Grid2;
use rrs_num::Complex64;
use rrs_obs::{stage, Recorder};
use rrs_spectrum::{amplitude_array, GridSpec, Spectrum, SurfaceParams};

/// How to choose the kernel lattice for a spectrum.
///
/// `#[non_exhaustive]`: sizing policies are an open set (per-axis
/// overrides, memory budgets); match with a wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum KernelSizing {
    /// Use this lattice exactly.
    Explicit(GridSpec),
    /// Size each axis to `factor × cl / spacing`, rounded up to the next
    /// even integer and clamped to `[min, max]` samples, at unit spacing.
    Auto {
        /// Support factor in correlation lengths (8 is a safe default).
        factor: f64,
        /// Minimum lattice size per axis.
        min: usize,
        /// Maximum lattice size per axis.
        max: usize,
    },
}

impl Default for KernelSizing {
    fn default() -> Self {
        Self::Auto { factor: 8.0, min: 16, max: 2048 }
    }
}

impl KernelSizing {
    /// Resolves the lattice for the given surface parameters.
    pub fn resolve(&self, params: SurfaceParams) -> GridSpec {
        match *self {
            Self::Explicit(spec) => spec,
            Self::Auto { factor, min, max } => {
                let pick = |cl: f64| -> usize {
                    let raw = (factor * cl).ceil() as usize;
                    let even = raw + raw % 2;
                    even.clamp(min.max(2), max)
                };
                GridSpec::unit(pick(params.clx), pick(params.cly))
            }
        }
    }
}

/// A centred real convolution kernel: `weights[(jy−y0)·w + (jx−x0)]` is
/// the coefficient at offset `(jx, jy)`, `x0 ≤ jx < x0 + w`.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvolutionKernel {
    weights: Grid2<f64>,
    x0: i64,
    y0: i64,
}

impl ConvolutionKernel {
    /// Builds the kernel of `spectrum` on the lattice chosen by `sizing`.
    pub fn build<S: Spectrum + ?Sized>(spectrum: &S, sizing: KernelSizing) -> Self {
        Self::build_observed(spectrum, sizing, &Recorder::disabled())
    }

    /// [`ConvolutionKernel::build`] with construction stages (amplitude
    /// evaluation, DFT, re-centring permutation) timed into `obs`.
    pub fn build_observed<S: Spectrum + ?Sized>(
        spectrum: &S,
        sizing: KernelSizing,
        obs: &Recorder,
    ) -> Self {
        let spec = sizing.resolve(spectrum.params());
        Self::build_on_observed(spectrum, spec, obs)
    }

    /// Builds the kernel on an explicit lattice (eqns 34–35 verbatim).
    pub fn build_on<S: Spectrum + ?Sized>(spectrum: &S, spec: GridSpec) -> Self {
        Self::build_on_observed(spectrum, spec, &Recorder::disabled())
    }

    /// [`ConvolutionKernel::build_on`] with construction stages timed
    /// into `obs`.
    pub fn build_on_observed<S: Spectrum + ?Sized>(
        spectrum: &S,
        spec: GridSpec,
        obs: &Recorder,
    ) -> Self {
        let v = obs.time(stage::KERNEL_AMPLITUDE, || amplitude_array(spectrum, spec));
        let (nx, ny) = (spec.nx, spec.ny);
        let span = obs.start(stage::KERNEL_DFT);
        let mut buf: Vec<Complex64> =
            v.as_slice().iter().map(|&x| Complex64::from_re(x)).collect();
        // Inhomogeneous layouts build several kernels on one lattice; the
        // process-wide plan cache transforms them with shared tables.
        FftPlanCache::global().plan(nx, ny, 1).process(&mut buf, Direction::Forward);
        obs.finish(span);
        let span = obs.start(stage::KERNEL_PERMUTE);
        let norm = 1.0 / ((nx * ny) as f64).sqrt();
        let mut weights: Vec<f64> = buf.iter().map(|z| z.re * norm).collect();
        debug_assert!(
            buf.iter().map(|z| z.im.abs()).fold(0.0, f64::max) < 1e-9,
            "kernel transform must be real (v is even)"
        );
        // Eqn (35): permute so the kernel peak sits at the array centre.
        fftshift2(&mut weights, nx, ny);
        obs.finish(span);
        Self {
            weights: Grid2::from_vec(nx, ny, weights),
            x0: -((nx / 2) as i64),
            y0: -((ny / 2) as i64),
        }
    }

    /// Builds a kernel directly from explicit centred weights (used by the
    /// inhomogeneous blender).
    pub fn from_parts(weights: Grid2<f64>, x0: i64, y0: i64) -> Self {
        Self { weights, x0, y0 }
    }

    /// The centred weight grid.
    pub fn weights(&self) -> &Grid2<f64> {
        &self.weights
    }

    /// Offset of weight element `(0, 0)`, i.e. the most negative lags.
    pub fn origin(&self) -> (i64, i64) {
        (self.x0, self.y0)
    }

    /// Kernel extent `(w, h)` in samples.
    pub fn extent(&self) -> (usize, usize) {
        self.weights.shape()
    }

    /// Total kernel energy `Σ w̃²` — equals the surface variance `h²` (up
    /// to spectral truncation).
    pub fn energy(&self) -> f64 {
        let mut s = rrs_num::KahanSum::new();
        for &v in self.weights.as_slice() {
            s.add(v * v);
        }
        s.value()
    }

    /// Kernel self-correlation at integer lag `(dx, dy)`:
    /// `Σ_k w̃[k]·w̃[k+d]`, which must reproduce `ρ(dx, dy)`.
    pub fn self_correlation(&self, dx: i64, dy: i64) -> f64 {
        let (w, h) = self.extent();
        let mut s = rrs_num::KahanSum::new();
        for jy in 0..h as i64 {
            let ky = jy + dy;
            if ky < 0 || ky >= h as i64 {
                continue;
            }
            for jx in 0..w as i64 {
                let kx = jx + dx;
                if kx < 0 || kx >= w as i64 {
                    continue;
                }
                s.add(
                    *self.weights.get(jx as usize, jy as usize)
                        * *self.weights.get(kx as usize, ky as usize),
                );
            }
        }
        s.value()
    }

    /// Returns the smallest centred truncation of the kernel that keeps
    /// the relative root-energy loss at or below `epsilon`.
    ///
    /// The truncated kernel keeps the aspect ratio of the full one and has
    /// odd extents `(2rx+1) × (2ry+1)` so it stays exactly centred.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`. Fallible callers use
    /// [`ConvolutionKernel::try_truncated`].
    pub fn truncated(&self, epsilon: f64) -> Self {
        self.try_truncated(epsilon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ConvolutionKernel::truncated`]: the energy budget
    /// `epsilon` must be finite and strictly inside `(0, 1)` (NaN is
    /// rejected too — both comparisons fail on it).
    pub fn try_truncated(&self, epsilon: f64) -> Result<Self, RrsError> {
        self.try_truncated_observed(epsilon, &Recorder::disabled())
    }

    /// [`ConvolutionKernel::try_truncated`] with the truncation search
    /// (energy scan + binary search + crop) timed into `obs`.
    pub fn try_truncated_observed(
        &self,
        epsilon: f64,
        obs: &Recorder,
    ) -> Result<Self, RrsError> {
        let span = obs.start(stage::KERNEL_TRUNCATE);
        let out = self.truncate_impl(epsilon);
        obs.finish(span);
        out
    }

    fn truncate_impl(&self, epsilon: f64) -> Result<Self, RrsError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(RrsError::invalid_param(
                "epsilon",
                format!("epsilon must be in (0,1), got {epsilon}"),
            ));
        }
        let total = self.energy();
        if total == 0.0 {
            return Ok(self.clone());
        }
        let (w, h) = self.extent();
        let (hx, hy) = ((w / 2) as i64, (h / 2) as i64);
        // Binary search the scale factor t: window half-widths
        // (ceil(t·hx), ceil(t·hy)).
        let ok = |t: f64| -> bool {
            let rx = ((t * hx as f64).ceil() as i64).min(hx - 1).max(0);
            let ry = ((t * hy as f64).ceil() as i64).min(hy - 1).max(0);
            self.window_energy(rx, ry) >= total * (1.0 - epsilon * epsilon)
        };
        if !ok(1.0) {
            // Even the largest centred odd window can't hold the energy
            // (it drops the outermost rows) — keep the full kernel.
            return Ok(self.clone());
        }
        let mut lo = 0.0;
        let mut hi = 1.0;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if ok(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let rx = ((hi * hx as f64).ceil() as i64).min(hx - 1).max(0);
        let ry = ((hi * hy as f64).ceil() as i64).min(hy - 1).max(0);
        Ok(self.crop(rx, ry))
    }

    /// Energy within the centred window of half-widths `(rx, ry)`.
    fn window_energy(&self, rx: i64, ry: i64) -> f64 {
        let mut s = rrs_num::KahanSum::new();
        for jy in -ry..=ry {
            for jx in -rx..=rx {
                let v = self.weight_at(jx, jy);
                s.add(v * v);
            }
        }
        s.value()
    }

    /// The weight at offset `(jx, jy)`, zero outside the stored extent.
    #[inline]
    pub fn weight_at(&self, jx: i64, jy: i64) -> f64 {
        let ix = jx - self.x0;
        let iy = jy - self.y0;
        let (w, h) = self.extent();
        if ix < 0 || iy < 0 || ix >= w as i64 || iy >= h as i64 {
            return 0.0;
        }
        *self.weights.get(ix as usize, iy as usize)
    }

    /// Crops to the centred window of half-widths `(rx, ry)`, producing an
    /// odd-extent kernel.
    pub fn crop(&self, rx: i64, ry: i64) -> Self {
        let w = (2 * rx + 1) as usize;
        let h = (2 * ry + 1) as usize;
        let weights = Grid2::from_fn(w, h, |ix, iy| {
            self.weight_at(ix as i64 - rx, iy as i64 - ry)
        });
        Self { weights, x0: -rx, y0: -ry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::{Exponential, Gaussian, PowerLaw};

    fn gaussian_kernel(h: f64, cl: f64, n: usize) -> ConvolutionKernel {
        ConvolutionKernel::build_on(
            &Gaussian::new(SurfaceParams::isotropic(h, cl)),
            GridSpec::unit(n, n),
        )
    }

    #[test]
    fn energy_equals_variance() {
        for &(h, cl) in &[(1.0, 5.0), (2.0, 10.0), (0.5, 3.0)] {
            let k = gaussian_kernel(h, cl, 128);
            assert!((k.energy() - h * h).abs() < 1e-6 * h * h, "h={h}: E = {}", k.energy());
        }
    }

    #[test]
    fn kernel_is_centred_and_even() {
        let k = gaussian_kernel(1.0, 6.0, 64);
        assert_eq!(k.origin(), (-32, -32));
        // Peak at the origin offset.
        let peak = k.weight_at(0, 0);
        for &(jx, jy) in &[(1i64, 0i64), (0, 1), (5, 5), (-7, 3)] {
            assert!(peak >= k.weight_at(jx, jy), "peak must dominate ({jx},{jy})");
            // Even symmetry.
            assert!((k.weight_at(jx, jy) - k.weight_at(-jx, -jy)).abs() < 1e-12);
        }
    }

    #[test]
    fn self_correlation_reproduces_autocorrelation() {
        // The defining property of the convolution method: kernel
        // self-correlation at lag d equals ρ(d).
        let h = 1.5;
        let cl = 8.0;
        let s = Gaussian::new(SurfaceParams::isotropic(h, cl));
        let k = ConvolutionKernel::build_on(&s, GridSpec::unit(128, 128));
        for &(dx, dy) in &[(0i64, 0i64), (4, 0), (0, 4), (8, 0), (6, 6), (16, 0)] {
            let got = k.self_correlation(dx, dy);
            let expect = s.autocorrelation(dx as f64, dy as f64);
            assert!(
                (got - expect).abs() < 2e-3 * h * h,
                "lag ({dx},{dy}): {got} vs {expect}"
            );
        }
    }

    #[test]
    fn self_correlation_exponential_spectrum() {
        let s = Exponential::new(SurfaceParams::isotropic(1.0, 10.0));
        let k = ConvolutionKernel::build_on(&s, GridSpec::unit(256, 256));
        for &(dx, dy) in &[(0i64, 0i64), (5, 0), (0, 10), (10, 10)] {
            let got = k.self_correlation(dx, dy);
            let expect = s.autocorrelation(dx as f64, dy as f64);
            assert!((got - expect).abs() < 0.05, "lag ({dx},{dy}): {got} vs {expect}");
        }
    }

    #[test]
    fn self_correlation_power_law_spectrum() {
        let s = PowerLaw::new(SurfaceParams::isotropic(1.0, 10.0), 2.0);
        let k = ConvolutionKernel::build_on(&s, GridSpec::unit(256, 256));
        for &(dx, dy) in &[(0i64, 0i64), (5, 0), (0, 8)] {
            let got = k.self_correlation(dx, dy);
            let expect = s.autocorrelation(dx as f64, dy as f64);
            assert!((got - expect).abs() < 0.05, "lag ({dx},{dy}): {got} vs {expect}");
        }
    }

    #[test]
    fn truncation_keeps_energy_budget() {
        let k = gaussian_kernel(1.0, 5.0, 128);
        let full = k.energy();
        for &eps in &[0.1, 0.01, 1e-3] {
            let t = k.truncated(eps);
            let kept = t.energy();
            let loss = ((full - kept).max(0.0) / full).sqrt();
            assert!(loss <= eps * 1.01, "eps={eps}: loss {loss}");
            let (w, h) = t.extent();
            assert!(w % 2 == 1 && h % 2 == 1, "odd extents");
        }
    }

    #[test]
    fn tighter_epsilon_gives_bigger_kernel() {
        let k = gaussian_kernel(1.0, 5.0, 128);
        let loose = k.truncated(0.05).extent().0;
        let tight = k.truncated(1e-4).extent().0;
        assert!(tight > loose, "tight {tight} vs loose {loose}");
        // Both are far smaller than the full 128 support for cl=5.
        assert!(tight < 128);
    }

    #[test]
    fn truncated_kernel_preserves_statistics() {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
        let k = ConvolutionKernel::build_on(&s, GridSpec::unit(128, 128)).truncated(1e-3);
        for &(dx, dy) in &[(0i64, 0i64), (3, 0), (0, 5)] {
            let got = k.self_correlation(dx, dy);
            let expect = s.autocorrelation(dx as f64, dy as f64);
            assert!((got - expect).abs() < 5e-3, "lag ({dx},{dy})");
        }
    }

    #[test]
    fn auto_sizing_scales_with_correlation_length() {
        let small = KernelSizing::default().resolve(SurfaceParams::isotropic(1.0, 4.0));
        let large = KernelSizing::default().resolve(SurfaceParams::isotropic(1.0, 40.0));
        assert!(large.nx > small.nx);
        assert_eq!(small.nx % 2, 0);
        // Anisotropic: each axis sized independently.
        let aniso = KernelSizing::default().resolve(SurfaceParams::new(1.0, 4.0, 40.0));
        assert!(aniso.ny > aniso.nx);
    }

    #[test]
    fn explicit_sizing_is_respected() {
        let spec = GridSpec::unit(32, 64);
        let k = ConvolutionKernel::build(
            &Gaussian::new(SurfaceParams::isotropic(1.0, 5.0)),
            KernelSizing::Explicit(spec),
        );
        assert_eq!(k.extent(), (32, 64));
    }

    #[test]
    fn weight_at_outside_extent_is_zero() {
        let k = gaussian_kernel(1.0, 4.0, 32);
        assert_eq!(k.weight_at(100, 0), 0.0);
        assert_eq!(k.weight_at(0, -100), 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn bad_epsilon_rejected() {
        gaussian_kernel(1.0, 4.0, 32).truncated(1.5);
    }
}
