//! Hermitian-symmetric complex Gaussian arrays (paper §2.3, eqns 19–28).
//!
//! The direct DFT method needs a complex array `u` on the `Nx × Ny` bin
//! lattice such that
//!
//! 1. `DFT(u)` is purely **real** — which requires the Hermitian symmetry
//!    `u[−m] = conj(u[m])` (indices mod N), and
//! 2. every bin has unit second moment, `E|u[m]|² = 1`, so that
//!    multiplying by `v = √w` gives the prescribed spectrum.
//!
//! The paper writes this construction out bin-by-bin with its `{X}`/`{Y}`
//! Gaussian sets and `1/√2` factors (eqns 20–28); the published OCR of
//! those index tables is unreadable, so we implement the equivalent
//! standard construction: walk every conjugate bin pair `{m, −m}` once;
//! at paired bins set `u[m] = (a + jb)/√2`, `u[−m] = (a − jb)/√2`; at the
//! four self-conjugate bins (`0` or Nyquist on each axis) set `u[m] = a`
//! (real, unit variance). Both properties then hold *exactly*, which the
//! tests verify.

use rrs_num::Complex64;
use rrs_rng::{BoxMuller, GaussianSource, RandomSource};

/// Fills the `nx × ny` row-major bin lattice with a Hermitian-symmetric
/// unit-variance complex Gaussian array.
///
/// # Panics
/// Panics unless `nx`, `ny` are even and ≥ 2 (the paper's `2M` lattice).
pub fn hermitian_gaussian_array<R: RandomSource + ?Sized>(
    nx: usize,
    ny: usize,
    rng: &mut R,
) -> Vec<Complex64> {
    assert!(nx >= 2 && nx % 2 == 0, "nx must be even and >= 2, got {nx}");
    assert!(ny >= 2 && ny % 2 == 0, "ny must be even and >= 2, got {ny}");
    let mut gauss = BoxMuller::new();
    let mut u = vec![Complex64::ZERO; nx * ny];
    let mut visited = vec![false; nx * ny];
    let inv_sqrt2 = core::f64::consts::FRAC_1_SQRT_2;
    for my in 0..ny {
        for mx in 0..nx {
            let i = my * nx + mx;
            if visited[i] {
                continue;
            }
            let cx = (nx - mx) % nx;
            let cy = (ny - my) % ny;
            let j = cy * nx + cx;
            if i == j {
                // Self-conjugate bin: must be real with unit variance.
                u[i] = Complex64::from_re(gauss.sample(rng));
                visited[i] = true;
            } else {
                let (a, b) = gauss.sample_pair(rng);
                u[i] = Complex64::new(a * inv_sqrt2, b * inv_sqrt2);
                u[j] = Complex64::new(a * inv_sqrt2, -b * inv_sqrt2);
                visited[i] = true;
                visited[j] = true;
            }
        }
    }
    u
}

/// Checks the Hermitian symmetry `u[−m] = conj(u[m])` exactly; used by
/// tests and by debug assertions in the direct generator.
pub fn is_hermitian(u: &[Complex64], nx: usize, ny: usize) -> bool {
    assert_eq!(u.len(), nx * ny);
    for my in 0..ny {
        for mx in 0..nx {
            let a = u[my * nx + mx];
            let b = u[((ny - my) % ny) * nx + ((nx - mx) % nx)].conj();
            if (a - b).abs() > 1e-14 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_fft::{Direction, Fft2d};
    use rrs_rng::Xoshiro256pp;

    #[test]
    fn array_is_hermitian() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for &(nx, ny) in &[(8usize, 8usize), (16, 4), (4, 16), (2, 2)] {
            let u = hermitian_gaussian_array(nx, ny, &mut rng);
            assert!(is_hermitian(&u, nx, ny), "({nx},{ny})");
        }
    }

    #[test]
    fn self_conjugate_bins_are_real() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let (nx, ny) = (8, 6);
        let u = hermitian_gaussian_array(nx, ny, &mut rng);
        for &(mx, my) in &[(0usize, 0usize), (nx / 2, 0), (0, ny / 2), (nx / 2, ny / 2)] {
            assert_eq!(u[my * nx + mx].im, 0.0, "bin ({mx},{my})");
        }
    }

    #[test]
    fn dft_is_real() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let (nx, ny) = (16, 16);
        let mut u = hermitian_gaussian_array(nx, ny, &mut rng);
        Fft2d::with_workers(nx, ny, 1).process(&mut u, Direction::Forward);
        let max_im = u.iter().map(|z| z.im.abs()).fold(0.0, f64::max);
        let max_re = u.iter().map(|z| z.re.abs()).fold(0.0, f64::max);
        assert!(max_im < 1e-10 * max_re.max(1.0), "max imaginary part {max_im}");
    }

    #[test]
    fn bins_have_unit_second_moment() {
        // Average E|u|² over bins and realisations.
        let (nx, ny) = (16, 16);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let reps = 200;
        let mut acc = vec![0.0f64; nx * ny];
        for _ in 0..reps {
            let u = hermitian_gaussian_array(nx, ny, &mut rng);
            for (s, z) in acc.iter_mut().zip(&u) {
                *s += z.norm_sqr();
            }
        }
        for (i, &s) in acc.iter().enumerate() {
            let mean = s / reps as f64;
            // Var of |u|² estimate ~ 2/reps (complex) or 2/reps (real bins).
            assert!((mean - 1.0).abs() < 0.5, "bin {i}: E|u|² = {mean}");
        }
        let global = acc.iter().sum::<f64>() / (reps * nx * ny) as f64;
        assert!((global - 1.0).abs() < 0.01, "global E|u|² = {global}");
    }

    #[test]
    fn transformed_field_is_standard_normal() {
        // X = DFT(u)/sqrt(NxNy) must be i.i.d. N(0,1) (paper eqn 33).
        let (nx, ny) = (32, 32);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut u = hermitian_gaussian_array(nx, ny, &mut rng);
        Fft2d::with_workers(nx, ny, 1).process(&mut u, Direction::Forward);
        let scale = 1.0 / ((nx * ny) as f64).sqrt();
        let xs: Vec<f64> = u.iter().map(|z| z.re * scale).collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 4.5 / n.sqrt(), "mean={mean}");
        assert!((var - 1.0).abs() < 4.5 * (2.0 / n).sqrt(), "var={var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = hermitian_gaussian_array(8, 8, &mut Xoshiro256pp::seed_from_u64(7));
        let b = hermitian_gaussian_array(8, 8, &mut Xoshiro256pp::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_size_rejected() {
        hermitian_gaussian_array(7, 8, &mut Xoshiro256pp::seed_from_u64(0));
    }
}
