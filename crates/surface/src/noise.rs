//! Random-access i.i.d. `N(0,1)` lattice noise.
//!
//! The convolution method consumes a field `X[n] ~ N(0,1)` (paper eqn 36).
//! Implementing `X` as a *pure function* of `(seed, ix, iy)` — a
//! counter-based generator — is what makes the method live up to the
//! paper's claims: any window of an unbounded surface can be generated
//! independently, in any order, on any number of threads, and adjacent
//! tiles agree exactly on their shared noise (seamless successive
//! computation, §2.4).
//!
//! Construction: the lattice coordinates are mixed into a 64-bit key with
//! two odd multiplicative constants, the key seeds the SplitMix64
//! finalizer chain, and two output words drive one Box–Muller cosine
//! branch (the paper's eqn 18).

use rrs_error::RrsError;
use rrs_num::Complex64;
use rrs_rng::{RandomSource, SplitMix64};

/// An infinite deterministic lattice of standard normal deviates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoiseField {
    seed: u64,
}

impl NoiseField {
    /// A noise field identified by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The field's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `N(0,1)` deviate at lattice point `(ix, iy)` — any point of ℤ².
    #[inline]
    pub fn at(&self, ix: i64, iy: i64) -> f64 {
        // Mix coordinates and seed into one word; the two constants are
        // large odd numbers (golden-ratio and a Murmur3 finalizer prime)
        // so distinct lattice points land on well-separated keys.
        let key = self
            .seed
            .wrapping_add((ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        let mut g = SplitMix64::new(key);
        let u1 = core::f64::consts::TAU * g.next_f64();
        let u2 = g.next_f64_open();
        (-2.0 * u2.ln()).sqrt() * u1.cos()
    }

    /// Fills a row-major `w × h` buffer with the window whose lower corner
    /// (minimum indices) is `(x0, y0)`.
    pub fn window(&self, x0: i64, y0: i64, w: usize, h: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.window_into(x0, y0, w, h, &mut out);
        out
    }

    /// [`NoiseField::window`] into a caller-owned buffer: `out` is cleared
    /// and refilled, reusing its allocation. Tile loops that materialise
    /// hundreds of windows per run keep one scratch vector alive instead
    /// of reallocating per tile.
    ///
    /// # Panics
    /// Panics if `w · h` overflows `usize`. Fallible callers use
    /// [`NoiseField::try_window_into`].
    pub fn window_into(&self, x0: i64, y0: i64, w: usize, h: usize, out: &mut Vec<f64>) {
        self.try_window_into(x0, y0, w, h, out).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`NoiseField::window_into`]: a pathological window whose
    /// sample count `w · h` overflows `usize` is rejected with
    /// [`RrsError::InvalidParam`] instead of silently wrapping the
    /// reserve (which would reserve a tiny buffer and then grow it
    /// unbounded through the push loop).
    pub fn try_window_into(
        &self,
        x0: i64,
        y0: i64,
        w: usize,
        h: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), RrsError> {
        let samples = w.checked_mul(h).ok_or_else(|| {
            RrsError::invalid_param(
                "window",
                format!("window {w}x{h} overflows the addressable sample count"),
            )
        })?;
        out.clear();
        out.reserve(samples);
        for iy in 0..h as i64 {
            for ix in 0..w as i64 {
                out.push(self.at(x0 + ix, y0 + iy));
            }
        }
        Ok(())
    }

    /// A complex deviate with independent `N(0, 1/2)` parts (unit second
    /// moment), for spectral-domain consumers.
    pub fn at_complex(&self, ix: i64, iy: i64) -> Complex64 {
        let key = self
            .seed
            .wrapping_add((ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            ^ 0xA5A5_5A5A_F0F0_0F0F;
        let mut g = SplitMix64::new(key);
        let u1 = core::f64::consts::TAU * g.next_f64();
        let u2 = g.next_f64_open();
        let r = (-u2.ln()).sqrt(); // sqrt(-2 ln u / 2)
        Complex64::from_polar(r, u1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_coordinates() {
        let f = NoiseField::new(123);
        assert_eq!(f.at(5, -7), f.at(5, -7));
        let g = NoiseField::new(123);
        assert_eq!(f.at(1000, 2000), g.at(1000, 2000));
    }

    #[test]
    fn different_seeds_differ() {
        let a = NoiseField::new(1);
        let b = NoiseField::new(2);
        let same = (0..100).filter(|&i| a.at(i, 0) == b.at(i, 0)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn windows_agree_with_pointwise() {
        let f = NoiseField::new(9);
        let w = f.window(-3, 4, 5, 4);
        for iy in 0..4i64 {
            for ix in 0..5i64 {
                assert_eq!(w[(iy * 5 + ix) as usize], f.at(-3 + ix, 4 + iy));
            }
        }
    }

    #[test]
    fn window_into_matches_window_and_reuses_allocation() {
        let f = NoiseField::new(9);
        let mut buf = vec![7.0; 3]; // stale contents and wrong size
        f.window_into(-3, 4, 5, 4, &mut buf);
        assert_eq!(buf, f.window(-3, 4, 5, 4));
        let ptr = buf.as_ptr();
        f.window_into(7, -2, 4, 3, &mut buf); // smaller: no regrow
        assert_eq!(buf, f.window(7, -2, 4, 3));
        assert_eq!(buf.as_ptr(), ptr, "refill within capacity must not reallocate");
    }

    #[test]
    fn overflowing_window_is_rejected_not_wrapped() {
        let f = NoiseField::new(1);
        let mut buf = Vec::new();
        // w·h wraps usize; the unchecked multiply used to reserve a tiny
        // buffer and start pushing.
        let err = f.try_window_into(0, 0, usize::MAX, 2, &mut buf).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::InvalidParam);
        assert!(err.to_string().contains("overflows"), "{err}");
        assert!(buf.is_empty(), "nothing may be materialised on rejection");
        // The fallible path matches the panicking one on sane windows.
        f.try_window_into(-3, 4, 5, 4, &mut buf).unwrap();
        assert_eq!(buf, f.window(-3, 4, 5, 4));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_window_panics_on_infallible_path() {
        NoiseField::new(1).window_into(0, 0, usize::MAX, 2, &mut Vec::new());
    }

    #[test]
    fn overlapping_windows_are_consistent() {
        // The seamless-tiling property.
        let f = NoiseField::new(77);
        let a = f.window(0, 0, 8, 8);
        let b = f.window(4, 0, 8, 8);
        for iy in 0..8usize {
            for ix in 0..4usize {
                assert_eq!(a[iy * 8 + ix + 4], b[iy * 8 + ix]);
            }
        }
    }

    #[test]
    fn marginals_are_standard_normal() {
        let f = NoiseField::new(31);
        let n = 500_000i64;
        let side = 1000;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut m4 = 0.0;
        for i in 0..n {
            let v = f.at(i % side, i / side);
            mean += v;
            m2 += v * v;
            m4 += v * v * v * v;
        }
        let nf = n as f64;
        mean /= nf;
        m2 /= nf;
        m4 /= nf;
        assert!(mean.abs() < 4.5 / nf.sqrt(), "mean={mean}");
        assert!((m2 - 1.0).abs() < 4.5 * (2.0 / nf).sqrt(), "E X² = {m2}");
        assert!((m4 - 3.0).abs() < 4.5 * (96.0 / nf).sqrt(), "E X⁴ = {m4}");
    }

    #[test]
    fn neighbours_are_uncorrelated() {
        let f = NoiseField::new(8);
        let n = 200_000i64;
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut cd = 0.0;
        for i in 0..n {
            let (x, y) = (i % 500, i / 500);
            let v = f.at(x, y);
            cx += v * f.at(x + 1, y);
            cy += v * f.at(x, y + 1);
            cd += v * f.at(x + 1, y + 1);
        }
        let tol = 4.5 / (n as f64).sqrt();
        for (name, c) in [("x", cx), ("y", cy), ("diag", cd)] {
            let c = c / n as f64;
            assert!(c.abs() < tol, "{name}-neighbour correlation {c}");
        }
    }

    #[test]
    fn complex_variant_has_unit_power() {
        let f = NoiseField::new(4);
        let n = 200_000i64;
        let mut p = 0.0;
        let mut re = 0.0;
        for i in 0..n {
            let z = f.at_complex(i % 700, i / 700);
            p += z.norm_sqr();
            re += z.re;
        }
        let nf = n as f64;
        assert!((p / nf - 1.0).abs() < 0.02, "E|z|² = {}", p / nf);
        assert!((re / nf).abs() < 4.5 * (0.5f64 / nf).sqrt());
    }

    #[test]
    fn negative_coordinates_work() {
        let f = NoiseField::new(14);
        let v = f.at(-1_000_000, -2_000_000);
        assert!(v.is_finite());
        assert_eq!(v, f.at(-1_000_000, -2_000_000));
    }
}
