//! Shared generation context — the one bundle of cross-cutting options
//! every generator accepts.
//!
//! A [`GenContext`] carries the six knobs that used to be threaded
//! through per-generator `with_*` builders (workers, backend, FFT plan
//! cache, recorder, budget, chaos injector). All three generators —
//! [`ConvolutionGenerator`](crate::ConvolutionGenerator),
//! [`StripGenerator`](crate::StripGenerator) and the inhomogeneous
//! generator — accept one via `with_context`, and their individual
//! `with_*` methods are thin sugar over it, so option threading cannot
//! diverge per generator. Because the context is plain data (every field
//! cheap to clone, shared state behind `Arc`s), it doubles as the
//! decoded form of a serving request's per-request options: the server
//! and the library configure generation through exactly the same struct.

use crate::conv::ConvBackend;
use rrs_chaos::ChaosInjector;
use rrs_error::Budget;
use rrs_fft::FftPlanCache;
use rrs_obs::Recorder;
use std::sync::Arc;

/// Cross-cutting generation options, shared by all generators.
///
/// Defaults match the historical per-generator defaults exactly:
/// [`rrs_par::default_workers`] workers, [`ConvBackend::Direct`], a
/// fresh private [`FftPlanCache`], a disabled [`Recorder`], an
/// unlimited [`Budget`] and a disabled [`ChaosInjector`] — under which
/// generation is bit-identical to every previous release.
///
/// Clones share the stateful members (plan cache, recorder, chaos
/// schedule, cancel token) by reference, so a context cloned into many
/// generators still aggregates observations and twiddle tables in one
/// place.
#[derive(Clone)]
pub struct GenContext {
    pub(crate) workers: usize,
    pub(crate) backend: ConvBackend,
    pub(crate) plans: Arc<FftPlanCache>,
    pub(crate) obs: Recorder,
    pub(crate) budget: Budget,
    pub(crate) chaos: ChaosInjector,
}

impl Default for GenContext {
    fn default() -> Self {
        Self::new()
    }
}

impl GenContext {
    /// The default context (see the type-level docs for the values).
    pub fn new() -> Self {
        Self {
            workers: rrs_par::default_workers(),
            backend: ConvBackend::default(),
            plans: Arc::new(FftPlanCache::new()),
            obs: Recorder::disabled(),
            budget: Budget::unlimited(),
            chaos: ChaosInjector::disabled(),
        }
    }

    /// Sets the worker count (1 = serial; clamped to ≥ 1). Output is
    /// identical for any worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Selects the convolution engine — see [`ConvBackend`].
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Shares an [`FftPlanCache`]: every generator built from this
    /// context reuses one set of twiddle tables and real-input plans for
    /// matching tile shapes.
    pub fn with_plan_cache(mut self, plans: Arc<FftPlanCache>) -> Self {
        self.plans = plans;
        self
    }

    /// Attaches a recorder for stage timings and counters. Observation
    /// never alters output.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a resource [`Budget`]: deadline/cancel polled
    /// cooperatively at band/tile granularity, byte ceiling enforced by
    /// admission control before allocation.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Arms a deterministic fault schedule — see [`ChaosInjector`].
    pub fn with_chaos(mut self, chaos: ChaosInjector) -> Self {
        self.chaos = chaos;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured backend policy (not resolved).
    pub fn backend(&self) -> ConvBackend {
        self.backend
    }

    /// The shared FFT plan cache.
    pub fn plan_cache(&self) -> &Arc<FftPlanCache> {
        &self.plans
    }

    /// The attached recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// The attached budget ([`Budget::unlimited`] by default).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The armed chaos injector (disabled by default).
    pub fn chaos(&self) -> &ChaosInjector {
        &self.chaos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_per_generator_defaults() {
        let ctx = GenContext::new();
        assert_eq!(ctx.workers(), rrs_par::default_workers());
        assert_eq!(ctx.backend(), ConvBackend::Direct);
        assert!(!ctx.recorder().is_enabled());
        assert!(ctx.budget().is_unlimited());
        assert!(!ctx.chaos().is_enabled());
    }

    #[test]
    fn builders_set_and_clones_share() {
        let plans = Arc::new(FftPlanCache::new());
        let ctx = GenContext::new()
            .with_workers(0)
            .with_backend(ConvBackend::Auto)
            .with_plan_cache(Arc::clone(&plans));
        assert_eq!(ctx.workers(), 1, "workers clamp to >= 1");
        assert_eq!(ctx.backend(), ConvBackend::Auto);
        let clone = ctx.clone();
        assert!(Arc::ptr_eq(clone.plan_cache(), &plans), "clones share the plan cache");
    }
}
