//! One-dimensional profile generation by the convolution method.
//!
//! The exact 1-D reduction of §2.4: a centred real kernel
//! `w̃ = DFT(v)/√N` convolved with an i.i.d. `N(0,1)` lattice gives a
//! profile with the prescribed 1-D spectrum. Profiles of unbounded
//! length stream seamlessly, just like the 2-D surface windows, and plug
//! straight into `rrs-propagation` as terrain.

use crate::noise::NoiseField;
use rrs_fft::spectral::fftshift;
use rrs_fft::{Direction, Fft};
use rrs_grid::Profile;
use rrs_num::Complex64;
use rrs_spectrum::line::{amplitude_array_1d, Spectrum1d};

/// A centred 1-D convolution kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct LineKernel {
    weights: Vec<f64>,
    origin: i64,
}

impl LineKernel {
    /// Builds the kernel of `spectrum` on an `n`-sample lattice at unit
    /// spacing. `n` is typically `factor × cl` rounded up to even; 8–10
    /// correlation lengths suffice for the Gaussian family, more for the
    /// heavy-tailed Exponential.
    pub fn build<S: Spectrum1d + ?Sized>(spectrum: &S, n: usize) -> Self {
        let v = amplitude_array_1d(spectrum, n, 1.0);
        let mut buf: Vec<Complex64> = v.iter().map(|&x| Complex64::from_re(x)).collect();
        Fft::new(n).process(&mut buf, Direction::Forward);
        let norm = 1.0 / (n as f64).sqrt();
        let mut weights: Vec<f64> = buf.iter().map(|z| z.re * norm).collect();
        debug_assert!(
            buf.iter().map(|z| z.im.abs()).fold(0.0, f64::max) < 1e-9,
            "1-D kernel transform must be real"
        );
        fftshift(&mut weights);
        Self { weights, origin: -((n / 2) as i64) }
    }

    /// Builds with the default sizing `8·cl` (clamped to `[16, 4096]`).
    pub fn build_auto<S: Spectrum1d + ?Sized>(spectrum: &S) -> Self {
        let cl = spectrum.params().cl;
        let raw = (8.0 * cl).ceil() as usize;
        let n = (raw + raw % 2).clamp(16, 4096);
        Self::build(spectrum, n)
    }

    /// The kernel coefficients (centred layout).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Offset of the first coefficient.
    pub fn origin(&self) -> i64 {
        self.origin
    }

    /// Kernel energy `Σw̃²` — the profile variance `h²`.
    pub fn energy(&self) -> f64 {
        self.weights.iter().map(|v| v * v).sum()
    }

    /// Kernel self-correlation at lag `d` — reproduces `ρ(d)`.
    pub fn self_correlation(&self, d: usize) -> f64 {
        if d >= self.weights.len() {
            return 0.0;
        }
        self.weights[d..]
            .iter()
            .zip(&self.weights)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Truncates to the smallest centred window losing at most `epsilon`
    /// of the root energy.
    pub fn truncated(&self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        let total = self.energy();
        if total == 0.0 {
            return self.clone();
        }
        let half = (self.weights.len() / 2) as i64;
        let energy_within = |r: i64| -> f64 {
            let lo = (half - r).max(0) as usize;
            let hi = ((half + r + 1) as usize).min(self.weights.len());
            self.weights[lo..hi].iter().map(|v| v * v).sum()
        };
        let mut r = 0i64;
        while r < half && energy_within(r) < total * (1.0 - epsilon * epsilon) {
            r += 1;
        }
        let lo = (half - r).max(0) as usize;
        let hi = ((half + r + 1) as usize).min(self.weights.len());
        Self { weights: self.weights[lo..hi].to_vec(), origin: -r }
    }
}

/// Streaming 1-D profile generator.
pub struct LineGenerator {
    kernel: LineKernel,
    noise: NoiseField,
    /// The noise row used for this profile (different rows of the same
    /// seed are independent profiles).
    row: i64,
}

impl LineGenerator {
    /// Builds a generator for `spectrum` with auto kernel sizing.
    pub fn new<S: Spectrum1d + ?Sized>(spectrum: &S, seed: u64) -> Self {
        Self::from_kernel(LineKernel::build_auto(spectrum), seed)
    }

    /// Wraps a prebuilt kernel.
    pub fn from_kernel(kernel: LineKernel, seed: u64) -> Self {
        Self { kernel, noise: NoiseField::new(seed), row: 0 }
    }

    /// Selects an independent noise row (profile index); each row is an
    /// independent realisation of the same process.
    pub fn with_row(mut self, row: i64) -> Self {
        self.row = row;
        self
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &LineKernel {
        &self.kernel
    }

    /// Generates the window `[x0, x0+len)` of the unbounded profile.
    /// Windows tile exactly.
    pub fn generate(&self, x0: i64, len: usize) -> Profile {
        assert!(len > 0, "profile window must be non-empty");
        let kw = self.kernel.weights.len();
        let ox = self.kernel.origin;
        // f(n) = Σ_j w̃(j)·X(n−j): noise span [x0−(ox+kw−1), x0+len−1−ox].
        let wx0 = x0 - (ox + kw as i64 - 1);
        let ww = len + kw - 1;
        let win: Vec<f64> = (0..ww as i64).map(|i| self.noise.at(wx0 + i, self.row)).collect();
        let heights = (0..len)
            .map(|i| {
                let mut acc = 0.0;
                for (a, &kv) in self.kernel.weights.iter().enumerate() {
                    acc += kv * win[i + kw - 1 - a];
                }
                acc
            })
            .collect();
        Profile { spacing: 1.0, heights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::line::{Exponential1d, Gaussian1d, LineParams};

    #[test]
    fn kernel_energy_is_variance() {
        for &(h, cl) in &[(1.0, 5.0), (2.0, 12.0)] {
            let k = LineKernel::build_auto(&Gaussian1d::new(LineParams::new(h, cl)));
            assert!((k.energy() - h * h).abs() < 1e-6 * h * h, "E = {}", k.energy());
        }
    }

    #[test]
    fn kernel_self_correlation_matches_rho() {
        let s = Gaussian1d::new(LineParams::new(1.0, 8.0));
        let k = LineKernel::build(&s, 128);
        for d in [0usize, 4, 8, 16] {
            let got = k.self_correlation(d);
            let expect = s.autocorrelation(d as f64);
            assert!((got - expect).abs() < 2e-3, "lag {d}: {got} vs {expect}");
        }
    }

    #[test]
    fn exponential_kernel_self_correlation() {
        let s = Exponential1d::new(LineParams::new(1.0, 10.0));
        let k = LineKernel::build(&s, 512);
        for d in [0usize, 5, 10, 20] {
            let got = k.self_correlation(d);
            let expect = s.autocorrelation(d as f64);
            assert!((got - expect).abs() < 0.05, "lag {d}: {got} vs {expect}");
        }
    }

    #[test]
    fn windows_tile_exactly() {
        let gen = LineGenerator::new(&Gaussian1d::new(LineParams::new(1.0, 6.0)), 7);
        let whole = gen.generate(-10, 100);
        let left = gen.generate(-10, 40);
        let right = gen.generate(30, 60);
        for i in 0..40 {
            assert_eq!(whole.heights[i], left.heights[i]);
        }
        for i in 0..60 {
            assert_eq!(whole.heights[40 + i], right.heights[i]);
        }
    }

    #[test]
    fn profile_statistics_match_target() {
        let h = 1.5;
        let gen = LineGenerator::new(&Gaussian1d::new(LineParams::new(h, 6.0)), 3);
        // One long profile: 20k samples ≈ 3300 patches.
        let p = gen.generate(0, 20_000);
        let var = p.heights.iter().map(|v| v * v).sum::<f64>() / p.heights.len() as f64;
        assert!((var.sqrt() - h).abs() < 0.1, "ĥ = {}", var.sqrt());
    }

    #[test]
    fn rows_are_independent_realisations() {
        let s = Gaussian1d::new(LineParams::new(1.0, 5.0));
        let a = LineGenerator::new(&s, 9).with_row(0).generate(0, 256);
        let b = LineGenerator::new(&s, 9).with_row(1).generate(0, 256);
        assert_ne!(a.heights, b.heights);
        // Cross-correlation near zero.
        let c: f64 = a
            .heights
            .iter()
            .zip(&b.heights)
            .map(|(x, y)| x * y)
            .sum::<f64>()
            / 256.0;
        assert!(c.abs() < 0.3, "cross-corr {c}");
    }

    #[test]
    fn truncation_respects_energy_budget() {
        let k = LineKernel::build(&Gaussian1d::new(LineParams::new(1.0, 6.0)), 256);
        let t = k.truncated(0.01);
        assert!(t.weights().len() < k.weights().len());
        let loss = ((k.energy() - t.energy()).max(0.0) / k.energy()).sqrt();
        assert!(loss <= 0.0101, "loss {loss}");
    }

    #[test]
    fn measured_autocorrelation_matches_model() {
        let s = Exponential1d::new(LineParams::new(1.0, 8.0));
        let gen = LineGenerator::new(&s, 21);
        let p = gen.generate(0, 40_000);
        for d in [1usize, 4, 8, 16] {
            let mut acc = 0.0;
            for i in 0..p.heights.len() - d {
                acc += p.heights[i] * p.heights[i + d];
            }
            let got = acc / (p.heights.len() - d) as f64;
            let expect = s.autocorrelation(d as f64);
            assert!((got - expect).abs() < 0.06, "lag {d}: {got} vs {expect}");
        }
    }
}
