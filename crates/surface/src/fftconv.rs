//! Overlap-save FFT convolution — the engines behind
//! [`ConvBackend::FftOverlapSave`](crate::ConvBackend) and
//! [`ConvBackend::FftComplexSerial`](crate::ConvBackend).
//!
//! The direct correlate loop costs `O(nx·ny·kw·kh)`; by the convolution
//! theorem the same surface is `IFFT(FFT(X)·FFT(w̃))` at
//! `O(N log N)`. Materialised windows are unbounded in principle, so the
//! engine processes them in **overlap-save tiles**: each tile loads an
//! `fft_nx × fft_ny` segment of the noise window, transforms it,
//! multiplies by the cached kernel spectrum, inverse-transforms, and
//! keeps only the `(fft_nx−kw+1) × (fft_ny−kh+1)` outputs whose circular
//! convolution never wrapped.
//!
//! Two engines share that tiling:
//!
//! * [`FftEngine::convolve_rfft`] — the **real-input** pipeline
//!   ([`RealFft2d`], half-size complex trick, packed Hermitian spectra)
//!   with tiles dispatched across `rrs-par` workers. Each worker owns a
//!   private [`TileArena`] (plan handle, real tile, packed spectrum,
//!   column scratch), so steady-state tile processing allocates nothing
//!   and workers never contend. Tiles write strictly disjoint output
//!   regions, so the result is bit-identical for every worker count.
//! * [`FftEngine::convolve`] — the full-complex serial loop, kept
//!   reachable (via `ConvBackend::FftComplexSerial`) as the bit-for-bit
//!   comparison baseline for the real-input path.
//!
//! # Tile correctness
//!
//! With the kernel zero-padded at the tile origin, the circular
//! convolution of a segment starting at window column `ox` satisfies
//! `c[m] = Σ_j w̃[j]·seg[m−j]` exactly for `m ≥ kw−1` (no index wraps:
//! the kernel support is `[0, kw)`), and `seg[m−j] = win[ox+m−j]`, so
//! `c[(ix−ox)+kw−1] = Σ_a w̃[a]·win[ix+kw−1−a] = out[ix]` — the direct
//! loop's sum, evaluated in the frequency domain. Per-axis the same
//! argument holds for rows. Zero-padding past the right/top window edge
//! only reaches `c[m]` with `m ≥ ww−ox`, i.e. output indices `≥ nx`,
//! which the scatter step discards.
//!
//! # Cost model
//!
//! The tile side is chosen by brute-force minimisation of
//! `tiles · fft_area · (log2(fft_area) + 1)` over power-of-two sides —
//! small tiles amortise badly (little valid output per transform), huge
//! tiles waste work past the output edge. The search space is tiny
//! (≤ ~12 candidates per axis), so the exact model is evaluated rather
//! than approximated. Worker dispatch then splits the flattened tile
//! index range evenly; a request whose plan yields a single tile runs
//! serially regardless of the configured worker count.

use crate::kernel::ConvolutionKernel;
use rrs_chaos::{ChaosInjector, FaultSite};
use rrs_error::{Budget, RrsError};
use rrs_fft::{Direction, FftPlanCache, RealFft2d};
use rrs_grid::Grid2;
use rrs_num::Complex64;
use rrs_obs::{stage, ObsSink, Recorder, Shard};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

/// The overlap-save tile shape chosen for one `(output, kernel)` geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileShape {
    /// FFT side along x (power of two, ≥ `kw`).
    pub fft_nx: usize,
    /// FFT side along y (power of two, ≥ `kh`).
    pub fft_ny: usize,
}

impl TileShape {
    /// Valid (non-wrapped) outputs per tile along each axis.
    pub fn valid(&self, kw: usize, kh: usize) -> (usize, usize) {
        (self.fft_nx - kw + 1, self.fft_ny - kh + 1)
    }

    /// Tile grid `(columns, rows)` this shape induces on an `nx × ny`
    /// output under a `kw × kh` kernel.
    pub fn tiles(&self, nx: usize, ny: usize, kw: usize, kh: usize) -> (usize, usize) {
        let (vx, vy) = self.valid(kw, kh);
        (nx.div_ceil(vx), ny.div_ceil(vy))
    }

    /// Complex workspace footprint of the full-complex serial engine for
    /// this shape, in f64-equivalents: one tile buffer plus one cached
    /// kernel spectrum, two f64s per complex sample each.
    pub fn scratch_samples(&self) -> u128 {
        4 * self.fft_nx as u128 * self.fft_ny as u128
    }

    /// Packed (Hermitian, half-width-plus-one) spectrum samples per tile.
    fn packed_samples(&self) -> u128 {
        (self.fft_nx / 2 + 1) as u128 * self.fft_ny as u128
    }

    /// Workspace footprint of the real-input engine at a given worker
    /// count, in f64-equivalents: each worker arena holds a real tile, a
    /// packed spectrum and the transform's column scratch, and one packed
    /// kernel spectrum is shared. Deterministic in its arguments, so
    /// admission control and the convolve loop agree on the footprint.
    pub fn scratch_samples_real(&self, workers: usize) -> u128 {
        let packed = 2 * self.packed_samples();
        let scratch = 2 * ((self.fft_nx / 2).max(self.fft_ny).max(1)) as u128;
        let per_worker = self.fft_nx as u128 * self.fft_ny as u128 + packed + scratch;
        workers.max(1) as u128 * per_worker + packed
    }
}

/// Per-axis power-of-two candidates: from the smallest that admits at
/// least one valid output to the smallest that covers the whole axis in
/// one tile.
fn axis_candidates(out_n: usize, k: usize) -> Vec<usize> {
    let lo = k.next_power_of_two();
    let hi = (out_n + k - 1).next_power_of_two().max(lo);
    let mut c = Vec::new();
    let mut n = lo;
    while n <= hi {
        c.push(n);
        n *= 2;
    }
    c
}

/// Chooses the overlap-save tile for an `nx × ny` output under a
/// `kw × kh` kernel by exact evaluation of the modelled transform cost
/// over all power-of-two tile shapes. Deterministic in its arguments, so
/// admission control and the convolve loop agree on the footprint.
pub fn plan_tiles(nx: usize, ny: usize, kw: usize, kh: usize) -> TileShape {
    let mut best = TileShape { fft_nx: 0, fft_ny: 0 };
    let mut best_cost = f64::INFINITY;
    for &fx in &axis_candidates(nx, kw) {
        let tiles_x = nx.div_ceil(fx - kw + 1) as f64;
        for &fy in &axis_candidates(ny, kh) {
            let tiles_y = ny.div_ceil(fy - kh + 1) as f64;
            let area = (fx * fy) as f64;
            let cost = tiles_x * tiles_y * area * (area.log2() + 1.0);
            if cost < best_cost {
                best_cost = cost;
                best = TileShape { fft_nx: fx, fft_ny: fy };
            }
        }
    }
    best
}

/// The worker count the real-input engine actually dispatches for a
/// request: clamped to the number of tiles (a single-tile request runs
/// serially whatever the configuration). Deterministic, and used by both
/// admission control and the engine so the two agree.
pub fn effective_workers(shape: TileShape, nx: usize, ny: usize, kw: usize, kh: usize, workers: usize) -> usize {
    let (tx, ty) = shape.tiles(nx, ny, kw, kh);
    workers.max(1).min(tx * ty)
}

/// The geometry one convolution request tiles over, bundled so the tile
/// loop's helpers stay readable.
#[derive(Clone, Copy)]
struct TileGeom {
    nx: usize,
    ny: usize,
    ww: usize,
    wh: usize,
    kw: usize,
    kh: usize,
    fx: usize,
    fy: usize,
    vx: usize,
    vy: usize,
    tiles_x: usize,
}

/// One worker's private workspace: every buffer the per-tile pipeline
/// touches, sized once at dispatch so the tile loop allocates nothing.
struct TileArena {
    real: Vec<f64>,
    spec: Vec<Complex64>,
    scratch: Vec<Complex64>,
}

impl TileArena {
    fn new(rfft: &RealFft2d) -> Self {
        Self {
            real: vec![0.0; rfft.real_len()],
            spec: vec![Complex64::ZERO; rfft.packed_len()],
            scratch: vec![Complex64::ZERO; rfft.scratch_len()],
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: workers write strictly disjoint output regions of the pointee
// (each tile's valid-output rectangle belongs to exactly one tile, and
// each tile to exactly one worker).
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// The overlap-save engine: an [`FftPlanCache`] shared through the owning
/// generator plus the forward transforms of its kernels — full-complex
/// and packed-real spectra cached independently per
/// `(kernel id, tile shape)` — so repeated windows and strip tiles never
/// re-transform the kernel.
pub struct FftEngine {
    plans: Arc<FftPlanCache>,
    kernel_ffts: Mutex<HashMap<(usize, usize, usize), Arc<Vec<Complex64>>>>,
    kernel_rffts: Mutex<HashMap<(usize, usize, usize), Arc<Vec<Complex64>>>>,
}

/// Locks a kernel-spectrum cache, recovering from poisoning by
/// rebuilding from empty: cached spectra are pure functions of
/// `(kernel id, tile shape)`, so clearing trades a re-transform for
/// never propagating the poison. Each recovery ticks
/// [`stage::FFT_PLAN_POISONED`].
fn lock_spectra<'a>(
    cache: &'a Mutex<HashMap<(usize, usize, usize), Arc<Vec<Complex64>>>>,
    obs: &Recorder,
) -> MutexGuard<'a, HashMap<(usize, usize, usize), Arc<Vec<Complex64>>>> {
    cache.lock().unwrap_or_else(|poisoned| {
        // Un-poison first: the rebuild makes the map coherent again, and
        // without this every later lock would re-clear it.
        cache.clear_poison();
        let mut guard = poisoned.into_inner();
        guard.clear();
        obs.add_counter(stage::FFT_PLAN_POISONED, 1);
        guard
    })
}

impl FftEngine {
    /// Builds an engine drawing 2-D transforms from `plans`.
    pub fn new(plans: Arc<FftPlanCache>) -> Self {
        Self {
            plans,
            kernel_ffts: Mutex::new(HashMap::new()),
            kernel_rffts: Mutex::new(HashMap::new()),
        }
    }

    /// The plan cache this engine draws 2-D transforms from.
    pub fn plans(&self) -> &Arc<FftPlanCache> {
        &self.plans
    }

    /// The full-complex kernel spectrum on the `tile` lattice: the kernel
    /// weights zero-padded at the tile origin and forward-transformed
    /// once, then cached under `kernel_id` (callers with several kernels
    /// — the inhomogeneous blender — key each one distinctly).
    fn kernel_spectrum(
        &self,
        kernel_id: usize,
        kernel: &ConvolutionKernel,
        tile: TileShape,
        workers: usize,
        obs: &Recorder,
    ) -> Arc<Vec<Complex64>> {
        let key = (kernel_id, tile.fft_nx, tile.fft_ny);
        if let Some(cached) = lock_spectra(&self.kernel_ffts, obs).get(&key) {
            return cached.clone();
        }
        let (kw, kh) = kernel.extent();
        let weights = kernel.weights();
        let mut buf = vec![Complex64::ZERO; tile.fft_nx * tile.fft_ny];
        for b in 0..kh {
            let krow = weights.row(b);
            let dst = &mut buf[b * tile.fft_nx..b * tile.fft_nx + kw];
            for (slot, &v) in dst.iter_mut().zip(krow) {
                *slot = Complex64::from_re(v);
            }
        }
        self.plans.plan(tile.fft_nx, tile.fft_ny, workers).process(&mut buf, Direction::Forward);
        let arc = Arc::new(buf);
        lock_spectra(&self.kernel_ffts, obs).entry(key).or_insert(arc).clone()
    }

    /// The packed-real kernel spectrum on the `tile` lattice, transformed
    /// once with the shared serial real plan and cached like
    /// [`FftEngine::kernel_spectrum`].
    fn kernel_spectrum_real(
        &self,
        kernel_id: usize,
        kernel: &ConvolutionKernel,
        tile: TileShape,
        obs: &Recorder,
    ) -> Arc<Vec<Complex64>> {
        let key = (kernel_id, tile.fft_nx, tile.fft_ny);
        if let Some(cached) = lock_spectra(&self.kernel_rffts, obs).get(&key) {
            return cached.clone();
        }
        let (kw, kh) = kernel.extent();
        let weights = kernel.weights();
        let mut buf = vec![0.0; tile.fft_nx * tile.fft_ny];
        for b in 0..kh {
            let krow = weights.row(b);
            buf[b * tile.fft_nx..b * tile.fft_nx + kw].copy_from_slice(&krow[..kw]);
        }
        let spec = self.plans.plan_real_observed(tile.fft_nx, tile.fft_ny, 1, obs).forward_real(&buf);
        let arc = Arc::new(spec);
        lock_spectra(&self.kernel_rffts, obs).entry(key).or_insert(arc).clone()
    }

    /// Convolves a materialised `ww × wh` noise window with `kernel`,
    /// producing the `nx × ny` output — the exact sum the direct loop
    /// computes (`out[ix,iy] = Σ w̃[a,b]·win[ix+kw−1−a, iy+kh−1−b]`) —
    /// through the **real-input** overlap-save pipeline, with tiles
    /// dispatched across up to `workers` threads. The attached budget is
    /// polled once per tile (ticking [`stage::BUDGET_POLLS`]), so
    /// deadlines and cancellation take effect at tile granularity on
    /// every worker; a panicking worker is contained and reported as
    /// [`RrsError::WorkerPanicked`]. Output is bit-identical for every
    /// worker count: tiles own disjoint output regions and per-tile
    /// arithmetic never depends on the partition.
    #[allow(clippy::too_many_arguments)]
    pub fn convolve_rfft(
        &self,
        kernel_id: usize,
        kernel: &ConvolutionKernel,
        win: &[f64],
        ww: usize,
        wh: usize,
        nx: usize,
        ny: usize,
        workers: usize,
        obs: &Recorder,
        budget: &Budget,
        chaos: &ChaosInjector,
    ) -> Result<Grid2<f64>, RrsError> {
        let (kw, kh) = kernel.extent();
        debug_assert_eq!(win.len(), ww * wh);
        debug_assert_eq!(ww, nx + kw - 1);
        debug_assert_eq!(wh, ny + kh - 1);
        let tile_shape = plan_tiles(nx, ny, kw, kh);
        let (tiles_x, tiles_y) = tile_shape.tiles(nx, ny, kw, kh);
        let total = tiles_x * tiles_y;
        let workers = effective_workers(tile_shape, nx, ny, kw, kh, workers);
        let (fx, fy) = (tile_shape.fft_nx, tile_shape.fft_ny);
        let (vx, vy) = tile_shape.valid(kw, kh);
        let geom = TileGeom { nx, ny, ww, wh, kw, kh, fx, fy, vx, vy, tiles_x };
        // Per-worker transforms are serial (workers = 1): parallelism
        // lives at the tile level, and the serial plan is shared by every
        // arena (plans are immutable).
        chaos.poll(FaultSite::PlanCacheLookup)?;
        let rfft = self.plans.plan_real_observed(fx, fy, 1, obs);
        let kspec = self.kernel_spectrum_real(kernel_id, kernel, tile_shape, obs);
        let polling = budget.needs_polling();

        let mut out = Grid2::zeros(nx, ny);
        let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
        let span = obs.start(stage::CORRELATE);
        if workers == 1 {
            let mut arena = TileArena::new(&rfft);
            let mut shard = obs.shard();
            let result = run_tile_range(
                0, total, geom, win, &rfft, &kspec, out_ptr, &mut arena, &mut shard, budget,
                polling, chaos,
            );
            obs.absorb(shard);
            result?;
        } else {
            let ranges = rrs_par::split_range(total, workers);
            let bands = ranges.len() as u64;
            let results: Vec<Result<Shard, RrsError>> = rrs_par::scope(|s| {
                let handles: Vec<_> = ranges
                    .iter()
                    .enumerate()
                    .map(|(band, &(t0, t1))| {
                        let (rfft, kspec) = (&rfft, &kspec);
                        s.spawn(move || {
                            // Rebind the Send wrapper, not its pointer field.
                            #[allow(clippy::redundant_locals)]
                            let out_ptr = out_ptr;
                            catch_unwind(AssertUnwindSafe(|| {
                                let mut arena = TileArena::new(rfft);
                                let mut shard = obs.shard();
                                run_tile_range(
                                    t0, t1, geom, win, rfft, kspec, out_ptr, &mut arena,
                                    &mut shard, budget, polling, chaos,
                                )
                                .map(|()| shard)
                            }))
                            .unwrap_or_else(|p| Err(RrsError::worker_panicked(band, p.as_ref())))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker result survives catch_unwind"))
                    .collect()
            });
            obs.add_counter(stage::PAR_BANDS, bands);
            // Lowest failed band wins, matching the `rrs-par` primitives;
            // shards from successful bands are still absorbed so counters
            // reflect the work actually done.
            let mut first: Option<RrsError> = None;
            for result in results {
                match result {
                    Ok(shard) => obs.absorb(shard),
                    Err(e) => {
                        if e.kind() == rrs_error::ErrorKind::WorkerPanicked {
                            obs.add_counter(stage::PAR_WORKER_PANICS, 1);
                        }
                        if first.is_none() {
                            first = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = first {
                // The span is dropped unfinished: a failed correlate
                // records no timing, like every other error path.
                return Err(e);
            }
            obs.add_counter(stage::CONV_TILES_PARALLEL, total as u64);
        }
        obs.finish(span);
        obs.add_counter(stage::CONV_FFT_TILES, total as u64);
        obs.add_counter(stage::CORRELATE_SAMPLES, (nx * ny) as u64);
        Ok(out)
    }

    /// Convolves a materialised `ww × wh` noise window with `kernel`
    /// through the **full-complex serial** overlap-save loop — the
    /// baseline the real-input pipeline is compared against. Computes the
    /// same sum as [`FftEngine::convolve_rfft`] and the direct loop; the
    /// attached budget is polled once per tile.
    #[allow(clippy::too_many_arguments)]
    pub fn convolve(
        &self,
        kernel_id: usize,
        kernel: &ConvolutionKernel,
        win: &[f64],
        ww: usize,
        wh: usize,
        nx: usize,
        ny: usize,
        workers: usize,
        obs: &Recorder,
        budget: &Budget,
        chaos: &ChaosInjector,
    ) -> Result<Grid2<f64>, RrsError> {
        let (kw, kh) = kernel.extent();
        debug_assert_eq!(win.len(), ww * wh);
        debug_assert_eq!(ww, nx + kw - 1);
        debug_assert_eq!(wh, ny + kh - 1);
        let tile_shape = plan_tiles(nx, ny, kw, kh);
        let (fx, fy) = (tile_shape.fft_nx, tile_shape.fft_ny);
        let (vx, vy) = tile_shape.valid(kw, kh);
        chaos.poll(FaultSite::PlanCacheLookup)?;
        let fft = self.plans.plan_observed(fx, fy, workers, obs);
        let kspec = self.kernel_spectrum(kernel_id, kernel, tile_shape, workers, obs);
        let polling = budget.needs_polling();

        let mut out = Grid2::zeros(nx, ny);
        let out_slice = out.as_mut_slice();
        let mut tile = vec![Complex64::ZERO; fx * fy];
        let span = obs.start(stage::CORRELATE);
        let mut tiles = 0u64;
        let mut oy = 0;
        while oy < ny {
            let mut ox = 0;
            while ox < nx {
                if polling {
                    obs.add_counter(stage::BUDGET_POLLS, 1);
                    budget.check()?;
                }
                chaos.poll(FaultSite::FftTile)?;
                // Gather the segment [ox, ox+fx) × [oy, oy+fy) of the
                // window, zero-padded past its edges.
                let cols = (ww - ox).min(fx);
                for ty in 0..fy {
                    let trow = &mut tile[ty * fx..(ty + 1) * fx];
                    let wy = oy + ty;
                    if wy < wh {
                        let wrow = &win[wy * ww + ox..wy * ww + ox + cols];
                        for (slot, &v) in trow.iter_mut().zip(wrow) {
                            *slot = Complex64::from_re(v);
                        }
                        trow[cols..].fill(Complex64::ZERO);
                    } else {
                        trow.fill(Complex64::ZERO);
                    }
                }
                fft.process(&mut tile, Direction::Forward);
                for (z, k) in tile.iter_mut().zip(kspec.iter()) {
                    *z = *z * *k;
                }
                fft.process(&mut tile, Direction::Inverse);
                // Scatter the non-wrapped outputs.
                let cx = (nx - ox).min(vx);
                let cy = (ny - oy).min(vy);
                for dy in 0..cy {
                    let src = (kh - 1 + dy) * fx + (kw - 1);
                    let dst = (oy + dy) * nx + ox;
                    for dx in 0..cx {
                        out_slice[dst + dx] = tile[src + dx].re;
                    }
                }
                tiles += 1;
                ox += vx;
            }
            oy += vy;
        }
        obs.finish(span);
        obs.add_counter(stage::CONV_FFT_TILES, tiles);
        obs.add_counter(stage::CORRELATE_SAMPLES, (nx * ny) as u64);
        Ok(out)
    }
}

/// Processes the flattened tile indices `[t0, t1)` through one arena:
/// gather (zero-padded), forward real transform, packed multiply,
/// inverse, and scatter of the non-wrapped outputs through `out`.
#[allow(clippy::too_many_arguments)]
fn run_tile_range(
    t0: usize,
    t1: usize,
    g: TileGeom,
    win: &[f64],
    rfft: &RealFft2d,
    kspec: &[Complex64],
    out: SendPtr,
    arena: &mut TileArena,
    shard: &mut Shard,
    budget: &Budget,
    polling: bool,
    chaos: &ChaosInjector,
) -> Result<(), RrsError> {
    for t in t0..t1 {
        if polling {
            shard.add(stage::BUDGET_POLLS, 1);
            budget.check()?;
        }
        chaos.poll(FaultSite::FftTile)?;
        let ox = (t % g.tiles_x) * g.vx;
        let oy = (t / g.tiles_x) * g.vy;
        // Gather the segment [ox, ox+fx) × [oy, oy+fy) of the window,
        // zero-padded past its edges.
        let cols = (g.ww - ox).min(g.fx);
        for ty in 0..g.fy {
            let trow = &mut arena.real[ty * g.fx..(ty + 1) * g.fx];
            let wy = oy + ty;
            if wy < g.wh {
                trow[..cols].copy_from_slice(&win[wy * g.ww + ox..wy * g.ww + ox + cols]);
                trow[cols..].fill(0.0);
            } else {
                trow.fill(0.0);
            }
        }
        rfft.forward_into(&arena.real, &mut arena.spec, &mut arena.scratch);
        for (z, k) in arena.spec.iter_mut().zip(kspec) {
            *z = *z * *k;
        }
        rfft.inverse_into(&mut arena.spec, &mut arena.real, &mut arena.scratch);
        // Scatter the non-wrapped outputs.
        let cx = (g.nx - ox).min(g.vx);
        let cy = (g.ny - oy).min(g.vy);
        for dy in 0..cy {
            let src = &arena.real[(g.kh - 1 + dy) * g.fx + (g.kw - 1)..][..cx];
            // SAFETY: rows [oy, oy+cy) × cols [ox, ox+cx) of the output
            // belong to tile t alone; the enclosing scope keeps the
            // allocation alive for every worker.
            unsafe {
                let dst = out.0.add((oy + dy) * g.nx + ox);
                for (dx, &v) in src.iter().enumerate() {
                    *dst.add(dx) = v;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_plan_admits_valid_output_and_covers_kernel() {
        for &(nx, ny, kw, kh) in &[
            (128usize, 128usize, 65usize, 65usize),
            (32, 32, 17, 17),
            (256, 8, 33, 9),
            (5, 5, 3, 7),
            (1, 1, 1, 1),
        ] {
            let t = plan_tiles(nx, ny, kw, kh);
            assert!(t.fft_nx.is_power_of_two() && t.fft_ny.is_power_of_two());
            assert!(t.fft_nx >= kw && t.fft_ny >= kh, "{t:?} vs kernel {kw}x{kh}");
            let (vx, vy) = t.valid(kw, kh);
            assert!(vx >= 1 && vy >= 1);
            // Never larger than one tile covering the whole problem.
            assert!(t.fft_nx <= (nx + kw - 1).next_power_of_two());
            assert!(t.fft_ny <= (ny + kh - 1).next_power_of_two());
            let (tx, ty) = t.tiles(nx, ny, kw, kh);
            assert!(tx * vx >= nx && ty * vy >= ny, "tiles must cover the output");
        }
    }

    #[test]
    fn tile_plan_is_deterministic() {
        assert_eq!(plan_tiles(128, 128, 65, 65), plan_tiles(128, 128, 65, 65));
    }

    #[test]
    fn effective_workers_clamps_to_tile_count() {
        let shape = plan_tiles(128, 128, 65, 65);
        let (tx, ty) = shape.tiles(128, 128, 65, 65);
        assert_eq!(effective_workers(shape, 128, 128, 65, 65, 1000), tx * ty);
        assert_eq!(effective_workers(shape, 128, 128, 65, 65, 0), 1);
        assert_eq!(effective_workers(shape, 128, 128, 65, 65, 1), 1);
    }

    #[test]
    fn real_scratch_footprint_scales_with_workers() {
        let shape = TileShape { fft_nx: 64, fft_ny: 32 };
        let one = shape.scratch_samples_real(1);
        let four = shape.scratch_samples_real(4);
        assert!(four > one);
        // Shared kernel spectrum is counted once, per-worker arena four
        // times.
        let packed = 2 * (64u128 / 2 + 1) * 32;
        assert_eq!(four - packed, 4 * (one - packed));
    }
}
