//! Overlap-save FFT convolution — the `ConvBackend::FftOverlapSave`
//! engine behind [`ConvolutionGenerator`](crate::ConvolutionGenerator).
//!
//! The direct correlate loop costs `O(nx·ny·kw·kh)`; by the convolution
//! theorem the same surface is `IFFT(FFT(X)·FFT(w̃))` at
//! `O(N log N)`. Materialised windows are unbounded in principle, so the
//! engine processes them in **overlap-save tiles**: each tile loads an
//! `fft_nx × fft_ny` segment of the noise window, transforms it,
//! multiplies by the cached kernel spectrum, inverse-transforms, and
//! keeps only the `(fft_nx−kw+1) × (fft_ny−kh+1)` outputs whose circular
//! convolution never wrapped.
//!
//! # Tile correctness
//!
//! With the kernel zero-padded at the tile origin, the circular
//! convolution of a segment starting at window column `ox` satisfies
//! `c[m] = Σ_j w̃[j]·seg[m−j]` exactly for `m ≥ kw−1` (no index wraps:
//! the kernel support is `[0, kw)`), and `seg[m−j] = win[ox+m−j]`, so
//! `c[(ix−ox)+kw−1] = Σ_a w̃[a]·win[ix+kw−1−a] = out[ix]` — the direct
//! loop's sum, evaluated in the frequency domain. Per-axis the same
//! argument holds for rows. Zero-padding past the right/top window edge
//! only reaches `c[m]` with `m ≥ ww−ox`, i.e. output indices `≥ nx`,
//! which the scatter step discards.
//!
//! # Cost model
//!
//! The tile side is chosen by brute-force minimisation of
//! `tiles · fft_area · (log2(fft_area) + 1)` over power-of-two sides —
//! small tiles amortise badly (little valid output per transform), huge
//! tiles waste work past the output edge. The search space is tiny
//! (≤ ~12 candidates per axis), so the exact model is evaluated rather
//! than approximated.

use crate::kernel::ConvolutionKernel;
use rrs_error::{Budget, RrsError};
use rrs_fft::{Direction, FftPlanCache};
use rrs_grid::Grid2;
use rrs_num::Complex64;
use rrs_obs::{stage, ObsSink, Recorder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The overlap-save tile shape chosen for one `(output, kernel)` geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileShape {
    /// FFT side along x (power of two, ≥ `kw`).
    pub fft_nx: usize,
    /// FFT side along y (power of two, ≥ `kh`).
    pub fft_ny: usize,
}

impl TileShape {
    /// Valid (non-wrapped) outputs per tile along each axis.
    pub fn valid(&self, kw: usize, kh: usize) -> (usize, usize) {
        (self.fft_nx - kw + 1, self.fft_ny - kh + 1)
    }

    /// Complex workspace footprint of the engine for this shape, in
    /// f64-equivalents: one tile buffer plus one cached kernel spectrum,
    /// two f64s per complex sample each.
    pub fn scratch_samples(&self) -> u128 {
        4 * self.fft_nx as u128 * self.fft_ny as u128
    }
}

/// Per-axis power-of-two candidates: from the smallest that admits at
/// least one valid output to the smallest that covers the whole axis in
/// one tile.
fn axis_candidates(out_n: usize, k: usize) -> Vec<usize> {
    let lo = k.next_power_of_two();
    let hi = (out_n + k - 1).next_power_of_two().max(lo);
    let mut c = Vec::new();
    let mut n = lo;
    while n <= hi {
        c.push(n);
        n *= 2;
    }
    c
}

/// Chooses the overlap-save tile for an `nx × ny` output under a
/// `kw × kh` kernel by exact evaluation of the modelled transform cost
/// over all power-of-two tile shapes. Deterministic in its arguments, so
/// admission control and the convolve loop agree on the footprint.
pub fn plan_tiles(nx: usize, ny: usize, kw: usize, kh: usize) -> TileShape {
    let mut best = TileShape { fft_nx: 0, fft_ny: 0 };
    let mut best_cost = f64::INFINITY;
    for &fx in &axis_candidates(nx, kw) {
        let tiles_x = nx.div_ceil(fx - kw + 1) as f64;
        for &fy in &axis_candidates(ny, kh) {
            let tiles_y = ny.div_ceil(fy - kh + 1) as f64;
            let area = (fx * fy) as f64;
            let cost = tiles_x * tiles_y * area * (area.log2() + 1.0);
            if cost < best_cost {
                best_cost = cost;
                best = TileShape { fft_nx: fx, fft_ny: fy };
            }
        }
    }
    best
}

/// The overlap-save engine: an [`FftPlanCache`] shared through the owning
/// generator plus the forward transforms of its kernels, cached per
/// `(kernel id, tile shape)` so repeated windows and strip tiles never
/// re-transform the kernel.
pub struct FftEngine {
    plans: Arc<FftPlanCache>,
    kernel_ffts: Mutex<HashMap<(usize, usize, usize), Arc<Vec<Complex64>>>>,
}

impl FftEngine {
    /// Builds an engine drawing 2-D transforms from `plans`.
    pub fn new(plans: Arc<FftPlanCache>) -> Self {
        Self { plans, kernel_ffts: Mutex::new(HashMap::new()) }
    }

    /// The plan cache this engine draws 2-D transforms from.
    pub fn plans(&self) -> &Arc<FftPlanCache> {
        &self.plans
    }

    /// The kernel spectrum on the `tile` lattice: the kernel weights
    /// zero-padded at the tile origin and forward-transformed once, then
    /// cached under `kernel_id` (callers with several kernels — the
    /// inhomogeneous blender — key each one distinctly).
    fn kernel_spectrum(
        &self,
        kernel_id: usize,
        kernel: &ConvolutionKernel,
        tile: TileShape,
        workers: usize,
    ) -> Arc<Vec<Complex64>> {
        let key = (kernel_id, tile.fft_nx, tile.fft_ny);
        if let Some(cached) = self.kernel_ffts.lock().expect("kernel fft cache poisoned").get(&key)
        {
            return cached.clone();
        }
        let (kw, kh) = kernel.extent();
        let weights = kernel.weights();
        let mut buf = vec![Complex64::ZERO; tile.fft_nx * tile.fft_ny];
        for b in 0..kh {
            let krow = weights.row(b);
            let dst = &mut buf[b * tile.fft_nx..b * tile.fft_nx + kw];
            for (slot, &v) in dst.iter_mut().zip(krow) {
                *slot = Complex64::from_re(v);
            }
        }
        self.plans.plan(tile.fft_nx, tile.fft_ny, workers).process(&mut buf, Direction::Forward);
        let arc = Arc::new(buf);
        self.kernel_ffts
            .lock()
            .expect("kernel fft cache poisoned")
            .entry(key)
            .or_insert(arc)
            .clone()
    }

    /// Convolves a materialised `ww × wh` noise window with `kernel`,
    /// producing the `nx × ny` output — the exact sum the direct loop
    /// computes (`out[ix,iy] = Σ w̃[a,b]·win[ix+kw−1−a, iy+kh−1−b]`), via
    /// overlap-save tiles. The attached budget is polled once per tile
    /// (ticking [`stage::BUDGET_POLLS`]), so deadlines and cancellation
    /// take effect at tile granularity like the direct path's band
    /// slices.
    #[allow(clippy::too_many_arguments)]
    pub fn convolve(
        &self,
        kernel_id: usize,
        kernel: &ConvolutionKernel,
        win: &[f64],
        ww: usize,
        wh: usize,
        nx: usize,
        ny: usize,
        workers: usize,
        obs: &Recorder,
        budget: &Budget,
    ) -> Result<Grid2<f64>, RrsError> {
        let (kw, kh) = kernel.extent();
        debug_assert_eq!(win.len(), ww * wh);
        debug_assert_eq!(ww, nx + kw - 1);
        debug_assert_eq!(wh, ny + kh - 1);
        let tile_shape = plan_tiles(nx, ny, kw, kh);
        let (fx, fy) = (tile_shape.fft_nx, tile_shape.fft_ny);
        let (vx, vy) = tile_shape.valid(kw, kh);
        let fft = self.plans.plan(fx, fy, workers);
        let kspec = self.kernel_spectrum(kernel_id, kernel, tile_shape, workers);
        let polling = budget.needs_polling();

        let mut out = Grid2::zeros(nx, ny);
        let out_slice = out.as_mut_slice();
        let mut tile = vec![Complex64::ZERO; fx * fy];
        let span = obs.start(stage::CORRELATE);
        let mut tiles = 0u64;
        let mut oy = 0;
        while oy < ny {
            let mut ox = 0;
            while ox < nx {
                if polling {
                    obs.add_counter(stage::BUDGET_POLLS, 1);
                    budget.check()?;
                }
                // Gather the segment [ox, ox+fx) × [oy, oy+fy) of the
                // window, zero-padded past its edges.
                let cols = (ww - ox).min(fx);
                for ty in 0..fy {
                    let trow = &mut tile[ty * fx..(ty + 1) * fx];
                    let wy = oy + ty;
                    if wy < wh {
                        let wrow = &win[wy * ww + ox..wy * ww + ox + cols];
                        for (slot, &v) in trow.iter_mut().zip(wrow) {
                            *slot = Complex64::from_re(v);
                        }
                        trow[cols..].fill(Complex64::ZERO);
                    } else {
                        trow.fill(Complex64::ZERO);
                    }
                }
                fft.process(&mut tile, Direction::Forward);
                for (z, k) in tile.iter_mut().zip(kspec.iter()) {
                    *z = *z * *k;
                }
                fft.process(&mut tile, Direction::Inverse);
                // Scatter the non-wrapped outputs.
                let cx = (nx - ox).min(vx);
                let cy = (ny - oy).min(vy);
                for dy in 0..cy {
                    let src = (kh - 1 + dy) * fx + (kw - 1);
                    let dst = (oy + dy) * nx + ox;
                    for dx in 0..cx {
                        out_slice[dst + dx] = tile[src + dx].re;
                    }
                }
                tiles += 1;
                ox += vx;
            }
            oy += vy;
        }
        obs.finish(span);
        obs.add_counter(stage::CONV_FFT_TILES, tiles);
        obs.add_counter(stage::CORRELATE_SAMPLES, (nx * ny) as u64);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_plan_admits_valid_output_and_covers_kernel() {
        for &(nx, ny, kw, kh) in &[
            (128usize, 128usize, 65usize, 65usize),
            (32, 32, 17, 17),
            (256, 8, 33, 9),
            (5, 5, 3, 7),
            (1, 1, 1, 1),
        ] {
            let t = plan_tiles(nx, ny, kw, kh);
            assert!(t.fft_nx.is_power_of_two() && t.fft_ny.is_power_of_two());
            assert!(t.fft_nx >= kw && t.fft_ny >= kh, "{t:?} vs kernel {kw}x{kh}");
            let (vx, vy) = t.valid(kw, kh);
            assert!(vx >= 1 && vy >= 1);
            // Never larger than one tile covering the whole problem.
            assert!(t.fft_nx <= (nx + kw - 1).next_power_of_two());
            assert!(t.fft_ny <= (ny + kh - 1).next_power_of_two());
        }
    }

    #[test]
    fn tile_plan_is_deterministic() {
        assert_eq!(plan_tiles(128, 128, 65, 65), plan_tiles(128, 128, 65, 65));
    }
}
