//! Property-based tests for the RNG substrate (rrs-check harness).

use rrs_check::any;
use rrs_rng::{
    BoxMuller, GaussianSource, Pcg32, Polar, RandomSource, SplitMix64, Xoshiro256pp,
};

rrs_check::props! {
    #![cases = 128]

    fn uniform_unit_interval_for_all_generators(seed in any::<u64>()) {
        let mut sm = SplitMix64::new(seed);
        let mut xo = Xoshiro256pp::seed_from_u64(seed);
        let mut pcg = Pcg32::seed_from_u64(seed);
        for _ in 0..64 {
            assert!((0.0..1.0).contains(&sm.next_f64()));
            assert!((0.0..1.0).contains(&xo.next_f64()));
            assert!((0.0..1.0).contains(&pcg.next_f64()));
        }
    }

    fn open_interval_excludes_zero(seed in any::<u64>()) {
        let mut g = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..256 {
            let v = g.next_f64_open();
            assert!(v > 0.0 && v < 1.0);
        }
    }

    fn next_below_respects_bound(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut g = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..32 {
            assert!(g.next_below(bound) < bound);
        }
    }

    fn generators_are_deterministic(seed in any::<u64>()) {
        let mut a = Xoshiro256pp::seed_from_u64(seed);
        let mut b = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut p = Pcg32::seed_from_u64(seed);
        let mut q = Pcg32::seed_from_u64(seed);
        for _ in 0..32 {
            assert_eq!(p.next_u32(), q.next_u32());
        }
    }

    fn pcg_advance_matches_stepping(seed in any::<u64>(), n in 0u64..4096) {
        let mut a = Pcg32::seed_from_u64(seed);
        let mut b = a.clone();
        for _ in 0..n {
            a.next_u32();
        }
        b.advance(n);
        assert_eq!(a, b);
    }

    fn jumped_streams_do_not_collide(seed in any::<u64>()) {
        let mut a = Xoshiro256pp::seed_from_u64(seed);
        let mut b = a.clone();
        b.jump();
        let wa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let wb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(wa, wb);
    }

    fn gaussian_deviates_are_finite(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut bm = BoxMuller::new();
        let mut po = Polar::new();
        for _ in 0..128 {
            let x = bm.sample(&mut rng);
            let y = po.sample(&mut rng);
            assert!(x.is_finite() && y.is_finite());
            // A |z| > 10 draw has probability < 1e-23: treat as a bug.
            assert!(x.abs() < 10.0 && y.abs() < 10.0);
        }
    }

    fn scaled_sampling_is_affine(seed in any::<u64>(), mean in -100.0f64..100.0, sigma in 0.01f64..50.0) {
        let mut r1 = Xoshiro256pp::seed_from_u64(seed);
        let mut r2 = Xoshiro256pp::seed_from_u64(seed);
        let mut g1 = BoxMuller::new();
        let mut g2 = BoxMuller::new();
        let raw = g1.sample(&mut r1);
        let scaled = g2.sample_scaled(&mut r2, mean, sigma);
        assert!((scaled - (mean + sigma * raw)).abs() < 1e-12 * scaled.abs().max(1.0));
    }
}
