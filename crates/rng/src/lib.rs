//! Deterministic pseudo-random number generation for surface synthesis.
//!
//! The paper (§2.3) builds its Gaussian random number sets from the C
//! library's `rand()` via the Box–Muller transform (eqn 18). A libc RNG is
//! neither reproducible across platforms nor statistically adequate for
//! large surfaces, so this crate provides:
//!
//! * [`SplitMix64`] — a tiny seeding/stream-derivation generator;
//! * [`Xoshiro256pp`] — the workhorse generator, with `jump`/`long_jump`
//!   for provably non-overlapping parallel streams;
//! * [`Pcg32`] — an independent second family used to cross-check that
//!   surface statistics do not depend on the generator;
//! * [`gaussian`] — Box–Muller exactly as the paper's eqn (18), plus the
//!   rejection-free polar variant, both as iterators and bulk fillers.
//!
//! All generators implement the minimal [`RandomSource`] trait consumed by
//! the surface crates, so any of them can drive generation.

#![warn(missing_docs)]

pub mod gaussian;
pub mod pcg;
pub mod splitmix;
pub mod xoshiro;

pub use gaussian::{BoxMuller, GaussianSource, Polar};
pub use pcg::Pcg32;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// A source of uniformly distributed raw 64-bit words.
///
/// The trait is object-safe so generators can be boxed behind configuration.
pub trait RandomSource {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in the half-open interval `[0, 1)`, using the top 53
    /// bits of one output word.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 2^-53 scaling of 53 high bits gives a uniform dyadic rational.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in the open interval `(0, 1)`; never returns exactly
    /// zero. Needed where a logarithm of the deviate is taken (Box–Muller).
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        // Put a half-ulp offset on the 53-bit lattice: (n + 0.5) * 2^-53.
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` by Lemire's multiply-shift
    /// rejection method (unbiased).
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fills a slice with uniform `[0, 1)` samples.
    fn fill_f64(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.next_f64();
        }
    }
}

impl<T: RandomSource + ?Sized> RandomSource for &mut T {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<T: RandomSource + ?Sized> RandomSource for Box<T> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Derives `n` independent generators from one master seed.
///
/// Stream `i` is seeded from `SplitMix64(seed)` advanced `i` times, then the
/// Xoshiro state receives `i` applications of `jump()`, guaranteeing
/// 2^128-separated subsequences — the scheme used to parallelise row-band
/// generation deterministically (same surface regardless of thread count).
pub fn spawn_streams(seed: u64, n: usize) -> Vec<Xoshiro256pp> {
    let mut root = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s = root.clone();
            root.jump();
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_f64_open_never_zero() {
        let mut g = Pcg32::seed_from_u64(7);
        for _ in 0..100_000 {
            let v = g.next_f64_open();
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut g = Xoshiro256pp::seed_from_u64(5);
        let bound = 10u64;
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            let v = g.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < 5.0 * expect.sqrt(), "count {c} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        Xoshiro256pp::seed_from_u64(1).next_below(0);
    }

    #[test]
    fn spawned_streams_are_distinct_and_deterministic() {
        let a = spawn_streams(99, 4);
        let b = spawn_streams(99, 4);
        for (x, y) in a.iter().zip(&b) {
            let mut x = x.clone();
            let mut y = y.clone();
            for _ in 0..64 {
                assert_eq!(x.next_u64(), y.next_u64());
            }
        }
        // Different streams must not collide over a modest window.
        let mut s0 = a[0].clone();
        let mut s1 = a[1].clone();
        let w0: Vec<u64> = (0..256).map(|_| s0.next_u64()).collect();
        let w1: Vec<u64> = (0..256).map(|_| s1.next_u64()).collect();
        assert_ne!(w0, w1);
    }

    #[test]
    fn trait_objects_work() {
        let mut boxed: Box<dyn RandomSource> = Box::new(Xoshiro256pp::seed_from_u64(3));
        let _ = boxed.next_u64();
        let _ = boxed.next_f64();
    }

    #[test]
    fn fill_f64_fills_everything() {
        let mut g = Xoshiro256pp::seed_from_u64(11);
        let mut buf = vec![-1.0; 1000];
        g.fill_f64(&mut buf);
        assert!(buf.iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}
