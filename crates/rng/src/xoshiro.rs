//! Xoshiro256++ — Blackman & Vigna's all-purpose 256-bit generator.
//!
//! Period 2^256 − 1, passes BigCrush, and provides polynomial `jump`
//! functions that advance the state by 2^128 (resp. 2^192) steps — the
//! mechanism behind deterministic parallel surface generation: each row
//! band gets its own jumped stream.

use crate::{RandomSource, SplitMix64};

/// The xoshiro256++ generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from four raw state words.
    ///
    /// # Panics
    /// Panics if all four words are zero (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must not be all-zero");
        Self { s }
    }

    /// Seeds the 256-bit state from a single `u64` via SplitMix64, as the
    /// authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }

    /// Advances the state by 2^128 steps: 2^128 non-overlapping
    /// subsequences are available for parallel use.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] =
            [0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C];
        self.polynomial_jump(&JUMP);
    }

    /// Advances the state by 2^192 steps, for partitioning between
    /// distributed runs rather than threads.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] =
            [0x76E15D3EFEFDCBBF, 0xC5004E441C522FB3, 0x77710069854EE241, 0x39109BB02ACBE635];
        self.polynomial_jump(&LONG_JUMP);
    }

    fn polynomial_jump(&mut self, poly: &[u64; 4]) {
        let mut acc = [0u64; 4];
        for &word in poly {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    for (a, s) in acc.iter_mut().zip(&self.s) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RandomSource for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // Reference outputs of xoshiro256plusplus.c with state {1, 2, 3, 4}.
        let mut g = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 8] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
        ];
        for &e in &expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_rejected() {
        Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn jump_commutes_with_stepping_disjointness() {
        // After a jump, the next outputs must differ from the pre-jump
        // stream (sanity, not a full disjointness proof).
        let mut a = Xoshiro256pp::seed_from_u64(123);
        let mut b = a.clone();
        b.jump();
        let wa: Vec<u64> = (0..128).map(|_| a.next_u64()).collect();
        let wb: Vec<u64> = (0..128).map(|_| b.next_u64()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn double_jump_equals_two_jumps() {
        let mut a = Xoshiro256pp::seed_from_u64(5);
        let mut b = a.clone();
        a.jump();
        a.jump();
        b.jump();
        b.jump();
        assert_eq!(a, b);
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256pp::seed_from_u64(5);
        let mut a = base.clone();
        let mut b = base.clone();
        a.jump();
        b.long_jump();
        assert_ne!(a, b);
    }

    #[test]
    fn seed_from_u64_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(2024);
        let mut b = Xoshiro256pp::seed_from_u64(2024);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformity_of_mean() {
        // Mean of 1e6 uniforms should be 0.5 within ~4 sigma (sigma = 1/sqrt(12 n)).
        let mut g = Xoshiro256pp::seed_from_u64(31415);
        let n = 1_000_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        let sigma = (1.0 / 12.0f64 / n as f64).sqrt();
        assert!((mean - 0.5).abs() < 4.0 * sigma, "mean={mean}");
    }
}
