//! Gaussian (normal) deviate generation.
//!
//! [`BoxMuller`] is a faithful implementation of the paper's eqn (18):
//!
//! ```text
//! u1 = rand(2π),  u2 = rand(1),  X = sqrt(-2 ln u2) · cos(u1)
//! ```
//!
//! including the companion `sin` deviate the transform produces for free.
//! [`Polar`] (Marsaglia) avoids the trig calls and is the faster default
//! for bulk fills; both produce exact `N(0, 1)` marginals so the choice
//! does not affect surface statistics — a fact the test suite checks.

use crate::RandomSource;
use core::f64::consts::TAU;

/// A strategy producing standard normal deviates from a uniform source.
pub trait GaussianSource {
    /// Draws one `N(0, 1)` sample.
    fn sample<R: RandomSource + ?Sized>(&mut self, rng: &mut R) -> f64;

    /// Fills `out` with independent `N(0, 1)` samples.
    fn fill<R: RandomSource + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }

    /// Draws one `N(mean, sigma²)` sample.
    #[inline]
    fn sample_scaled<R: RandomSource + ?Sized>(&mut self, rng: &mut R, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.sample(rng)
    }
}

/// The Box–Muller transform of the paper's eqn (18), caching the second
/// deviate of each pair.
#[derive(Clone, Debug, Default)]
pub struct BoxMuller {
    cached: Option<f64>,
}

impl BoxMuller {
    /// Creates a transform with an empty pair cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws a full independent pair `(X, Y)` — the two Gaussian sets
    /// `{X}` and `{Y}` of the paper's eqn (19) are built this way.
    pub fn sample_pair<R: RandomSource + ?Sized>(&mut self, rng: &mut R) -> (f64, f64) {
        let u1 = TAU * rng.next_f64(); // rand(2π)
        let u2 = rng.next_f64_open(); // rand(1), never 0 so the log is finite
        let r = (-2.0 * u2.ln()).sqrt();
        let (s, c) = u1.sin_cos();
        (r * c, r * s)
    }
}

impl GaussianSource for BoxMuller {
    fn sample<R: RandomSource + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        let (x, y) = self.sample_pair(rng);
        self.cached = Some(y);
        x
    }
}

/// Marsaglia's polar method: rejection-samples a point in the unit disc and
/// maps it to a Gaussian pair without trigonometric calls.
#[derive(Clone, Debug, Default)]
pub struct Polar {
    cached: Option<f64>,
}

impl Polar {
    /// Creates a transform with an empty pair cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws a full independent pair.
    pub fn sample_pair<R: RandomSource + ?Sized>(&mut self, rng: &mut R) -> (f64, f64) {
        loop {
            let x = 2.0 * rng.next_f64() - 1.0;
            let y = 2.0 * rng.next_f64() - 1.0;
            let s = x * x + y * y;
            if s < 1.0 && s > 0.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                return (x * k, y * k);
            }
        }
    }
}

impl GaussianSource for Polar {
    fn sample<R: RandomSource + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        let (x, y) = self.sample_pair(rng);
        self.cached = Some(y);
        x
    }
}

/// Convenience: fills `out` with `N(0, 1)` deviates using Box–Muller, the
/// paper's stated generator.
pub fn fill_standard_normal<R: RandomSource + ?Sized>(rng: &mut R, out: &mut [f64]) {
    BoxMuller::new().fill(rng, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256pp;

    fn moments(samples: &[f64]) -> (f64, f64, f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n;
        let skew = samples.iter().map(|&x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
        let kurt = samples.iter().map(|&x| (x - mean).powi(4)).sum::<f64>() / n / (var * var);
        (mean, var, skew, kurt)
    }

    fn check_standard_normal(samples: &[f64]) {
        let n = samples.len() as f64;
        let (mean, var, skew, kurt) = moments(samples);
        // Standard errors: mean ~ 1/sqrt(n), var ~ sqrt(2/n),
        // skew ~ sqrt(6/n), kurt ~ sqrt(24/n).
        assert!(mean.abs() < 4.5 / n.sqrt(), "mean={mean}");
        assert!((var - 1.0).abs() < 4.5 * (2.0 / n).sqrt(), "var={var}");
        assert!(skew.abs() < 4.5 * (6.0 / n).sqrt(), "skew={skew}");
        assert!((kurt - 3.0).abs() < 4.5 * (24.0 / n).sqrt(), "kurt={kurt}");
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut g = BoxMuller::new();
        let samples: Vec<f64> = (0..400_000).map(|_| g.sample(&mut rng)).collect();
        check_standard_normal(&samples);
    }

    #[test]
    fn polar_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut g = Polar::new();
        let samples: Vec<f64> = (0..400_000).map(|_| g.sample(&mut rng)).collect();
        check_standard_normal(&samples);
    }

    #[test]
    fn pair_components_are_uncorrelated() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut g = BoxMuller::new();
        let n = 200_000;
        let mut sxy = 0.0;
        for _ in 0..n {
            let (x, y) = g.sample_pair(&mut rng);
            sxy += x * y;
        }
        let corr = sxy / n as f64;
        assert!(corr.abs() < 4.5 / (n as f64).sqrt(), "corr={corr}");
    }

    #[test]
    fn cache_makes_pairs_stream_correctly() {
        // Two sequential sample() calls must reproduce one sample_pair().
        let mut rng1 = Xoshiro256pp::seed_from_u64(4);
        let mut rng2 = Xoshiro256pp::seed_from_u64(4);
        let mut a = BoxMuller::new();
        let mut b = BoxMuller::new();
        let (x, y) = a.sample_pair(&mut rng1);
        let x2 = b.sample(&mut rng2);
        let y2 = b.sample(&mut rng2);
        assert_eq!(x, x2);
        assert_eq!(y, y2);
    }

    #[test]
    fn scaled_sampling() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut g = Polar::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample_scaled(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn ks_test_against_normal_cdf() {
        // One-sample Kolmogorov–Smirnov at a generous threshold: with
        // n = 50_000 the 1% critical value of sqrt(n)·D is about 1.63.
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut g = BoxMuller::new();
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut d: f64 = 0.0;
        for (i, &x) in samples.iter().enumerate() {
            let cdf = 0.5 * (1.0 + erf_approx(x / std::f64::consts::SQRT_2));
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            d = d.max((cdf - lo).abs()).max((cdf - hi).abs());
        }
        let stat = (n as f64).sqrt() * d;
        assert!(stat < 1.95, "KS statistic too large: {stat}");
    }

    // Local erf good to ~1e-7 — plenty for a KS bound check (keeps this
    // crate independent of rrs-num).
    fn erf_approx(x: f64) -> f64 {
        let t = 1.0 / (1.0 + 0.3275911 * x.abs());
        let poly = t
            * (0.254829592
                + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
        let v = 1.0 - poly * (-x * x).exp();
        if x >= 0.0 { v } else { -v }
    }

    #[test]
    fn fill_standard_normal_convenience() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut buf = vec![0.0; 4096];
        fill_standard_normal(&mut rng, &mut buf);
        let mean = buf.iter().sum::<f64>() / buf.len() as f64;
        assert!(mean.abs() < 0.1);
        assert!(buf.iter().any(|&v| v != 0.0));
    }
}
