//! PCG32 (XSH-RR variant) — O'Neill's permuted congruential generator.
//!
//! Kept as an *independent family* from xoshiro: validation tests generate
//! the same surface ensemble with both and require the statistics to agree,
//! guarding against generator-specific artefacts.

use crate::RandomSource;

const MULT: u64 = 6364136223846793005;

/// The PCG-XSH-RR 64/32 generator. 64-bit state, 32-bit outputs
/// (two are concatenated to serve [`RandomSource::next_u64`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from a state seed and a stream selector.
    /// Distinct `stream` values give statistically independent sequences.
    pub fn new(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1; // must be odd
        let mut g = Self { state: 0, inc };
        g.step();
        g.state = g.state.wrapping_add(seed);
        g.step();
        g
    }

    /// Seeds with the default stream, mirroring the reference
    /// `pcg32_srandom(seed, 54)` example conventions.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed, 54)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULT).wrapping_add(self.inc);
    }

    /// The native 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Advances the generator `delta` steps in O(log delta) time.
    pub fn advance(&mut self, delta: u64) {
        // LCG skip-ahead by modular exponentiation (Brown, "Random number
        // generation with arbitrary strides").
        let mut acc_mult: u64 = 1;
        let mut acc_plus: u64 = 0;
        let mut cur_mult = MULT;
        let mut cur_plus = self.inc;
        let mut d = delta;
        while d > 0 {
            if d & 1 == 1 {
                acc_mult = acc_mult.wrapping_mul(cur_mult);
                acc_plus = acc_plus.wrapping_mul(cur_mult).wrapping_add(cur_plus);
            }
            cur_plus = cur_mult.wrapping_add(1).wrapping_mul(cur_plus);
            cur_mult = cur_mult.wrapping_mul(cur_mult);
            d >>= 1;
        }
        self.state = acc_mult.wrapping_mul(self.state).wrapping_add(acc_plus);
    }
}

impl RandomSource for Pcg32 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // First outputs of the reference pcg32 demo:
        // pcg32_srandom_r(&rng, 42u, 54u).
        let mut g = Pcg32::new(42, 54);
        let expected: [u32; 6] =
            [0xa15c02b7, 0x7b47f409, 0xba1d3330, 0x83d2f293, 0xbfa4784b, 0xcbed606e];
        for &e in &expected {
            assert_eq!(g.next_u32(), e);
        }
    }

    #[test]
    fn advance_matches_stepping() {
        let mut a = Pcg32::new(9, 3);
        let mut b = a.clone();
        for _ in 0..1000 {
            a.next_u32();
        }
        b.advance(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn advance_zero_is_identity() {
        let mut a = Pcg32::new(9, 3);
        let b = a.clone();
        a.advance(0);
        assert_eq!(a, b);
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = Pcg32::new(100, 1);
        let mut b = Pcg32::new(100, 2);
        let sa: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn u64_concatenation_consumes_two_u32() {
        let mut a = Pcg32::new(7, 7);
        let mut b = a.clone();
        let w = a.next_u64();
        let hi = b.next_u32() as u64;
        let lo = b.next_u32() as u64;
        assert_eq!(w, (hi << 32) | lo);
    }
}
