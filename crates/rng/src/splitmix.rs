//! SplitMix64 — Steele, Lea & Flood's split-and-mix generator.
//!
//! Used here for seeding: it equidistributes a single `u64` seed into
//! arbitrarily many well-mixed state words, which is exactly what the
//! larger generators need to avoid correlated low-entropy starts.

use crate::RandomSource;

/// The SplitMix64 generator. One `u64` of state; period 2^64.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed. Any value is acceptable,
    /// including zero.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Weyl sequence increment followed by a 3-round finalizer
        // (David Stafford's Mix13 variant used in the reference code).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_from_zero_seed() {
        // Reference outputs of the canonical splitmix64.c with seed 0.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn reference_sequence_seed_1234567() {
        // splitmix64.c with seed 1234567.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_and_clonable() {
        let mut a = SplitMix64::new(77);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }
}
