//! Properties of the fallible grid operations: out-of-domain inputs are
//! rejected with typed errors (never a panic, never a bogus grid), valid
//! inputs round-trip with the panicking wrappers.

use rrs_check::props;
use rrs_error::ErrorKind;
use rrs_grid::Grid2;

props! {
    #![cases = 96]

    fn from_vec_length_check(nx in 0usize..40, ny in 0usize..40, extra in 0usize..5) {
        let n = nx * ny;
        let ok = Grid2::try_from_vec(nx, ny, vec![0.0f64; n]).expect("exact length accepted");
        assert_eq!(ok.shape(), (nx, ny));
        if extra > 0 {
            let e = Grid2::try_from_vec(nx, ny, vec![0.0f64; n + extra]).unwrap_err();
            assert_eq!(e.kind(), ErrorKind::ShapeMismatch, "{e}");
        }
    }

    fn window_bounds_are_exact(
        nx in 1usize..24, ny in 1usize..24,
        x0 in 0usize..32, y0 in 0usize..32,
        w in 0usize..32, h in 0usize..32,
    ) {
        let g = Grid2::from_fn(nx, ny, |x, y| (x * 131 + y) as f64);
        let fits = x0 + w <= nx && y0 + h <= ny;
        match g.try_window(x0, y0, w, h) {
            Ok(win) => {
                assert!(fits, "({x0},{y0}) {w}x{h} accepted in {nx}x{ny}");
                assert_eq!(win.shape(), (w, h));
                assert_eq!(win, g.window(x0, y0, w, h));
            }
            Err(e) => {
                assert!(!fits, "({x0},{y0}) {w}x{h} rejected in {nx}x{ny}: {e}");
                assert_eq!(e.kind(), ErrorKind::ShapeMismatch);
            }
        }
    }

    fn blit_bounds_are_exact(
        nx in 1usize..24, ny in 1usize..24,
        x0 in 0usize..32, y0 in 0usize..32,
        sw in 1usize..8, sh in 1usize..8,
    ) {
        let src = Grid2::filled(sw, sh, 1.0f64);
        let mut dst = Grid2::zeros(nx, ny);
        let fits = x0 + sw <= nx && y0 + sh <= ny;
        match dst.try_blit(x0, y0, &src) {
            Ok(()) => {
                assert!(fits);
                let placed: f64 = dst.as_slice().iter().sum();
                assert_eq!(placed, (sw * sh) as f64);
            }
            Err(e) => {
                assert!(!fits, "blit accepted out of bounds: {e}");
                assert_eq!(e.kind(), ErrorKind::ShapeMismatch);
                // A rejected blit must leave the target untouched.
                assert!(dst.as_slice().iter().all(|&v| v == 0.0));
            }
        }
    }

    fn add_assign_requires_same_shape(
        nx in 1usize..16, ny in 1usize..16, dx in 0usize..3, dy in 0usize..3,
    ) {
        let mut a = Grid2::zeros(nx, ny);
        let b = Grid2::filled(nx + dx, ny + dy, 2.0);
        match a.try_add_assign(&b) {
            Ok(()) => {
                assert_eq!((dx, dy), (0, 0));
                assert!(a.as_slice().iter().all(|&v| v == 2.0));
            }
            Err(e) => {
                assert!(dx > 0 || dy > 0);
                assert_eq!(e.kind(), ErrorKind::ShapeMismatch, "{e}");
            }
        }
    }
}
