//! Property-based accept/reject domain tests for `Window::try_new`
//! (rrs-check harness).

use rrs_check::any;
use rrs_grid::Window;

rrs_check::props! {
    #![cases = 256]

    fn in_domain_requests_are_accepted(
        x0 in -1_000_000i64..1_000_000,
        y0 in -1_000_000i64..1_000_000,
        nx in 1usize..4096,
        ny in 1usize..4096,
    ) {
        let w = Window::try_new(x0, y0, nx, ny).expect("in-domain window");
        assert_eq!((w.x0, w.y0, w.nx, w.ny), (x0, y0, nx, ny));
        assert_eq!(w.shape(), (nx, ny));
        assert_eq!(w.len(), nx * ny);
        assert_eq!(w.x_end() - w.x0, nx as i64);
        assert_eq!(w.y_end() - w.y0, ny as i64);
        // try_new and the panicking wrapper agree on the accept domain.
        assert_eq!(w, Window::new(x0, y0, nx, ny));
    }

    fn empty_extents_are_rejected(
        x0 in -1_000_000i64..1_000_000,
        y0 in -1_000_000i64..1_000_000,
        n in 0usize..64,
        kill_x in any::<bool>(),
    ) {
        let (nx, ny) = if kill_x { (0, n) } else { (n, 0) };
        let err = Window::try_new(x0, y0, nx, ny).expect_err("empty window");
        assert_eq!(err.kind(), rrs_error::ErrorKind::InvalidParam);
        assert!(err.to_string().contains("non-empty"), "{err}");
    }

    fn far_edge_overflow_is_rejected(
        slack in 0u64..1024,
        extra in 1usize..4096,
        ny in 1usize..64,
    ) {
        // Put the origin within `slack` of the lattice edge and ask for
        // `slack + extra` samples: the far edge always overflows i64.
        let x0 = i64::MAX - slack as i64;
        let nx = slack as usize + extra;
        let err = Window::try_new(x0, 0, nx, ny).expect_err("overflowing window");
        assert_eq!(err.kind(), rrs_error::ErrorKind::InvalidParam);
        assert!(err.to_string().contains("overflows"), "{err}");
        // The y axis is validated by the same rule.
        assert!(Window::try_new(0, i64::MAX - slack as i64, ny, nx).is_err());
    }

    fn boundary_windows_touching_the_edge_are_accepted(
        nx in 1usize..4096,
        ny in 1usize..4096,
    ) {
        // Far edge exactly at i64::MAX is representable, hence valid.
        let w = Window::try_new(i64::MAX - nx as i64, i64::MAX - ny as i64, nx, ny)
            .expect("edge-touching window");
        assert_eq!(w.x_end(), i64::MAX);
        assert_eq!(w.y_end(), i64::MAX);
    }

    fn containment_matches_the_half_open_definition(
        x0 in -1000i64..1000,
        y0 in -1000i64..1000,
        nx in 1usize..32,
        ny in 1usize..32,
        px in -1100i64..1100,
        py in -1100i64..1100,
    ) {
        let w = Window::try_new(x0, y0, nx, ny).unwrap();
        let expect = px >= x0 && px < x0 + nx as i64 && py >= y0 && py < y0 + ny as i64;
        assert_eq!(w.contains(px, py), expect);
    }

    fn translation_is_additive_and_reversible(
        x0 in -1000i64..1000,
        y0 in -1000i64..1000,
        nx in 1usize..32,
        ny in 1usize..32,
        dx in -5000i64..5000,
        dy in -5000i64..5000,
    ) {
        let w = Window::try_new(x0, y0, nx, ny).unwrap();
        let t = w.translated(dx, dy);
        assert_eq!(t.shape(), w.shape());
        assert_eq!(t.x0 - w.x0, dx);
        assert_eq!(t.y0 - w.y0, dy);
        assert_eq!(t.translated(-dx, -dy), w);
    }
}
