//! Property-based tests for the grid substrate (rrs-check harness).

use rrs_check::{any, map, Gen};
use rrs_grid::Grid2;

fn arb_grid() -> impl Gen<Value = Grid2<f64>> {
    map((1usize..24, 1usize..24, any::<u64>()), |(nx, ny, seed)| {
        Grid2::from_fn(nx, ny, |x, y| {
            let k = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(((y * nx + x) as u64).wrapping_mul(1442695040888963407));
            (k >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    })
}

rrs_check::props! {
    #![cases = 128]

    fn transpose_is_involutive(g in arb_grid()) {
        assert_eq!(g.transpose().transpose(), g);
    }

    fn transpose_swaps_indices(g in arb_grid()) {
        let t = g.transpose();
        for iy in 0..g.ny() {
            for ix in 0..g.nx() {
                assert_eq!(*g.get(ix, iy), *t.get(iy, ix));
            }
        }
    }

    fn window_blit_round_trip(g in arb_grid(), fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let (nx, ny) = g.shape();
        let x0 = (fx * (nx - 1) as f64) as usize;
        let y0 = (fy * (ny - 1) as f64) as usize;
        let w = nx - x0;
        let h = ny - y0;
        let win = g.window(x0, y0, w, h);
        let mut copy = g.clone();
        copy.blit(x0, y0, &win);
        assert_eq!(copy, g, "blitting a window back must be a no-op");
    }

    fn periodic_access_has_period(g in arb_grid(), ix in -100isize..100, iy in -100isize..100) {
        let (nx, ny) = g.shape();
        let a = g.get_periodic(ix, iy);
        let b = g.get_periodic(ix + nx as isize, iy);
        let c = g.get_periodic(ix, iy - ny as isize);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    fn mean_is_translation_equivariant(g in arb_grid(), shift in -100.0f64..100.0) {
        let shifted = g.map(|&v| v + shift);
        assert!((shifted.mean() - (g.mean() + shift)).abs() < 1e-9);
        // ... and variance is translation invariant.
        assert!((shifted.variance() - g.variance()).abs() < 1e-9);
    }

    fn variance_scales_quadratically(g in arb_grid(), k in -10.0f64..10.0) {
        let scaled = g.map(|&v| v * k);
        assert!((scaled.variance() - k * k * g.variance()).abs() < 1e-9 * (1.0 + k * k));
    }

    fn min_max_bound_all_samples(g in arb_grid()) {
        let lo = g.min();
        let hi = g.max();
        assert!(g.as_slice().iter().all(|&v| v >= lo && v <= hi));
        assert!(g.mean() >= lo && g.mean() <= hi);
    }

    fn rows_concatenate_to_storage(g in arb_grid()) {
        let mut cat: Vec<f64> = Vec::new();
        for row in g.rows() {
            cat.extend_from_slice(row);
        }
        assert_eq!(cat.as_slice(), g.as_slice());
    }
}
