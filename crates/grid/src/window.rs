//! Rectangular window requests on the unbounded ℤ² surface lattice.
//!
//! Every generator in the workspace answers the same question — "give me
//! the samples in `[x0, x0+nx) × [y0, y0+ny)` of an unbounded surface" —
//! and historically took the four numbers positionally. [`Window`] names
//! that request once: `generate(&noise, Window::try_new(x0, y0, nx, ny)?)`
//! reads unambiguously, validation happens in one place, and windows can
//! be stored, compared, split and shifted as values.

use rrs_error::RrsError;

/// The half-open lattice window `[x0, x0+nx) × [y0, y0+ny)`.
///
/// Construct through [`Window::try_new`] (or the panicking [`Window::new`]
/// / origin-anchored [`Window::sized`]); a constructed window is always
/// non-empty and its extents never overflow the `i64` lattice, so
/// consumers can do index arithmetic without re-checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Window {
    /// Minimum (leftmost) `x` lattice index.
    pub x0: i64,
    /// Minimum (bottom) `y` lattice index.
    pub y0: i64,
    /// Extent along `x`, in samples (always positive).
    pub nx: usize,
    /// Extent along `y`, in samples (always positive).
    pub ny: usize,
}

impl Window {
    /// Validates and builds a window request.
    ///
    /// Rejected with [`RrsError::InvalidParam`]:
    /// * empty extents (`nx == 0` or `ny == 0`);
    /// * extents or far edges that overflow the `i64` lattice
    ///   (`x0 + nx` / `y0 + ny` must be representable);
    /// * a total sample count `nx·ny` that overflows `usize` (no
    ///   allocation could back it).
    pub fn try_new(x0: i64, y0: i64, nx: usize, ny: usize) -> Result<Self, RrsError> {
        if nx == 0 || ny == 0 {
            return Err(RrsError::invalid_param(
                "window",
                format!("window must be non-empty, got {nx}x{ny}"),
            ));
        }
        let fits = |origin: i64, extent: usize| {
            i64::try_from(extent)
                .ok()
                .and_then(|e| origin.checked_add(e))
                .is_some()
        };
        if !fits(x0, nx) || !fits(y0, ny) {
            return Err(RrsError::invalid_param(
                "window",
                format!(
                    "window [{x0}, {x0}+{nx}) x [{y0}, {y0}+{ny}) overflows the i64 lattice"
                ),
            ));
        }
        if nx.checked_mul(ny).is_none() {
            return Err(RrsError::invalid_param(
                "window",
                format!("window sample count {nx}*{ny} overflows usize"),
            ));
        }
        Ok(Self { x0, y0, nx, ny })
    }

    /// Panicking [`Window::try_new`], for call sites with known-good
    /// extents.
    ///
    /// # Panics
    /// Panics on any input [`Window::try_new`] rejects.
    pub fn new(x0: i64, y0: i64, nx: usize, ny: usize) -> Self {
        Self::try_new(x0, y0, nx, ny).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The `nx × ny` window anchored at the origin.
    ///
    /// # Panics
    /// Panics if the extents are empty or overflowing.
    pub fn sized(nx: usize, ny: usize) -> Self {
        Self::new(0, 0, nx, ny)
    }

    /// Extent as `(nx, ny)` — the shape of the resulting grid.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total number of samples requested.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// The `f64` storage this window materialises, in bytes, computed in
    /// `u128` so admission control can compare it against a byte budget
    /// without the estimate itself ever overflowing.
    pub fn bytes_f64(&self) -> u128 {
        self.nx as u128 * self.ny as u128 * 8
    }

    /// Windows are never empty by construction; kept for API symmetry
    /// with collection types.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// One-past-the-rightmost `x` index.
    pub fn x_end(&self) -> i64 {
        self.x0 + self.nx as i64
    }

    /// One-past-the-topmost `y` index.
    pub fn y_end(&self) -> i64 {
        self.y0 + self.ny as i64
    }

    /// True when the lattice point `(x, y)` lies inside the window.
    pub fn contains(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x < self.x_end() && y >= self.y0 && y < self.y_end()
    }

    /// The same-shape window translated by `(dx, dy)`.
    ///
    /// # Panics
    /// Panics if the translated window leaves the `i64` lattice.
    pub fn translated(&self, dx: i64, dy: i64) -> Self {
        let x0 = self.x0.checked_add(dx).expect("window x translation overflows i64");
        let y0 = self.y0.checked_add(dy).expect("window y translation overflows i64");
        Self::new(x0, y0, self.nx, self.ny)
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}) x [{}, {})", self.x0, self.x_end(), self.y0, self.y_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_error::ErrorKind;

    #[test]
    fn accepts_ordinary_windows() {
        let w = Window::try_new(-5, 7, 32, 16).unwrap();
        assert_eq!(w.shape(), (32, 16));
        assert_eq!(w.len(), 512);
        assert_eq!((w.x_end(), w.y_end()), (27, 23));
        assert!(w.contains(-5, 7));
        assert!(w.contains(26, 22));
        assert!(!w.contains(27, 7));
        assert!(!w.contains(-6, 7));
    }

    #[test]
    fn rejects_empty_extents() {
        for (nx, ny) in [(0usize, 4usize), (4, 0), (0, 0)] {
            let err = Window::try_new(0, 0, nx, ny).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::InvalidParam);
            assert!(err.to_string().contains("non-empty"), "{err}");
        }
    }

    #[test]
    fn rejects_lattice_overflow() {
        let err = Window::try_new(i64::MAX - 3, 0, 8, 8).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidParam);
        assert!(err.to_string().contains("overflows"), "{err}");
        assert!(Window::try_new(0, i64::MAX, 1, 1).is_err());
        // Extents too large for i64 at all.
        if usize::BITS >= 64 {
            assert!(Window::try_new(0, 0, usize::MAX, 1).is_err());
        }
        // The far edge may sit exactly at i64::MAX.
        assert!(Window::try_new(i64::MAX - 8, i64::MAX - 8, 8, 8).is_ok());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn panicking_constructor_rejects_empty() {
        Window::new(0, 0, 0, 1);
    }

    #[test]
    fn sized_anchors_at_origin() {
        let w = Window::sized(10, 20);
        assert_eq!(w, Window::new(0, 0, 10, 20));
        assert!(!w.is_empty());
    }

    #[test]
    fn bytes_estimate_never_overflows() {
        assert_eq!(Window::sized(4, 8).bytes_f64(), 256);
        // Larger than any addressable allocation, still exact in u128.
        let w = Window::sized(1 << 30, 1 << 30);
        assert_eq!(w.bytes_f64(), (1u128 << 60) * 8);
    }

    #[test]
    fn translation_shifts_origin_only() {
        let w = Window::new(3, -4, 5, 6).translated(-10, 2);
        assert_eq!(w, Window::new(-7, -2, 5, 6));
    }

    #[test]
    fn display_shows_half_open_ranges() {
        assert_eq!(Window::new(-2, 1, 4, 2).to_string(), "[-2, 2) x [1, 3)");
    }
}
