//! The core dense 2-D array type.

use core::fmt;
use rrs_error::RrsError;

/// A dense, row-major 2-D array with `x` as the fast (contiguous) axis.
#[derive(Clone, PartialEq)]
pub struct Grid2<T> {
    nx: usize,
    ny: usize,
    data: Vec<T>,
}

impl<T> Grid2<T> {
    /// Validated construction from raw parts: `data.len()` must equal
    /// `nx · ny` (which itself must not overflow `usize`).
    pub fn try_from_vec(nx: usize, ny: usize, data: Vec<T>) -> Result<Self, RrsError> {
        let n = nx.checked_mul(ny).ok_or_else(|| {
            RrsError::invalid_param("nx*ny", format!("grid shape {nx}x{ny} overflows usize"))
        })?;
        if data.len() != n {
            return Err(RrsError::shape_mismatch(
                "grid data length must be nx*ny",
                n,
                data.len(),
            ));
        }
        Ok(Self { nx, ny, data })
    }

    /// Creates a grid from raw parts.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny`. Fallible callers use
    /// [`Grid2::try_from_vec`].
    pub fn from_vec(nx: usize, ny: usize, data: Vec<T>) -> Self {
        Self::try_from_vec(nx, ny, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a grid by evaluating `f(ix, iy)` at every point, row by row.
    pub fn from_fn<F: FnMut(usize, usize) -> T>(nx: usize, ny: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                data.push(f(ix, iy));
            }
        }
        Self { nx, ny, data }
    }

    /// Number of samples along `x` (the fast axis).
    #[inline(always)]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of samples along `y` (the slow axis).
    #[inline(always)]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of samples.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the grid holds no samples.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shape as `(nx, ny)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Flat row-major index of `(ix, iy)`.
    #[inline(always)]
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny, "index ({ix},{iy}) out of bounds");
        iy * self.nx + ix
    }

    /// Borrow of the sample at `(ix, iy)`.
    #[inline(always)]
    pub fn get(&self, ix: usize, iy: usize) -> &T {
        &self.data[self.idx(ix, iy)]
    }

    /// Mutable borrow of the sample at `(ix, iy)`.
    #[inline(always)]
    pub fn get_mut(&mut self, ix: usize, iy: usize) -> &mut T {
        let i = self.idx(ix, iy);
        &mut self.data[i]
    }

    /// Writes `v` at `(ix, iy)`.
    #[inline(always)]
    pub fn set(&mut self, ix: usize, iy: usize, v: T) {
        let i = self.idx(ix, iy);
        self.data[i] = v;
    }

    /// The whole storage as a flat row-major slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The whole storage as a flat mutable slice.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning its storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Row `iy` as a contiguous slice.
    #[inline]
    pub fn row(&self, iy: usize) -> &[T] {
        assert!(iy < self.ny, "row {iy} out of bounds (ny={})", self.ny);
        &self.data[iy * self.nx..(iy + 1) * self.nx]
    }

    /// Row `iy` as a contiguous mutable slice.
    #[inline]
    pub fn row_mut(&mut self, iy: usize) -> &mut [T] {
        assert!(iy < self.ny, "row {iy} out of bounds (ny={})", self.ny);
        &mut self.data[iy * self.nx..(iy + 1) * self.nx]
    }

    /// Iterates rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.nx.max(1))
    }

    /// Iterates `((ix, iy), &value)` in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = ((usize, usize), &T)> {
        let nx = self.nx;
        self.data.iter().enumerate().map(move |(i, v)| ((i % nx, i / nx), v))
    }

    /// Applies `f` to every element, producing a new grid of the same shape.
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> Grid2<U> {
        Grid2 { nx: self.nx, ny: self.ny, data: self.data.iter().map(f).collect() }
    }
}

impl<T: Clone> Grid2<T> {
    /// Creates a grid filled with copies of `v`.
    pub fn filled(nx: usize, ny: usize, v: T) -> Self {
        Self { nx, ny, data: vec![v; nx * ny] }
    }

    /// Fallible [`Grid2::window`]: rejects (with overflow-safe arithmetic)
    /// any window that does not lie fully inside the grid.
    pub fn try_window(&self, x0: usize, y0: usize, w: usize, h: usize) -> Result<Grid2<T>, RrsError> {
        let fits = x0.checked_add(w).is_some_and(|xe| xe <= self.nx)
            && y0.checked_add(h).is_some_and(|ye| ye <= self.ny);
        if !fits {
            return Err(RrsError::shape_mismatch(
                "window out of bounds",
                format!("window within {}x{}", self.nx, self.ny),
                format!("origin ({x0},{y0}) shape {w}x{h}"),
            ));
        }
        let mut data = Vec::with_capacity(w * h);
        for iy in y0..y0 + h {
            data.extend_from_slice(&self.data[iy * self.nx + x0..iy * self.nx + x0 + w]);
        }
        Ok(Grid2 { nx: w, ny: h, data })
    }

    /// Copies out the rectangular window starting at `(x0, y0)` with shape
    /// `(w, h)`.
    ///
    /// # Panics
    /// Panics if the window exceeds the grid bounds. Fallible callers use
    /// [`Grid2::try_window`].
    pub fn window(&self, x0: usize, y0: usize, w: usize, h: usize) -> Grid2<T> {
        self.try_window(x0, y0, w, h).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Grid2::blit`]: rejects a source rectangle that does not
    /// fit inside this grid at origin `(x0, y0)`.
    pub fn try_blit(&mut self, x0: usize, y0: usize, src: &Grid2<T>) -> Result<(), RrsError> {
        let fits = x0.checked_add(src.nx).is_some_and(|xe| xe <= self.nx)
            && y0.checked_add(src.ny).is_some_and(|ye| ye <= self.ny);
        if !fits {
            return Err(RrsError::shape_mismatch(
                "blit target out of bounds",
                format!("source within {}x{}", self.nx, self.ny),
                format!("origin ({x0},{y0}) shape {}x{}", src.nx, src.ny),
            ));
        }
        for iy in 0..src.ny {
            let dst_off = (y0 + iy) * self.nx + x0;
            self.data[dst_off..dst_off + src.nx].clone_from_slice(src.row(iy));
        }
        Ok(())
    }

    /// Writes `src` into this grid with its origin at `(x0, y0)`.
    ///
    /// # Panics
    /// Panics if `src` does not fit. Fallible callers use
    /// [`Grid2::try_blit`].
    pub fn blit(&mut self, x0: usize, y0: usize, src: &Grid2<T>) {
        self.try_blit(x0, y0, src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns the transposed grid (x and y axes exchanged).
    pub fn transpose(&self) -> Grid2<T> {
        Grid2::from_fn(self.ny, self.nx, |ix, iy| self.get(iy, ix).clone())
    }
}

impl Grid2<f64> {
    /// A zero-filled height field.
    pub fn zeros(nx: usize, ny: usize) -> Self {
        Self::filled(nx, ny, 0.0)
    }

    /// Periodic (wrap-around) access; negative offsets allowed. The DFT
    /// framework treats surfaces as periodic, so the convolution method
    /// reads its noise field this way.
    #[inline]
    pub fn get_periodic(&self, ix: isize, iy: isize) -> f64 {
        let x = ix.rem_euclid(self.nx as isize) as usize;
        let y = iy.rem_euclid(self.ny as isize) as usize;
        self.data[y * self.nx + x]
    }

    /// Arithmetic mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        rrs_num::kahan::sum(&self.data) / self.data.len() as f64
    }

    /// Population variance of all samples.
    pub fn variance(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let mut s = rrs_num::KahanSum::new();
        for &v in &self.data {
            s.add((v - m) * (v - m));
        }
        s.value() / self.data.len() as f64
    }

    /// Population standard deviation — the `h` of a generated surface.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (NaN-free input assumed).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample (NaN-free input assumed).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Fallible [`Grid2::add_assign`]: the two grids must share a shape.
    pub fn try_add_assign(&mut self, other: &Grid2<f64>) -> Result<(), RrsError> {
        if self.shape() != other.shape() {
            return Err(RrsError::shape_mismatch(
                "shape mismatch",
                format!("{}x{}", self.nx, self.ny),
                format!("{}x{}", other.nx, other.ny),
            ));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `other` element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch. Fallible callers use
    /// [`Grid2::try_add_assign`].
    pub fn add_assign(&mut self, other: &Grid2<f64>) {
        self.try_add_assign(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Scales all samples by `k`.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Grid2<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Grid2({}x{})", self.nx, self.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let g = Grid2::from_fn(4, 3, |x, y| (x + 10 * y) as i32);
        assert_eq!(g.shape(), (4, 3));
        assert_eq!(*g.get(0, 0), 0);
        assert_eq!(*g.get(3, 2), 23);
        assert_eq!(g.row(1), &[10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "nx*ny")]
    fn from_vec_wrong_length_panics() {
        Grid2::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g = Grid2::zeros(5, 5);
        g.set(2, 3, 7.5);
        assert_eq!(*g.get(2, 3), 7.5);
        *g.get_mut(2, 3) += 0.5;
        assert_eq!(*g.get(2, 3), 8.0);
    }

    #[test]
    fn rows_iterate_in_order() {
        let g = Grid2::from_fn(2, 3, |x, y| y * 2 + x);
        let rows: Vec<&[usize]> = g.rows().collect();
        assert_eq!(rows, vec![&[0, 1][..], &[2, 3][..], &[4, 5][..]]);
    }

    #[test]
    fn indexed_iter_matches_get() {
        let g = Grid2::from_fn(3, 2, |x, y| x as f64 + 100.0 * y as f64);
        for ((x, y), &v) in g.indexed_iter() {
            assert_eq!(v, *g.get(x, y));
        }
        assert_eq!(g.indexed_iter().count(), 6);
    }

    #[test]
    fn map_preserves_shape() {
        let g = Grid2::from_fn(3, 4, |x, y| (x + y) as f64);
        let m = g.map(|&v| v * 2.0);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(*m.get(2, 3), 10.0);
    }

    #[test]
    fn window_and_blit_roundtrip() {
        let g = Grid2::from_fn(8, 8, |x, y| (x * 8 + y) as f64);
        let w = g.window(2, 3, 4, 2);
        assert_eq!(w.shape(), (4, 2));
        assert_eq!(*w.get(0, 0), *g.get(2, 3));
        assert_eq!(*w.get(3, 1), *g.get(5, 4));

        let mut h = Grid2::zeros(8, 8);
        h.blit(2, 3, &w);
        assert_eq!(*h.get(2, 3), *g.get(2, 3));
        assert_eq!(*h.get(5, 4), *g.get(5, 4));
        assert_eq!(*h.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "window out of bounds")]
    fn window_out_of_bounds_panics() {
        Grid2::zeros(4, 4).window(2, 2, 4, 1);
    }

    #[test]
    fn transpose_involution() {
        let g = Grid2::from_fn(5, 3, |x, y| (x * 31 + y * 7) as i64);
        let t = g.transpose();
        assert_eq!(t.shape(), (3, 5));
        assert_eq!(*t.get(1, 4), *g.get(4, 1));
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn periodic_access_wraps() {
        let g = Grid2::from_fn(4, 4, |x, y| (x + 10 * y) as f64);
        assert_eq!(g.get_periodic(-1, 0), *g.get(3, 0));
        assert_eq!(g.get_periodic(4, 1), *g.get(0, 1));
        assert_eq!(g.get_periodic(-5, -5), *g.get(3, 3));
        assert_eq!(g.get_periodic(2, 2), *g.get(2, 2));
    }

    #[test]
    fn moments() {
        let g = Grid2::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.mean(), 2.5);
        assert_eq!(g.variance(), 1.25);
        assert_eq!(g.std_dev(), 1.25f64.sqrt());
        assert_eq!(g.min(), 1.0);
        assert_eq!(g.max(), 4.0);
    }

    #[test]
    fn empty_grid_moments_are_zero() {
        let g = Grid2::zeros(0, 0);
        assert!(g.is_empty());
        assert_eq!(g.mean(), 0.0);
        assert_eq!(g.variance(), 0.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Grid2::filled(2, 2, 1.0);
        let b = Grid2::filled(2, 2, 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert!(a.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_shape_mismatch_panics() {
        Grid2::zeros(2, 2).add_assign(&Grid2::zeros(3, 2));
    }
}
