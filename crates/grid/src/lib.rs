//! Dense row-major 2-D grids.
//!
//! [`Grid2<T>`] is the storage type shared by the whole workspace: surfaces
//! are `Grid2<f64>` height fields, spectra and DFT workspaces are
//! `Grid2<Complex64>`-shaped buffers (the FFT crate operates on the raw
//! slice). The type is intentionally plain — contiguous `Vec<T>`, `(nx,
//! ny)` dimensions, row-major with `x` as the fast axis — so hot loops can
//! borrow `as_slice()` / `row()` and vectorise.
//!
//! Index convention used throughout the workspace (matching the paper's
//! `f(x, y)` with `n_x = 0..N_x`, `n_y = 0..N_y`): `get(ix, iy)` where `ix`
//! runs along a row.

#![warn(missing_docs)]

pub mod grid;
pub mod profile;
pub mod window;

pub use grid::Grid2;
pub use profile::{extract_column, extract_profile, extract_row, Profile};
pub use rrs_error::RrsError;
pub use window::Window;
