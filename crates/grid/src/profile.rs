//! 1-D profiles extracted from 2-D surfaces.
//!
//! The paper's motivating application (propagation along a terrain) works
//! on 1-D height profiles cut out of the generated 2-D surface; this module
//! provides row, column and arbitrary-direction (Bresenham-sampled) cuts.

use crate::Grid2;

/// A 1-D height profile with uniform sample spacing.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Sample spacing along the cut, in grid units.
    pub spacing: f64,
    /// Heights along the cut.
    pub heights: Vec<f64>,
}

impl Profile {
    /// Length of the cut in grid units.
    pub fn length(&self) -> f64 {
        if self.heights.len() < 2 {
            return 0.0;
        }
        self.spacing * (self.heights.len() - 1) as f64
    }

    /// Distance of sample `i` from the start of the cut.
    pub fn distance(&self, i: usize) -> f64 {
        self.spacing * i as f64
    }
}

/// Extracts row `iy` as a profile with unit spacing.
pub fn extract_row(g: &Grid2<f64>, iy: usize) -> Profile {
    Profile { spacing: 1.0, heights: g.row(iy).to_vec() }
}

/// Extracts column `ix` as a profile with unit spacing.
pub fn extract_column(g: &Grid2<f64>, ix: usize) -> Profile {
    assert!(ix < g.nx(), "column {ix} out of bounds");
    Profile { spacing: 1.0, heights: (0..g.ny()).map(|iy| *g.get(ix, iy)).collect() }
}

/// Extracts a straight cut from `(x0, y0)` to `(x1, y1)` with `n` samples,
/// bilinearly interpolating the height field.
///
/// # Panics
/// Panics if the endpoints fall outside the grid or `n < 2`.
pub fn extract_profile(g: &Grid2<f64>, start: (f64, f64), end: (f64, f64), n: usize) -> Profile {
    assert!(n >= 2, "a profile needs at least 2 samples");
    let (x0, y0) = start;
    let (x1, y1) = end;
    let inside = |x: f64, y: f64| {
        x >= 0.0 && y >= 0.0 && x <= (g.nx() - 1) as f64 && y <= (g.ny() - 1) as f64
    };
    assert!(inside(x0, y0) && inside(x1, y1), "profile endpoints out of bounds");
    let total = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
    let spacing = total / (n - 1) as f64;
    let heights = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            let x = x0 + t * (x1 - x0);
            let y = y0 + t * (y1 - y0);
            sample_bilinear(g, x, y)
        })
        .collect();
    Profile { spacing, heights }
}

/// Bilinear height sample at fractional coordinates.
pub fn sample_bilinear(g: &Grid2<f64>, x: f64, y: f64) -> f64 {
    let ix = (x.floor() as usize).min(g.nx() - 2.min(g.nx() - 1));
    let iy = (y.floor() as usize).min(g.ny() - 2.min(g.ny() - 1));
    let tx = (x - ix as f64).clamp(0.0, 1.0);
    let ty = (y - iy as f64).clamp(0.0, 1.0);
    let ix1 = (ix + 1).min(g.nx() - 1);
    let iy1 = (iy + 1).min(g.ny() - 1);
    rrs_num::interp::bilerp(*g.get(ix, iy), *g.get(ix1, iy), *g.get(ix, iy1), *g.get(ix1, iy1), tx, ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_grid() -> Grid2<f64> {
        // f(x, y) = x + 2y — linear, so bilinear sampling is exact.
        Grid2::from_fn(8, 8, |x, y| x as f64 + 2.0 * y as f64)
    }

    #[test]
    fn row_and_column_extraction() {
        let g = ramp_grid();
        let r = extract_row(&g, 3);
        assert_eq!(r.heights.len(), 8);
        assert_eq!(r.heights[5], 5.0 + 6.0);
        let c = extract_column(&g, 2);
        assert_eq!(c.heights.len(), 8);
        assert_eq!(c.heights[4], 2.0 + 8.0);
    }

    #[test]
    fn profile_length_and_distance() {
        let p = Profile { spacing: 2.0, heights: vec![0.0; 5] };
        assert_eq!(p.length(), 8.0);
        assert_eq!(p.distance(3), 6.0);
        let empty = Profile { spacing: 1.0, heights: vec![] };
        assert_eq!(empty.length(), 0.0);
    }

    #[test]
    fn diagonal_profile_is_exact_on_linear_field() {
        let g = ramp_grid();
        let p = extract_profile(&g, (0.0, 0.0), (7.0, 7.0), 15);
        assert_eq!(p.heights.len(), 15);
        for (i, &h) in p.heights.iter().enumerate() {
            let t = i as f64 / 14.0;
            let expect = 7.0 * t + 2.0 * 7.0 * t;
            assert!((h - expect).abs() < 1e-12, "i={i} h={h} expect={expect}");
        }
        let expect_spacing = (2.0f64 * 49.0).sqrt() / 14.0;
        assert!((p.spacing - expect_spacing).abs() < 1e-12);
    }

    #[test]
    fn horizontal_fractional_profile() {
        let g = ramp_grid();
        let p = extract_profile(&g, (0.5, 2.0), (6.5, 2.0), 7);
        for (i, &h) in p.heights.iter().enumerate() {
            let x = 0.5 + i as f64;
            assert!((h - (x + 4.0)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_profile_panics() {
        extract_profile(&ramp_grid(), (0.0, 0.0), (100.0, 0.0), 5);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_profile_panics() {
        extract_profile(&ramp_grid(), (0.0, 0.0), (1.0, 0.0), 1);
    }

    #[test]
    fn bilinear_sample_at_nodes_matches_grid() {
        let g = ramp_grid();
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(sample_bilinear(&g, x as f64, y as f64), *g.get(x, y));
            }
        }
    }
}
