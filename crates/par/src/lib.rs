//! Minimal data-parallel substrate built on `std::thread::scope`.
//!
//! The workspace's hot loops (2-D FFT rows, convolution output rows) are
//! embarrassingly parallel over disjoint row bands. Rather than pull in a
//! full work-stealing runtime, this crate provides the two primitives those
//! loops need, in the style of rayon's chunked iterators but with a fixed,
//! caller-controllable worker count so generation remains deterministic:
//!
//! * [`par_chunks_mut`] — split a mutable slice into contiguous chunks and
//!   process each on its own scoped thread;
//! * [`par_indexed_chunks_mut`] — the same, handing each closure the chunk's
//!   starting element index (for row numbering / per-band RNG streams);
//! * [`par_map_collect`] — evaluate a pure function over an index range and
//!   collect results in order.
//!
//! Determinism note: all primitives partition work *statically*; outputs
//! never depend on scheduling, only on the partition, which itself depends
//! only on `(len, workers)`.
//!
//! # Panic containment
//!
//! The plain primitives propagate worker panics (the scope re-raises the
//! first one at join). Production callers that must not die with a worker
//! use the fallible forms instead:
//!
//! * [`try_par_chunks_mut`] / [`try_par_row_chunks_mut`] — run every band
//!   under `catch_unwind` and report the lowest-indexed failed band as a
//!   structured [`RrsError::WorkerPanicked`] carrying the panic payload;
//! * [`par_row_chunks_mut_with_fallback`] — additionally retries the whole
//!   partition *serially* after a parallel-band panic. The retry visits
//!   the same static bands in order, so a successful retry is bit-exactly
//!   the surface an all-parallel (or all-serial) run would have produced.
//!
//! # Observability
//!
//! The row-band primitives have `_observed` twins taking an
//! [`rrs_obs::Recorder`]: bands executed, worker panics and serial
//! fallbacks are reported as `par/*` counters. With a
//! [`Recorder::disabled`] recorder the twins are the plain primitives —
//! no clock reads, no locks.

#![warn(missing_docs)]

use rrs_chaos::{ChaosInjector, FaultSite};
use rrs_error::{Budget, RrsError};
use rrs_obs::{stage, ObsSink, Recorder};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use std::thread::Scope;

/// Runs `f` inside a `std::thread::scope`, propagating panics from worker
/// threads as a panic on the caller (the scope joins every spawned thread
/// before returning and re-raises the first panic it observed).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    std::thread::scope(f)
}

/// Returns the number of worker threads to use: the `RRS_THREADS`
/// environment variable if set and positive, otherwise the machine's
/// available parallelism, otherwise 1.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("RRS_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Splits `data` into at most `workers` contiguous chunks of near-equal
/// length and runs `f` on each chunk, in parallel.
///
/// `f` receives `(chunk_index, chunk)`. With `workers <= 1` or a single
/// chunk the call degrades to a plain loop on the caller's thread.
pub fn par_chunks_mut<T, F>(data: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    let chunk = n.div_ceil(workers);
    if workers == 1 {
        f(0, data);
        return;
    }
    scope(|s| {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(i, c));
        }
    });
}

/// Like [`par_chunks_mut`] but hands each closure the *element offset* of
/// its chunk within the original slice, so callers can recover global row
/// indices: `f(start_index, chunk)`.
pub fn par_indexed_chunks_mut<T, F>(data: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    let chunk = n.div_ceil(workers);
    if workers == 1 {
        f(0, data);
        return;
    }
    scope(|s| {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            let start = i * chunk;
            s.spawn(move || f(start, c));
        }
    });
}

/// The static row partition shared by every row-band primitive (parallel
/// dispatch, budget slicing, serial retry): `min(workers, rows)` bands of
/// *near-equal* height — sizes differ by at most one row. The previous
/// ceiling-division banding could strand workers entirely (9 rows on 8
/// workers made five 2-row bands and left three workers idle); the
/// balanced split keeps every worker busy and bounds the straggler band
/// at one extra row. Band boundaries depend only on `(rows, workers)`,
/// preserving the static-partition determinism contract.
fn row_bands(rows: usize, workers: usize) -> Vec<(usize, usize)> {
    split_range(rows, workers.max(1).min(rows))
}

/// Splits a row-major `row_len`-wide buffer into balanced bands of whole
/// rows and processes each band on its own thread:
/// `f(first_row_index, band)`.
///
/// Guarantees a row is never split across workers — the invariant the 2-D
/// kernels rely on.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn par_row_chunks_mut<T, F>(data: &mut [T], row_len: usize, workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(data.len() % row_len, 0, "buffer is not whole rows");
    let rows = data.len() / row_len;
    if rows == 0 {
        return;
    }
    let bands = row_bands(rows, workers);
    if bands.len() == 1 {
        f(0, data);
        return;
    }
    scope(|s| {
        let mut rest = data;
        for &(r0, r1) in &bands {
            let (band, tail) = std::mem::take(&mut rest).split_at_mut((r1 - r0) * row_len);
            rest = tail;
            let f = &f;
            s.spawn(move || f(r0, band));
        }
    });
}

/// Runs `f(band, chunk)` under `catch_unwind`, mapping a panic to a
/// structured [`RrsError::WorkerPanicked`] naming the band.
fn run_caught<T, F>(band: usize, chunk: &mut [T], f: &F) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    catch_unwind(AssertUnwindSafe(|| f(band, chunk)))
        .map_err(|p| RrsError::worker_panicked(band, p.as_ref()))
}

/// [`run_caught`] for fallible closures: a panic maps to
/// [`RrsError::WorkerPanicked`], an `Err` passes through unchanged.
fn run_caught_fallible<T, F>(band: usize, chunk: &mut [T], f: &F) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) -> Result<(), RrsError> + Sync,
{
    catch_unwind(AssertUnwindSafe(|| f(band, chunk)))
        .unwrap_or_else(|p| Err(RrsError::worker_panicked(band, p.as_ref())))
}

/// Panic-contained [`par_chunks_mut`]: every chunk closure runs under
/// `catch_unwind`; if any panics, the lowest-indexed failed band is
/// reported as [`RrsError::WorkerPanicked`] with its payload. All bands
/// still run to completion (or their own panic) before the call returns,
/// so the slice is never left with a band silently skipped.
pub fn try_par_chunks_mut<T, F>(data: &mut [T], workers: usize, f: F) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return Ok(());
    }
    let workers = workers.max(1).min(n);
    let chunk = n.div_ceil(workers);
    if workers == 1 {
        return run_caught(0, data, &f);
    }
    let mut first: Option<RrsError> = None;
    scope(|s| {
        let handles: Vec<_> = data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, c)| {
                let f = &f;
                s.spawn(move || run_caught(i, c, f))
            })
            .collect();
        // Handles join in band order, so the first error seen is the
        // lowest-indexed failed band.
        for h in handles {
            let r = h.join().expect("worker closures are panic-contained");
            if let (Err(e), None) = (r, first.as_ref()) {
                first = Some(e);
            }
        }
    });
    first.map_or(Ok(()), Err)
}

/// Panic-contained [`par_row_chunks_mut`]: validates the row geometry as a
/// [`RrsError::ShapeMismatch`] instead of panicking, and reports a
/// panicking band closure as [`RrsError::WorkerPanicked`].
pub fn try_par_row_chunks_mut<T, F>(
    data: &mut [T],
    row_len: usize,
    workers: usize,
    f: F,
) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    try_par_row_chunks_mut_observed(data, row_len, workers, &Recorder::disabled(), f)
}

/// [`try_par_row_chunks_mut`] with execution events reported to `obs`:
/// every band that runs increments [`stage::PAR_BANDS`] and every band
/// whose closure panics increments [`stage::PAR_WORKER_PANICS`] (the
/// returned error still names only the lowest-indexed failure). A
/// [`Recorder::disabled`] recorder makes this identical to the plain
/// form.
pub fn try_par_row_chunks_mut_observed<T, F>(
    data: &mut [T],
    row_len: usize,
    workers: usize,
    obs: &Recorder,
    f: F,
) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if row_len == 0 {
        return Err(RrsError::invalid_param("row_len", "row_len must be positive, got 0"));
    }
    if data.len() % row_len != 0 {
        return Err(RrsError::shape_mismatch(
            "buffer is not whole rows",
            format!("a multiple of {row_len}"),
            data.len(),
        ));
    }
    let rows = data.len() / row_len;
    if rows == 0 {
        return Ok(());
    }
    let band_ranges = row_bands(rows, workers);
    if band_ranges.len() == 1 {
        obs.add_counter(stage::PAR_BANDS, 1);
        return run_caught(0, data, &f).map_err(rename_band_to_row(0)).inspect_err(|_| {
            obs.add_counter(stage::PAR_WORKER_PANICS, 1);
        });
    }
    let mut first: Option<RrsError> = None;
    let mut bands = 0u64;
    let mut panics = 0u64;
    scope(|s| {
        let mut rest = data;
        let handles: Vec<_> = band_ranges
            .iter()
            .enumerate()
            .map(|(i, &(r0, r1))| {
                let (band, tail) = std::mem::take(&mut rest).split_at_mut((r1 - r0) * row_len);
                rest = tail;
                let f = &f;
                s.spawn(move || run_caught(r0, band, f).map_err(rename_band_to_row(i)))
            })
            .collect();
        for h in handles {
            bands += 1;
            let r = h.join().expect("worker closures are panic-contained");
            if let Err(e) = r {
                panics += 1;
                if first.is_none() {
                    first = Some(e);
                }
            }
        }
    });
    obs.add_counter(stage::PAR_BANDS, bands);
    if panics > 0 {
        obs.add_counter(stage::PAR_WORKER_PANICS, panics);
    }
    first.map_or(Ok(()), Err)
}

/// Poll slices per worker band in budgeted mode: each worker checks its
/// [`Budget`] this many times across its band, so a mid-run cancel or an
/// expired deadline stops the worker within `rows_per_band / 8` rows of
/// work instead of only between bands.
const BUDGET_POLL_SLICES: usize = 8;

/// [`try_par_row_chunks_mut_observed`] with cooperative budget polling.
///
/// With a budget that needs no polling (no deadline, no cancel token —
/// including [`Budget::unlimited`]) this *is*
/// [`try_par_row_chunks_mut_observed`]: the delegation happens before any
/// budget machinery runs, so the unbudgeted hot path is unchanged (the
/// `bench_runtime` gate enforces this).
///
/// With a deadline or cancel token present, each worker splits its band
/// into up to [`BUDGET_POLL_SLICES`] whole-row slices and polls
/// [`Budget::check`] before each slice (every poll counts one
/// [`stage::BUDGET_POLLS`]). A tripped budget surfaces as
/// [`RrsError::Cancelled`] / [`RrsError::DeadlineExceeded`] from the
/// lowest-indexed affected band; slices after the trip do not run.
///
/// # Determinism contract
///
/// `f` must be *row-decomposable*: running it over any partition of the
/// same whole rows must produce the same bytes. This is the same contract
/// the serial-fallback retry already relies on (every workspace band
/// closure computes each row purely from its global row index), and it is
/// what makes an untripped budgeted run bit-identical to an unbudgeted
/// one even though `f` is invoked once per slice rather than once per
/// band.
pub fn try_par_row_chunks_mut_budgeted<T, F>(
    data: &mut [T],
    row_len: usize,
    workers: usize,
    obs: &Recorder,
    budget: &Budget,
    f: F,
) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if !budget.needs_polling() {
        return try_par_row_chunks_mut_observed(data, row_len, workers, obs, f);
    }
    if row_len == 0 {
        return Err(RrsError::invalid_param("row_len", "row_len must be positive, got 0"));
    }
    if data.len() % row_len != 0 {
        return Err(RrsError::shape_mismatch(
            "buffer is not whole rows",
            format!("a multiple of {row_len}"),
            data.len(),
        ));
    }
    let rows = data.len() / row_len;
    if rows == 0 {
        return Ok(());
    }
    let band_ranges = row_bands(rows, workers);
    // Poll cadence derived from the tallest band, so every band polls at
    // most BUDGET_POLL_SLICES times regardless of the balanced split.
    let max_band_rows = band_ranges.iter().map(|&(a, b)| b - a).max().unwrap_or(rows);
    let poll_rows = max_band_rows.div_ceil(BUDGET_POLL_SLICES).max(1);

    // Runs one worker band slice by slice, polling the budget before each
    // slice. Returns the polls taken alongside the outcome so the caller
    // can merge counters after the join.
    let run_band = |band: usize, band_start_row: usize, band_data: &mut [T]| {
        let mut polls = 0u64;
        let mut row = 0usize;
        for slice in band_data.chunks_mut(poll_rows * row_len) {
            polls += 1;
            if let Err(e) = budget.check() {
                return (polls, Err(e));
            }
            if let Err(e) =
                run_caught(band_start_row + row, slice, &f).map_err(rename_band_to_row(band))
            {
                return (polls, Err(e));
            }
            row += slice.len() / row_len;
        }
        (polls, Ok(()))
    };

    if band_ranges.len() == 1 {
        obs.add_counter(stage::PAR_BANDS, 1);
        let (polls, result) = run_band(0, 0, data);
        obs.add_counter(stage::BUDGET_POLLS, polls);
        return result.inspect_err(|e| {
            if e.kind() == rrs_error::ErrorKind::WorkerPanicked {
                obs.add_counter(stage::PAR_WORKER_PANICS, 1);
            }
        });
    }
    let mut first: Option<RrsError> = None;
    let mut bands = 0u64;
    let mut panics = 0u64;
    let mut polls = 0u64;
    scope(|s| {
        let mut rest = data;
        let handles: Vec<_> = band_ranges
            .iter()
            .enumerate()
            .map(|(i, &(r0, r1))| {
                let (band, tail) = std::mem::take(&mut rest).split_at_mut((r1 - r0) * row_len);
                rest = tail;
                let run_band = &run_band;
                s.spawn(move || run_band(i, r0, band))
            })
            .collect();
        for h in handles {
            bands += 1;
            let (band_polls, r) = h.join().expect("worker closures are panic-contained");
            polls += band_polls;
            if let Err(e) = r {
                if e.kind() == rrs_error::ErrorKind::WorkerPanicked {
                    panics += 1;
                }
                if first.is_none() {
                    first = Some(e);
                }
            }
        }
    });
    obs.add_counter(stage::PAR_BANDS, bands);
    obs.add_counter(stage::BUDGET_POLLS, polls);
    if panics > 0 {
        obs.add_counter(stage::PAR_WORKER_PANICS, panics);
    }
    first.map_or(Ok(()), Err)
}

/// [`try_par_row_chunks_mut_budgeted`] with deterministic fault
/// injection: with an armed [`ChaosInjector`], every band slice polls
/// [`FaultSite::ParBandSlice`] *inside* the band's panic containment, so
/// an injected panic, error, cancellation or deadline expiry surfaces as
/// a typed [`RrsError`] from the lowest-indexed affected band — exactly
/// the containment path a real worker panic takes.
///
/// With a disabled injector this *is* [`try_par_row_chunks_mut_budgeted`]
/// (which in turn delegates to the pre-budget primitive when the budget
/// needs no polling): the delegation happens before any chaos machinery
/// runs, so the chaos-off hot path costs one `Option` discriminant test
/// (the `bench_runtime` gate holds it under 1.05x).
pub fn try_par_row_chunks_mut_chaos<T, F>(
    data: &mut [T],
    row_len: usize,
    workers: usize,
    obs: &Recorder,
    budget: &Budget,
    chaos: &ChaosInjector,
    f: F,
) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if !chaos.is_enabled() {
        return try_par_row_chunks_mut_budgeted(data, row_len, workers, obs, budget, f);
    }
    if row_len == 0 {
        return Err(RrsError::invalid_param("row_len", "row_len must be positive, got 0"));
    }
    if data.len() % row_len != 0 {
        return Err(RrsError::shape_mismatch(
            "buffer is not whole rows",
            format!("a multiple of {row_len}"),
            data.len(),
        ));
    }
    let rows = data.len() / row_len;
    if rows == 0 {
        return Ok(());
    }
    let band_ranges = row_bands(rows, workers);
    let max_band_rows = band_ranges.iter().map(|&(a, b)| b - a).max().unwrap_or(rows);
    let poll_rows = max_band_rows.div_ceil(BUDGET_POLL_SLICES).max(1);
    let polling = budget.needs_polling();

    // One band, slice by slice: budget poll (when armed) outside the
    // containment, chaos poll + the band closure inside it, so injected
    // panics are caught exactly where real worker panics are.
    let run_band = |band: usize, band_start_row: usize, band_data: &mut [T]| {
        let mut polls = 0u64;
        let mut row = 0usize;
        for slice in band_data.chunks_mut(poll_rows * row_len) {
            if polling {
                polls += 1;
                if let Err(e) = budget.check() {
                    return (polls, Err(e));
                }
            }
            let r = run_caught_fallible(band_start_row + row, slice, &|r, s: &mut [T]| {
                chaos.poll(FaultSite::ParBandSlice)?;
                f(r, s);
                Ok(())
            })
            .map_err(rename_band_to_row(band));
            if let Err(e) = r {
                return (polls, Err(e));
            }
            row += slice.len() / row_len;
        }
        (polls, Ok(()))
    };

    if band_ranges.len() == 1 {
        obs.add_counter(stage::PAR_BANDS, 1);
        let (polls, result) = run_band(0, 0, data);
        if polls > 0 {
            obs.add_counter(stage::BUDGET_POLLS, polls);
        }
        return result.inspect_err(|e| {
            if e.kind() == rrs_error::ErrorKind::WorkerPanicked {
                obs.add_counter(stage::PAR_WORKER_PANICS, 1);
            }
        });
    }
    let mut first: Option<RrsError> = None;
    let mut bands = 0u64;
    let mut panics = 0u64;
    let mut polls = 0u64;
    scope(|s| {
        let mut rest = data;
        let handles: Vec<_> = band_ranges
            .iter()
            .enumerate()
            .map(|(i, &(r0, r1))| {
                let (band, tail) = std::mem::take(&mut rest).split_at_mut((r1 - r0) * row_len);
                rest = tail;
                let run_band = &run_band;
                s.spawn(move || run_band(i, r0, band))
            })
            .collect();
        for h in handles {
            bands += 1;
            let (band_polls, r) = h.join().expect("worker closures are panic-contained");
            polls += band_polls;
            if let Err(e) = r {
                if e.kind() == rrs_error::ErrorKind::WorkerPanicked {
                    panics += 1;
                }
                if first.is_none() {
                    first = Some(e);
                }
            }
        }
    });
    obs.add_counter(stage::PAR_BANDS, bands);
    if polls > 0 {
        obs.add_counter(stage::BUDGET_POLLS, polls);
    }
    if panics > 0 {
        obs.add_counter(stage::PAR_WORKER_PANICS, panics);
    }
    first.map_or(Ok(()), Err)
}

/// `run_caught` reports the chunk's *starting row* as the band (that is
/// what the closure receives); re-tag with the band ordinal, which is the
/// stable name across worker counts of the retry path.
fn rename_band_to_row(band: usize) -> impl Fn(RrsError) -> RrsError {
    move |e| match e {
        RrsError::WorkerPanicked { payload, .. } => RrsError::WorkerPanicked { band, payload },
        other => other,
    }
}

/// [`try_par_row_chunks_mut`] with an opt-in serial retry: if any parallel
/// band panics, the same static partition is re-run serially, band by
/// band, on the caller's thread.
///
/// Because the partition is identical and every band closure is required
/// to be a pure function of `(start_row, band)` (the workspace's
/// determinism contract), a successful retry leaves `data` bit-identical
/// to what an uninterrupted parallel run would have produced — a band
/// that panicked halfway through is simply overwritten in full. If the
/// serial retry panics too, the error names that band and carries both
/// payloads' context.
pub fn par_row_chunks_mut_with_fallback<T, F>(
    data: &mut [T],
    row_len: usize,
    workers: usize,
    f: F,
) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_row_chunks_mut_with_fallback_observed(data, row_len, workers, &Recorder::disabled(), f)
}

/// [`par_row_chunks_mut_with_fallback`] with execution events reported to
/// `obs`: band and panic counters as in
/// [`try_par_row_chunks_mut_observed`], plus one
/// [`stage::PAR_SERIAL_FALLBACKS`] tick each time a parallel panic
/// triggers the serial retry.
pub fn par_row_chunks_mut_with_fallback_observed<T, F>(
    data: &mut [T],
    row_len: usize,
    workers: usize,
    obs: &Recorder,
    f: F,
) -> Result<(), RrsError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    match try_par_row_chunks_mut_observed(data, row_len, workers, obs, &f) {
        Ok(()) => Ok(()),
        Err(RrsError::WorkerPanicked { band: failed, .. }) => {
            obs.add_counter(stage::PAR_SERIAL_FALLBACKS, 1);
            // Serial retry over the identical static partition.
            let rows = data.len() / row_len;
            for (i, &(r0, r1)) in row_bands(rows, workers).iter().enumerate() {
                let band = &mut data[r0 * row_len..r1 * row_len];
                run_caught(r0, band, &f).map_err(|e| {
                    rename_band_to_row(i)(e)
                        .with_context(format!("serial retry after parallel band {failed} panicked"))
                })?;
            }
            Ok(())
        }
        Err(other) => Err(other),
    }
}

/// Evaluates `f(i)` for `i in 0..n` on `workers` threads and returns the
/// results in index order.
pub fn par_map_collect<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    par_indexed_chunks_mut(&mut out, workers, |start, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + j);
        }
    });
    out
}

/// Statically splits the half-open range `[0, n)` into `parts` near-equal
/// sub-ranges; returns `(start, end)` pairs. Empty ranges are omitted.
pub fn split_range(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts.min(n));
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        if len == 0 {
            continue;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_touches_every_element() {
        let mut v = vec![0u64; 1003];
        par_chunks_mut(&mut v, 7, |_, c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_chunks_mut_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 4, |_, _| panic!("must not run"));
        let mut one = vec![5];
        par_chunks_mut(&mut one, 4, |i, c| {
            assert_eq!(i, 0);
            c[0] = 6;
        });
        assert_eq!(one, [6]);
    }

    #[test]
    fn indexed_chunks_get_correct_offsets() {
        let n = 100;
        let mut v: Vec<usize> = vec![0; n];
        par_indexed_chunks_mut(&mut v, 3, |start, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = start + j;
            }
        });
        let expect: Vec<usize> = (0..n).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn map_collect_is_ordered() {
        for workers in [1, 2, 5, 16] {
            let out = par_map_collect(257, workers, |i| i * i);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i * i);
            }
        }
    }

    #[test]
    fn result_is_thread_count_invariant() {
        let f = |i: usize| (i as f64).sin();
        let a = par_map_collect(1000, 1, f);
        let b = par_map_collect(1000, 8, f);
        assert_eq!(a, b);
    }

    #[test]
    fn all_workers_used_for_large_input() {
        let seen = AtomicUsize::new(0);
        let mut v = vec![0u8; 64];
        par_chunks_mut(&mut v, 4, |_, _| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn split_range_covers_exactly() {
        for n in [0usize, 1, 7, 64, 1001] {
            for parts in [1usize, 2, 3, 8, 100] {
                let rs = split_range(n, parts);
                let total: usize = rs.iter().map(|&(a, b)| b - a).sum();
                assert_eq!(total, n);
                let mut prev = 0;
                for &(a, b) in &rs {
                    assert_eq!(a, prev);
                    assert!(b > a);
                    prev = b;
                }
                if let (Some(min), Some(max)) = (
                    rs.iter().map(|&(a, b)| b - a).min(),
                    rs.iter().map(|&(a, b)| b - a).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn row_chunks_never_split_rows() {
        let nx = 7;
        let ny = 13;
        let mut v = vec![0usize; nx * ny];
        par_row_chunks_mut(&mut v, nx, 4, |row0, band| {
            assert_eq!(band.len() % nx, 0, "band must be whole rows");
            for (i, x) in band.iter_mut().enumerate() {
                *x = (row0 * nx) + i;
            }
        });
        let expect: Vec<usize> = (0..nx * ny).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn row_chunks_single_worker_and_empty() {
        let mut v = vec![1u8; 12];
        par_row_chunks_mut(&mut v, 4, 1, |row0, band| {
            assert_eq!(row0, 0);
            assert_eq!(band.len(), 12);
        });
        let mut empty: Vec<u8> = vec![];
        par_row_chunks_mut(&mut empty, 4, 3, |_, _| panic!("must not run"));
    }

    #[test]
    fn row_chunks_more_workers_than_rows() {
        let nx = 5;
        let mut v = vec![0u8; nx * 2];
        par_row_chunks_mut(&mut v, nx, 64, |_, band| {
            for x in band {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn row_chunks_ragged_buffer_panics() {
        let mut v = vec![0u8; 10];
        par_row_chunks_mut(&mut v, 3, 2, |_, _| {});
    }

    #[test]
    fn try_chunks_ok_path_matches_plain() {
        let mut a = vec![0u64; 503];
        let mut b = vec![0u64; 503];
        par_chunks_mut(&mut a, 4, |i, c| c.iter_mut().for_each(|x| *x = i as u64 + 1));
        try_par_chunks_mut(&mut b, 4, |i, c| c.iter_mut().for_each(|x| *x = i as u64 + 1))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn try_chunks_reports_lowest_failed_band() {
        let mut v = vec![0u8; 64];
        let err = try_par_chunks_mut(&mut v, 4, |i, _| {
            if i >= 1 {
                panic!("band {i} exploded");
            }
        })
        .unwrap_err();
        match err {
            rrs_error::RrsError::WorkerPanicked { band, payload } => {
                assert_eq!(band, 1, "lowest failed band wins");
                assert!(payload.contains("exploded"));
            }
            other => panic!("wrong variant: {other}"),
        }
    }

    #[test]
    fn try_row_chunks_validates_geometry_without_panicking() {
        let mut v = vec![0u8; 10];
        let err = try_par_row_chunks_mut(&mut v, 3, 2, |_, _| {}).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::ShapeMismatch);
        assert!(err.to_string().contains("whole rows"));
        let err = try_par_row_chunks_mut(&mut v, 0, 2, |_, _| {}).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::InvalidParam);
    }

    #[test]
    fn try_row_chunks_names_failed_band_serial_and_parallel() {
        for workers in [1usize, 3] {
            let nx = 4;
            let mut v = vec![0u8; nx * 9];
            let err = try_par_row_chunks_mut(&mut v, nx, workers, |row0, _| {
                if row0 == 0 {
                    panic!("first band down");
                }
            })
            .unwrap_err();
            match err {
                rrs_error::RrsError::WorkerPanicked { band, payload } => {
                    assert_eq!(band, 0);
                    assert!(payload.contains("first band down"));
                }
                other => panic!("workers={workers}: wrong variant {other}"),
            }
        }
    }

    #[test]
    fn fallback_retry_is_bit_exact_after_transient_panic() {
        use std::sync::atomic::AtomicBool;
        let nx = 7;
        let ny = 23;
        let fill = |row0: usize, band: &mut [u64]| {
            for (j, x) in band.iter_mut().enumerate() {
                *x = (row0 * nx + j) as u64 * 3 + 1;
            }
        };
        // Reference: plain serial run.
        let mut want = vec![0u64; nx * ny];
        par_row_chunks_mut(&mut want, nx, 1, |r, b| fill(r, b));
        // Faulty run: band 2 dies once (parallel attempt), then succeeds
        // on the serial retry.
        let tripped = AtomicBool::new(false);
        let mut got = vec![0u64; nx * ny];
        par_row_chunks_mut_with_fallback(&mut got, nx, 4, |row0, band| {
            let rows_per_band = ny.div_ceil(4);
            if row0 / rows_per_band == 2 && !tripped.swap(true, Ordering::SeqCst) {
                // Poison half the band before dying, to prove the retry
                // overwrites partial output.
                band[0] = u64::MAX;
                panic!("transient fault");
            }
            fill(row0, band);
        })
        .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn fallback_surfaces_persistent_panics() {
        let mut v = vec![0u8; 12];
        let err = par_row_chunks_mut_with_fallback(&mut v, 4, 3, |row0, _| {
            if row0 == 2 {
                panic!("permanent fault");
            }
        })
        .unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::WorkerPanicked);
        let msg = err.to_string();
        assert!(msg.contains("serial retry"), "{msg}");
        assert!(msg.contains("permanent fault"), "{msg}");
    }

    #[test]
    fn row_bands_are_balanced_and_use_all_workers() {
        // 9 rows on 8 workers used to produce five ceil-height bands and
        // leave three workers idle; the balanced split hands every worker
        // a band and bounds the height spread at one row.
        let nx = 3;
        let rec = Recorder::enabled();
        let heights = std::sync::Mutex::new(Vec::new());
        let mut v = vec![0u8; nx * 9];
        try_par_row_chunks_mut_observed(&mut v, nx, 8, &rec, |_, band| {
            heights.lock().unwrap().push(band.len() / nx);
        })
        .unwrap();
        assert_eq!(rec.report().counter(stage::PAR_BANDS), 8);
        let heights = heights.into_inner().unwrap();
        let (min, max) = (heights.iter().min().unwrap(), heights.iter().max().unwrap());
        assert!(max - min <= 1, "band heights {heights:?}");
        assert_eq!(heights.iter().sum::<usize>(), 9);
    }

    #[test]
    fn balanced_partition_output_matches_serial() {
        // Rebalancing moves band boundaries; row-decomposable closures
        // must still produce byte-identical output at every worker count.
        let nx = 5;
        let fill = |r0: usize, band: &mut [u64]| {
            for (j, x) in band.iter_mut().enumerate() {
                *x = ((r0 * nx + j) as u64).wrapping_mul(0x9E3779B97F4A7C15);
            }
        };
        let mut want = vec![0u64; nx * 31];
        par_row_chunks_mut(&mut want, nx, 1, fill);
        for workers in [2usize, 3, 7, 8, 31, 64] {
            let mut got = vec![0u64; nx * 31];
            par_row_chunks_mut(&mut got, nx, workers, fill);
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn observed_counters_track_bands_and_panics() {
        let rec = Recorder::enabled();
        let nx = 4;
        let mut v = vec![0u8; nx * 8];
        try_par_row_chunks_mut_observed(&mut v, nx, 4, &rec, |_, _| {}).unwrap();
        assert_eq!(rec.report().counter(stage::PAR_BANDS), 4);
        assert_eq!(rec.report().counter(stage::PAR_WORKER_PANICS), 0);

        let err = try_par_row_chunks_mut_observed(&mut v, nx, 4, &rec, |row0, _| {
            if row0 >= 4 {
                panic!("upper bands down");
            }
        })
        .unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::WorkerPanicked);
        let report = rec.report();
        assert_eq!(report.counter(stage::PAR_BANDS), 8);
        assert_eq!(report.counter(stage::PAR_WORKER_PANICS), 2, "both failed bands counted");
    }

    #[test]
    fn observed_fallback_counts_serial_retries() {
        use std::sync::atomic::AtomicBool;
        let rec = Recorder::enabled();
        let tripped = AtomicBool::new(false);
        let mut v = vec![0u64; 12];
        par_row_chunks_mut_with_fallback_observed(&mut v, 4, 3, &rec, |row0, band| {
            if row0 == 1 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("transient");
            }
            band.iter_mut().for_each(|x| *x = row0 as u64);
        })
        .unwrap();
        let report = rec.report();
        assert_eq!(report.counter(stage::PAR_SERIAL_FALLBACKS), 1);
        assert_eq!(report.counter(stage::PAR_WORKER_PANICS), 1);
        // 3 parallel bands + 3 serial retry bands.
        assert_eq!(report.counter(stage::PAR_BANDS), 3);
    }

    #[test]
    fn disabled_recorder_matches_plain_primitives() {
        let mut a = vec![0u32; 60];
        let mut b = vec![0u32; 60];
        try_par_row_chunks_mut(&mut a, 6, 3, |r, band| {
            band.iter_mut().enumerate().for_each(|(i, x)| *x = (r * 6 + i) as u32)
        })
        .unwrap();
        try_par_row_chunks_mut_observed(&mut b, 6, 3, &Recorder::disabled(), |r, band| {
            band.iter_mut().enumerate().for_each(|(i, x)| *x = (r * 6 + i) as u32)
        })
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn budgeted_unlimited_is_bit_identical_to_observed() {
        use rrs_error::Budget;
        let fill = |r: usize, band: &mut [u64]| {
            band.iter_mut().enumerate().for_each(|(i, x)| *x = (r * 6 + i) as u64 * 7 + 3)
        };
        for workers in [1usize, 3, 8] {
            let mut a = vec![0u64; 6 * 17];
            let mut b = vec![0u64; 6 * 17];
            try_par_row_chunks_mut_observed(&mut a, 6, workers, &Recorder::disabled(), fill)
                .unwrap();
            try_par_row_chunks_mut_budgeted(
                &mut b,
                6,
                workers,
                &Recorder::disabled(),
                &Budget::unlimited(),
                fill,
            )
            .unwrap();
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    fn budgeted_armed_idle_is_bit_identical_and_polls() {
        use rrs_error::{Budget, CancelToken};
        let fill = |r: usize, band: &mut [u64]| {
            band.iter_mut().enumerate().for_each(|(i, x)| *x = (r * 5 + i) as u64 ^ 0xA5)
        };
        let budget = Budget::unlimited()
            .with_cancel_token(CancelToken::new())
            .with_timeout(std::time::Duration::from_secs(3600));
        for workers in [1usize, 4] {
            let rec = Recorder::enabled();
            let mut a = vec![0u64; 5 * 32];
            let mut b = vec![0u64; 5 * 32];
            try_par_row_chunks_mut_observed(&mut a, 5, workers, &Recorder::disabled(), fill)
                .unwrap();
            try_par_row_chunks_mut_budgeted(&mut b, 5, workers, &rec, &budget, fill).unwrap();
            assert_eq!(a, b, "workers={workers}");
            let report = rec.report();
            assert_eq!(report.counter(stage::PAR_BANDS), workers as u64);
            assert!(
                report.counter(stage::BUDGET_POLLS) >= workers as u64,
                "each band polls at least once"
            );
        }
    }

    #[test]
    fn budgeted_pre_cancelled_leaves_data_untouched() {
        use rrs_error::{Budget, CancelToken};
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel_token(token);
        for workers in [1usize, 4] {
            let mut v = vec![9u64; 6 * 16];
            let err = try_par_row_chunks_mut_budgeted(&mut v, 6, workers, &Recorder::disabled(),
                &budget, |_, band| band.iter_mut().for_each(|x| *x = 0))
            .unwrap_err();
            assert_eq!(err.kind(), rrs_error::ErrorKind::Cancelled);
            assert!(v.iter().all(|&x| x == 9), "no slice ran after a pre-tripped poll");
        }
    }

    #[test]
    fn budgeted_past_deadline_is_deadline_exceeded() {
        use rrs_error::Budget;
        let budget = Budget::unlimited()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_secs(1));
        for workers in [1usize, 3] {
            let mut v = vec![1u8; 4 * 8];
            let err = try_par_row_chunks_mut_budgeted(&mut v, 4, workers, &Recorder::disabled(),
                &budget, |_, _| {})
            .unwrap_err();
            assert_eq!(err.kind(), rrs_error::ErrorKind::DeadlineExceeded, "workers={workers}");
        }
    }

    #[test]
    fn budgeted_mid_run_cancel_stops_between_slices() {
        use rrs_error::{Budget, CancelToken};
        // Serial (workers=1) so slice order is deterministic: the closure
        // trips the token while processing the first slice; the poll before
        // the second slice must observe it and stop.
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_cancel_token(token.clone());
        let rec = Recorder::enabled();
        let mut v = vec![0u64; 4 * 64]; // 64 rows, 1 band, 8-row poll slices
        let err = try_par_row_chunks_mut_budgeted(&mut v, 4, 1, &rec, &budget, |row0, band| {
            band.iter_mut().for_each(|x| *x = 1);
            if row0 == 0 {
                token.cancel();
            }
        })
        .unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::Cancelled);
        let written: u64 = v.iter().sum();
        assert_eq!(written, 4 * 8, "exactly one 8-row poll slice ran before the cancel");
        assert_eq!(rec.report().counter(stage::BUDGET_POLLS), 2, "poll, run, poll, stop");
    }

    #[test]
    fn budgeted_validates_geometry_and_contains_panics() {
        use rrs_error::{Budget, CancelToken};
        let budget = Budget::unlimited().with_cancel_token(CancelToken::new());
        let mut v = vec![0u8; 10];
        let err = try_par_row_chunks_mut_budgeted(&mut v, 3, 2, &Recorder::disabled(), &budget,
            |_, _| {})
        .unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::ShapeMismatch);

        let rec = Recorder::enabled();
        let mut v = vec![0u8; 4 * 8];
        let err = try_par_row_chunks_mut_budgeted(&mut v, 4, 2, &rec, &budget, |row0, _| {
            if row0 >= 4 {
                panic!("upper band down");
            }
        })
        .unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::WorkerPanicked);
        assert_eq!(rec.report().counter(stage::PAR_WORKER_PANICS), 1);
    }

    #[test]
    fn scope_propagates_results() {
        let data = [1, 2, 3];
        let sum = scope(|s| {
            let h = s.spawn(|| data.iter().sum::<i32>());
            h.join().unwrap()
        });
        assert_eq!(sum, 6);
    }

    #[test]
    fn chaos_disabled_is_bit_identical_to_budgeted() {
        use rrs_error::Budget;
        let fill = |row0: usize, band: &mut [u64]| {
            for (j, x) in band.iter_mut().enumerate() {
                *x = (row0 as u64) << 32 | j as u64;
            }
        };
        for workers in [1usize, 3] {
            let mut want = vec![0u64; 4 * 9];
            try_par_row_chunks_mut_budgeted(&mut want, 4, workers, &Recorder::disabled(),
                &Budget::unlimited(), |r, b| fill(r, b))
            .unwrap();
            let mut got = vec![0u64; 4 * 9];
            try_par_row_chunks_mut_chaos(&mut got, 4, workers, &Recorder::disabled(),
                &Budget::unlimited(), &rrs_chaos::ChaosInjector::disabled(), |r, b| fill(r, b))
            .unwrap();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn chaos_error_fault_fires_at_the_exact_slice_index() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule};
        use rrs_error::Budget;
        // Serial: 64 rows in one band, 8-row poll slices → 8 ParBandSlice
        // visits. A fault at index 3 lets exactly three slices run.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(11).with_fault(FaultSite::ParBandSlice, FaultKind::Error, 3),
        );
        let mut v = vec![0u64; 4 * 64];
        let err = try_par_row_chunks_mut_chaos(&mut v, 4, 1, &Recorder::disabled(),
            &Budget::unlimited(), &chaos, |_, band| band.iter_mut().for_each(|x| *x = 1))
        .unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::FaultInjected);
        assert!(err.to_string().contains("par_band_slice[3]"), "{err}");
        assert_eq!(v.iter().sum::<u64>(), 4 * 8 * 3, "exactly three slices written");
        assert_eq!(chaos.visits(FaultSite::ParBandSlice), 4, "three clean polls + the fault");
    }

    #[test]
    fn chaos_panic_fault_is_contained_and_counted() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule};
        use rrs_error::Budget;
        for workers in [1usize, 3] {
            let chaos = ChaosInjector::new(
                FaultSchedule::new(13).with_fault(FaultSite::ParBandSlice, FaultKind::Panic, 0),
            );
            let rec = Recorder::enabled();
            let mut v = vec![0u64; 4 * 9];
            let err = try_par_row_chunks_mut_chaos(&mut v, 4, workers, &rec,
                &Budget::unlimited(), &chaos, |_, _| {})
            .unwrap_err();
            assert_eq!(err.kind(), rrs_error::ErrorKind::WorkerPanicked, "workers={workers}");
            assert!(err.to_string().contains("chaos: injected panic"), "{err}");
            assert_eq!(rec.report().counter(stage::PAR_WORKER_PANICS), 1);
            assert_eq!(chaos.injected(), 1);
        }
    }

    #[test]
    fn chaos_cancel_and_deadline_faults_surface_typed() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule};
        use rrs_error::Budget;
        for (kind, want) in [
            (FaultKind::Cancel, rrs_error::ErrorKind::Cancelled),
            (FaultKind::Deadline, rrs_error::ErrorKind::DeadlineExceeded),
        ] {
            let chaos = ChaosInjector::new(
                FaultSchedule::new(17).with_fault(FaultSite::ParBandSlice, kind, 0),
            );
            let mut v = vec![0u8; 4 * 8];
            let err = try_par_row_chunks_mut_chaos(&mut v, 4, 2, &Recorder::disabled(),
                &Budget::unlimited(), &chaos, |_, _| {})
            .unwrap_err();
            assert_eq!(err.kind(), want, "{kind:?}");
        }
    }
}
