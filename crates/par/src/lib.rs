//! Minimal data-parallel substrate built on `std::thread::scope`.
//!
//! The workspace's hot loops (2-D FFT rows, convolution output rows) are
//! embarrassingly parallel over disjoint row bands. Rather than pull in a
//! full work-stealing runtime, this crate provides the two primitives those
//! loops need, in the style of rayon's chunked iterators but with a fixed,
//! caller-controllable worker count so generation remains deterministic:
//!
//! * [`par_chunks_mut`] — split a mutable slice into contiguous chunks and
//!   process each on its own scoped thread;
//! * [`par_indexed_chunks_mut`] — the same, handing each closure the chunk's
//!   starting element index (for row numbering / per-band RNG streams);
//! * [`par_map_collect`] — evaluate a pure function over an index range and
//!   collect results in order.
//!
//! Determinism note: all primitives partition work *statically*; outputs
//! never depend on scheduling, only on the partition, which itself depends
//! only on `(len, workers)`.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

pub use std::thread::Scope;

/// Runs `f` inside a `std::thread::scope`, propagating panics from worker
/// threads as a panic on the caller (the scope joins every spawned thread
/// before returning and re-raises the first panic it observed).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    std::thread::scope(f)
}

/// Returns the number of worker threads to use: the `RRS_THREADS`
/// environment variable if set and positive, otherwise the machine's
/// available parallelism, otherwise 1.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("RRS_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Splits `data` into at most `workers` contiguous chunks of near-equal
/// length and runs `f` on each chunk, in parallel.
///
/// `f` receives `(chunk_index, chunk)`. With `workers <= 1` or a single
/// chunk the call degrades to a plain loop on the caller's thread.
pub fn par_chunks_mut<T, F>(data: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    let chunk = n.div_ceil(workers);
    if workers == 1 {
        f(0, data);
        return;
    }
    scope(|s| {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(i, c));
        }
    });
}

/// Like [`par_chunks_mut`] but hands each closure the *element offset* of
/// its chunk within the original slice, so callers can recover global row
/// indices: `f(start_index, chunk)`.
pub fn par_indexed_chunks_mut<T, F>(data: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    let chunk = n.div_ceil(workers);
    if workers == 1 {
        f(0, data);
        return;
    }
    scope(|s| {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            let start = i * chunk;
            s.spawn(move || f(start, c));
        }
    });
}

/// Splits a row-major `row_len`-wide buffer into bands of whole rows and
/// processes each band on its own thread: `f(first_row_index, band)`.
///
/// Guarantees a row is never split across workers — the invariant the 2-D
/// kernels rely on.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn par_row_chunks_mut<T, F>(data: &mut [T], row_len: usize, workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(data.len() % row_len, 0, "buffer is not whole rows");
    let rows = data.len() / row_len;
    if rows == 0 {
        return;
    }
    let workers = workers.max(1).min(rows);
    let rows_per_band = rows.div_ceil(workers);
    if workers == 1 {
        f(0, data);
        return;
    }
    scope(|s| {
        for (i, band) in data.chunks_mut(rows_per_band * row_len).enumerate() {
            let f = &f;
            s.spawn(move || f(i * rows_per_band, band));
        }
    });
}

/// Evaluates `f(i)` for `i in 0..n` on `workers` threads and returns the
/// results in index order.
pub fn par_map_collect<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    par_indexed_chunks_mut(&mut out, workers, |start, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + j);
        }
    });
    out
}

/// Statically splits the half-open range `[0, n)` into `parts` near-equal
/// sub-ranges; returns `(start, end)` pairs. Empty ranges are omitted.
pub fn split_range(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts.min(n));
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        if len == 0 {
            continue;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_touches_every_element() {
        let mut v = vec![0u64; 1003];
        par_chunks_mut(&mut v, 7, |_, c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_chunks_mut_empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 4, |_, _| panic!("must not run"));
        let mut one = vec![5];
        par_chunks_mut(&mut one, 4, |i, c| {
            assert_eq!(i, 0);
            c[0] = 6;
        });
        assert_eq!(one, [6]);
    }

    #[test]
    fn indexed_chunks_get_correct_offsets() {
        let n = 100;
        let mut v: Vec<usize> = vec![0; n];
        par_indexed_chunks_mut(&mut v, 3, |start, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = start + j;
            }
        });
        let expect: Vec<usize> = (0..n).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn map_collect_is_ordered() {
        for workers in [1, 2, 5, 16] {
            let out = par_map_collect(257, workers, |i| i * i);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i * i);
            }
        }
    }

    #[test]
    fn result_is_thread_count_invariant() {
        let f = |i: usize| (i as f64).sin();
        let a = par_map_collect(1000, 1, f);
        let b = par_map_collect(1000, 8, f);
        assert_eq!(a, b);
    }

    #[test]
    fn all_workers_used_for_large_input() {
        let seen = AtomicUsize::new(0);
        let mut v = vec![0u8; 64];
        par_chunks_mut(&mut v, 4, |_, _| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn split_range_covers_exactly() {
        for n in [0usize, 1, 7, 64, 1001] {
            for parts in [1usize, 2, 3, 8, 100] {
                let rs = split_range(n, parts);
                let total: usize = rs.iter().map(|&(a, b)| b - a).sum();
                assert_eq!(total, n);
                let mut prev = 0;
                for &(a, b) in &rs {
                    assert_eq!(a, prev);
                    assert!(b > a);
                    prev = b;
                }
                if let (Some(min), Some(max)) = (
                    rs.iter().map(|&(a, b)| b - a).min(),
                    rs.iter().map(|&(a, b)| b - a).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn row_chunks_never_split_rows() {
        let nx = 7;
        let ny = 13;
        let mut v = vec![0usize; nx * ny];
        par_row_chunks_mut(&mut v, nx, 4, |row0, band| {
            assert_eq!(band.len() % nx, 0, "band must be whole rows");
            for (i, x) in band.iter_mut().enumerate() {
                *x = (row0 * nx) + i;
            }
        });
        let expect: Vec<usize> = (0..nx * ny).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn row_chunks_single_worker_and_empty() {
        let mut v = vec![1u8; 12];
        par_row_chunks_mut(&mut v, 4, 1, |row0, band| {
            assert_eq!(row0, 0);
            assert_eq!(band.len(), 12);
        });
        let mut empty: Vec<u8> = vec![];
        par_row_chunks_mut(&mut empty, 4, 3, |_, _| panic!("must not run"));
    }

    #[test]
    fn row_chunks_more_workers_than_rows() {
        let nx = 5;
        let mut v = vec![0u8; nx * 2];
        par_row_chunks_mut(&mut v, nx, 64, |_, band| {
            for x in band {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn row_chunks_ragged_buffer_panics() {
        let mut v = vec![0u8; 10];
        par_row_chunks_mut(&mut v, 3, 2, |_, _| {});
    }

    #[test]
    fn scope_propagates_results() {
        let data = [1, 2, 3];
        let sum = scope(|s| {
            let h = s.spawn(|| data.iter().sum::<i32>());
            h.join().unwrap()
        });
        assert_eq!(sum, 6);
    }
}
