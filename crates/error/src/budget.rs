//! Per-request resource budgets: deadlines, cooperative cancellation and
//! byte-level admission control.
//!
//! A [`Budget`] travels with a generation request and bounds three
//! resources independently:
//!
//! * **wall-clock time** — a [`Budget::with_deadline`] /
//!   [`Budget::with_timeout`] instant after which polling sites return
//!   [`RrsError::DeadlineExceeded`];
//! * **caller interest** — a shared [`CancelToken`] the caller can trip
//!   from any thread; polling sites return [`RrsError::Cancelled`];
//! * **memory** — a [`Budget::with_max_bytes`] ceiling checked by
//!   *admission control* ([`Budget::admit`]) **before** a kernel window or
//!   output field is allocated, so an oversized request fails with a
//!   precise [`RrsError::BudgetExceeded`] instead of aborting the process
//!   inside the allocator.
//!
//! The default [`Budget::unlimited`] carries none of the three, and every
//! polling site is required to degrade to its pre-budget code path in that
//! case (the `bench_runtime` gate enforces this), so callers that never
//! opt in pay nothing.
//!
//! Cancellation is *cooperative*: workers poll [`Budget::check`] at band
//! (or tile) granularity, never mid-row, so a tripped budget surfaces in
//! bounded time without torn partial output ever being handed to the
//! caller.

use crate::RrsError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheap, clonable cancellation flag shared between the caller and the
/// workers executing its request.
///
/// Clones share one flag: tripping any clone via [`CancelToken::cancel`]
/// is observed by every polling site holding another clone. Polling is a
/// single relaxed atomic load — cheap enough for band-granularity checks
/// in hot loops.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has been cancelled.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The resource bounds attached to one generation request.
///
/// See the [module docs](self) for the three independent limits. Build
/// with the `with_*` methods:
///
/// ```
/// use rrs_error::{Budget, CancelToken};
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let budget = Budget::unlimited()
///     .with_timeout(Duration::from_secs(30))
///     .with_cancel_token(token.clone())
///     .with_max_bytes(256 << 20);
/// assert!(budget.check().is_ok());
/// token.cancel();
/// assert!(budget.check().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    max_bytes: Option<usize>,
}

impl Budget {
    /// The no-limit budget every generator starts with: no deadline, no
    /// cancel token, no byte ceiling. [`Budget::check`] and
    /// [`Budget::admit`] always succeed without reading the clock.
    pub const fn unlimited() -> Self {
        Self { deadline: None, cancel: None, max_bytes: None }
    }

    /// Bounds the request by an absolute wall-clock instant.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the request by a duration from now
    /// (`with_deadline(Instant::now() + timeout)`).
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a cancellation token; keep a clone to trip the request.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps the bytes any single request may materialise (kernel window
    /// plus output field), enforced by [`Budget::admit`] before
    /// allocation.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The configured byte ceiling, if any.
    pub fn max_bytes(&self) -> Option<usize> {
        self.max_bytes
    }

    /// True when no limit of any kind is configured — polling sites use
    /// this to fall back to their pre-budget code path.
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.max_bytes.is_none()
    }

    /// True when [`Budget::check`] can ever fail (a deadline or cancel
    /// token is present). A max-bytes-only budget needs admission checks
    /// but no in-loop polling.
    #[inline]
    pub fn needs_polling(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Polls the cancel token and the deadline, in that order.
    ///
    /// Returns [`RrsError::Cancelled`] if the token is tripped,
    /// [`RrsError::DeadlineExceeded`] if the deadline has passed, `Ok`
    /// otherwise. With neither configured this does nothing — not even a
    /// clock read.
    #[inline]
    pub fn check(&self) -> Result<(), RrsError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(RrsError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(RrsError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Admission control: succeeds iff materialising `required_bytes`
    /// fits the byte ceiling (always, when none is configured).
    ///
    /// Callers compute `required_bytes` in `u128` so the estimate itself
    /// can never overflow; `what` names the allocation for the error
    /// message.
    pub fn admit(&self, what: &'static str, required_bytes: u128) -> Result<(), RrsError> {
        match self.max_bytes {
            Some(max) if required_bytes > max as u128 => Err(RrsError::BudgetExceeded {
                what,
                required_bytes,
                max_bytes: max,
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorKind;

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = Budget::unlimited();
        assert!(budget.is_unlimited());
        assert!(!budget.needs_polling());
        assert!(budget.check().is_ok());
        assert!(budget.admit("anything", u128::MAX).is_ok());
    }

    #[test]
    fn cancelled_token_fails_check() {
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_cancel_token(token.clone());
        assert!(!budget.is_unlimited());
        assert!(budget.needs_polling());
        assert!(budget.check().is_ok());
        token.cancel();
        let err = budget.check().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Cancelled);
    }

    #[test]
    fn past_deadline_fails_check() {
        let budget = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        let err = budget.check().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DeadlineExceeded);
        // A generous future deadline passes.
        let budget = Budget::unlimited().with_timeout(Duration::from_secs(3600));
        assert!(budget.check().is_ok());
    }

    #[test]
    fn cancel_takes_precedence_over_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited()
            .with_cancel_token(token)
            .with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(budget.check().unwrap_err().kind(), ErrorKind::Cancelled);
    }

    #[test]
    fn admission_compares_against_the_ceiling() {
        let budget = Budget::unlimited().with_max_bytes(1024);
        assert!(!budget.needs_polling(), "max-bytes-only budget needs no polling");
        assert!(budget.admit("field", 1024).is_ok(), "exactly at the ceiling is admitted");
        let err = budget.admit("field", 1025).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BudgetExceeded);
        let msg = err.to_string();
        assert!(msg.contains("1025") && msg.contains("1024"), "{msg}");
        assert!(msg.contains("field"), "{msg}");
    }

    #[test]
    fn admission_survives_u128_scale_requests() {
        let budget = Budget::unlimited().with_max_bytes(usize::MAX);
        // A request larger than any addressable allocation still compares
        // cleanly instead of overflowing.
        let huge = u128::from(u64::MAX) * 16;
        assert!(budget.admit("field", huge).is_err());
    }
}
