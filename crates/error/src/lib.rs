//! Unified error taxonomy for the rrs workspace.
//!
//! Every fallible entry point in the workspace — parameter validation,
//! shape checks, snapshot decoding, parallel execution — reports a
//! [`RrsError`]. The taxonomy is deliberately small: callers match on
//! [`RrsError::kind`] to branch programmatically, while [`Display`]
//! produces the same human-readable one-liners the old panicking
//! constructors used, so `try_*` APIs and their panicking wrappers speak
//! one language.
//!
//! # Error-handling policy
//!
//! * **Caller input is never trusted** — constructors and entry points
//!   that consume user-supplied values come in a `try_*` form returning
//!   `Result<_, RrsError>`. The panicking forms are thin wrappers kept for
//!   ergonomic internal use and for call sites that have already
//!   validated.
//! * **Panics mark internal invariants only** — an index derived from an
//!   already-validated shape, a partition that covers a slice by
//!   construction. A panic reaching the user is a bug in this workspace,
//!   never a diagnostics channel for bad input.
//! * **Parallel sections contain panics** — `rrs-par`'s `try_*`
//!   primitives catch worker panics and surface them as
//!   [`RrsError::WorkerPanicked`] naming the failed band.
//!
//! # Context chaining
//!
//! [`ResultExt::context`] wraps any `Result<_, RrsError>` with a
//! higher-level line; the chain prints outermost-first and
//! [`std::error::Error::source`] walks it:
//!
//! ```
//! use rrs_error::{RrsError, ResultExt};
//! let err: Result<(), RrsError> =
//!     Err(RrsError::corrupt_snapshot("bad magic")).context("loading checkpoint");
//! assert_eq!(err.unwrap_err().to_string(), "loading checkpoint: corrupt snapshot: bad magic");
//! ```

#![warn(missing_docs)]

pub mod budget;

pub use budget::{Budget, CancelToken};

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Discriminant of a [`RrsError`], for programmatic matching.
///
/// [`RrsError::kind`] looks through [`RrsError::Context`] wrappers, so a
/// chained error keeps the kind of its root cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// A caller-supplied parameter lies outside its valid domain.
    InvalidParam,
    /// Two shapes that must agree do not.
    ShapeMismatch,
    /// A non-finite value (NaN or ±∞) where finite data is required.
    NonFinite,
    /// A parallel worker band panicked.
    WorkerPanicked,
    /// Snapshot or checkpoint bytes failed validation.
    CorruptSnapshot,
    /// An operating-system I/O failure.
    Io,
    /// The request's cancel token was tripped.
    Cancelled,
    /// The request's wall-clock deadline passed.
    DeadlineExceeded,
    /// Admission control rejected the request's memory footprint.
    BudgetExceeded,
    /// A deterministic chaos schedule injected a fault at this site.
    FaultInjected,
    /// A serving endpoint could not be reached (connect failed, timed
    /// out, or the connection died). Retryable: generation is
    /// idempotent, so the same request can be re-issued anywhere.
    Unavailable,
    /// The serving endpoint is draining for shutdown and refuses new
    /// work. Retryable against another endpoint.
    Draining,
}

impl ErrorKind {
    /// Whether a failure of this kind is safe and sensible to retry.
    ///
    /// Retryable kinds describe the *transport or endpoint*, never the
    /// request: because every window is a pure function of
    /// `(seed, spectrum, window)`, re-issuing the identical request —
    /// on the same endpoint or any other — can only produce the
    /// identical bits or another transient failure. Kinds that describe
    /// the request itself (`InvalidParam`, `BudgetExceeded`, …) fail
    /// the same way everywhere and must surface unchanged.
    pub fn is_retryable(self) -> bool {
        matches!(self, Self::Io | Self::Unavailable | Self::Draining)
    }
}

/// The workspace-wide error type.
///
/// `#[non_exhaustive]`: new failure classes may be added as the pipeline
/// grows (the fallible-core PR added several), so downstream matches
/// need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum RrsError {
    /// A caller-supplied parameter lies outside its valid domain.
    ///
    /// `message` is the full human-readable diagnosis (`"clx must be
    /// finite and positive, got 0"`); `param` names the offending
    /// parameter for programmatic use.
    InvalidParam {
        /// Name of the offending parameter.
        param: &'static str,
        /// Full human-readable diagnosis.
        message: String,
    },
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// What was being shape-checked.
        context: &'static str,
        /// The shape the operation required.
        expected: String,
        /// The shape it was given.
        actual: String,
    },
    /// A non-finite value (NaN or ±∞) where finite data is required.
    NonFinite {
        /// Where the value was found (e.g. `"PGM render input"`).
        context: &'static str,
        /// Flat index of the first offending sample.
        index: usize,
    },
    /// A parallel worker band panicked; the band is re-raised as data.
    WorkerPanicked {
        /// Index of the band whose closure panicked.
        band: usize,
        /// The panic payload, stringified (`"…"` for non-string payloads).
        payload: String,
    },
    /// Snapshot or checkpoint bytes failed validation.
    CorruptSnapshot {
        /// What the decoder rejected (`"bad magic"`, `"checksum
        /// mismatch"`, …).
        detail: String,
    },
    /// An operating-system I/O failure.
    Io(io::Error),
    /// The request's [`CancelToken`] was tripped; workers stopped at the
    /// next band/tile poll and no partial output was handed out.
    Cancelled,
    /// The request's [`Budget`] deadline passed before generation
    /// finished.
    DeadlineExceeded,
    /// Admission control: materialising the request would exceed the
    /// [`Budget`] byte ceiling. Raised *before* any allocation.
    BudgetExceeded {
        /// What was about to be materialised (e.g. `"convolution
        /// generation"`).
        what: &'static str,
        /// Bytes the request would have needed.
        required_bytes: u128,
        /// The configured ceiling.
        max_bytes: usize,
    },
    /// A deterministic chaos schedule (`rrs-chaos`) injected a fault at
    /// a numbered pipeline site. Only ever produced under an explicitly
    /// armed `FaultSchedule`; production runs never see it.
    FaultInjected {
        /// Stable name of the fault site (e.g. `"fft_tile"`).
        site: &'static str,
        /// Zero-based visit index at which the schedule fired.
        index: u64,
    },
    /// A serving endpoint could not be reached: the connect failed or
    /// timed out, or an established connection died mid-exchange.
    /// Produced by the serving client; a sharded client treats it as
    /// the signal to fail over.
    Unavailable {
        /// What failed (`"connect to 10.0.0.7:4100 timed out"`, …).
        detail: String,
    },
    /// The serving endpoint is draining for shutdown: queued work
    /// finishes, but new requests are refused with this typed error so
    /// clients immediately retry elsewhere instead of timing out.
    Draining,
    /// A lower-level error wrapped with a higher-level context line.
    Context {
        /// The higher-level operation that failed.
        context: String,
        /// The underlying cause.
        source: Box<RrsError>,
    },
}

impl RrsError {
    /// Builds an [`RrsError::InvalidParam`].
    pub fn invalid_param(param: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidParam { param, message: message.into() }
    }

    /// Builds an [`RrsError::ShapeMismatch`].
    pub fn shape_mismatch(
        context: &'static str,
        expected: impl fmt::Display,
        actual: impl fmt::Display,
    ) -> Self {
        Self::ShapeMismatch {
            context,
            expected: expected.to_string(),
            actual: actual.to_string(),
        }
    }

    /// Builds an [`RrsError::NonFinite`].
    pub fn non_finite(context: &'static str, index: usize) -> Self {
        Self::NonFinite { context, index }
    }

    /// Builds an [`RrsError::CorruptSnapshot`].
    pub fn corrupt_snapshot(detail: impl Into<String>) -> Self {
        Self::CorruptSnapshot { detail: detail.into() }
    }

    /// Builds an [`RrsError::WorkerPanicked`] from a band index and the
    /// payload `std::panic::catch_unwind` returned.
    pub fn worker_panicked(band: usize, payload: &(dyn std::any::Any + Send)) -> Self {
        let payload = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        Self::WorkerPanicked { band, payload }
    }

    /// Builds an [`RrsError::FaultInjected`] naming the chaos site and
    /// the visit index at which the schedule fired.
    pub fn fault_injected(site: &'static str, index: u64) -> Self {
        Self::FaultInjected { site, index }
    }

    /// Builds an [`RrsError::Unavailable`].
    pub fn unavailable(detail: impl Into<String>) -> Self {
        Self::Unavailable { detail: detail.into() }
    }

    /// The error's kind, looking through [`RrsError::Context`] wrappers.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Self::InvalidParam { .. } => ErrorKind::InvalidParam,
            Self::ShapeMismatch { .. } => ErrorKind::ShapeMismatch,
            Self::NonFinite { .. } => ErrorKind::NonFinite,
            Self::WorkerPanicked { .. } => ErrorKind::WorkerPanicked,
            Self::CorruptSnapshot { .. } => ErrorKind::CorruptSnapshot,
            Self::Io(_) => ErrorKind::Io,
            Self::Cancelled => ErrorKind::Cancelled,
            Self::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            Self::BudgetExceeded { .. } => ErrorKind::BudgetExceeded,
            Self::FaultInjected { .. } => ErrorKind::FaultInjected,
            Self::Unavailable { .. } => ErrorKind::Unavailable,
            Self::Draining => ErrorKind::Draining,
            Self::Context { source, .. } => source.kind(),
        }
    }

    /// Wraps this error with a higher-level context line.
    pub fn with_context(self, context: impl Into<String>) -> Self {
        Self::Context { context: context.into(), source: Box::new(self) }
    }

    /// The root cause, unwrapping every [`RrsError::Context`] layer.
    pub fn root_cause(&self) -> &RrsError {
        match self {
            Self::Context { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for RrsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParam { message, .. } => f.write_str(message),
            Self::ShapeMismatch { context, expected, actual } => {
                write!(f, "{context}: expected {expected}, got {actual}")
            }
            Self::NonFinite { context, index } => {
                write!(f, "non-finite value in {context} at index {index}")
            }
            Self::WorkerPanicked { band, payload } => {
                write!(f, "worker band {band} panicked: {payload}")
            }
            Self::CorruptSnapshot { detail } => write!(f, "corrupt snapshot: {detail}"),
            Self::Io(e) => write!(f, "I/O failure: {e}"),
            Self::Cancelled => f.write_str("request cancelled by caller"),
            Self::DeadlineExceeded => f.write_str("request deadline exceeded"),
            Self::BudgetExceeded { what, required_bytes, max_bytes } => write!(
                f,
                "{what} requires {required_bytes} bytes, exceeding the byte budget of {max_bytes}"
            ),
            Self::FaultInjected { site, index } => {
                write!(f, "injected fault at {site}[{index}]")
            }
            Self::Unavailable { detail } => write!(f, "endpoint unavailable: {detail}"),
            Self::Draining => f.write_str("endpoint draining: retry another endpoint"),
            Self::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl StdError for RrsError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for RrsError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Lets `try_*` results flow through `?` in functions returning
/// `io::Result`: workspace errors become `InvalidData` I/O errors with
/// the [`RrsError`] preserved as the payload (recoverable via
/// [`io::Error::get_ref`]). A wrapped I/O failure passes through with its
/// original kind.
impl From<RrsError> for io::Error {
    fn from(e: RrsError) -> Self {
        match e {
            RrsError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other),
        }
    }
}

/// Context chaining for `Result<T, RrsError>` (and any error convertible
/// into [`RrsError`]).
pub trait ResultExt<T> {
    /// Wraps the error, if any, with a fixed context line.
    fn context(self, context: impl Into<String>) -> Result<T, RrsError>;

    /// Wraps the error, if any, with a lazily built context line.
    fn with_context<F: FnOnce() -> String>(self, f: F) -> Result<T, RrsError>;
}

impl<T, E: Into<RrsError>> ResultExt<T> for Result<T, E> {
    fn context(self, context: impl Into<String>) -> Result<T, RrsError> {
        self.map_err(|e| e.into().with_context(context))
    }

    fn with_context<F: FnOnce() -> String>(self, f: F) -> Result<T, RrsError> {
        self.map_err(|e| e.into().with_context(f()))
    }
}

/// Scans a slice for the first non-finite sample; `Ok` when all are
/// finite. The shared guard behind every renderer/writer's NonFinite
/// rejection.
pub fn ensure_all_finite(context: &'static str, data: &[f64]) -> Result<(), RrsError> {
    match data.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(index) => Err(RrsError::non_finite(context, index)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_legacy_messages() {
        let e = RrsError::invalid_param("clx", "clx must be finite and positive, got 0");
        assert_eq!(e.to_string(), "clx must be finite and positive, got 0");
        assert_eq!(e.kind(), ErrorKind::InvalidParam);
    }

    #[test]
    fn shape_mismatch_formats_both_shapes() {
        let e = RrsError::shape_mismatch("grid data length must be nx*ny", 12, 7);
        assert_eq!(e.to_string(), "grid data length must be nx*ny: expected 12, got 7");
        assert_eq!(e.kind(), ErrorKind::ShapeMismatch);
    }

    #[test]
    fn context_chains_and_kind_penetrates() {
        let e = RrsError::corrupt_snapshot("checksum mismatch")
            .with_context("loading tile 7")
            .with_context("resume");
        assert_eq!(e.to_string(), "resume: loading tile 7: corrupt snapshot: checksum mismatch");
        assert_eq!(e.kind(), ErrorKind::CorruptSnapshot);
        assert!(matches!(e.root_cause(), RrsError::CorruptSnapshot { .. }));
        // source() walks one layer at a time.
        let s1 = e.source().expect("one layer");
        assert!(s1.to_string().starts_with("loading tile 7"));
    }

    #[test]
    fn result_ext_context_on_io() {
        let r: Result<(), io::Error> =
            Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short read"));
        let e = r.context("reading snapshot").unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Io);
        assert!(e.to_string().contains("reading snapshot"));
        assert!(e.to_string().contains("short read"));
    }

    #[test]
    fn io_round_trip_preserves_payload() {
        let e = RrsError::non_finite("PGM render input", 3);
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("non-finite"));
        // A wrapped I/O error unwraps to its original kind, not InvalidData.
        let orig = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        let back: io::Error = RrsError::from(orig).into();
        assert_eq!(back.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn worker_panicked_extracts_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        let e = RrsError::worker_panicked(2, s.as_ref());
        assert_eq!(e.to_string(), "worker band 2 panicked: boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(format!("band died"));
        let e = RrsError::worker_panicked(0, s.as_ref());
        assert!(e.to_string().contains("band died"));
        let s: Box<dyn std::any::Any + Send> = Box::new(17u32);
        let e = RrsError::worker_panicked(1, s.as_ref());
        assert!(e.to_string().contains("non-string"));
    }

    #[test]
    fn fault_injected_names_site_and_index() {
        let e = RrsError::fault_injected("fft_tile", 3);
        assert_eq!(e.to_string(), "injected fault at fft_tile[3]");
        assert_eq!(e.kind(), ErrorKind::FaultInjected);
        let wrapped = e.with_context("convolving window");
        assert_eq!(wrapped.kind(), ErrorKind::FaultInjected);
        assert!(wrapped.to_string().contains("fft_tile[3]"));
    }

    #[test]
    fn unavailable_and_draining_are_typed_and_retryable() {
        let e = RrsError::unavailable("connect to 10.0.0.7:4100 timed out");
        assert_eq!(e.kind(), ErrorKind::Unavailable);
        assert_eq!(e.to_string(), "endpoint unavailable: connect to 10.0.0.7:4100 timed out");
        assert!(e.kind().is_retryable());
        let d = RrsError::Draining;
        assert_eq!(d.kind(), ErrorKind::Draining);
        assert!(d.kind().is_retryable());
        assert!(d.to_string().contains("draining"));
        // Request-shaped failures must never be retryable.
        for kind in [
            ErrorKind::InvalidParam,
            ErrorKind::BudgetExceeded,
            ErrorKind::Cancelled,
            ErrorKind::DeadlineExceeded,
            ErrorKind::CorruptSnapshot,
        ] {
            assert!(!kind.is_retryable(), "{kind:?} must not be retryable");
        }
    }

    #[test]
    fn ensure_all_finite_reports_first_offender() {
        assert!(ensure_all_finite("x", &[1.0, 2.0]).is_ok());
        assert!(ensure_all_finite("x", &[]).is_ok());
        let e = ensure_all_finite("x", &[0.0, f64::NAN, f64::INFINITY]).unwrap_err();
        match e {
            RrsError::NonFinite { index, .. } => assert_eq!(index, 1),
            other => panic!("wrong variant {other:?}"),
        }
        assert!(ensure_all_finite("x", &[f64::NEG_INFINITY]).is_err());
    }
}
