//! Inhomogeneous random rough surface generation — the paper's
//! contribution (§3).
//!
//! The convolution method synthesises each output sample as a kernel dot
//! product against lattice noise; nothing forces the kernel to be the same
//! at every sample. This crate varies it:
//!
//! * **plate-oriented method** (§3.1, eqns 37–39): the domain is covered by
//!   geometric regions ([`Region`]: rectangles, circles, half-planes), each
//!   carrying a spectrum. Region membership ramps linearly across a
//!   transition strip of width `T`, and the per-sample kernel is the
//!   membership-weighted combination of the region kernels.
//! * **point-oriented method** (§3.2, eqns 40–46): `M` representative
//!   points each carry a spectrum. A sample blends the kernel of its
//!   nearest point with those of every point whose perpendicular-bisector
//!   distance `τ` (eqn 42) is within the transition half-width `T`,
//!   weights falling linearly in `τ` — a Voronoi diagram with soft edges.
//!
//! Both methods implement [`WeightMap`] — "which kernels, with which
//! weights, at this sample" — and share one [`InhomogeneousGenerator`].
//! Because kernel blending is linear and convolution is linear, blending
//! kernels then convolving (eqn 46 literally) equals convolving each
//! kernel and blending fields with the same weights; the generator
//! exploits this sample-by-sample, paying only for the kernels active at
//! each sample (one in pure regions).

#![warn(missing_docs)]

pub mod generator;
pub mod plate;
pub mod point;
pub mod region;

pub use generator::{InhomogeneousGenerator, WeightMap};
pub use plate::{Plate, PlateLayout, TransitionProfile};
pub use point::{PointLayout, RepresentativePoint};
pub use region::Region;
pub use rrs_error::RrsError;
