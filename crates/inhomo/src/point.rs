//! The point-oriented method (paper §3.2, eqns 40–46).
//!
//! `M` representative points each carry a spectrum. For a sample `n`:
//!
//! 1. find the nearest representative point `m*` (eqn 40/41);
//! 2. for every other point `m`, compute `τ(n, n_m, n_m*)` — the distance
//!    from `n` to the perpendicular bisector of the segment
//!    `[n_m, n_m*]` (eqn 42); the point *participates* when `τ ≤ T`,
//!    `T` being half the transition width (eqn 41);
//! 3. participating points get weights falling linearly in `τ`
//!    (eqns 43–44), the nearest point absorbs the remainder (eqn 45), and
//!    the sample's kernel is the weighted blend (eqn 46).
//!
//! The published equations' index tables are OCR-damaged; the
//! reconstruction here fixes the two limits they must satisfy: on the
//! bisector (`τ = 0`) a participating pair blends 50/50, and at `τ = T`
//! the neighbour's influence vanishes, matching the plate-oriented linear
//! strip. With several simultaneous neighbours the remainder rule keeps
//! `Σ g = 1` with the nearest point always weighted at least `1/2`.

use crate::generator::WeightMap;
use rrs_error::RrsError;
use rrs_spectrum::SpectrumModel;

/// A representative point with its spectrum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepresentativePoint {
    /// Position x.
    pub x: f64,
    /// Position y.
    pub y: f64,
    /// The spectrum this point represents.
    pub spectrum: SpectrumModel,
}

/// A point-oriented layout: representative points plus the transition
/// half-width `T`.
#[derive(Clone, Debug)]
pub struct PointLayout {
    points: Vec<RepresentativePoint>,
    half_width: f64,
}

impl PointLayout {
    /// Builds a layout.
    ///
    /// # Panics
    /// Panics if no points are given, if two points coincide, or if the
    /// half-width `T` is not positive and finite. Fallible callers use
    /// [`PointLayout::try_new`].
    pub fn new(points: Vec<RepresentativePoint>, half_width: f64) -> Self {
        Self::try_new(points, half_width).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PointLayout::new`].
    pub fn try_new(
        points: Vec<RepresentativePoint>,
        half_width: f64,
    ) -> Result<Self, RrsError> {
        if points.is_empty() {
            return Err(RrsError::invalid_param(
                "points",
                "point layout needs at least one point",
            ));
        }
        if !(half_width.is_finite() && half_width > 0.0) {
            return Err(RrsError::invalid_param(
                "half_width",
                format!("transition half-width must be positive, got {half_width}"),
            ));
        }
        for i in 0..points.len() {
            for j in i + 1..points.len() {
                let d = (points[i].x - points[j].x).hypot(points[i].y - points[j].y);
                if !(d > 0.0) {
                    return Err(RrsError::invalid_param(
                        "points",
                        format!("representative points {i} and {j} coincide"),
                    ));
                }
            }
        }
        Ok(Self { points, half_width })
    }

    /// The representative points, in kernel-index order.
    pub fn points(&self) -> &[RepresentativePoint] {
        &self.points
    }

    /// The transition half-width `T`.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Index of the nearest representative point to `(x, y)` (eqn 41's
    /// `m*`). Ties resolve to the lowest index, deterministically.
    pub fn nearest(&self, x: f64, y: f64) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            let d = (p.x - x) * (p.x - x) + (p.y - y) * (p.y - y);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// The bisector distance `τ(n, n_m, n_m*)` of eqn (42): how far `n`
    /// is from the perpendicular bisector of `[n_m, n_m*]`, measured
    /// towards `n_m`. Non-negative whenever `m*` is the nearest point.
    pub fn tau(&self, x: f64, y: f64, m: usize, m_star: usize) -> f64 {
        let pm = &self.points[m];
        let ps = &self.points[m_star];
        let sep = (pm.x - ps.x).hypot(pm.y - ps.y);
        debug_assert!(sep > 0.0);
        let d_m = (pm.x - x) * (pm.x - x) + (pm.y - y) * (pm.y - y);
        let d_s = (ps.x - x) * (ps.x - x) + (ps.y - y) * (ps.y - y);
        (d_m - d_s) / (2.0 * sep)
    }
}

impl WeightMap for PointLayout {
    fn kernel_count(&self) -> usize {
        self.points.len()
    }

    fn spectra(&self) -> Vec<SpectrumModel> {
        self.points.iter().map(|p| p.spectrum).collect()
    }

    fn weights_at(&self, x: f64, y: f64, out: &mut Vec<(usize, f64)>) {
        out.clear();
        let m_star = self.nearest(x, y);
        let t = self.half_width;
        // Collect participating neighbours (eqn 43).
        let mut others = 0usize;
        for m in 0..self.points.len() {
            if m == m_star {
                continue;
            }
            if self.tau(x, y, m, m_star) <= t {
                others += 1;
            }
        }
        if others == 0 {
            out.push((m_star, 1.0));
            return;
        }
        // Eqn 44 (reconstructed): g̃(m) = (1 − τ/T) / (2·M̃);
        // eqn 45: the nearest point absorbs the remainder.
        let mut remainder = 1.0;
        for m in 0..self.points.len() {
            if m == m_star {
                continue;
            }
            let tau = self.tau(x, y, m, m_star);
            if tau <= t {
                let g = (1.0 - tau / t).max(0.0) / (2.0 * others as f64);
                if g > 0.0 {
                    out.push((m, g));
                    remainder -= g;
                }
            }
        }
        out.push((m_star, remainder));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::SurfaceParams;

    fn sm(h: f64, cl: f64) -> SpectrumModel {
        SpectrumModel::gaussian(SurfaceParams::isotropic(h, cl))
    }

    fn two_points(t: f64) -> PointLayout {
        PointLayout::new(
            vec![
                RepresentativePoint { x: 0.0, y: 0.0, spectrum: sm(1.0, 4.0) },
                RepresentativePoint { x: 100.0, y: 0.0, spectrum: sm(2.0, 8.0) },
            ],
            t,
        )
    }

    #[test]
    fn nearest_point_selection() {
        let l = two_points(10.0);
        assert_eq!(l.nearest(10.0, 5.0), 0);
        assert_eq!(l.nearest(90.0, -5.0), 1);
        assert_eq!(l.nearest(50.0, 0.0), 0); // tie → lowest index
    }

    #[test]
    fn tau_is_distance_to_bisector() {
        let l = two_points(10.0);
        // Bisector is x = 50. At x = 30 the nearest is 0; τ of point 1
        // must be 20 (distance to the bisector).
        let tau = l.tau(30.0, 0.0, 1, 0);
        assert!((tau - 20.0).abs() < 1e-12, "τ = {tau}");
        // Off-axis: τ only depends on the x coordinate for this pair.
        let tau = l.tau(30.0, 44.0, 1, 0);
        assert!((tau - 20.0).abs() < 1e-9);
        // On the bisector, τ = 0.
        assert!(l.tau(50.0, 7.0, 1, 0).abs() < 1e-12);
    }

    #[test]
    fn weights_deep_inside_cell_are_pure() {
        let l = two_points(10.0);
        let mut w = Vec::new();
        l.weights_at(5.0, 0.0, &mut w);
        assert_eq!(w, vec![(0, 1.0)]);
        l.weights_at(95.0, 0.0, &mut w);
        assert_eq!(w, vec![(1, 1.0)]);
    }

    #[test]
    fn bisector_blends_evenly_and_ramps_linearly() {
        let t = 10.0;
        let l = two_points(t);
        let mut w = Vec::new();
        // On the bisector: 50/50.
        l.weights_at(50.0, 0.0, &mut w);
        let w0 = w.iter().find(|&&(k, _)| k == 0).unwrap().1;
        let w1 = w.iter().find(|&&(k, _)| k == 1).unwrap().1;
        assert!((w0 - 0.5).abs() < 1e-9 && (w1 - 0.5).abs() < 1e-9, "{w:?}");
        // Moving into cell 0, the neighbour's weight decays linearly,
        // reaching 0 at τ = T.
        for i in 0..=10 {
            let x = 50.0 - i as f64; // τ of point 1 grows as 2·(50−x)/2 = 50−x... τ = 50−x
            l.weights_at(x, 0.0, &mut w);
            let tau = 50.0 - x;
            let expect = if tau >= t { 0.0 } else { 0.5 * (1.0 - tau / t) };
            let w1 = w.iter().find(|&&(k, _)| k == 1).map_or(0.0, |&(_, v)| v);
            assert!((w1 - expect).abs() < 1e-9, "x={x}: {w1} vs {expect}");
            let total: f64 = w.iter().map(|&(_, v)| v).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_point_always_dominates() {
        // Nine ring points + centre, as in Figure 4.
        let mut pts = Vec::new();
        for i in 1..=9 {
            let th = core::f64::consts::TAU * i as f64 / 9.0;
            pts.push(RepresentativePoint {
                x: 500.0 * th.cos(),
                y: 500.0 * th.sin(),
                spectrum: sm(1.0, 5.0),
            });
        }
        pts.push(RepresentativePoint { x: 0.0, y: 0.0, spectrum: sm(0.5, 10.0) });
        let l = PointLayout::new(pts, 100.0);
        let mut w = Vec::new();
        for &(x, y) in &[(0.0, 0.0), (250.0, 0.0), (400.0, 300.0), (-200.0, -100.0)] {
            l.weights_at(x, y, &mut w);
            let m_star = l.nearest(x, y);
            let total: f64 = w.iter().map(|&(_, v)| v).sum();
            assert!((total - 1.0).abs() < 1e-9);
            let ws = w.iter().find(|&&(k, _)| k == m_star).unwrap().1;
            assert!(ws >= 0.5 - 1e-9, "nearest weight {ws} at ({x},{y})");
            for &(_, v) in &w {
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn single_point_is_homogeneous() {
        let l = PointLayout::new(
            vec![RepresentativePoint { x: 0.0, y: 0.0, spectrum: sm(1.0, 5.0) }],
            10.0,
        );
        let mut w = Vec::new();
        l.weights_at(123.0, -456.0, &mut w);
        assert_eq!(w, vec![(0, 1.0)]);
    }

    #[test]
    fn spectra_follow_point_order() {
        let l = two_points(10.0);
        let s = l.spectra();
        assert_eq!(s[0], sm(1.0, 4.0));
        assert_eq!(s[1], sm(2.0, 8.0));
        assert_eq!(l.kernel_count(), 2);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn coincident_points_rejected() {
        PointLayout::new(
            vec![
                RepresentativePoint { x: 1.0, y: 1.0, spectrum: sm(1.0, 4.0) },
                RepresentativePoint { x: 1.0, y: 1.0, spectrum: sm(2.0, 8.0) },
            ],
            10.0,
        );
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_layout_rejected() {
        PointLayout::new(vec![], 10.0);
    }
}
