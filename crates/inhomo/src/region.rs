//! Region geometry for the plate-oriented method.
//!
//! Each region exposes a *signed distance* to its boundary (negative
//! inside), which is all the transition blending needs: membership ramps
//! from 1 to 0 as the signed distance crosses `[-T/2, +T/2]`.

/// A geometric region of the surface plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Region {
    /// Axis-aligned rectangle `[x0, x1] × [y0, y1]`.
    Rect {
        /// Minimum x.
        x0: f64,
        /// Minimum y.
        y0: f64,
        /// Maximum x.
        x1: f64,
        /// Maximum y.
        y1: f64,
    },
    /// Disc of radius `r` centred at `(cx, cy)` — the paper's Figure 3
    /// "circular region".
    Circle {
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
        /// Radius.
        r: f64,
    },
    /// Half-plane `a·x + b·y ≤ c` (the boundary is the line `a·x+b·y=c`).
    HalfPlane {
        /// Normal x component.
        a: f64,
        /// Normal y component.
        b: f64,
        /// Offset.
        c: f64,
    },
    /// Angular sector of a disc: radius `r` around `(cx, cy)`, polar angle
    /// within `[theta0, theta1]` (radians, `theta1 > theta0`). Used for
    /// Figure 4-style sectored layouts when built with plates.
    Sector {
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
        /// Radius.
        r: f64,
        /// Start angle.
        theta0: f64,
        /// End angle.
        theta1: f64,
    },
}

impl Region {
    /// Signed distance to the region boundary: negative inside, positive
    /// outside, zero on the boundary. Exact for `Rect`, `Circle` and
    /// `HalfPlane`; a tight approximation for `Sector` (distance to the
    /// nearest of the arc and the two radial edges).
    pub fn signed_distance(&self, x: f64, y: f64) -> f64 {
        match *self {
            Region::Rect { x0, y0, x1, y1 } => {
                debug_assert!(x1 >= x0 && y1 >= y0);
                // Standard box SDF relative to the centre/half-extents.
                let hx = 0.5 * (x1 - x0);
                let hy = 0.5 * (y1 - y0);
                let px = x - 0.5 * (x0 + x1);
                let py = y - 0.5 * (y0 + y1);
                let dx = px.abs() - hx;
                let dy = py.abs() - hy;
                let outside = (dx.max(0.0).powi(2) + dy.max(0.0).powi(2)).sqrt();
                let inside = dx.max(dy).min(0.0);
                outside + inside
            }
            Region::Circle { cx, cy, r } => ((x - cx).hypot(y - cy)) - r,
            Region::HalfPlane { a, b, c } => {
                let norm = a.hypot(b);
                debug_assert!(norm > 0.0, "degenerate half-plane normal");
                (a * x + b * y - c) / norm
            }
            Region::Sector { cx, cy, r, theta0, theta1 } => {
                let px = x - cx;
                let py = y - cy;
                let rad = px.hypot(py);
                let d_arc = rad - r;
                // Signed distances to the two radial edge half-planes,
                // oriented so that inside the wedge both are negative.
                let edge = |theta: f64, sign: f64| -> f64 {
                    // Outward normal of the edge line through the centre.
                    let (s, c0) = theta.sin_cos();
                    sign * (px * (-s) + py * c0)
                };
                let d0 = -edge(theta0, 1.0); // negative when past theta0
                let d1 = edge(theta1, 1.0); // negative when before theta1
                let wedge = d0.max(d1);
                d_arc.max(wedge)
            }
        }
    }

    /// `true` if `(x, y)` lies inside or on the boundary.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        self.signed_distance(x, y) <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_signed_distance() {
        let r = Region::Rect { x0: 0.0, y0: 0.0, x1: 10.0, y1: 4.0 };
        assert!(r.contains(5.0, 2.0));
        assert!((r.signed_distance(5.0, 2.0) - (-2.0)).abs() < 1e-12); // 2 from top/bottom
        assert!((r.signed_distance(5.0, 0.0)).abs() < 1e-12); // on edge
        assert!((r.signed_distance(5.0, -3.0) - 3.0).abs() < 1e-12); // below
        // Corner distance is Euclidean.
        assert!((r.signed_distance(13.0, 8.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn circle_signed_distance() {
        let c = Region::Circle { cx: 1.0, cy: 1.0, r: 5.0 };
        assert!((c.signed_distance(1.0, 1.0) - (-5.0)).abs() < 1e-12);
        assert!((c.signed_distance(6.0, 1.0)).abs() < 1e-12);
        assert!((c.signed_distance(9.0, 1.0) - 3.0).abs() < 1e-12);
        assert!(c.contains(4.0, 4.0));
        assert!(!c.contains(9.0, 9.0));
    }

    #[test]
    fn half_plane_signed_distance() {
        // x <= 3
        let h = Region::HalfPlane { a: 1.0, b: 0.0, c: 3.0 };
        assert!((h.signed_distance(0.0, 7.0) - (-3.0)).abs() < 1e-12);
        assert!((h.signed_distance(5.0, -2.0) - 2.0).abs() < 1e-12);
        // Un-normalised coefficients give the same metric distance.
        let h2 = Region::HalfPlane { a: 2.0, b: 0.0, c: 6.0 };
        assert!((h2.signed_distance(5.0, 0.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sector_basic_membership() {
        use core::f64::consts::FRAC_PI_2;
        // Quarter disc in the first quadrant.
        let s = Region::Sector { cx: 0.0, cy: 0.0, r: 10.0, theta0: 0.0, theta1: FRAC_PI_2 };
        assert!(s.contains(3.0, 3.0));
        assert!(!s.contains(-3.0, 3.0)); // wrong angle
        assert!(!s.contains(3.0, -3.0)); // wrong angle
        assert!(!s.contains(20.0, 1.0)); // outside radius
        // Near the arc the SDF approximates radial distance.
        assert!((s.signed_distance(12.0 / 2f64.sqrt(), 12.0 / 2f64.sqrt()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sdf_is_continuous_across_boundary() {
        let shapes = [
            Region::Rect { x0: -4.0, y0: -2.0, x1: 4.0, y1: 2.0 },
            Region::Circle { cx: 0.0, cy: 0.0, r: 3.0 },
            Region::HalfPlane { a: 1.0, b: 1.0, c: 0.0 },
        ];
        for s in &shapes {
            for i in 0..200 {
                let t = i as f64 * 0.05 - 5.0;
                let a = s.signed_distance(t, 0.7);
                let b = s.signed_distance(t + 1e-6, 0.7);
                assert!((a - b).abs() < 1e-5, "{s:?} jump at {t}");
            }
        }
    }
}
