//! The inhomogeneous convolution generator (eqns 37 and 46).
//!
//! A [`WeightMap`] answers "which kernels, with what weights, at this
//! sample"; the generator evaluates, for every output sample `n`,
//!
//! ```text
//! f(n) = Σ_i g_i(n) · (w̃_i ⊛ X)(n)
//! ```
//!
//! which by linearity equals convolving the blended kernel
//! `Σ_i g_i(n)·w̃_i` of eqns (37)/(46) with the noise. Samples where only
//! one kernel is active (the bulk of the surface) cost exactly one
//! homogeneous-kernel dot product.

use rrs_chaos::ChaosInjector;
use rrs_error::{Budget, ErrorKind, RrsError};
use rrs_fft::FftPlanCache;
use rrs_grid::{Grid2, Window};
use rrs_obs::{stage, ObsSink, Recorder};
use rrs_spectrum::SpectrumModel;
use rrs_surface::internal::{effective_workers, plan_tiles, FftEngine};
use rrs_surface::{ConvBackend, ConvolutionKernel, GenContext, KernelSizing, NoiseField};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Failures that warrant retrying the request on a simpler evaluator:
/// worker panics and injected faults. Budget trips, shape errors and I/O
/// failures would recur identically on every rung, so they propagate.
fn is_degradable(e: &RrsError) -> bool {
    matches!(e.kind(), ErrorKind::WorkerPanicked | ErrorKind::FaultInjected)
}

/// Assigns per-sample kernel weights; implemented by
/// [`crate::PlateLayout`] and [`crate::PointLayout`].
pub trait WeightMap: Send + Sync {
    /// Number of kernels the map refers to.
    fn kernel_count(&self) -> usize;

    /// The spectra backing each kernel index, in order.
    fn spectra(&self) -> Vec<SpectrumModel>;

    /// Writes the non-zero `(kernel_index, weight)` pairs at `(x, y)` into
    /// `out` (cleared first). Weights are non-negative and sum to 1.
    fn weights_at(&self, x: f64, y: f64, out: &mut Vec<(usize, f64)>);
}

impl WeightMap for Box<dyn WeightMap> {
    fn kernel_count(&self) -> usize {
        (**self).kernel_count()
    }
    fn spectra(&self) -> Vec<SpectrumModel> {
        (**self).spectra()
    }
    fn weights_at(&self, x: f64, y: f64, out: &mut Vec<(usize, f64)>) {
        (**self).weights_at(x, y, out)
    }
}

/// Inhomogeneous surface generator over any [`WeightMap`].
pub struct InhomogeneousGenerator<M> {
    map: M,
    kernels: Vec<ConvolutionKernel>,
    ctx: GenContext,
    fft: FftEngine,
    // Precomputed reaches for noise-window sizing.
    reach_left: i64,
    reach_right: i64,
    reach_down: i64,
    reach_up: i64,
}

impl<M: WeightMap> InhomogeneousGenerator<M> {
    /// Builds the generator, constructing one kernel per map entry with
    /// the given sizing policy.
    pub fn new(map: M, sizing: KernelSizing) -> Self {
        let kernels = map
            .spectra()
            .iter()
            .map(|s| ConvolutionKernel::build(s, sizing))
            .collect();
        Self::from_kernels(map, kernels)
    }

    /// Builds the generator with kernel truncation (`epsilon` relative
    /// root-energy loss) — the ablation knob for transition fidelity vs
    /// speed.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`. Fallible callers use
    /// [`InhomogeneousGenerator::try_new_truncated`].
    pub fn new_truncated(map: M, sizing: KernelSizing, epsilon: f64) -> Self {
        Self::try_new_truncated(map, sizing, epsilon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`InhomogeneousGenerator::new_truncated`].
    pub fn try_new_truncated(
        map: M,
        sizing: KernelSizing,
        epsilon: f64,
    ) -> Result<Self, RrsError> {
        let kernels = map
            .spectra()
            .iter()
            .map(|s| ConvolutionKernel::build(s, sizing).try_truncated(epsilon))
            .collect::<Result<Vec<_>, _>>()?;
        Self::try_from_kernels(map, kernels)
    }

    /// Wraps explicit kernels (must match `map.kernel_count()`).
    ///
    /// # Panics
    /// Panics on a count mismatch or an empty kernel list. Fallible
    /// callers use [`InhomogeneousGenerator::try_from_kernels`].
    pub fn from_kernels(map: M, kernels: Vec<ConvolutionKernel>) -> Self {
        Self::try_from_kernels(map, kernels).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`InhomogeneousGenerator::from_kernels`].
    pub fn try_from_kernels(map: M, kernels: Vec<ConvolutionKernel>) -> Result<Self, RrsError> {
        if kernels.len() != map.kernel_count() {
            return Err(RrsError::shape_mismatch(
                "kernel count must match the weight map",
                map.kernel_count(),
                kernels.len(),
            ));
        }
        if kernels.is_empty() {
            return Err(RrsError::invalid_param("kernels", "need at least one kernel"));
        }
        let mut reach_left = 0i64;
        let mut reach_right = 0i64;
        let mut reach_down = 0i64;
        let mut reach_up = 0i64;
        for k in &kernels {
            let (w, h) = k.extent();
            let (ox, oy) = k.origin();
            reach_left = reach_left.max(ox + w as i64 - 1);
            reach_right = reach_right.max(-ox);
            reach_down = reach_down.max(oy + h as i64 - 1);
            reach_up = reach_up.max(-oy);
        }
        let ctx = GenContext::new();
        Ok(Self {
            map,
            kernels,
            fft: FftEngine::new(Arc::clone(ctx.plan_cache())),
            ctx,
            reach_left,
            reach_right,
            reach_down,
            reach_up,
        })
    }

    /// Replaces the whole [`GenContext`] at once — the single entry
    /// point every `with_*` builder delegates to, shared verbatim with
    /// the homogeneous generators. The FFT engine is rebuilt only when
    /// the context carries a different plan cache, so re-applying a
    /// context that shares the current cache keeps cached kernel
    /// spectra warm.
    pub fn with_context(mut self, ctx: GenContext) -> Self {
        if !Arc::ptr_eq(self.fft.plans(), ctx.plan_cache()) {
            self.fft = FftEngine::new(Arc::clone(ctx.plan_cache()));
        }
        self.ctx = ctx;
        self
    }

    /// The generation context (workers, backend, plan cache, recorder,
    /// budget, chaos).
    pub fn context(&self) -> &GenContext {
        &self.ctx
    }

    /// Sets the worker count (output is identical for any value).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.ctx = self.ctx.with_workers(workers);
        self
    }

    /// Attaches a recorder: window materialisation and the blending loop
    /// are timed, and the kernel-selection mix is counted
    /// (`inhomo/pure_samples`, `inhomo/blended_samples`,
    /// `inhomo/kernel_evals`). Observation never changes output.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.ctx = self.ctx.with_recorder(obs);
        self
    }

    /// The attached recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        self.ctx.recorder()
    }

    /// Attaches a resource [`Budget`]: deadline/cancel polled at band
    /// granularity during blending, byte ceiling enforced before the
    /// noise window and output field are allocated. Defaults to
    /// [`Budget::unlimited`], under which generation is bit-identical to
    /// the unbudgeted path.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.ctx = self.ctx.with_budget(budget);
        self
    }

    /// The attached budget ([`Budget::unlimited`] by default).
    pub fn budget(&self) -> &Budget {
        self.ctx.budget()
    }

    /// Attaches a [`ChaosInjector`]: fault sites in the blending loop and
    /// the pure-window FFT path consult its schedule. Disabled by default,
    /// under which generation is bit-identical to the un-instrumented
    /// path.
    pub fn with_chaos(mut self, chaos: ChaosInjector) -> Self {
        self.ctx = self.ctx.with_chaos(chaos);
        self
    }

    /// The attached chaos injector (disabled by default).
    pub fn chaos(&self) -> &ChaosInjector {
        self.ctx.chaos()
    }

    /// Selects the convolution backend for **pure** windows — requests
    /// whose every sample carries exactly one kernel at weight 1 (the
    /// bulk of a plate's interior, away from transition bands). Such
    /// windows reduce to a homogeneous convolution, so they dispatch to
    /// the same engine as
    /// [`ConvolutionGenerator`](rrs_surface::ConvolutionGenerator):
    /// [`ConvBackend::FftOverlapSave`] or an [`ConvBackend::Auto`]
    /// resolution of it runs overlap-save FFT tiles; windows that blend
    /// kernels anywhere — or mix two pure regions — always fall back to
    /// the per-sample direct loop, which is the only evaluator of the
    /// blended sum. The default [`ConvBackend::Direct`] skips the
    /// pure-window scan entirely and is bit-identical to previous
    /// releases.
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.ctx = self.ctx.with_backend(backend);
        self
    }

    /// The configured backend policy ([`ConvBackend::Direct`] by default).
    pub fn backend(&self) -> ConvBackend {
        self.ctx.backend()
    }

    /// Shares an [`FftPlanCache`] with other generators so pure-window
    /// FFT dispatches reuse their twiddle tables (resets this generator's
    /// cached kernel spectra).
    pub fn with_plan_cache(self, plans: Arc<FftPlanCache>) -> Self {
        let ctx = self.ctx.clone().with_plan_cache(plans);
        self.with_context(ctx)
    }

    /// The plan cache backing the FFT path.
    pub fn plan_cache(&self) -> &Arc<FftPlanCache> {
        self.fft.plans()
    }

    /// The kernels, in map order.
    pub fn kernels(&self) -> &[ConvolutionKernel] {
        &self.kernels
    }

    /// The weight map.
    pub fn map(&self) -> &M {
        &self.map
    }

    /// Fallible [`InhomogeneousGenerator::generate`]: reports worker
    /// panics as [`RrsError::WorkerPanicked`] instead of propagating the
    /// unwind. With a [`Budget`] attached, a tripped cancel/deadline
    /// returns before any allocation and a byte ceiling rejects
    /// oversized requests with [`RrsError::BudgetExceeded`] before the
    /// noise window or output field is materialised.
    pub fn try_generate(&self, noise: &NoiseField, win: Window) -> Result<Grid2<f64>, RrsError> {
        self.ctx.budget().check()?;
        if self.ctx.backend() != ConvBackend::Direct {
            // The pure-window scan is O(nx·ny) map lookups; admit the
            // output footprint first so an oversized request still fails
            // the byte ceiling before any of that work runs.
            self.ctx
                .budget()
                .admit("inhomogeneous generation", win.nx as u128 * win.ny as u128 * 8)
                .inspect_err(|_| {
                    self.ctx.recorder().add_counter(stage::BUDGET_REJECT, 1);
                })?;
            if let Some(ki) = self.pure_kernel(win) {
                let (kw, kh) = self.kernels[ki].extent();
                let resolved = self.ctx.backend().resolve(kw, kh);
                if matches!(
                    resolved,
                    ConvBackend::FftOverlapSave | ConvBackend::FftComplexSerial
                ) {
                    match self.generate_pure_fft(ki, resolved, noise, win) {
                        Ok(out) => return Ok(out),
                        // Every FFT rung failed on a worker panic or an
                        // injected fault: degrade to the per-sample direct
                        // loop below, which is the bit-exact reference
                        // evaluator and shares no FFT machinery.
                        Err(e) if is_degradable(&e) => {
                            self.ctx.recorder().add_counter(stage::CONV_DEGRADED_TO_DIRECT, 1);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        self.ctx.recorder().add_counter(stage::CONV_BACKEND_DIRECT, 1);
        let Window { x0, y0, nx, ny } = win;
        let wx0 = x0 - self.reach_left;
        let wy0 = y0 - self.reach_down;
        let ww = nx + (self.reach_left + self.reach_right) as usize;
        let wh = ny + (self.reach_down + self.reach_up) as usize;
        // Noise window plus output field, estimated in u128 before either
        // is allocated.
        let required = (ww as u128 * wh as u128 + nx as u128 * ny as u128) * 8;
        self.ctx.budget().admit("inhomogeneous generation", required).inspect_err(|_| {
            self.ctx.recorder().add_counter(stage::BUDGET_REJECT, 1);
        })?;
        let span = self.ctx.recorder().start(stage::WINDOW_MATERIALISE);
        let noise_win = noise.window(wx0, wy0, ww, wh);
        self.ctx.recorder().finish(span);

        let mut out = Grid2::zeros(nx, ny);
        let out_slice = out.as_mut_slice();
        let span = self.ctx.recorder().start(stage::CORRELATE);
        rrs_par::try_par_row_chunks_mut_chaos(
            out_slice,
            nx,
            self.ctx.workers(),
            self.ctx.recorder(),
            self.ctx.budget(),
            self.ctx.chaos(),
            |iy0, chunk| {
                let mut weights: Vec<(usize, f64)> = Vec::with_capacity(self.kernels.len());
                let mut pure = 0u64;
                let mut blended = 0u64;
                let mut evals = 0u64;
                for (row_off, row) in chunk.chunks_mut(nx).enumerate() {
                    let iy = iy0 + row_off;
                    let gy = y0 + iy as i64;
                    for (ix, slot) in row.iter_mut().enumerate() {
                        let gx = x0 + ix as i64;
                        self.map.weights_at(gx as f64, gy as f64, &mut weights);
                        let mut acc = 0.0;
                        for &(ki, g) in &weights {
                            acc += g * self.kernel_dot(ki, &noise_win, ww, gx - wx0, gy - wy0);
                        }
                        *slot = acc;
                        if weights.len() > 1 {
                            blended += 1;
                        } else {
                            pure += 1;
                        }
                        evals += weights.len() as u64;
                    }
                }
                let mut shard = self.ctx.recorder().shard();
                shard.add(stage::INHOMO_PURE_SAMPLES, pure);
                shard.add(stage::INHOMO_BLENDED_SAMPLES, blended);
                shard.add(stage::INHOMO_KERNEL_EVALS, evals);
                self.ctx.recorder().absorb(shard);
            },
        )?;
        self.ctx.recorder().finish(span);
        Ok(out)
    }

    /// Generates the surface samples requested by `win` from the
    /// unbounded inhomogeneous surface driven by `noise`. Windows tile
    /// seamlessly.
    ///
    /// # Panics
    /// Panics if a worker panics. Fallible callers use
    /// [`InhomogeneousGenerator::try_generate`].
    pub fn generate(&self, noise: &NoiseField, win: Window) -> Grid2<f64> {
        self.try_generate(noise, win).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Scans the window for a single pure kernel: `Some(ki)` iff every
    /// sample's weight vector is exactly `[(ki, 1.0)]`. Early-exits on
    /// the first blended, fractional or differing sample, so windows
    /// touching a transition band pay for only a prefix of the scan.
    fn pure_kernel(&self, win: Window) -> Option<usize> {
        let mut weights: Vec<(usize, f64)> = Vec::with_capacity(self.kernels.len());
        let mut pure = None;
        for iy in 0..win.ny {
            let gy = (win.y0 + iy as i64) as f64;
            for ix in 0..win.nx {
                let gx = (win.x0 + ix as i64) as f64;
                self.map.weights_at(gx, gy, &mut weights);
                match (pure, weights.as_slice()) {
                    (None, &[(ki, g)]) if g == 1.0 => pure = Some(ki),
                    (Some(p), &[(ki, g)]) if g == 1.0 && p == ki => {}
                    _ => return None,
                }
            }
        }
        pure
    }

    /// The homogeneous fast path: the whole window is kernel `ki` at
    /// weight 1, so `f(n) = (w̃_ki ⊛ X)(n)` exactly — generated like the
    /// homogeneous convolution generator from a kernel-specific noise
    /// window through the shared overlap-save engine `resolved` names
    /// (the parallel real-input pipeline, or the full-complex serial
    /// baseline), with the budget polled per tile.
    fn generate_pure_fft(
        &self,
        ki: usize,
        resolved: ConvBackend,
        noise: &NoiseField,
        win: Window,
    ) -> Result<Grid2<f64>, RrsError> {
        let kernel = &self.kernels[ki];
        let (kw, kh) = kernel.extent();
        let (ox, oy) = kernel.origin();
        let Window { x0, y0, nx, ny } = win;
        let ww = nx + kw - 1;
        let wh = ny + kh - 1;
        let shape = plan_tiles(nx, ny, kw, kh);
        let scratch = if resolved == ConvBackend::FftComplexSerial {
            shape.scratch_samples()
        } else {
            let w = effective_workers(shape, nx, ny, kw, kh, self.ctx.workers());
            shape.scratch_samples_real(w)
        };
        let required = (ww as u128 * wh as u128 + nx as u128 * ny as u128 + scratch) * 8;
        self.ctx.budget().admit("inhomogeneous generation", required).inspect_err(|_| {
            self.ctx.recorder().add_counter(stage::BUDGET_REJECT, 1);
        })?;
        let span = self.ctx.recorder().start(stage::WINDOW_MATERIALISE);
        let noise_win =
            noise.window(x0 - (ox + kw as i64 - 1), y0 - (oy + kh as i64 - 1), ww, wh);
        self.ctx.recorder().finish(span);
        // Graceful degradation: the resolved engine first, then — when it
        // fails on a worker panic or injected fault — the full-complex
        // serial baseline. Both rungs failing bubbles the (degradable)
        // error to `try_generate`, which falls back to the direct loop.
        let rungs: &[ConvBackend] = if resolved == ConvBackend::FftComplexSerial {
            &[ConvBackend::FftComplexSerial]
        } else {
            &[ConvBackend::FftOverlapSave, ConvBackend::FftComplexSerial]
        };
        let mut last_err = None;
        for (i, &rung) in rungs.iter().enumerate() {
            if i > 0 {
                self.ctx.recorder().add_counter(stage::CONV_DEGRADED_TO_FFT_SERIAL, 1);
            }
            self.ctx.recorder().add_counter(stage::CONV_BACKEND_FFT, 1);
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                if rung == ConvBackend::FftComplexSerial {
                    self.fft.convolve(
                        ki,
                        kernel,
                        &noise_win,
                        ww,
                        wh,
                        nx,
                        ny,
                        self.ctx.workers(),
                        self.ctx.recorder(),
                        self.ctx.budget(),
                        self.ctx.chaos(),
                    )
                } else {
                    self.fft.convolve_rfft(
                        ki,
                        kernel,
                        &noise_win,
                        ww,
                        wh,
                        nx,
                        ny,
                        self.ctx.workers(),
                        self.ctx.recorder(),
                        self.ctx.budget(),
                        self.ctx.chaos(),
                    )
                }
            }))
            .unwrap_or_else(|p| Err(RrsError::worker_panicked(0, p.as_ref())));
            match attempt {
                Ok(out) => {
                    let mut shard = self.ctx.recorder().shard();
                    shard.add(stage::INHOMO_PURE_SAMPLES, (nx * ny) as u64);
                    shard.add(stage::INHOMO_KERNEL_EVALS, (nx * ny) as u64);
                    self.ctx.recorder().absorb(shard);
                    return Ok(out);
                }
                Err(e) if is_degradable(&e) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("the ladder has at least one rung"))
    }

    /// Evaluates `(w̃_ki ⊛ X)(n)` for the sample at window-local
    /// coordinates `(lx, ly)`.
    #[inline]
    fn kernel_dot(&self, ki: usize, win: &[f64], ww: usize, lx: i64, ly: i64) -> f64 {
        let kernel = &self.kernels[ki];
        let (kw, kh) = kernel.extent();
        let (ox, oy) = kernel.origin();
        let weights = kernel.weights();
        let mut acc = 0.0;
        for b in 0..kh {
            let jy = oy + b as i64;
            let wy = (ly - jy) as usize;
            let krow = weights.row(b);
            // X(n−j) with jx = ox + a: window x index = lx − ox − a.
            let base = (lx - ox) as usize;
            let wrow = &win[wy * ww + base + 1 - kw..=wy * ww + base];
            let mut s = 0.0;
            for (a, &kv) in krow.iter().enumerate() {
                s += kv * wrow[kw - 1 - a];
            }
            acc += s;
        }
        acc
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plate::{quadrant_layout, Plate, PlateLayout};
    use crate::point::{PointLayout, RepresentativePoint};
    use crate::region::Region;
    use rrs_spectrum::{SpectrumModel, SurfaceParams};

    fn sm(h: f64, cl: f64) -> SpectrumModel {
        SpectrumModel::gaussian(SurfaceParams::isotropic(h, cl))
    }

    fn sizing() -> KernelSizing {
        KernelSizing::Auto { factor: 8.0, min: 16, max: 128 }
    }

    #[test]
    fn homogeneous_map_reduces_to_homogeneous_generator() {
        // A single-plate layout must reproduce the homogeneous convolution
        // generator exactly (same kernel, same noise).
        let spectrum = sm(1.2, 5.0);
        let layout = PlateLayout::new(vec![], Some(spectrum), 1.0);
        let kernel = ConvolutionKernel::build(&spectrum, sizing());
        let inh = InhomogeneousGenerator::from_kernels(layout, vec![kernel.clone()])
            .with_workers(1);
        let hom = rrs_surface::ConvolutionGenerator::from_kernel(kernel).with_workers(1);
        let noise = NoiseField::new(7);
        let a = inh.generate(&noise, Window::new(-3, 4, 40, 24));
        let b = hom.generate(&noise, Window::new(-3, 4, 40, 24));
        let err = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-12, "max err {err}");
    }

    #[test]
    fn quadrants_have_their_target_statistics() {
        // A miniature Figure 1: four quadrants with different (h, cl).
        let n = 192usize;
        let layout = quadrant_layout(
            n as f64,
            n as f64,
            [sm(1.0, 4.0), sm(1.5, 6.0), sm(2.0, 8.0), sm(1.5, 6.0)],
            8.0,
        );
        let gen = InhomogeneousGenerator::new(layout, sizing());
        let f = gen.generate(&NoiseField::new(3), Window::sized(n, n));
        // Estimate h deep inside each quadrant (margin avoids transitions).
        let m = 24usize;
        let h_q1 = f.window(n / 2 + m, n / 2 + m, n / 2 - 2 * m, n / 2 - 2 * m).std_dev();
        let h_q2 = f.window(m, n / 2 + m, n / 2 - 2 * m, n / 2 - 2 * m).std_dev();
        let h_q3 = f.window(m, m, n / 2 - 2 * m, n / 2 - 2 * m).std_dev();
        let h_q4 = f.window(n / 2 + m, m, n / 2 - 2 * m, n / 2 - 2 * m).std_dev();
        for (got, want) in [(h_q1, 1.0), (h_q2, 1.5), (h_q3, 2.0), (h_q4, 1.5)] {
            // Few independent patches per quadrant ⇒ generous tolerance.
            assert!((got - want).abs() < 0.45 * want, "ĥ = {got}, target {want}");
        }
        // Ordering must hold strictly: q3 roughest, q1 smoothest.
        assert!(h_q3 > h_q2 && h_q2 > h_q1);
        assert!(h_q3 > h_q4 && h_q4 > h_q1);
    }

    #[test]
    fn windows_tile_seamlessly() {
        let layout = quadrant_layout(
            64.0,
            64.0,
            [sm(1.0, 4.0), sm(1.5, 5.0), sm(2.0, 6.0), sm(1.5, 5.0)],
            6.0,
        );
        let gen = InhomogeneousGenerator::new(layout, sizing()).with_workers(2);
        let noise = NoiseField::new(9);
        let whole = gen.generate(&noise, Window::sized(64, 64));
        let part = gen.generate(&noise, Window::new(16, 24, 32, 20));
        for iy in 0..20 {
            for ix in 0..32 {
                assert_eq!(*part.get(ix, iy), *whole.get(ix + 16, iy + 24));
            }
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let layout = quadrant_layout(
            48.0,
            48.0,
            [sm(1.0, 4.0), sm(1.5, 5.0), sm(2.0, 6.0), sm(1.5, 5.0)],
            6.0,
        );
        let k: Vec<_> = layout
            .spectra()
            .iter()
            .map(|s| ConvolutionKernel::build(s, sizing()))
            .collect();
        let a = InhomogeneousGenerator::from_kernels(layout.clone(), k.clone())
            .with_workers(1)
            .generate(&NoiseField::new(5), Window::sized(48, 48));
        let b = InhomogeneousGenerator::from_kernels(layout, k)
            .with_workers(6)
            .generate(&NoiseField::new(5), Window::sized(48, 48));
        assert_eq!(a, b);
    }

    #[test]
    fn circular_pond_is_smoother_than_field() {
        // Miniature Figure 3: exponential pond in a gaussian field.
        let pond = Plate {
            region: Region::Circle { cx: 64.0, cy: 64.0, r: 32.0 },
            spectrum: SpectrumModel::exponential(SurfaceParams::isotropic(0.2, 6.0)),
        };
        let layout = PlateLayout::new(vec![pond], Some(sm(1.0, 6.0)), 10.0);
        let gen = InhomogeneousGenerator::new(layout, sizing());
        let f = gen.generate(&NoiseField::new(11), Window::sized(128, 128));
        let inside = f.window(52, 52, 24, 24).std_dev();
        let outside = f.window(0, 0, 24, 24).std_dev();
        assert!(inside < 0.5, "pond ĥ = {inside}");
        assert!(outside > 0.55, "field ĥ = {outside}");
    }

    #[test]
    fn point_oriented_cells_have_target_statistics() {
        let pts = vec![
            RepresentativePoint { x: 0.0, y: 0.0, spectrum: sm(0.5, 4.0) },
            RepresentativePoint { x: 96.0, y: 0.0, spectrum: sm(2.0, 8.0) },
        ];
        let layout = PointLayout::new(pts, 12.0);
        let gen = InhomogeneousGenerator::new(layout, sizing());
        let f = gen.generate(&NoiseField::new(17), Window::new(-48, -48, 192, 96));
        // Cell of point 0: x in [-48, 36) roughly; stay well clear of the
        // bisector at x = 48 (window-local 96).
        let left = f.window(8, 8, 64, 80).std_dev();
        let right = f.window(120, 8, 64, 80).std_dev();
        assert!((left - 0.5).abs() < 0.3, "left ĥ = {left}");
        assert!((right - 2.0).abs() < 0.8, "right ĥ = {right}");
        assert!(right > 2.0 * left);
    }

    #[test]
    fn transition_interpolates_monotonically() {
        // Across a two-plate boundary, a windowed std profile should rise
        // from ~h1 to ~h2 without overshooting wildly.
        let left = Plate {
            region: Region::HalfPlane { a: 1.0, b: 0.0, c: 64.0 },
            spectrum: sm(0.5, 4.0),
        };
        let layout = PlateLayout::new(vec![left], Some(sm(2.0, 4.0)), 16.0);
        let gen = InhomogeneousGenerator::new(layout, sizing());
        let f = gen.generate(&NoiseField::new(23), Window::sized(128, 256));
        // Column-band std profile along x.
        let band = 8usize;
        let mut profile = Vec::new();
        for bx in (0..128).step_by(band) {
            profile.push(f.window(bx, 0, band, 256).std_dev());
        }
        let first = profile.first().copied().unwrap();
        let last = profile.last().copied().unwrap();
        assert!(first < 0.8, "left side ĥ = {first}");
        assert!(last > 1.5, "right side ĥ = {last}");
        // Rough monotonicity: each step may wiggle by sampling noise but
        // the cumulative trend must be increasing.
        let mid = profile[profile.len() / 2];
        assert!(mid > first && mid < last * 1.2, "profile {profile:?}");
    }

    #[test]
    #[should_panic(expected = "kernel count must match")]
    fn kernel_count_mismatch_rejected() {
        let layout = PlateLayout::new(vec![], Some(sm(1.0, 4.0)), 1.0);
        let _ = InhomogeneousGenerator::from_kernels(layout, vec![]);
    }

    #[test]
    fn budgeted_idle_run_is_bit_identical_and_rejections_are_precise() {
        use rrs_error::{Budget, CancelToken, ErrorKind};
        let layout = quadrant_layout(
            48.0,
            48.0,
            [sm(1.0, 4.0), sm(1.5, 5.0), sm(2.0, 6.0), sm(1.5, 5.0)],
            6.0,
        );
        let k: Vec<_> = layout
            .spectra()
            .iter()
            .map(|s| ConvolutionKernel::build(s, sizing()))
            .collect();
        let plain = InhomogeneousGenerator::from_kernels(layout.clone(), k.clone())
            .with_workers(3)
            .generate(&NoiseField::new(5), Window::sized(48, 48));
        let budget = Budget::unlimited()
            .with_cancel_token(CancelToken::new())
            .with_timeout(std::time::Duration::from_secs(3600))
            .with_max_bytes(usize::MAX);
        let gen = InhomogeneousGenerator::from_kernels(layout, k)
            .with_workers(3)
            .with_budget(budget);
        assert_eq!(
            gen.try_generate(&NoiseField::new(5), Window::sized(48, 48)).unwrap(),
            plain,
            "armed-but-idle budget must not change a single bit"
        );

        // Pre-cancelled: fails before the huge window is ever allocated.
        let token = CancelToken::new();
        token.cancel();
        let gen = gen.with_budget(Budget::unlimited().with_cancel_token(token));
        let huge = Window::sized(1 << 28, 1 << 28);
        let err = gen.try_generate(&NoiseField::new(5), huge).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Cancelled);

        // Admission: oversized request is rejected with the precise error.
        let gen = gen.with_budget(Budget::unlimited().with_max_bytes(1 << 20));
        let err = gen.try_generate(&NoiseField::new(5), huge).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BudgetExceeded);
        assert!(err.to_string().contains("inhomogeneous generation"), "{err}");
    }

    #[test]
    fn fft_backend_serves_pure_windows_and_falls_back_on_blends() {
        // Pond in a field: windows deep inside either region are pure and
        // may dispatch to the overlap-save engine; windows touching the
        // transition band must fall back to the per-sample direct loop.
        let pond = Plate {
            region: Region::Circle { cx: 64.0, cy: 64.0, r: 32.0 },
            spectrum: SpectrumModel::exponential(SurfaceParams::isotropic(0.2, 6.0)),
        };
        let make = || {
            let layout = PlateLayout::new(vec![pond.clone()], Some(sm(1.0, 6.0)), 10.0);
            InhomogeneousGenerator::new(layout, sizing()).with_workers(2)
        };
        let direct = make();
        let rec = Recorder::enabled();
        let fft = make()
            .with_backend(rrs_surface::ConvBackend::FftOverlapSave)
            .with_recorder(rec.clone());
        assert_eq!(fft.backend(), rrs_surface::ConvBackend::FftOverlapSave);
        let noise = NoiseField::new(29);

        // Field corner: pure background kernel → FFT path, within 1e-9.
        let win = Window::new(-40, -40, 32, 32);
        let a = direct.generate(&noise, win);
        let b = fft.generate(&noise, win);
        let scale = a.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max);
        let err = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(err <= 1e-9 * scale, "pure window: max err {err}");
        assert_eq!(rec.report().counter(stage::CONV_BACKEND_FFT), 1);
        assert_eq!(rec.report().counter(stage::INHOMO_PURE_SAMPLES), 32 * 32);

        // Pond centre: also pure, distinct kernel id in the engine cache.
        let win = Window::new(56, 56, 16, 16);
        let c = direct.generate(&noise, win);
        let d = fft.generate(&noise, win);
        let scale = c.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (x, y) in c.as_slice().iter().zip(d.as_slice()) {
            assert!((x - y).abs() <= 1e-9 * scale, "pond window");
        }
        assert_eq!(rec.report().counter(stage::CONV_BACKEND_FFT), 2);

        // A window across the shoreline blends → bit-identical fallback.
        let win = Window::new(20, 20, 48, 48);
        assert_eq!(direct.generate(&noise, win), fft.generate(&noise, win));
        assert_eq!(rec.report().counter(stage::CONV_BACKEND_DIRECT), 1);
        assert_eq!(rec.report().counter(stage::CONV_BACKEND_FFT), 2);

        // Auto resolves by kernel area: these kernels are far past the
        // crossover, so pure windows dispatch to the FFT engine too.
        let auto = make().with_backend(rrs_surface::ConvBackend::Auto);
        let e = auto.generate(&noise, Window::new(-40, -40, 32, 32));
        assert_eq!(e, b, "Auto must match the resolved FFT engine exactly");
    }

    #[test]
    fn injected_fft_faults_degrade_pure_windows_to_the_direct_loop() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule, FaultSite};
        use rrs_obs::Recorder;
        // Pond-free layout: a pure window that would dispatch to the FFT
        // engine. Faults at FftTile visits 0 and 1 kill both FFT rungs
        // (overlap-save, then complex-serial); the generator must fall
        // back to the per-sample direct loop, whose output is the
        // bit-exact reference the Direct backend produces.
        let spectrum = sm(1.1, 5.0);
        let make = || {
            let layout = PlateLayout::new(vec![], Some(spectrum), 1.0);
            InhomogeneousGenerator::new(layout, sizing()).with_workers(1)
        };
        let noise = NoiseField::new(37);
        let win = Window::new(-8, 4, 24, 20);
        let direct = make().generate(&noise, win);
        let chaos = ChaosInjector::new(
            FaultSchedule::new(5)
                .with_fault(FaultSite::FftTile, FaultKind::Error, 0)
                .with_fault(FaultSite::FftTile, FaultKind::Panic, 1),
        );
        let rec = Recorder::enabled();
        let gen = make()
            .with_backend(rrs_surface::ConvBackend::FftOverlapSave)
            .with_recorder(rec.clone())
            .with_chaos(chaos.clone());
        let got = gen.try_generate(&noise, win).unwrap();
        assert_eq!(got, direct, "degraded output must match the direct loop bit-for-bit");
        let report = rec.report();
        assert_eq!(report.counter(stage::CONV_DEGRADED_TO_FFT_SERIAL), 1);
        assert_eq!(report.counter(stage::CONV_DEGRADED_TO_DIRECT), 1);
        assert_eq!(report.counter(stage::CONV_BACKEND_DIRECT), 1);
        assert_eq!(chaos.visits(FaultSite::FftTile), 2);
        assert_eq!(chaos.injected(), 2);
    }

    #[test]
    fn with_context_matches_the_sugar_builders() {
        let spectrum = sm(1.2, 5.0);
        let make = || {
            let layout = PlateLayout::new(vec![], Some(spectrum), 1.0);
            InhomogeneousGenerator::new(layout, sizing())
        };
        let plans = Arc::new(FftPlanCache::new());
        let sugar = make()
            .with_workers(2)
            .with_backend(ConvBackend::FftOverlapSave)
            .with_plan_cache(Arc::clone(&plans));
        let ctx = GenContext::new()
            .with_workers(2)
            .with_backend(ConvBackend::FftOverlapSave)
            .with_plan_cache(Arc::clone(&plans));
        let via_ctx = make().with_context(ctx);
        let noise = NoiseField::new(91);
        let win = Window::new(-6, 2, 28, 20);
        assert_eq!(
            sugar.try_generate(&noise, win).unwrap(),
            via_ctx.try_generate(&noise, win).unwrap(),
            "one with_context must equal the chained sugar builders bit-for-bit"
        );
        assert!(Arc::ptr_eq(via_ctx.plan_cache(), &plans));
        assert_eq!(via_ctx.context().workers(), 2);
        assert_eq!(via_ctx.backend(), ConvBackend::FftOverlapSave);
    }

    #[test]
    fn recorder_counts_kernel_selection_without_changing_output() {
        // Two half-plane plates with a transition band: most samples are
        // pure, the band is blended, and every sample costs ≥ 1 eval.
        let left = Plate {
            region: Region::HalfPlane { a: 1.0, b: 0.0, c: 24.0 },
            spectrum: sm(0.5, 3.0),
        };
        let layout = PlateLayout::new(vec![left], Some(sm(1.5, 3.0)), 8.0);
        let sizing = KernelSizing::Explicit(rrs_spectrum::GridSpec::unit(16, 16));
        let k: Vec<_> = layout
            .spectra()
            .iter()
            .map(|s| ConvolutionKernel::build(s, sizing))
            .collect();
        let plain = InhomogeneousGenerator::from_kernels(layout.clone(), k.clone())
            .with_workers(2);
        let rec = Recorder::enabled();
        let observed = InhomogeneousGenerator::from_kernels(layout, k)
            .with_workers(2)
            .with_recorder(rec.clone());
        let noise = NoiseField::new(31);
        let win = Window::sized(48, 32);
        assert_eq!(plain.generate(&noise, win), observed.generate(&noise, win));
        let report = rec.report();
        let pure = report.counter(stage::INHOMO_PURE_SAMPLES);
        let blended = report.counter(stage::INHOMO_BLENDED_SAMPLES);
        let evals = report.counter(stage::INHOMO_KERNEL_EVALS);
        assert_eq!(pure + blended, 48 * 32);
        assert!(blended > 0, "the transition band must blend");
        assert!(pure > blended, "the bulk must stay pure");
        assert_eq!(evals, pure + 2 * blended);
        assert!(report.durations.contains_key(stage::WINDOW_MATERIALISE));
        assert!(report.durations.contains_key(stage::CORRELATE));
    }
}
