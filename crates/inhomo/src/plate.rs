//! The plate-oriented method (paper §3.1, eqns 37–39).
//!
//! The domain is covered by regions ("plates"), each with its own spectrum.
//! A sample's kernel is the membership-weighted blend of the plate
//! kernels; membership ramps linearly from 1 to 0 as the sample's signed
//! distance to the plate boundary crosses the transition strip
//! `[-T/2, +T/2]` — at a straight boundary between two adjoining plates
//! this reproduces exactly the linear transition functions of eqns 38–39.

use crate::generator::WeightMap;
use crate::region::Region;
use rrs_error::RrsError;
use rrs_spectrum::SpectrumModel;

/// Shape of the membership ramp across the transition strip.
///
/// `#[non_exhaustive]`: future profiles (e.g. cosine) may be added
/// without a major break, so match with a wildcard arm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransitionProfile {
    /// The paper's linear interpolation (eqns 38–39).
    #[default]
    Linear,
    /// A C¹ smoothstep ramp — an extension knob; statistically very
    /// close to linear but without the kinks at the strip edges.
    Smooth,
}

/// One region with its surface statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plate {
    /// The geometric region.
    pub region: Region,
    /// The spectrum inside it.
    pub spectrum: SpectrumModel,
}

/// A plate-oriented layout: a list of plates, an optional background
/// spectrum filling everything no plate claims, and the transition width.
#[derive(Clone, Debug)]
pub struct PlateLayout {
    plates: Vec<Plate>,
    background: Option<SpectrumModel>,
    transition: f64,
    profile: TransitionProfile,
}

impl PlateLayout {
    /// Builds a layout. `transition` is the full width `T` of the blend
    /// strip straddling each plate boundary (use a small value, not zero,
    /// for sharp edges).
    ///
    /// # Panics
    /// Panics if no plates are given and there is no background, or if
    /// `transition` is not positive and finite. Fallible callers use
    /// [`PlateLayout::try_new`].
    pub fn new(plates: Vec<Plate>, background: Option<SpectrumModel>, transition: f64) -> Self {
        Self::try_new(plates, background, transition).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PlateLayout::new`].
    pub fn try_new(
        plates: Vec<Plate>,
        background: Option<SpectrumModel>,
        transition: f64,
    ) -> Result<Self, RrsError> {
        if plates.is_empty() && background.is_none() {
            return Err(RrsError::invalid_param(
                "plates",
                "a layout needs at least one plate or a background",
            ));
        }
        if !(transition.is_finite() && transition > 0.0) {
            return Err(RrsError::invalid_param(
                "transition",
                format!("transition width must be positive, got {transition}"),
            ));
        }
        Ok(Self { plates, background, transition, profile: TransitionProfile::Linear })
    }

    /// Selects the transition ramp shape (the paper uses linear).
    pub fn with_profile(mut self, profile: TransitionProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The plates, in kernel-index order.
    pub fn plates(&self) -> &[Plate] {
        &self.plates
    }

    /// The background spectrum, if any; its kernel index is
    /// `plates().len()`.
    pub fn background(&self) -> Option<&SpectrumModel> {
        self.background.as_ref()
    }

    /// Transition strip width `T`.
    pub fn transition(&self) -> f64 {
        self.transition
    }

    /// Raw (unnormalised) membership of plate `i` at `(x, y)`:
    /// 1 deep inside, 0 beyond the strip, linear across it.
    fn membership(&self, i: usize, x: f64, y: f64) -> f64 {
        let sd = self.plates[i].region.signed_distance(x, y);
        let t = rrs_num::interp::clamp(0.5 - sd / self.transition, 0.0, 1.0);
        match self.profile {
            TransitionProfile::Linear => t,
            TransitionProfile::Smooth => t * t * (3.0 - 2.0 * t),
        }
    }
}

impl WeightMap for PlateLayout {
    fn kernel_count(&self) -> usize {
        self.plates.len() + usize::from(self.background.is_some())
    }

    fn spectra(&self) -> Vec<SpectrumModel> {
        let mut v: Vec<SpectrumModel> = self.plates.iter().map(|p| p.spectrum).collect();
        if let Some(bg) = self.background {
            v.push(bg);
        }
        v
    }

    fn weights_at(&self, x: f64, y: f64, out: &mut Vec<(usize, f64)>) {
        out.clear();
        let mut total = 0.0;
        for i in 0..self.plates.len() {
            let m = self.membership(i, x, y);
            if m > 0.0 {
                out.push((i, m));
                total += m;
            }
        }
        if let Some(_bg) = &self.background {
            // The background soaks up whatever membership the plates left.
            let bg = (1.0 - total).max(0.0);
            if bg > 0.0 {
                out.push((self.plates.len(), bg));
                total += bg;
            }
        }
        if out.is_empty() {
            // No plate within reach and no background: fall back to the
            // nearest plate so every sample has statistics.
            let nearest = (0..self.plates.len())
                .min_by(|&a, &b| {
                    let da = self.plates[a].region.signed_distance(x, y);
                    let db = self.plates[b].region.signed_distance(x, y);
                    da.partial_cmp(&db).expect("NaN distance")
                })
                .expect("at least one plate");
            out.push((nearest, 1.0));
            return;
        }
        if (total - 1.0).abs() > 1e-12 {
            for w in out.iter_mut() {
                w.1 /= total;
            }
        }
    }
}

/// Builds the four-quadrant layout of the paper's Figures 1–2: quadrant
/// `q` (1-based, counter-clockwise from the upper-right as in the paper)
/// of the `[0, nx] × [0, ny]` domain gets `spectra[q-1]`. `transition` is
/// the blend width across the internal boundaries.
pub fn quadrant_layout(
    nx: f64,
    ny: f64,
    spectra: [SpectrumModel; 4],
    transition: f64,
) -> PlateLayout {
    let hx = nx / 2.0;
    let hy = ny / 2.0;
    let plates = vec![
        // First quadrant: upper-right.
        Plate { region: Region::Rect { x0: hx, y0: hy, x1: nx, y1: ny }, spectrum: spectra[0] },
        // Second: upper-left.
        Plate { region: Region::Rect { x0: 0.0, y0: hy, x1: hx, y1: ny }, spectrum: spectra[1] },
        // Third: lower-left.
        Plate { region: Region::Rect { x0: 0.0, y0: 0.0, x1: hx, y1: hy }, spectrum: spectra[2] },
        // Fourth: lower-right.
        Plate { region: Region::Rect { x0: hx, y0: 0.0, x1: nx, y1: hy }, spectrum: spectra[3] },
    ];
    PlateLayout::new(plates, None, transition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::SurfaceParams;

    fn sm(h: f64, cl: f64) -> SpectrumModel {
        SpectrumModel::gaussian(SurfaceParams::isotropic(h, cl))
    }

    fn quad() -> PlateLayout {
        quadrant_layout(
            100.0,
            100.0,
            [sm(1.0, 4.0), sm(1.5, 6.0), sm(2.0, 8.0), sm(1.5, 6.0)],
            10.0,
        )
    }

    #[test]
    fn pure_region_has_single_weight() {
        let l = quad();
        let mut w = Vec::new();
        l.weights_at(75.0, 75.0, &mut w); // deep in quadrant 1
        assert_eq!(w, vec![(0, 1.0)]);
        l.weights_at(25.0, 75.0, &mut w); // quadrant 2
        assert_eq!(w, vec![(1, 1.0)]);
        l.weights_at(25.0, 25.0, &mut w); // quadrant 3
        assert_eq!(w, vec![(2, 1.0)]);
        l.weights_at(75.0, 25.0, &mut w); // quadrant 4
        assert_eq!(w, vec![(3, 1.0)]);
    }

    #[test]
    fn transition_is_linear_and_normalised() {
        let l = quad();
        let mut w = Vec::new();
        // Crossing the vertical boundary x = 50 at y = 75 blends
        // quadrants 1 and 2; membership must be linear in x.
        for i in 0..=10 {
            let x = 45.0 + i as f64; // spans the strip [45, 55]
            l.weights_at(x, 75.0, &mut w);
            let total: f64 = w.iter().map(|&(_, v)| v).sum();
            assert!((total - 1.0).abs() < 1e-12, "weights must sum to 1");
            let w1 = w.iter().find(|&&(k, _)| k == 0).map_or(0.0, |&(_, v)| v);
            let expect = rrs_num::interp::unit_ramp(x, 45.0, 55.0);
            assert!((w1 - expect).abs() < 1e-9, "x={x}: {w1} vs {expect}");
        }
    }

    #[test]
    fn quadrant_meeting_point_blends_all_four() {
        let l = quad();
        let mut w = Vec::new();
        l.weights_at(50.0, 50.0, &mut w);
        assert_eq!(w.len(), 4);
        let total: f64 = w.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for &(_, v) in &w {
            assert!((v - 0.25).abs() < 1e-9, "centre should blend equally, got {w:?}");
        }
    }

    #[test]
    fn circle_with_background_covers_plane() {
        // The Figure 3 layout: a pond in a field.
        let pond = Plate {
            region: Region::Circle { cx: 0.0, cy: 0.0, r: 500.0 },
            spectrum: sm(0.2, 50.0),
        };
        let l = PlateLayout::new(vec![pond], Some(sm(1.0, 50.0)), 100.0);
        let mut w = Vec::new();
        // Deep inside the pond.
        l.weights_at(0.0, 0.0, &mut w);
        assert_eq!(w, vec![(0, 1.0)]);
        // Far outside: all background.
        l.weights_at(2000.0, 0.0, &mut w);
        assert_eq!(w, vec![(1, 1.0)]);
        // On the rim: an even blend.
        l.weights_at(500.0, 0.0, &mut w);
        let total: f64 = w.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(w.len(), 2);
        assert!((w[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_background_gap_falls_back_to_nearest() {
        let a = Plate {
            region: Region::Circle { cx: 0.0, cy: 0.0, r: 10.0 },
            spectrum: sm(1.0, 4.0),
        };
        let b = Plate {
            region: Region::Circle { cx: 100.0, cy: 0.0, r: 10.0 },
            spectrum: sm(2.0, 4.0),
        };
        let l = PlateLayout::new(vec![a, b], None, 4.0);
        let mut w = Vec::new();
        l.weights_at(30.0, 0.0, &mut w); // in the gap, nearer plate 0
        assert_eq!(w, vec![(0, 1.0)]);
        l.weights_at(70.0, 0.0, &mut w); // nearer plate 1
        assert_eq!(w, vec![(1, 1.0)]);
    }

    #[test]
    fn spectra_order_matches_kernel_indices() {
        let l = quad();
        let spectra = l.spectra();
        assert_eq!(spectra.len(), 4);
        assert_eq!(spectra[0], sm(1.0, 4.0));
        assert_eq!(spectra[2], sm(2.0, 8.0));
        assert_eq!(l.kernel_count(), 4);

        let with_bg = PlateLayout::new(
            vec![Plate {
                region: Region::Circle { cx: 0.0, cy: 0.0, r: 5.0 },
                spectrum: sm(1.0, 3.0),
            }],
            Some(sm(0.5, 2.0)),
            1.0,
        );
        assert_eq!(with_bg.kernel_count(), 2);
        assert_eq!(with_bg.spectra()[1], sm(0.5, 2.0));
    }

    #[test]
    #[should_panic(expected = "transition width must be positive")]
    fn zero_transition_rejected() {
        PlateLayout::new(vec![], Some(sm(1.0, 1.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one plate or a background")]
    fn empty_layout_rejected() {
        PlateLayout::new(vec![], None, 1.0);
    }

    #[test]
    fn smooth_profile_matches_linear_at_anchors() {
        let layout = |p: TransitionProfile| {
            PlateLayout::new(
                vec![Plate {
                    region: Region::HalfPlane { a: 1.0, b: 0.0, c: 50.0 },
                    spectrum: sm(1.0, 4.0),
                }],
                Some(sm(2.0, 4.0)),
                20.0,
            )
            .with_profile(p)
        };
        let lin = layout(TransitionProfile::Linear);
        let smo = layout(TransitionProfile::Smooth);
        let w_of = |l: &PlateLayout, x: f64| {
            let mut w = Vec::new();
            l.weights_at(x, 0.0, &mut w);
            w.iter().find(|&&(k, _)| k == 0).map_or(0.0, |&(_, v)| v)
        };
        // Agreement at the strip edges and the midpoint.
        for x in [30.0, 50.0, 70.0] {
            assert!((w_of(&lin, x) - w_of(&smo, x)).abs() < 1e-12, "x={x}");
        }
        // Divergence at the quarter point: smoothstep lags the line.
        let x = 45.0; // t = 0.75 towards the plate
        assert!(w_of(&smo, x) > w_of(&lin, x));
        // Both monotone across the strip.
        let mut prev_l = 2.0;
        let mut prev_s = 2.0;
        for i in 0..=40 {
            let x = 30.0 + i as f64;
            let (l, s) = (w_of(&lin, x), w_of(&smo, x));
            assert!(l <= prev_l + 1e-12 && s <= prev_s + 1e-12);
            prev_l = l;
            prev_s = s;
        }
    }
}
