//! Property-based tests for region geometry and weight maps.

use rrs_inhomo::{Plate, PlateLayout, PointLayout, Region, RepresentativePoint, WeightMap};
use rrs_spectrum::{SpectrumModel, SurfaceParams};

fn sm() -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0))
}

rrs_check::props! {
    #![cases = 256]

    fn circle_sdf_is_exact(cx in -50.0f64..50.0, cy in -50.0f64..50.0, r in 0.5f64..40.0, px in -100.0f64..100.0, py in -100.0f64..100.0) {
        let c = Region::Circle { cx, cy, r };
        let expect = ((px - cx).hypot(py - cy)) - r;
        assert!((c.signed_distance(px, py) - expect).abs() < 1e-12);
        assert_eq!(c.contains(px, py), expect <= 0.0);
    }

    fn rect_sdf_sign_matches_membership(
        x0 in -50.0f64..0.0, y0 in -50.0f64..0.0,
        w in 1.0f64..60.0, h in 1.0f64..60.0,
        px in -80.0f64..80.0, py in -80.0f64..80.0,
    ) {
        let rect = Region::Rect { x0, y0, x1: x0 + w, y1: y0 + h };
        let inside = px >= x0 && px <= x0 + w && py >= y0 && py <= y0 + h;
        let sd = rect.signed_distance(px, py);
        if inside {
            assert!(sd <= 1e-12, "inside point has sd {sd}");
        } else {
            assert!(sd > -1e-12, "outside point has sd {sd}");
        }
    }

    fn sdf_is_lipschitz(
        r in 0.5f64..40.0,
        px in -60.0f64..60.0, py in -60.0f64..60.0,
        dx in -1.0f64..1.0, dy in -1.0f64..1.0,
    ) {
        // |sd(p) − sd(q)| ≤ |p − q| for metric SDFs.
        for region in [
            Region::Circle { cx: 3.0, cy: -2.0, r },
            Region::Rect { x0: -10.0, y0: -5.0, x1: 12.0, y1: 8.0 },
            Region::HalfPlane { a: 1.0, b: -2.0, c: 3.0 },
        ] {
            let a = region.signed_distance(px, py);
            let b = region.signed_distance(px + dx, py + dy);
            let step = dx.hypot(dy);
            assert!((a - b).abs() <= step + 1e-9, "{region:?}");
        }
    }

    fn plate_weights_always_normalised(
        r in 2.0f64..30.0, t in 0.5f64..20.0,
        px in -60.0f64..60.0, py in -60.0f64..60.0,
    ) {
        let layout = PlateLayout::new(
            vec![Plate { region: Region::Circle { cx: 0.0, cy: 0.0, r }, spectrum: sm() }],
            Some(sm()),
            t,
        );
        let mut w = Vec::new();
        layout.weights_at(px, py, &mut w);
        let total: f64 = w.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&(_, v)| (0.0..=1.0 + 1e-12).contains(&v)));
    }

    fn point_weights_cover_the_plane(
        t in 0.5f64..50.0,
        px in -200.0f64..200.0, py in -200.0f64..200.0,
        sep in 10.0f64..120.0,
    ) {
        let layout = PointLayout::new(
            vec![
                RepresentativePoint { x: 0.0, y: 0.0, spectrum: sm() },
                RepresentativePoint { x: sep, y: 0.0, spectrum: sm() },
                RepresentativePoint { x: 0.0, y: sep, spectrum: sm() },
            ],
            t,
        );
        let mut w = Vec::new();
        layout.weights_at(px, py, &mut w);
        let total: f64 = w.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total} at ({px},{py})");
        assert!(!w.is_empty());
    }

    fn tau_is_nonnegative_for_nearest(
        sep in 5.0f64..100.0,
        px in -200.0f64..200.0, py in -200.0f64..200.0,
    ) {
        let layout = PointLayout::new(
            vec![
                RepresentativePoint { x: 0.0, y: 0.0, spectrum: sm() },
                RepresentativePoint { x: sep, y: sep / 2.0, spectrum: sm() },
            ],
            10.0,
        );
        let m_star = layout.nearest(px, py);
        let other = 1 - m_star;
        assert!(layout.tau(px, py, other, m_star) >= -1e-9);
    }

    fn transition_is_symmetric_across_bisector(
        sep in 10.0f64..100.0, t in 1.0f64..20.0, off in 0.0f64..1.0,
    ) {
        // Mirror points across the bisector swap their weight vectors.
        let layout = PointLayout::new(
            vec![
                RepresentativePoint { x: 0.0, y: 0.0, spectrum: sm() },
                RepresentativePoint { x: sep, y: 0.0, spectrum: sm() },
            ],
            t,
        );
        let d = off * t.min(sep / 2.0 - 1e-6);
        let mut wl = Vec::new();
        let mut wr = Vec::new();
        layout.weights_at(sep / 2.0 - d, 3.0, &mut wl);
        layout.weights_at(sep / 2.0 + d, 3.0, &mut wr);
        let get = |w: &[(usize, f64)], k: usize| {
            w.iter().find(|&&(i, _)| i == k).map_or(0.0, |&(_, v)| v)
        };
        assert!((get(&wl, 0) - get(&wr, 1)).abs() < 1e-9);
        assert!((get(&wl, 1) - get(&wr, 0)).abs() < 1e-9);
    }
}
