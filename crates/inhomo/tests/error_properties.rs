//! Properties of the fallible layout/generator constructors: empty or
//! degenerate layouts, bad transition widths and kernel-count mismatches
//! are rejected with typed errors; the valid domain agrees with the
//! panicking wrappers.

use rrs_check::{from_fn, props, CaseRng};
use rrs_error::ErrorKind;
use rrs_inhomo::{InhomogeneousGenerator, Plate, PlateLayout, PointLayout, Region, RepresentativePoint, WeightMap};
use rrs_spectrum::{GridSpec, SpectrumModel, SurfaceParams};
use rrs_surface::{ConvolutionKernel, KernelSizing};

fn sm(h: f64, cl: f64) -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(h, cl))
}

fn bad_width(rng: &mut CaseRng) -> f64 {
    match rng.next_below(5) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        _ => -(rng.next_f64() * 100.0 + f64::MIN_POSITIVE),
    }
}

props! {
    #![cases = 48]

    fn plate_layout_transition_width(t in from_fn(bad_width)) {
        let e = PlateLayout::try_new(vec![], Some(sm(1.0, 4.0)), t).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidParam, "t={t}: {e}");
        assert!(e.to_string().contains("transition width must be positive"), "{e}");
    }

    fn plate_layout_valid_domain(t in 1e-6f64..1e6, n_plates in 0usize..4) {
        let plates: Vec<Plate> = (0..n_plates)
            .map(|i| Plate {
                region: Region::Circle { cx: 100.0 * i as f64, cy: 0.0, r: 10.0 },
                spectrum: sm(1.0 + i as f64, 4.0),
            })
            .collect();
        let l = PlateLayout::try_new(plates.clone(), Some(sm(0.5, 2.0)), t)
            .expect("valid layout accepted");
        assert_eq!(l.kernel_count(), n_plates + 1);
        if n_plates == 0 {
            // No plates and no background is the one empty-layout error.
            let e = PlateLayout::try_new(vec![], None, t).unwrap_err();
            assert!(e.to_string().contains("at least one plate or a background"), "{e}");
        }
    }

    fn point_layout_rejections(t in from_fn(bad_width), x in -1e3f64..1e3, y in -1e3f64..1e3) {
        let e = PointLayout::try_new(vec![], 10.0).unwrap_err();
        assert!(e.to_string().contains("at least one point"), "{e}");

        let p = RepresentativePoint { x, y, spectrum: sm(1.0, 4.0) };
        let e = PointLayout::try_new(vec![p], t).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidParam, "t={t}: {e}");

        let e = PointLayout::try_new(vec![p, p], 10.0).unwrap_err();
        assert!(e.to_string().contains("coincide"), "{e}");

        // The same point set with distinct positions is fine.
        let q = RepresentativePoint { x: x + 1.0, y, spectrum: sm(2.0, 4.0) };
        let l = PointLayout::try_new(vec![p, q], 10.0).unwrap();
        assert_eq!(l.kernel_count(), 2);
    }

    fn kernel_count_must_match(extra in 0usize..3) {
        let layout = PlateLayout::new(vec![], Some(sm(1.0, 4.0)), 1.0);
        let sizing = KernelSizing::Explicit(GridSpec::unit(16, 16));
        let kernels: Vec<ConvolutionKernel> = layout
            .spectra()
            .iter()
            .cycle()
            .take(1 + extra)
            .map(|s| ConvolutionKernel::build(s, sizing))
            .collect();
        match InhomogeneousGenerator::try_from_kernels(layout, kernels) {
            Ok(_) => assert_eq!(extra, 0),
            Err(e) => {
                assert!(extra > 0);
                assert_eq!(e.kind(), ErrorKind::ShapeMismatch, "{e}");
                assert!(e.to_string().contains("kernel count must match"), "{e}");
            }
        }
    }

    fn empty_window_rejected(nx in 0usize..2, ny in 0usize..2, seed in rrs_check::any::<u64>()) {
        let layout = PlateLayout::new(vec![], Some(sm(1.0, 3.0)), 1.0);
        let sizing = KernelSizing::Explicit(GridSpec::unit(16, 16));
        let gen = InhomogeneousGenerator::new(layout, sizing).with_workers(1);
        let noise = rrs_surface::NoiseField::new(seed);
        match rrs_grid::Window::try_new(0, 0, nx, ny).and_then(|w| gen.try_generate(&noise, w)) {
            Ok(g) => {
                assert!(nx > 0 && ny > 0);
                assert_eq!(g.shape(), (nx, ny));
            }
            Err(e) => {
                assert!(nx == 0 || ny == 0);
                assert!(e.to_string().contains("non-empty"), "{e}");
            }
        }
    }
}
