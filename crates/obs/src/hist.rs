//! Power-of-two duration histograms.
//!
//! Bucketing uses the bit width of the nanosecond count: a duration of
//! `ns` nanoseconds lands in bucket `64 − ns.leading_zeros()`, i.e. bucket
//! `k` covers `[2^(k−1), 2^k − 1]` ns (bucket 0 holds exact zeros). The
//! scheme needs no configuration, costs one `leading_zeros` per record,
//! and spans sub-microsecond span bookkeeping up to multi-minute stages
//! with [`BUCKETS`] fixed-size counters.

/// Number of histogram buckets. Bucket `BUCKETS − 1` absorbs everything
/// at or above `2^(BUCKETS−2)` ns (≈ 9 minutes), far beyond any stage
/// this workspace times.
pub const BUCKETS: usize = 40;

/// Returns the bucket index for a duration of `ns` nanoseconds.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound, in nanoseconds, of bucket `index`
/// (`u64::MAX` for the overflow bucket).
pub fn bucket_upper_ns(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// An aggregated set of duration observations for one stage name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurationHist {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all recorded durations, in nanoseconds (saturating).
    pub total_ns: u64,
    /// Shortest recorded duration.
    pub min_ns: u64,
    /// Longest recorded duration.
    pub max_ns: u64,
    /// Power-of-two bucket counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for DurationHist {
    fn default() -> Self {
        Self { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0, buckets: [0; BUCKETS] }
    }
}

impl DurationHist {
    /// Records one duration of `ns` nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHist) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The non-empty buckets as `(inclusive_upper_bound_ns, count)` pairs,
    /// in ascending bound order — the export shape.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_ns(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_inclusive_uppers() {
        assert_eq!(bucket_upper_ns(0), 0);
        assert_eq!(bucket_upper_ns(1), 1);
        assert_eq!(bucket_upper_ns(2), 3);
        assert_eq!(bucket_upper_ns(10), 1023);
        assert_eq!(bucket_upper_ns(BUCKETS - 1), u64::MAX);
        // Every representable ns lands in the bucket whose bound covers it.
        for ns in [0u64, 1, 2, 3, 100, 1 << 20, 1 << 39] {
            let i = bucket_index(ns);
            assert!(ns <= bucket_upper_ns(i), "ns={ns} bucket={i}");
            if i > 0 {
                assert!(ns > bucket_upper_ns(i - 1), "ns={ns} bucket={i}");
            }
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = DurationHist::default();
        for ns in [5u64, 100, 2] {
            h.record(ns);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.total_ns, 107);
        assert_eq!(h.min_ns, 2);
        assert_eq!(h.max_ns, 100);
        assert!((h.mean_ns() - 107.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_interleaved_record() {
        let mut a = DurationHist::default();
        let mut b = DurationHist::default();
        let mut whole = DurationHist::default();
        for (i, ns) in [3u64, 9, 0, 1 << 30, 77].iter().enumerate() {
            whole.record(*ns);
            if i % 2 == 0 { a.record(*ns) } else { b.record(*ns) }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram is a no-op (min stays intact).
        let before = a.clone();
        a.merge(&DurationHist::default());
        assert_eq!(a, before);
    }

    #[test]
    fn nonzero_buckets_are_sparse_and_sorted() {
        let mut h = DurationHist::default();
        h.record(0);
        h.record(5);
        h.record(5);
        let nz = h.nonzero_buckets();
        assert_eq!(nz, vec![(0, 1), (7, 2)]);
    }
}
