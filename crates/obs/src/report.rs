//! Point-in-time snapshots of a [`crate::Recorder`] and their JSON form.
//!
//! The exporter speaks the same dialect as the workspace's `BENCH_*.json`
//! files (hand-emitted, two-space indent, stable key order), so a report
//! can be embedded verbatim as a section of a bench file or written on its
//! own. Names are workspace-controlled `group/label` identifiers, so the
//! only escaping needed is backslash/quote.

use crate::hist::DurationHist;
use std::collections::BTreeMap;

/// An immutable snapshot of everything a recorder has aggregated.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Named event counts, sorted by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named duration histograms, sorted by name.
    pub durations: BTreeMap<&'static str, DurationHist>,
}

impl ObsReport {
    /// True when nothing was recorded (or the recorder was disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.durations.is_empty()
    }

    /// Total recorded time for `name` in nanoseconds, 0 when absent.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.durations.get(name).map_or(0, |h| h.total_ns)
    }

    /// Counter value for `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serialises the report as a JSON object. `indent` is prepended to
    /// every line after the first, so the value can be embedded at any
    /// nesting depth of a hand-emitted file.
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::from("{\n");
        let inner = format!("{indent}  ");
        out.push_str(&format!("{inner}\"counters\": {{"));
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n{inner}  \"{}\": {value}", json_escape(name)));
        }
        if self.counters.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str(&format!("\n{inner}}},\n"));
        }
        out.push_str(&format!("{inner}\"durations\": {{"));
        let mut first = true;
        for (name, h) in &self.durations {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets = h
                .nonzero_buckets()
                .iter()
                .map(|(le, c)| format!("[{le}, {c}]"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n{inner}  \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"mean_ns\": {:.1}, \"buckets\": [{buckets}]}}",
                json_escape(name),
                h.count,
                h.total_ns,
                if h.count == 0 { 0 } else { h.min_ns },
                h.max_ns,
                h.mean_ns(),
            ));
        }
        if self.durations.is_empty() {
            out.push_str("}\n");
        } else {
            out.push_str(&format!("\n{inner}}}\n"));
        }
        out.push_str(&format!("{indent}}}"));
        out
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsReport {
        let mut r = ObsReport::default();
        r.counters.insert("correlate/samples", 4096);
        r.counters.insert("par/bands", 4);
        let mut h = DurationHist::default();
        h.record(1000);
        h.record(3000);
        r.durations.insert("correlate/inner", h);
        r
    }

    #[test]
    fn json_has_expected_shape() {
        let j = sample().to_json("");
        assert!(j.contains("\"counters\""));
        assert!(j.contains("\"correlate/samples\": 4096"));
        assert!(j.contains("\"par/bands\": 4"));
        assert!(j.contains("\"correlate/inner\""));
        assert!(j.contains("\"count\": 2"));
        assert!(j.contains("\"total_ns\": 4000"));
        assert!(j.contains("\"min_ns\": 1000"));
        assert!(j.contains("\"max_ns\": 3000"));
        assert!(j.contains("\"mean_ns\": 2000.0"));
        assert!(j.contains("\"buckets\": [[1023, 1], [4095, 1]]"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_report_is_valid_json_object() {
        let j = ObsReport::default().to_json("    ");
        assert!(j.starts_with('{'));
        assert!(j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn indent_prefixes_every_continuation_line() {
        let j = sample().to_json("      ");
        for line in j.lines().skip(1) {
            assert!(line.starts_with("      "), "unindented line: {line:?}");
        }
    }

    #[test]
    fn accessors_default_to_zero() {
        let r = sample();
        assert_eq!(r.counter("correlate/samples"), 4096);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.total_ns("correlate/inner"), 4000);
        assert_eq!(r.total_ns("absent"), 0);
        assert!(!r.is_empty());
        assert!(ObsReport::default().is_empty());
    }
}
