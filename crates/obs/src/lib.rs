//! Stage-level observability for the rrs pipeline.
//!
//! The generation pipeline (kernel construction, noise-window
//! materialisation, correlation, checkpointing) reports *where* time goes
//! through this crate:
//!
//! * [`Span`] — a monotonic [`std::time::Instant`] timer with **explicit**
//!   start/stop ([`Recorder::start`] / [`Recorder::finish`]); no global
//!   clock reads hide inside hot loops;
//! * named **counters** and power-of-two **duration histograms**
//!   ([`hist::DurationHist`]) behind the [`ObsSink`] trait;
//! * [`Recorder`] — the thread-safe standard sink: workers accumulate into
//!   private [`Shard`]s (no locks, no atomics in the loop) and merge them
//!   with one [`Recorder::absorb`] per band;
//! * [`report::ObsReport`] — a snapshot exportable as `BENCH_*.json`-style
//!   JSON.
//!
//! # Zero cost when disabled
//!
//! [`Recorder::disabled`] carries no allocation; every operation on it
//! reduces to one `Option` discriminant test, records nothing, and never
//! reads the clock. Library constructors default to a disabled recorder,
//! so callers that never opt in pay nothing (the `bench_obs` benchmark in
//! `rrs-bench` guards this), and an enabled run is bit-identical to a
//! disabled one: instrumentation only observes, it never steers.
//!
//! Stage names used across the workspace live in [`stage`] so producers
//! and report consumers cannot drift apart.

#![warn(missing_docs)]

pub mod hist;
pub mod report;

use hist::DurationHist;
use report::ObsReport;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Canonical stage and counter names threaded through the pipeline.
pub mod stage {
    /// Amplitude-array evaluation during kernel construction.
    pub const KERNEL_AMPLITUDE: &str = "kernel_build/amplitude";
    /// The forward DFT of the amplitude array (paper eqn 34).
    pub const KERNEL_DFT: &str = "kernel_build/dft";
    /// Re-centring permutation of the kernel (fftshift, eqn 35).
    pub const KERNEL_PERMUTE: &str = "kernel_build/permute";
    /// Energy-budget truncation search (paper §2.4).
    pub const KERNEL_TRUNCATE: &str = "kernel_build/truncate";
    /// Noise-window materialisation ahead of correlation.
    pub const WINDOW_MATERIALISE: &str = "window/materialise";
    /// The correlation inner loops (homogeneous or blended).
    pub const CORRELATE: &str = "correlate/inner";
    /// Counter: output samples produced by correlation workers.
    pub const CORRELATE_SAMPLES: &str = "correlate/samples";
    /// Counter: samples whose weight map selected exactly one kernel.
    pub const INHOMO_PURE_SAMPLES: &str = "inhomo/pure_samples";
    /// Counter: samples inside a transition (more than one kernel active).
    pub const INHOMO_BLENDED_SAMPLES: &str = "inhomo/blended_samples";
    /// Counter: kernel dot products evaluated by the blender.
    pub const INHOMO_KERNEL_EVALS: &str = "inhomo/kernel_evals";
    /// Counter: strips produced by a streaming generator.
    pub const STRIP_TILES: &str = "strip/tiles";
    /// Counter: correlation requests dispatched to the FFT overlap-save
    /// backend (one per window, not per tile).
    pub const CONV_BACKEND_FFT: &str = "conv/backend_fft";
    /// Counter: correlation requests dispatched to the direct spatial
    /// backend.
    pub const CONV_BACKEND_DIRECT: &str = "conv/backend_direct";
    /// Counter: overlap-save tiles processed by the FFT backend.
    pub const CONV_FFT_TILES: &str = "conv/fft_tiles";
    /// Counter: overlap-save tiles dispatched across multiple workers by
    /// the real-input FFT engine (subset of [`CONV_FFT_TILES`]).
    pub const CONV_TILES_PARALLEL: &str = "conv/tiles_parallel";
    /// Counter: 2-D FFT plan requests served from a shared plan cache.
    pub const FFT_PLAN_HIT: &str = "fft/plan_hit";
    /// Counter: 2-D FFT plan requests that had to build a new plan.
    pub const FFT_PLAN_MISS: &str = "fft/plan_miss";
    /// Checkpoint serialisation + write.
    pub const CHECKPOINT_WRITE: &str = "checkpoint/write";
    /// Checkpoint durability barrier (fsync).
    pub const CHECKPOINT_FSYNC: &str = "checkpoint/fsync";
    /// Counter: checkpoint bytes written.
    pub const CHECKPOINT_BYTES: &str = "checkpoint/bytes";
    /// Surface snapshot export.
    pub const EXPORT_SNAPSHOT: &str = "export/snapshot";
    /// Counter: cooperative budget polls (cancel/deadline checks) taken
    /// by workers and tile loops.
    pub const BUDGET_POLLS: &str = "budget/polls";
    /// Counter: requests rejected by byte-budget admission control.
    pub const BUDGET_REJECT: &str = "budget/reject";
    /// Counter: attempts made by retrying durable writers (first try
    /// included, so a fault-free write counts 1).
    pub const RETRY_ATTEMPTS: &str = "retry/attempts";
    /// Histogram: backoff delay scheduled before each retry attempt.
    pub const RETRY_BACKOFF: &str = "retry/backoff";
    /// Counter: parallel bands executed.
    pub const PAR_BANDS: &str = "par/bands";
    /// Counter: worker bands whose closure panicked.
    pub const PAR_WORKER_PANICS: &str = "par/worker_panics";
    /// Counter: serial-fallback retries after a parallel panic.
    pub const PAR_SERIAL_FALLBACKS: &str = "par/serial_fallbacks";
    /// Counter: windows the degradation ladder re-ran on the serial
    /// complex FFT engine after the parallel real-input engine failed.
    pub const CONV_DEGRADED_TO_FFT_SERIAL: &str = "conv/degraded_to_fft_serial";
    /// Counter: windows the degradation ladder re-ran on the direct
    /// spatial backend after every FFT engine failed.
    pub const CONV_DEGRADED_TO_DIRECT: &str = "conv/degraded_to_direct";
    /// Counter: backend attempts skipped because the per-generator
    /// circuit breaker held that backend open (too many consecutive
    /// failures).
    pub const CONV_BREAKER_SKIPS: &str = "conv/breaker_skips";
    /// Counter: FFT plan/kernel-spectrum cache locks found poisoned and
    /// rebuilt from empty instead of propagating the poison.
    pub const FFT_PLAN_POISONED: &str = "fft/plan_poisoned";
    /// Counter: generate requests accepted by the serving front-end.
    pub const SERVE_REQUESTS: &str = "serve/requests";
    /// Counter: batches the serve scheduler dispatched (each batch
    /// shares one generator and its warmed kernel spectrum).
    pub const SERVE_BATCHES: &str = "serve/batches";
    /// Counter: requests served as a follower inside a coalesced batch
    /// (i.e. beyond the first request of each batch).
    pub const SERVE_COALESCED: &str = "serve/coalesced";
    /// Counter: requests rejected with a typed `Overloaded` response by
    /// admission control, before any allocation.
    pub const SERVE_OVERLOADED: &str = "serve/overloaded";
    /// Counter: batch dispatches that found their generator hot in the
    /// serve-side kernel LRU.
    pub const SERVE_KERNEL_HIT: &str = "serve/kernel_hit";
    /// Counter: batch dispatches that had to build a new generator
    /// (kernel construction + spectrum warm-up).
    pub const SERVE_KERNEL_MISS: &str = "serve/kernel_miss";
    /// Counter: generators evicted from the serve-side kernel LRU.
    pub const SERVE_KERNEL_EVICT: &str = "serve/kernel_evict";
    /// Window generation performed on behalf of a served request.
    pub const SERVE_GENERATE: &str = "serve/generate";
    /// Counter: server connections dropped because the peer stalled
    /// past the per-connection read deadline (slow-loris defense).
    pub const SERVE_CONN_TIMEOUT: &str = "serve/conn_timeout";
    /// Counter: requests rejected because their connection was already
    /// at its in-flight frame cap.
    pub const SERVE_CONN_BUSY: &str = "serve/conn_busy";
    /// Counter: generate requests refused with a typed `Draining` error
    /// while the server was shutting down gracefully.
    pub const SERVE_DRAINING_REJECT: &str = "serve/draining_reject";
    /// Counter: sharded-client re-attempts after a retryable failure
    /// (one per backoff sweep beyond the first).
    pub const SERVE_CLIENT_RETRY: &str = "serve/client_retry";
    /// Counter: sharded-client dispatches to a non-primary endpoint
    /// because the rendezvous-preferred endpoint was down or skipped.
    pub const SERVE_CLIENT_FAILOVER: &str = "serve/client_failover";
    /// Counter: endpoints skipped by the sharded client's per-endpoint
    /// circuit breaker (open after repeated consecutive failures).
    pub const SERVE_CLIENT_BREAKER_SKIP: &str = "serve/client_breaker_skip";
    /// Counter: fresh endpoint connections established by the sharded
    /// client (first connects and reconnects after a failure alike).
    pub const SERVE_CLIENT_CONNECT: &str = "serve/client_connect";
}

/// Destination for named counters and duration observations.
///
/// [`Recorder`] is the standard implementation; alternative sinks (a
/// process-wide exporter, a test probe) implement the same two hooks.
/// Names must be `'static` workspace identifiers (`group/label`) so hot
/// paths never format strings.
pub trait ObsSink: Send + Sync {
    /// Adds `delta` to the counter `name`.
    fn add_counter(&self, name: &'static str, delta: u64);

    /// Records one duration of `ns` nanoseconds under `name`.
    fn record_duration_ns(&self, name: &'static str, ns: u64);
}

/// An in-flight stage timer. Obtain with [`Recorder::start`], close with
/// [`Recorder::finish`] — dropping a span without finishing records
/// nothing (deliberate: abandoning a stage after an error must not litter
/// the histogram with torn timings).
#[must_use = "a span records nothing until passed to Recorder::finish"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// The stage name this span was started for.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A worker-private accumulation buffer: plain counters, no
/// synchronisation. Fill it inside the band loop, then merge the whole
/// shard with one [`Recorder::absorb`] (a single lock acquisition),
/// keeping the hot loop free of locks, atomics and clock reads.
#[derive(Debug, Default)]
pub struct Shard {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    durations: Vec<(&'static str, DurationHist)>,
}

impl Shard {
    /// Adds `delta` to the shard-local counter `name`.
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += delta;
        } else {
            self.counters.push((name, delta));
        }
    }

    /// Records one duration of `ns` nanoseconds under `name`.
    #[inline]
    pub fn record_duration_ns(&mut self, name: &'static str, ns: u64) {
        if !self.enabled {
            return;
        }
        if let Some(slot) = self.durations.iter_mut().find(|(n, _)| *n == name) {
            slot.1.record(ns);
        } else {
            let mut h = DurationHist::default();
            h.record(ns);
            self.durations.push((name, h));
        }
    }

    /// True when the shard actually accumulates (its recorder is enabled).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[derive(Default)]
struct Agg {
    counters: BTreeMap<&'static str, u64>,
    durations: BTreeMap<&'static str, DurationHist>,
}

/// The thread-safe aggregation point for one observed pipeline.
///
/// Cloning is cheap and every clone shares the same aggregation state, so
/// a recorder can be handed to a generator at construction and kept by
/// the caller for the final [`Recorder::report`]. A
/// [`Recorder::disabled`] recorder holds no state at all.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Agg>>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish()
    }
}

impl Recorder {
    /// A recorder that aggregates everything it is shown.
    pub fn enabled() -> Self {
        Self { inner: Some(Arc::new(Mutex::new(Agg::default()))) }
    }

    /// The no-op recorder: records nothing, never reads the clock, and
    /// costs one `Option` check per call. This is the default every
    /// generator starts with.
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// True when observations are being aggregated.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a stage timer. On a disabled recorder this does not read
    /// the clock.
    #[inline]
    pub fn start(&self, name: &'static str) -> Span {
        Span { name, start: if self.inner.is_some() { Some(Instant::now()) } else { None } }
    }

    /// Stops `span` and records its elapsed wall time.
    #[inline]
    pub fn finish(&self, span: Span) {
        if let (Some(t0), Some(inner)) = (span.start, self.inner.as_deref()) {
            let ns = duration_ns(t0);
            lock(inner).durations.entry(span.name).or_default().record(ns);
        }
    }

    /// Times the closure `f` as one observation of stage `name`.
    #[inline]
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let span = self.start(name);
        let out = f();
        self.finish(span);
        out
    }

    /// A worker-private shard (enabled iff this recorder is).
    pub fn shard(&self) -> Shard {
        Shard { enabled: self.inner.is_some(), counters: Vec::new(), durations: Vec::new() }
    }

    /// Merges a shard's accumulations under one lock acquisition.
    pub fn absorb(&self, shard: Shard) {
        let Some(inner) = self.inner.as_deref() else { return };
        if shard.counters.is_empty() && shard.durations.is_empty() {
            return;
        }
        let mut agg = lock(inner);
        for (name, delta) in shard.counters {
            *agg.counters.entry(name).or_insert(0) += delta;
        }
        for (name, h) in shard.durations {
            agg.durations.entry(name).or_default().merge(&h);
        }
    }

    /// Snapshots everything aggregated so far. A disabled recorder
    /// reports empty.
    pub fn report(&self) -> ObsReport {
        let Some(inner) = self.inner.as_deref() else { return ObsReport::default() };
        let agg = lock(inner);
        ObsReport {
            counters: agg.counters.iter().map(|(&k, &v)| (k, v)).collect(),
            durations: agg.durations.iter().map(|(&k, v)| (k, v.clone())).collect(),
        }
    }
}

impl ObsSink for Recorder {
    #[inline]
    fn add_counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = self.inner.as_deref() {
            *lock(inner).counters.entry(name).or_insert(0) += delta;
        }
    }

    #[inline]
    fn record_duration_ns(&self, name: &'static str, ns: u64) {
        if let Some(inner) = self.inner.as_deref() {
            lock(inner).durations.entry(name).or_default().record(ns);
        }
    }
}

/// Elapsed nanoseconds since `t0`, saturating at `u64::MAX`.
#[inline]
fn duration_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A recorder mutex is only held for constant-time merges; a poisoned
/// lock means a panic mid-merge, and the aggregation state (plain
/// counters) is still internally consistent, so observation continues.
fn lock(m: &Mutex<Agg>) -> std::sync::MutexGuard<'_, Agg> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing_and_skips_the_clock() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let span = rec.start(stage::CORRELATE);
        assert!(span.start.is_none(), "disabled span must not read Instant::now");
        rec.finish(span);
        rec.add_counter(stage::PAR_BANDS, 10);
        rec.record_duration_ns(stage::CORRELATE, 99);
        let mut shard = rec.shard();
        shard.add(stage::CORRELATE_SAMPLES, 5);
        shard.record_duration_ns(stage::CORRELATE, 5);
        rec.absorb(shard);
        assert!(rec.report().is_empty());
    }

    #[test]
    fn enabled_recorder_aggregates_counters_and_durations() {
        let rec = Recorder::enabled();
        rec.add_counter(stage::PAR_BANDS, 3);
        rec.add_counter(stage::PAR_BANDS, 4);
        let span = rec.start(stage::CORRELATE);
        rec.finish(span);
        rec.time(stage::CORRELATE, || std::hint::black_box(1 + 1));
        let report = rec.report();
        assert_eq!(report.counter(stage::PAR_BANDS), 7);
        let h = &report.durations[stage::CORRELATE];
        assert_eq!(h.count, 2);
        assert!(h.min_ns <= h.max_ns);
    }

    #[test]
    fn clones_share_aggregation_state() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.add_counter(stage::STRIP_TILES, 2);
        rec.add_counter(stage::STRIP_TILES, 1);
        assert_eq!(rec.report().counter(stage::STRIP_TILES), 3);
        assert_eq!(clone.report(), rec.report());
    }

    #[test]
    fn shards_merge_like_direct_recording() {
        let direct = Recorder::enabled();
        let sharded = Recorder::enabled();
        for band in 0..4u64 {
            direct.add_counter(stage::CORRELATE_SAMPLES, 10 + band);
            direct.record_duration_ns(stage::CORRELATE, 100 * (band + 1));
            let mut s = sharded.shard();
            s.add(stage::CORRELATE_SAMPLES, 10 + band);
            s.record_duration_ns(stage::CORRELATE, 100 * (band + 1));
            sharded.absorb(s);
        }
        assert_eq!(direct.report(), sharded.report());
    }

    #[test]
    fn shards_absorb_correctly_across_threads() {
        let rec = Recorder::enabled();
        std::thread::scope(|s| {
            for band in 0..8usize {
                let rec = &rec;
                s.spawn(move || {
                    let mut shard = rec.shard();
                    for _ in 0..100 {
                        shard.add(stage::CORRELATE_SAMPLES, band as u64);
                    }
                    rec.absorb(shard);
                });
            }
        });
        // Σ_band 100·band for band in 0..8 = 100·28.
        assert_eq!(rec.report().counter(stage::CORRELATE_SAMPLES), 2800);
    }

    #[test]
    fn abandoned_span_records_nothing() {
        let rec = Recorder::enabled();
        let span = rec.start(stage::KERNEL_DFT);
        drop(span);
        assert!(rec.report().is_empty());
    }

    #[test]
    fn report_exports_to_json() {
        let rec = Recorder::enabled();
        rec.add_counter(stage::CHECKPOINT_BYTES, 40);
        rec.record_duration_ns(stage::CHECKPOINT_WRITE, 512);
        let j = rec.report().to_json("");
        assert!(j.contains("\"checkpoint/bytes\": 40"));
        assert!(j.contains("\"checkpoint/write\""));
    }
}
