//! Normality tests for surface heights.
//!
//! The generators are linear maps of Gaussian noise, so heights must be
//! exactly Gaussian; these tests catch implementation bugs (wrong
//! normalisation, broken Hermitian symmetry, biased noise) that second
//! moments alone would miss.

use crate::moments::Moments;
use rrs_num::special::{gamma_q, normal_cdf};

/// Result of a hypothesis test.
#[derive(Clone, Copy, Debug)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Asymptotic p-value under the null hypothesis.
    pub p_value: f64,
}

impl TestResult {
    /// `true` if the null is *not* rejected at significance `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// One-sample Kolmogorov–Smirnov test against `N(mean, sigma²)`.
///
/// The p-value uses the asymptotic Kolmogorov distribution
/// `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}` with the Stephens small-sample
/// correction.
///
/// # Panics
/// Panics if `samples` is empty or `sigma <= 0`.
pub fn ks_test_normal(samples: &[f64], mean: f64, sigma: f64) -> TestResult {
    assert!(!samples.is_empty(), "KS test needs samples");
    assert!(sigma > 0.0, "sigma must be positive");
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let cdf = normal_cdf((x - mean) / sigma);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((cdf - lo).abs()).max((hi - cdf).abs());
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    TestResult { statistic: d, p_value: kolmogorov_q(lambda) }
}

/// The Kolmogorov survival function `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 0.2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// χ² goodness-of-fit against `N(mean, sigma²)` with `bins` equiprobable
/// cells (so every cell has expectation `n/bins`).
///
/// # Panics
/// Panics if fewer than `5 × bins` samples are supplied (the usual
/// minimum-expected-count rule) or `bins < 3`.
pub fn chi_square_test_normal(samples: &[f64], mean: f64, sigma: f64, bins: usize) -> TestResult {
    assert!(bins >= 3, "need at least 3 bins");
    assert!(
        samples.len() >= 5 * bins,
        "need at least 5 samples per bin ({} < {})",
        samples.len(),
        5 * bins
    );
    assert!(sigma > 0.0, "sigma must be positive");
    let n = samples.len() as f64;
    let expected = n / bins as f64;
    let mut counts = vec![0u64; bins];
    for &x in samples {
        let u = normal_cdf((x - mean) / sigma);
        let i = ((u * bins as f64) as usize).min(bins - 1);
        counts[i] += 1;
    }
    let stat: f64 =
        counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
    // dof = bins − 1 (parameters are supplied, not fitted).
    let dof = (bins - 1) as f64;
    TestResult { statistic: stat, p_value: gamma_q(dof / 2.0, stat / 2.0) }
}

/// Jarque–Bera test: joint skewness/kurtosis departure from normality.
/// `JB = n/6·(S² + (K−3)²/4) ~ χ²(2)` asymptotically.
pub fn jarque_bera_test(samples: &[f64]) -> TestResult {
    assert!(samples.len() >= 8, "JB needs a reasonable sample size");
    let m = Moments::from_slice(samples);
    let n = m.count() as f64;
    let s = m.skewness();
    let k = m.kurtosis();
    let stat = n / 6.0 * (s * s + 0.25 * (k - 3.0) * (k - 3.0));
    TestResult { statistic: stat, p_value: gamma_q(1.0, stat / 2.0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_rng::{BoxMuller, GaussianSource, RandomSource, Xoshiro256pp};

    fn gaussian_samples(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut g = BoxMuller::new();
        (0..n).map(|_| g.sample(&mut rng)).collect()
    }

    #[test]
    fn gaussian_data_passes_all_tests() {
        let xs = gaussian_samples(20_000, 1);
        assert!(ks_test_normal(&xs, 0.0, 1.0).passes(0.01));
        assert!(chi_square_test_normal(&xs, 0.0, 1.0, 20).passes(0.01));
        assert!(jarque_bera_test(&xs).passes(0.01));
    }

    #[test]
    fn uniform_data_fails_ks_and_jb() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        // Matched mean 0 and std 1/sqrt(3).
        let sigma = (1.0f64 / 3.0).sqrt();
        assert!(!ks_test_normal(&xs, 0.0, sigma).passes(0.01));
        assert!(!jarque_bera_test(&xs).passes(0.01));
        assert!(!chi_square_test_normal(&xs, 0.0, sigma, 20).passes(0.01));
    }

    #[test]
    fn wrong_scale_is_detected() {
        let xs = gaussian_samples(20_000, 3);
        assert!(!ks_test_normal(&xs, 0.0, 2.0).passes(0.01), "σ twice too large");
        assert!(!ks_test_normal(&xs, 1.0, 1.0).passes(0.01), "mean off by 1");
    }

    #[test]
    fn shifted_data_passes_with_matching_parameters() {
        let xs: Vec<f64> = gaussian_samples(20_000, 4).iter().map(|&x| 5.0 + 2.0 * x).collect();
        assert!(ks_test_normal(&xs, 5.0, 2.0).passes(0.01));
        assert!(chi_square_test_normal(&xs, 5.0, 2.0, 15).passes(0.01));
    }

    #[test]
    fn kolmogorov_q_anchors() {
        // Q(λ) ≈ 1 for tiny λ, → 0 for large λ; critical value Q(1.36)≈0.05.
        assert!((kolmogorov_q(0.1) - 1.0).abs() < 1e-12);
        assert!(kolmogorov_q(3.0) < 1e-6);
        let q = kolmogorov_q(1.36);
        assert!((q - 0.05).abs() < 0.003, "Q(1.36) = {q}");
    }

    #[test]
    fn p_values_are_probabilities() {
        let xs = gaussian_samples(5_000, 5);
        for t in [
            ks_test_normal(&xs, 0.0, 1.0),
            chi_square_test_normal(&xs, 0.0, 1.0, 10),
            jarque_bera_test(&xs),
        ] {
            assert!((0.0..=1.0).contains(&t.p_value), "p = {}", t.p_value);
            assert!(t.statistic >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_ks_rejected() {
        ks_test_normal(&[], 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "5 samples per bin")]
    fn tiny_chi_square_rejected() {
        chi_square_test_normal(&[0.0; 10], 0.0, 1.0, 10);
    }
}
