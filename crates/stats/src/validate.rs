//! Region-wise validation of generated surfaces against target statistics.
//!
//! This is the quantitative backbone of EXPERIMENTS.md: for every
//! homogeneous sub-region of a paper figure we cut the window, estimate
//! `ĥ` and the correlation lengths, and compare with the spectrum the
//! generator was asked for.

use crate::autocorr::autocorrelation_lags_with_mean;
use crate::fit::estimate_correlation_length;
use crate::moments::Moments;
use rrs_grid::Grid2;
use rrs_spectrum::{Spectrum, SurfaceParams};

/// Measured-vs-target statistics for one region.
#[derive(Clone, Debug)]
pub struct RegionReport {
    /// Target parameters.
    pub target: SurfaceParams,
    /// Where the *model's* normalised correlation crosses `1/e` along x.
    /// Equals `clx` for Gaussian and Exponential spectra; ≈ `1.59·clx`
    /// for the 3rd-order Power-Law, whose correlation decays more slowly.
    /// This is the number `clx_measured` should be compared against.
    pub clx_expected: f64,
    /// The `1/e` crossing along y.
    pub cly_expected: f64,
    /// Measured height standard deviation.
    pub h_measured: f64,
    /// Measured mean (should be ≈ 0).
    pub mean_measured: f64,
    /// Estimated correlation length along `x`, if the window resolved it.
    pub clx_measured: Option<f64>,
    /// Estimated correlation length along `y`, if the window resolved it.
    pub cly_measured: Option<f64>,
    /// Skewness (≈ 0 for a Gaussian surface).
    pub skewness: f64,
    /// Kurtosis (≈ 3 for a Gaussian surface).
    pub kurtosis: f64,
    /// Number of samples in the window.
    pub samples: usize,
}

/// The lag at which the model's normalised correlation along the given
/// axis first crosses `1/e`; falls back to the nominal correlation length
/// when no crossing brackets within `20·cl`.
pub fn expected_inv_e_crossing<S: Spectrum + ?Sized>(spectrum: &S, along_x: bool) -> f64 {
    let p = spectrum.params();
    let cl = if along_x { p.clx } else { p.cly };
    if p.h == 0.0 {
        return cl;
    }
    let g = |r: f64| {
        let c = if along_x {
            spectrum.correlation(r, 0.0)
        } else {
            spectrum.correlation(0.0, r)
        };
        c - crate::fit::INV_E
    };
    match rrs_num::roots::brent(g, 1e-9 * cl, 20.0 * cl, 1e-9 * cl, 200) {
        Ok(root) => root.x,
        Err(_) => cl,
    }
}

impl RegionReport {
    /// Relative error of the measured height standard deviation.
    pub fn h_rel_error(&self) -> f64 {
        if self.target.h == 0.0 {
            return self.h_measured.abs();
        }
        (self.h_measured - self.target.h).abs() / self.target.h
    }

    /// Relative error of the measured x correlation length against the
    /// model's expected `1/e` crossing (`None` when unresolved).
    pub fn clx_rel_error(&self) -> Option<f64> {
        self.clx_measured.map(|m| (m - self.clx_expected).abs() / self.clx_expected)
    }

    /// Relative error of the measured y correlation length.
    pub fn cly_rel_error(&self) -> Option<f64> {
        self.cly_measured.map(|m| (m - self.cly_expected).abs() / self.cly_expected)
    }

    /// The approximate number of statistically independent patches in the
    /// window — the quantity that sets estimator tolerances.
    pub fn independent_patches(&self, window: (usize, usize)) -> f64 {
        let (wx, wy) = window;
        (wx as f64 / self.target.clx) * (wy as f64 / self.target.cly)
    }
}

/// Validates the rectangular window `[x0, x0+w) × [y0, y0+h)` of `surface`
/// against the statistics of `spectrum`.
///
/// # Panics
/// Panics if the window is out of bounds or empty.
pub fn validate_region<S: Spectrum + ?Sized>(
    surface: &Grid2<f64>,
    spectrum: &S,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
) -> RegionReport {
    assert!(w > 0 && h > 0, "validation window must be non-empty");
    let window = surface.window(x0, y0, w, h);
    let mut m = Moments::new();
    m.push_all(window.as_slice());
    let target = spectrum.params();

    // The generated process has known mean zero, so the height variance
    // is the *raw* second moment — this avoids the (1 − 1/k) downward
    // bias of sample-mean subtraction on windows holding only k
    // correlation patches.
    let raw_var = window.as_slice().iter().map(|&v| v * v).sum::<f64>()
        / window.len() as f64;

    // Correlation lengths from open-boundary, zero-mean autocorrelation
    // profiles along each axis (unbiased, unlike the periodic FFT
    // estimate which wraps window edges together).
    let (clx_measured, cly_measured) = if raw_var > 0.0 {
        let max_lag_x = (w / 2).max(1);
        let max_lag_y = (h / 2).max(1);
        let lags_x: Vec<(i64, i64)> = (0..=max_lag_x as i64).map(|d| (d, 0)).collect();
        let lags_y: Vec<(i64, i64)> = (0..=max_lag_y as i64).map(|d| (0, d)).collect();
        let cx = autocorrelation_lags_with_mean(&window, &lags_x, 0.0);
        let cy = autocorrelation_lags_with_mean(&window, &lags_y, 0.0);
        let px: Vec<f64> = cx.iter().map(|&v| v / cx[0]).collect();
        let py: Vec<f64> = cy.iter().map(|&v| v / cy[0]).collect();
        (estimate_correlation_length(&px, 1.0), estimate_correlation_length(&py, 1.0))
    } else {
        (None, None)
    };

    RegionReport {
        target,
        clx_expected: expected_inv_e_crossing(spectrum, true),
        cly_expected: expected_inv_e_crossing(spectrum, false),
        h_measured: raw_var.sqrt(),
        mean_measured: m.mean(),
        clx_measured,
        cly_measured,
        skewness: m.skewness(),
        kurtosis: m.kurtosis(),
        samples: w * h,
    }
}

/// Ensemble variant of [`validate_region`]: aggregates over several
/// realisations supplied by `make_surface(seed)`, averaging the measured
/// variance and correlation-length estimates. This is the estimator the
/// `reproduce` harness uses — the per-seed fluctuation of `ĥ` on a
/// window holding `k` correlation patches is `O(h/√k)`, and averaging
/// `R` seeds shrinks it by `√R`.
pub fn validate_region_ensemble<S, F>(
    make_surface: F,
    spectrum: &S,
    seeds: core::ops::Range<u64>,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
) -> RegionReport
where
    S: Spectrum + ?Sized,
    F: Fn(u64) -> Grid2<f64>,
{
    assert!(seeds.start < seeds.end, "ensemble needs at least one seed");
    let reports: Vec<RegionReport> = seeds
        .map(|seed| validate_region(&make_surface(seed), spectrum, x0, y0, w, h))
        .collect();
    aggregate_reports(spectrum.params(), &reports)
}

/// Combines per-realisation [`RegionReport`]s into one ensemble report:
/// variances average (so `ĥ` is the root-mean of squared estimates),
/// correlation-length estimates average over the seeds that resolved
/// one, and sample counts add.
///
/// # Panics
/// Panics on an empty slice.
pub fn aggregate_reports(target: SurfaceParams, reports: &[RegionReport]) -> RegionReport {
    assert!(!reports.is_empty(), "cannot aggregate zero reports");
    let n = reports.len() as f64;
    let var = reports.iter().map(|r| r.h_measured * r.h_measured).sum::<f64>() / n;
    let mean = reports.iter().map(|r| r.mean_measured).sum::<f64>() / n;
    let skew = reports.iter().map(|r| r.skewness).sum::<f64>() / n;
    let kurt = reports.iter().map(|r| r.kurtosis).sum::<f64>() / n;
    let avg_opt = |get: fn(&RegionReport) -> Option<f64>| -> Option<f64> {
        let vals: Vec<f64> = reports.iter().filter_map(get).collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    };
    RegionReport {
        target,
        clx_expected: reports[0].clx_expected,
        cly_expected: reports[0].cly_expected,
        h_measured: var.sqrt(),
        mean_measured: mean,
        clx_measured: avg_opt(|r| r.clx_measured),
        cly_measured: avg_opt(|r| r.cly_measured),
        skewness: skew,
        kurtosis: kurt,
        samples: reports.iter().map(|r| r.samples).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::{Exponential, Gaussian, GridSpec};
    use rrs_surface::DirectDftGenerator;

    #[test]
    fn homogeneous_gaussian_surface_validates() {
        let p = SurfaceParams::isotropic(1.5, 8.0);
        let s = Gaussian::new(p);
        let f = DirectDftGenerator::with_workers(s, GridSpec::unit(256, 256), 1).generate(5);
        let r = validate_region(&f, &s, 0, 0, 256, 256);
        assert!(r.h_rel_error() < 0.15, "ĥ = {}", r.h_measured);
        assert!(r.clx_rel_error().expect("clx resolved") < 0.25, "ĉl = {:?}", r.clx_measured);
        assert!(r.cly_rel_error().expect("cly resolved") < 0.25);
        assert!(r.skewness.abs() < 0.5);
        assert!((r.kurtosis - 3.0).abs() < 1.0);
        assert_eq!(r.samples, 256 * 256);
    }

    #[test]
    fn exponential_surface_validates() {
        let p = SurfaceParams::isotropic(1.0, 10.0);
        let s = Exponential::new(p);
        let f = DirectDftGenerator::with_workers(s, GridSpec::unit(256, 256), 1).generate(9);
        let r = validate_region(&f, &s, 0, 0, 256, 256);
        assert!(r.h_rel_error() < 0.2, "ĥ = {}", r.h_measured);
        // The exponential profile has a sharp tip; the 1/e crossing is
        // still close to cl on a large window.
        let clx = r.clx_measured.expect("clx resolved");
        assert!((clx - 10.0).abs() < 4.0, "ĉlx = {clx}");
    }

    #[test]
    fn anisotropic_lengths_are_separated() {
        let p = SurfaceParams::new(1.0, 20.0, 5.0);
        let s = Gaussian::new(p);
        let f = DirectDftGenerator::with_workers(s, GridSpec::unit(512, 512), 1).generate(2);
        let r = validate_region(&f, &s, 0, 0, 512, 512);
        let clx = r.clx_measured.unwrap();
        let cly = r.cly_measured.unwrap();
        assert!(clx > 2.0 * cly, "clx {clx} vs cly {cly}");
    }

    #[test]
    fn sub_window_validation() {
        let p = SurfaceParams::isotropic(1.0, 5.0);
        let s = Gaussian::new(p);
        let f = DirectDftGenerator::with_workers(s, GridSpec::unit(256, 256), 1).generate(4);
        let r = validate_region(&f, &s, 64, 64, 128, 128);
        assert_eq!(r.samples, 128 * 128);
        assert!(r.h_rel_error() < 0.25);
    }

    #[test]
    fn flat_surface_reports_zero() {
        let f = Grid2::zeros(32, 32);
        let s = Gaussian::new(SurfaceParams::isotropic(0.0, 5.0));
        let r = validate_region(&f, &s, 0, 0, 32, 32);
        assert_eq!(r.h_measured, 0.0);
        assert_eq!(r.clx_measured, None);
        assert_eq!(r.h_rel_error(), 0.0);
    }

    #[test]
    fn window_too_small_for_cl_returns_none() {
        let p = SurfaceParams::isotropic(1.0, 100.0);
        let s = Gaussian::new(p);
        let f = DirectDftGenerator::with_workers(s, GridSpec::unit(64, 64), 1).generate(4);
        let r = validate_region(&f, &s, 0, 0, 64, 64);
        // Profile max lag is 16 << cl: no 1/e crossing possible.
        assert_eq!(r.clx_measured, None);
    }

    #[test]
    fn independent_patches_helper() {
        let r = RegionReport {
            target: SurfaceParams::isotropic(1.0, 10.0),
            clx_expected: 10.0,
            cly_expected: 10.0,
            h_measured: 1.0,
            mean_measured: 0.0,
            clx_measured: None,
            cly_measured: None,
            skewness: 0.0,
            kurtosis: 3.0,
            samples: 0,
        };
        assert_eq!(r.independent_patches((100, 200)), 200.0);
    }
}
