//! Empirical autocorrelation estimation.
//!
//! Two estimators with different boundary semantics:
//!
//! * [`autocorrelation_lags`] — direct `O(lags · N)` evaluation at chosen
//!   axis-aligned lags with **open** boundaries (only overlapping samples
//!   contribute), appropriate for windows cut from a larger surface;
//! * [`autocorrelation_fft`] — the full **periodic** autocorrelation in
//!   `O(N log N)` via `IDFT(|DFT(f)|²)/N`, appropriate for direct-DFT
//!   surfaces, which are periodic by construction.
//!
//! Both subtract the sample mean first and return *covariances* (`ρ̂(0)` is
//! the height variance `ĥ²`, matching the paper's `ρ(0) = h²` convention).

use rrs_fft::{Direction, FftPlanCache};
use rrs_grid::Grid2;
use rrs_num::Complex64;

/// Direct autocorrelation estimate at the given integer lags, open
/// boundaries. Returns one covariance per requested `(dx, dy)`.
pub fn autocorrelation_lags(f: &Grid2<f64>, lags: &[(i64, i64)]) -> Vec<f64> {
    autocorrelation_lags_with_mean(f, lags, f.mean())
}

/// Like [`autocorrelation_lags`] but with a caller-supplied process mean.
///
/// Passing the *known* mean (0 for every generator in this workspace)
/// removes the small-window downward bias of subtracting the sample mean,
/// which matters when the window holds only a few correlation lengths.
pub fn autocorrelation_lags_with_mean(
    f: &Grid2<f64>,
    lags: &[(i64, i64)],
    mean: f64,
) -> Vec<f64> {
    let (nx, ny) = f.shape();
    lags.iter()
        .map(|&(dx, dy)| {
            let mut acc = rrs_num::KahanSum::new();
            let mut count = 0u64;
            // Overlap region of the shifted grids.
            let x_range = overlap(nx, dx);
            let y_range = overlap(ny, dy);
            for iy in y_range.clone() {
                let jy = (iy as i64 + dy) as usize;
                for ix in x_range.clone() {
                    let jx = (ix as i64 + dx) as usize;
                    acc.add((*f.get(ix, iy) - mean) * (*f.get(jx, jy) - mean));
                    count += 1;
                }
            }
            if count == 0 {
                0.0
            } else {
                acc.value() / count as f64
            }
        })
        .collect()
}

fn overlap(n: usize, d: i64) -> core::ops::Range<usize> {
    if d >= 0 {
        let d = (d as usize).min(n);
        0..n - d
    } else {
        let d = ((-d) as usize).min(n);
        d..n
    }
}

/// Full periodic autocorrelation via the Wiener–Khinchin relation:
/// `ρ̂ = IDFT(|DFT(f − mean)|²) / (Nx·Ny)`. The output grid holds the
/// covariance at lag `(dx, dy)` in DFT bin order (use
/// [`rrs_fft::spectral::fold_index`] for the physical lag of a bin).
pub fn autocorrelation_fft(f: &Grid2<f64>) -> Grid2<f64> {
    let (nx, ny) = f.shape();
    let mean = f.mean();
    let mut buf: Vec<Complex64> =
        f.as_slice().iter().map(|&v| Complex64::from_re(v - mean)).collect();
    // Drawn from the process-wide plan cache: ensemble loops call this
    // once per realisation on the same lattice, and recomputing twiddles
    // each time dominated the estimator's cost.
    let fft = FftPlanCache::global().plan(nx, ny, 1);
    fft.process(&mut buf, Direction::Forward);
    for z in &mut buf {
        *z = Complex64::from_re(z.norm_sqr());
    }
    fft.process(&mut buf, Direction::Inverse);
    let norm = 1.0 / (nx * ny) as f64;
    Grid2::from_vec(nx, ny, buf.into_iter().map(|z| z.re * norm).collect())
}

/// Extracts the normalised correlation profile `ρ̂(lag)/ρ̂(0)` along the
/// `x` axis from a periodic autocorrelation grid, up to `max_lag`.
pub fn correlation_profile_x(acf: &Grid2<f64>, max_lag: usize) -> Vec<f64> {
    let (nx, _) = acf.shape();
    let c0 = *acf.get(0, 0);
    assert!(c0 > 0.0, "zero-variance surface has no correlation profile");
    (0..=max_lag.min(nx / 2)).map(|d| *acf.get(d, 0) / c0).collect()
}

/// Same along `y`.
pub fn correlation_profile_y(acf: &Grid2<f64>, max_lag: usize) -> Vec<f64> {
    let (_, ny) = acf.shape();
    let c0 = *acf.get(0, 0);
    assert!(c0 > 0.0, "zero-variance surface has no correlation profile");
    (0..=max_lag.min(ny / 2)).map(|d| *acf.get(0, d) / c0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine_surface(nx: usize, ny: usize, kx: f64) -> Grid2<f64> {
        Grid2::from_fn(nx, ny, |ix, _| (core::f64::consts::TAU * kx * ix as f64 / nx as f64).cos())
    }

    #[test]
    fn zero_lag_is_variance() {
        let f = cosine_surface(64, 16, 4.0);
        let var = f.variance();
        let direct = autocorrelation_lags(&f, &[(0, 0)])[0];
        assert!((direct - var).abs() < 1e-12);
        let acf = autocorrelation_fft(&f);
        assert!((*acf.get(0, 0) - var).abs() < 1e-10);
    }

    #[test]
    fn cosine_has_cosine_autocorrelation() {
        // f = cos(2π·4x/N): periodic ACF is (1/2)cos(2π·4d/N).
        let n = 64;
        let f = cosine_surface(n, 8, 4.0);
        let acf = autocorrelation_fft(&f);
        for d in 0..16usize {
            let expect = 0.5 * (core::f64::consts::TAU * 4.0 * d as f64 / n as f64).cos();
            let got = *acf.get(d, 0);
            assert!((got - expect).abs() < 1e-9, "lag {d}: {got} vs {expect}");
        }
    }

    #[test]
    fn fft_and_direct_agree_for_small_lags() {
        // On a big window the open-boundary direct estimate converges to
        // the periodic one at small lags.
        let n = 128;
        let f = Grid2::from_fn(n, n, |ix, iy| {
            ((ix * 13 + iy * 7) % 31) as f64 * 0.1 + ((ix * 3 + iy * 17) % 17) as f64 * 0.05
        });
        let acf = autocorrelation_fft(&f);
        let lags = [(1i64, 0i64), (2, 0), (0, 1), (3, 2)];
        let direct = autocorrelation_lags(&f, &lags);
        for (&(dx, dy), &d) in lags.iter().zip(&direct) {
            let p = *acf.get(dx as usize, dy as usize);
            // Boundary-handling differences scale with lag/size; this is
            // a consistency check, not an equality.
            assert!((d - p).abs() < 0.2 * p.abs().max(0.2), "lag ({dx},{dy}): {d} vs {p}");
        }
    }

    #[test]
    fn negative_lags_mirror_positive_for_real_fields() {
        let f = Grid2::from_fn(32, 32, |ix, iy| ((ix * iy) % 7) as f64);
        let pos = autocorrelation_lags(&f, &[(3, 2)])[0];
        let neg = autocorrelation_lags(&f, &[(-3, -2)])[0];
        assert!((pos - neg).abs() < 1e-12);
    }

    #[test]
    fn mean_is_removed() {
        // Adding a constant must not change covariances.
        let f = Grid2::from_fn(32, 32, |ix, iy| ((ix + 2 * iy) % 5) as f64);
        let g = f.map(|&v| v + 100.0);
        let a = autocorrelation_lags(&f, &[(1, 0), (0, 2)]);
        let b = autocorrelation_lags(&g, &[(1, 0), (0, 2)]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn profiles_start_at_one() {
        let f = cosine_surface(64, 64, 3.0);
        let acf = autocorrelation_fft(&f);
        let px = correlation_profile_x(&acf, 10);
        let py = correlation_profile_y(&acf, 10);
        assert!((px[0] - 1.0).abs() < 1e-12);
        assert!((py[0] - 1.0).abs() < 1e-12);
        assert_eq!(px.len(), 11);
    }

    #[test]
    fn lag_larger_than_grid_gives_zero() {
        let f = Grid2::from_fn(8, 8, |ix, _| ix as f64);
        let c = autocorrelation_lags(&f, &[(100, 0)])[0];
        assert_eq!(c, 0.0);
    }
}
