//! Correlation-length estimation.
//!
//! All three spectrum families share the property `ρ(cl, 0)/ρ(0) = 1/e`
//! along a principal axis (Gaussian: `exp(−(x/cl)²)`; Exponential:
//! `exp(−x/cl)`; for the Power-Law family the `1/e` crossing defines an
//! *effective* correlation length close to `cl`). The estimator finds the
//! first `1/e` crossing of the measured normalised correlation profile by
//! monotone bracketing + Brent refinement on the interpolated curve.

use rrs_num::interp::interp1;
use rrs_num::roots::brent;

/// The `1/e` threshold.
pub const INV_E: f64 = 0.367_879_441_171_442_33;

/// Estimates the correlation length from a normalised correlation profile
/// `profile[d] = ρ̂(d·spacing)/ρ̂(0)` sampled at uniform lags.
///
/// Returns `None` when the profile never falls below `1/e` inside the
/// sampled range (correlation length beyond the window) or when the
/// profile is degenerate.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // negation also rejects NaN profiles
pub fn estimate_correlation_length(profile: &[f64], spacing: f64) -> Option<f64> {
    if profile.len() < 2 || !(profile[0] > INV_E) {
        return None;
    }
    // Find the first bracketing interval.
    let cross = profile.windows(2).position(|w| w[0] > INV_E && w[1] <= INV_E)?;
    let xs: Vec<f64> = (0..profile.len()).map(|i| i as f64 * spacing).collect();
    let x0 = xs[cross];
    let x1 = xs[cross + 1];
    let g = |x: f64| interp1(&xs, profile, x) - INV_E;
    match brent(g, x0, x1, 1e-10 * spacing.max(1.0), 200) {
        Ok(root) => Some(root.x),
        // Piecewise-linear curves can place the crossing exactly on a
        // knot; fall back to linear inversion.
        Err(_) => {
            let f0 = profile[cross];
            let f1 = profile[cross + 1];
            Some(x0 + (x1 - x0) * (f0 - INV_E) / (f0 - f1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_gaussian_profile() {
        let cl = 12.5;
        let profile: Vec<f64> =
            (0..100).map(|d| (-((d as f64 / cl) * (d as f64 / cl))).exp()).collect();
        let est = estimate_correlation_length(&profile, 1.0).unwrap();
        assert!((est - cl).abs() < 0.02, "estimated {est}");
    }

    #[test]
    fn exact_exponential_profile() {
        let cl = 7.0;
        let profile: Vec<f64> = (0..100).map(|d| (-(d as f64) / cl).exp()).collect();
        let est = estimate_correlation_length(&profile, 1.0).unwrap();
        assert!((est - cl).abs() < 0.05, "estimated {est}");
    }

    #[test]
    fn spacing_scales_the_answer() {
        let cl = 5.0;
        let spacing = 0.5;
        let profile: Vec<f64> =
            (0..100).map(|d| (-(d as f64 * spacing) / cl).exp()).collect();
        let est = estimate_correlation_length(&profile, spacing).unwrap();
        assert!((est - cl).abs() < 0.05, "estimated {est}");
    }

    #[test]
    fn no_crossing_returns_none() {
        let profile = vec![1.0, 0.9, 0.8, 0.7, 0.6];
        assert_eq!(estimate_correlation_length(&profile, 1.0), None);
    }

    #[test]
    fn degenerate_profiles_return_none() {
        assert_eq!(estimate_correlation_length(&[], 1.0), None);
        assert_eq!(estimate_correlation_length(&[1.0], 1.0), None);
        assert_eq!(estimate_correlation_length(&[0.1, 0.05], 1.0), None);
    }

    #[test]
    fn noisy_profile_is_still_close() {
        let cl = 10.0;
        let profile: Vec<f64> = (0..80)
            .map(|d| {
                let x = d as f64;
                (-(x / cl) * (x / cl)).exp() + 0.01 * ((d * 7919) % 13) as f64 / 13.0 - 0.005
            })
            .collect();
        let est = estimate_correlation_length(&profile, 1.0).unwrap();
        assert!((est - cl).abs() < 0.5, "estimated {est}");
    }

    #[test]
    fn crossing_exactly_on_knot() {
        // profile hits INV_E exactly at index 3.
        let profile = vec![1.0, 0.8, 0.5, INV_E, 0.2];
        let est = estimate_correlation_length(&profile, 1.0).unwrap();
        assert!((est - 3.0).abs() < 1e-6, "estimated {est}");
    }
}
