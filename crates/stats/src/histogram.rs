//! Fixed-bin histograms for height distributions.

/// A histogram over `[lo, hi)` with uniform bins plus under/overflow
/// counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `hi > lo` and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins >= 1, "histogram needs at least one bin");
        Self { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let t = (x - self.lo) / (self.hi - self.lo);
        let i = ((t * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[i] += 1;
    }

    /// Adds every sample of a slice.
    pub fn push_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples seen, including out-of-range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Normalised density value of bin `i` (integrates to the in-range
    /// fraction).
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / (total as f64 * self.bin_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push_all(&[0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn bin_geometry() {
        let h = Histogram::new(-1.0, 1.0, 4);
        assert_eq!(h.bin_width(), 0.5);
        assert!((h.bin_center(0) - (-0.75)).abs() < 1e-15);
        assert!((h.bin_center(3) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn density_integrates_to_one_for_in_range_data() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        for i in 0..1000 {
            h.push((i as f64 + 0.5) / 1000.0);
        }
        let integral: f64 = (0..20).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_values() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(0.0); // first bin
        h.push(0.5); // second bin
        h.push(1.0 - 1e-12); // second bin
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
