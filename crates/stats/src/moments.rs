//! Streaming sample moments (Welford / Terriberry update).

/// Accumulates mean, variance, skewness and excess-free kurtosis in one
/// numerically stable pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Accumulates a slice.
    pub fn push_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Builds from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Self::new();
        m.push_all(xs);
        m
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&self, other: &Self) -> Self {
        if other.n == 0 {
            return *self;
        }
        if self.n == 0 {
            return *other;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        Self { n: self.n + other.n, mean, m2, m3, m4 }
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (division by `n`).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.m2 / self.n as f64
    }

    /// Unbiased sample variance (division by `n − 1`).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.m2 / (self.n - 1) as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample skewness `m3 / m2^{3/2}` (0 for symmetric data).
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Sample kurtosis `n·m4 / m2²` (3 for a Gaussian).
    pub fn kurtosis(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_num::approx::assert_close;

    #[test]
    fn empty_moments_are_zero() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.skewness(), 0.0);
    }

    #[test]
    fn simple_known_values() {
        let m = Moments::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.count(), 4);
        assert_close(m.mean(), 2.5, 1e-14);
        assert_close(m.variance(), 1.25, 1e-14);
        assert_close(m.sample_variance(), 5.0 / 3.0, 1e-14);
        assert!(m.skewness().abs() < 1e-12);
    }

    #[test]
    fn constant_data() {
        let m = Moments::from_slice(&[7.0; 100]);
        assert_close(m.mean(), 7.0, 1e-14);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.kurtosis(), 0.0);
    }

    #[test]
    fn skewed_data_has_positive_skewness() {
        // Exponential-ish data: skewness ≈ 2, kurtosis ≈ 9.
        let xs: Vec<f64> = (1..10_000).map(|i| -((i as f64) / 10_000.0).ln()).collect();
        let m = Moments::from_slice(&xs);
        assert!((m.mean() - 1.0).abs() < 0.02, "mean {}", m.mean());
        assert!((m.skewness() - 2.0).abs() < 0.2, "skew {}", m.skewness());
        assert!((m.kurtosis() - 9.0).abs() < 1.0, "kurt {}", m.kurtosis());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.1).collect();
        let whole = Moments::from_slice(&xs);
        let a = Moments::from_slice(&xs[..300]);
        let b = Moments::from_slice(&xs[300..]);
        let merged = a.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert_close(merged.mean(), whole.mean(), 1e-12);
        assert_close(merged.variance(), whole.variance(), 1e-12);
        assert_close(merged.skewness(), whole.skewness(), 1e-9);
        assert_close(merged.kurtosis(), whole.kurtosis(), 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let m = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let e = Moments::new();
        let a = m.merge(&e);
        let b = e.merge(&m);
        assert_close(a.mean(), m.mean(), 1e-15);
        assert_close(b.variance(), m.variance(), 1e-15);
    }

    #[test]
    fn shift_invariance_of_central_moments() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).sin()).collect();
        let shifted: Vec<f64> = xs.iter().map(|&x| x + 1e6).collect();
        let a = Moments::from_slice(&xs);
        let b = Moments::from_slice(&shifted);
        assert!((a.variance() - b.variance()).abs() < 1e-4, "catastrophic cancellation");
    }
}
