//! Statistical validation of generated surfaces.
//!
//! The paper demonstrates its generator with pictures; this crate supplies
//! the quantitative checks the pictures imply:
//!
//! * [`moments`] — streaming mean/variance/skewness/kurtosis (Welford);
//! * [`autocorr`] — empirical autocorrelation, both direct (chosen lags,
//!   open boundaries) and FFT-based (all lags, periodic);
//! * [`fit`] — correlation-length estimation from the measured
//!   autocorrelation's `1/e` crossing;
//! * [`periodogram`] — spectral density estimation from realisations
//!   (the inverse check: the generator writes the spectrum it was asked
//!   for);
//! * [`histogram`] — binned height distributions;
//! * [`normality`] — Kolmogorov–Smirnov, χ² and Jarque–Bera tests that the
//!   heights are Gaussian (they must be: the generator is linear in
//!   Gaussian noise);
//! * [`validate`] — region-wise comparison of a generated surface against
//!   its target statistics, the backbone of EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod autocorr;
pub mod fit;
pub mod histogram;
pub mod moments;
pub mod normality;
pub mod periodogram;
pub mod slopes;
pub mod validate;

pub use autocorr::{autocorrelation_fft, autocorrelation_lags, autocorrelation_lags_with_mean};
pub use fit::estimate_correlation_length;
pub use histogram::Histogram;
pub use moments::Moments;
pub use periodogram::{periodogram, periodogram_ensemble, radial_profile};
pub use slopes::{rms_slope_x, rms_slope_y, structure_function_x, structure_function_y};
pub use validate::{validate_region, validate_region_ensemble, RegionReport};
