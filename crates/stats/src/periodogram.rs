//! Periodogram spectral estimation.
//!
//! The inverse check to everything else in the workspace: estimate the
//! spectral density `Ŵ(K)` *from* a generated surface and compare to the
//! model the generator was asked for. With the workspace conventions
//! (paper eqn 2),
//!
//! ```text
//! Ŵ(K_m) = (dx·dy)² · |DFT(f)|² / (4π² · Lx · Ly)
//! ```
//!
//! whose bin sum times the spectral cell `ΔKx·ΔKy` equals the sample
//! variance (discrete Parseval). A single periodogram is exponentially
//! distributed around `W` (100% relative noise); [`periodogram_ensemble`]
//! averages realisations, and [`radial_profile`] bins by `|K|` for
//! isotropic comparisons.

use rrs_fft::{Direction, FftPlanCache};
use rrs_grid::Grid2;
use rrs_num::Complex64;
use rrs_spectrum::GridSpec;

/// The raw periodogram of one surface realisation, in DFT bin order.
/// The surface mean is removed first (the `K = 0` bin would otherwise
/// hold the squared mean, which is not part of `W`).
pub fn periodogram(f: &Grid2<f64>, spec: GridSpec) -> Grid2<f64> {
    let (nx, ny) = f.shape();
    assert_eq!((nx, ny), (spec.nx, spec.ny), "surface does not match the lattice spec");
    let mean = f.mean();
    let mut buf: Vec<Complex64> =
        f.as_slice().iter().map(|&v| Complex64::from_re(v - mean)).collect();
    // Ensemble averaging transforms the same lattice once per seed; the
    // process-wide plan cache keeps the twiddle/bit-reversal tables alive
    // across realisations.
    FftPlanCache::global().plan(nx, ny, 1).process(&mut buf, Direction::Forward);
    let norm = (spec.dx * spec.dy).powi(2)
        / (4.0 * core::f64::consts::PI * core::f64::consts::PI * spec.lx() * spec.ly());
    Grid2::from_vec(nx, ny, buf.into_iter().map(|z| z.norm_sqr() * norm).collect())
}

/// Averages the periodograms of several realisations produced by
/// `make_surface(seed)`; the estimator's relative noise shrinks as
/// `1/√reps`.
pub fn periodogram_ensemble<F>(
    make_surface: F,
    spec: GridSpec,
    seeds: core::ops::Range<u64>,
) -> Grid2<f64>
where
    F: Fn(u64) -> Grid2<f64>,
{
    assert!(seeds.start < seeds.end, "ensemble needs at least one seed");
    let count = (seeds.end - seeds.start) as f64;
    let mut acc = Grid2::zeros(spec.nx, spec.ny);
    for seed in seeds {
        acc.add_assign(&periodogram(&make_surface(seed), spec));
    }
    acc.scale(1.0 / count);
    acc
}

/// Radially averages a periodogram into `bins` annuli of `|K|`; returns
/// `(k_center, mean Ŵ)` pairs for bins that received any samples.
pub fn radial_profile(pgram: &Grid2<f64>, spec: GridSpec, bins: usize) -> Vec<(f64, f64)> {
    assert!(bins >= 1, "need at least one bin");
    let k_nyquist_x = core::f64::consts::PI / spec.dx;
    let k_nyquist_y = core::f64::consts::PI / spec.dy;
    let k_max = k_nyquist_x.min(k_nyquist_y);
    let mut sums = vec![0.0f64; bins];
    let mut counts = vec![0usize; bins];
    for iy in 0..spec.ny {
        let ky = GridSpec::signed_frequency(iy, spec.ny, spec.ly());
        for ix in 0..spec.nx {
            let kx = GridSpec::signed_frequency(ix, spec.nx, spec.lx());
            let k = kx.hypot(ky);
            if k >= k_max {
                continue;
            }
            let b = ((k / k_max) * bins as f64) as usize;
            sums[b.min(bins - 1)] += *pgram.get(ix, iy);
            counts[b.min(bins - 1)] += 1;
        }
    }
    (0..bins)
        .filter(|&b| counts[b] > 0)
        .map(|b| {
            let k_center = (b as f64 + 0.5) / bins as f64 * k_max;
            (k_center, sums[b] / counts[b] as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::{Exponential, Gaussian, Spectrum, SurfaceParams};
    use rrs_surface::DirectDftGenerator;

    fn spec(n: usize) -> GridSpec {
        GridSpec::unit(n, n)
    }

    #[test]
    fn periodogram_satisfies_parseval() {
        // Σ Ŵ · ΔK² = sample variance, exactly.
        let p = SurfaceParams::isotropic(1.3, 6.0);
        let f = DirectDftGenerator::new(Gaussian::new(p), spec(64)).generate(3);
        let pg = periodogram(&f, spec(64));
        let cell = (core::f64::consts::TAU / 64.0).powi(2);
        let total: f64 = pg.as_slice().iter().sum::<f64>() * cell;
        assert!(
            (total - f.variance()).abs() < 1e-9 * f.variance(),
            "Parseval: {total} vs {}",
            f.variance()
        );
    }

    #[test]
    fn ensemble_periodogram_recovers_the_model_density() {
        // The headline property: averaging many periodograms converges to
        // W(K) — the generator writes the spectrum it was asked for.
        let params = SurfaceParams::isotropic(1.0, 6.0);
        let s = Gaussian::new(params);
        let n = 128;
        let gen = DirectDftGenerator::with_workers(s, spec(n), 1);
        let pg = periodogram_ensemble(|seed| gen.generate(seed), spec(n), 0..24);
        // Compare at a spread of bins (skip K=0, whose mean was removed).
        for &(ix, iy) in &[(2usize, 0usize), (4, 3), (0, 6), (8, 8), (12, 0)] {
            let kx = GridSpec::signed_frequency(ix, n, n as f64);
            let ky = GridSpec::signed_frequency(iy, n, n as f64);
            let model = s.density(kx, ky);
            let got = *pg.get(ix, iy);
            // 24 realisations ⇒ ~20% noise per bin.
            assert!(
                (got - model).abs() < 0.5 * model.max(1e-4),
                "bin ({ix},{iy}): Ŵ = {got}, W = {model}"
            );
        }
    }

    #[test]
    fn radial_profile_tracks_isotropic_decay() {
        let params = SurfaceParams::isotropic(1.0, 8.0);
        let s = Exponential::new(params);
        let n = 128;
        let gen = DirectDftGenerator::with_workers(s, spec(n), 1);
        let pg = periodogram_ensemble(|seed| gen.generate(100 + seed), spec(n), 0..16);
        let profile = radial_profile(&pg, spec(n), 16);
        assert!(profile.len() >= 12);
        // Monotone-ish decay: first annulus well above the last.
        let first = profile[0].1;
        let last = profile[profile.len() - 1].1;
        assert!(first > 10.0 * last, "profile must decay: {first} vs {last}");
        // And the values match the model at the bin centres (radially
        // averaged, so compare against the model's own annulus average).
        for &(k, w) in profile.iter().take(6).skip(1) {
            let model = s.density(k, 0.0);
            assert!(
                (w - model).abs() < 0.5 * model.max(1e-4),
                "k={k}: Ŵ = {w}, W = {model}"
            );
        }
    }

    #[test]
    fn white_noise_has_flat_spectrum() {
        use rrs_surface::NoiseField;
        let n = 128usize;
        let noise = NoiseField::new(5);
        let make = |seed: u64| {
            let nf = NoiseField::new(seed);
            Grid2::from_fn(n, n, |x, y| nf.at(x as i64, y as i64))
        };
        let _ = noise;
        let pg = periodogram_ensemble(make, spec(n), 0..12);
        // W_white = σ²/(4π²)·dx·dy = 1/(4π²) per unit cell.
        let expect = 1.0 / (4.0 * core::f64::consts::PI * core::f64::consts::PI);
        let profile = radial_profile(&pg, spec(n), 8);
        for &(k, w) in &profile {
            assert!((w - expect).abs() < 0.2 * expect, "k={k}: Ŵ = {w} vs flat {expect}");
        }
    }

    #[test]
    fn mean_removal_zeroes_the_dc_bin_for_constants() {
        let f = Grid2::filled(32, 32, 5.0);
        let pg = periodogram(&f, spec(32));
        assert!(pg.as_slice().iter().all(|&v| v.abs() < 1e-18));
    }

    #[test]
    #[should_panic(expected = "does not match the lattice")]
    fn shape_mismatch_rejected() {
        periodogram(&Grid2::zeros(16, 16), spec(32));
    }
}
