//! Slope statistics and the structure function.
//!
//! For a stationary field the *structure function* obeys the exact
//! lattice identity
//!
//! ```text
//! D(d) = E[(f(r + d) − f(r))²] = 2·(ρ(0) − ρ(d))
//! ```
//!
//! which holds for every spectrum family, differentiable or not — unlike
//! the continuum slope variance `−ρ''(0)`, which diverges for the
//! Exponential family. Comparing the measured structure function against
//! `2(ρ(0) − ρ(d))` is therefore a second, independent validation of the
//! generator (the first being the autocorrelation itself), and the RMS
//! slope at the sample spacing is `sqrt(D(Δ))/Δ`.

use rrs_grid::Grid2;
use rrs_spectrum::Spectrum;

/// Measured structure function `D̂(d)` along `x` at integer lag `d ≥ 1`.
pub fn structure_function_x(f: &Grid2<f64>, d: usize) -> f64 {
    assert!(d >= 1 && d < f.nx(), "lag must satisfy 1 <= d < nx");
    let (nx, ny) = f.shape();
    let mut acc = rrs_num::KahanSum::new();
    for iy in 0..ny {
        let row = f.row(iy);
        for ix in 0..nx - d {
            let diff = row[ix + d] - row[ix];
            acc.add(diff * diff);
        }
    }
    acc.value() / ((nx - d) * ny) as f64
}

/// Measured structure function along `y`.
pub fn structure_function_y(f: &Grid2<f64>, d: usize) -> f64 {
    assert!(d >= 1 && d < f.ny(), "lag must satisfy 1 <= d < ny");
    let (nx, ny) = f.shape();
    let mut acc = rrs_num::KahanSum::new();
    for iy in 0..ny - d {
        for ix in 0..nx {
            let diff = *f.get(ix, iy + d) - *f.get(ix, iy);
            acc.add(diff * diff);
        }
    }
    acc.value() / (nx * (ny - d)) as f64
}

/// The model's exact structure function `2(ρ(0) − ρ(d))` along `x`.
pub fn model_structure_function_x<S: Spectrum + ?Sized>(s: &S, d: f64) -> f64 {
    2.0 * (s.autocorrelation(0.0, 0.0) - s.autocorrelation(d, 0.0))
}

/// The model's exact structure function along `y`.
pub fn model_structure_function_y<S: Spectrum + ?Sized>(s: &S, d: f64) -> f64 {
    2.0 * (s.autocorrelation(0.0, 0.0) - s.autocorrelation(0.0, d))
}

/// Measured RMS slope along `x` at unit sample spacing:
/// `sqrt(D̂(1))/spacing`.
pub fn rms_slope_x(f: &Grid2<f64>, spacing: f64) -> f64 {
    assert!(spacing > 0.0, "spacing must be positive");
    structure_function_x(f, 1).sqrt() / spacing
}

/// Measured RMS slope along `y`.
pub fn rms_slope_y(f: &Grid2<f64>, spacing: f64) -> f64 {
    assert!(spacing > 0.0, "spacing must be positive");
    structure_function_y(f, 1).sqrt() / spacing
}

/// The model's RMS slope at sample spacing `spacing` along `x`.
pub fn model_rms_slope_x<S: Spectrum + ?Sized>(s: &S, spacing: f64) -> f64 {
    model_structure_function_x(s, spacing).sqrt() / spacing
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::{Exponential, Gaussian, GridSpec, SurfaceParams};
    use rrs_surface::DirectDftGenerator;

    #[test]
    fn flat_surface_has_zero_slope() {
        let f = Grid2::filled(16, 16, 3.0);
        assert_eq!(structure_function_x(&f, 1), 0.0);
        assert_eq!(rms_slope_y(&f, 1.0), 0.0);
    }

    #[test]
    fn linear_ramp_has_constant_slope() {
        let f = Grid2::from_fn(32, 8, |x, _| 0.5 * x as f64);
        assert!((rms_slope_x(&f, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(rms_slope_y(&f, 1.0), 0.0);
        // D(d) grows quadratically for a deterministic ramp.
        assert!((structure_function_x(&f, 4) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_surface_matches_model_structure_function() {
        let p = SurfaceParams::isotropic(1.2, 8.0);
        let s = Gaussian::new(p);
        let f = DirectDftGenerator::with_workers(s, GridSpec::unit(256, 256), 1).generate(3);
        for d in [1usize, 2, 4, 8] {
            let measured = structure_function_x(&f, d);
            let model = model_structure_function_x(&s, d as f64);
            assert!(
                (measured - model).abs() < 0.15 * model.max(0.01),
                "d={d}: measured {measured}, model {model}"
            );
        }
    }

    #[test]
    fn exponential_surface_is_rougher_at_small_scales() {
        // Same h and cl, but the exponential family has a much larger
        // small-lag structure function (it is not mean-square
        // differentiable in the continuum).
        let p = SurfaceParams::isotropic(1.0, 10.0);
        let dg = model_structure_function_x(&Gaussian::new(p), 1.0);
        let de = model_structure_function_x(&Exponential::new(p), 1.0);
        assert!(de > 5.0 * dg, "exponential D(1) {de} vs gaussian {dg}");
        // And the generated surfaces show it.
        let fg = DirectDftGenerator::with_workers(Gaussian::new(p), GridSpec::unit(256, 256), 1)
            .generate(5);
        let fe =
            DirectDftGenerator::with_workers(Exponential::new(p), GridSpec::unit(256, 256), 1)
                .generate(5);
        assert!(rms_slope_x(&fe, 1.0) > 1.5 * rms_slope_x(&fg, 1.0));
    }

    #[test]
    fn anisotropic_slopes_follow_axes() {
        let p = SurfaceParams::new(1.0, 24.0, 6.0);
        let s = Gaussian::new(p);
        let f = DirectDftGenerator::with_workers(s, GridSpec::unit(256, 256), 1).generate(9);
        // Short correlation along y ⇒ steeper slopes along y.
        assert!(rms_slope_y(&f, 1.0) > 2.0 * rms_slope_x(&f, 1.0));
    }

    #[test]
    #[should_panic(expected = "lag must satisfy")]
    fn oversized_lag_rejected() {
        structure_function_x(&Grid2::zeros(8, 8), 8);
    }
}
