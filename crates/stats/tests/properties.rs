//! Property-based tests for the statistics crate.

use rrs_check::{any, vec_of, VecOf};
use rrs_stats::{autocorrelation_lags, estimate_correlation_length, Histogram, Moments};

fn arb_samples() -> VecOf<std::ops::Range<f64>> {
    vec_of(-1e3f64..1e3, 2..400)
}

rrs_check::props! {
    #![cases = 128]

    fn moments_merge_is_order_independent(xs in arb_samples(), split in 0.0f64..1.0) {
        let cut = ((xs.len() as f64 * split) as usize).min(xs.len());
        let whole = Moments::from_slice(&xs);
        let a = Moments::from_slice(&xs[..cut]);
        let b = Moments::from_slice(&xs[cut..]);
        let ab = a.merge(&b);
        let ba = b.merge(&a);
        assert!((ab.mean() - whole.mean()).abs() < 1e-8 * whole.mean().abs().max(1.0));
        assert!((ab.variance() - whole.variance()).abs() < 1e-6 * whole.variance().max(1.0));
        assert!((ab.mean() - ba.mean()).abs() < 1e-10 * ab.mean().abs().max(1.0));
        assert_eq!(ab.count(), whole.count());
    }

    fn variance_is_nonnegative_and_zero_for_constants(c in -1e6f64..1e6, n in 2usize..100) {
        let m = Moments::from_slice(&vec![c; n]);
        assert!(m.variance().abs() < 1e-9 * c.abs().max(1.0));
        assert!(Moments::from_slice(&[c, c + 1.0]).variance() > 0.0);
    }

    fn histogram_conserves_counts(xs in arb_samples(), bins in 1usize..40) {
        let mut h = Histogram::new(-500.0, 500.0, bins);
        h.push_all(&xs);
        assert_eq!(h.total() as usize, xs.len());
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }

    fn autocorrelation_zero_lag_dominates(seed in any::<u64>(), n in 8usize..48) {
        // For any field, |ρ̂(d)| ≤ ρ̂(0) (Cauchy–Schwarz) with the periodic
        // estimator; the open estimator obeys it to good approximation on
        // random data.
        let g = rrs_grid::Grid2::from_fn(n, n, |x, y| {
            let k = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(((y * n + x) as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
            ((k >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let c = autocorrelation_lags(&g, &[(0, 0), (1, 0), (0, 1), (2, 2)]);
        for &v in &c[1..] {
            assert!(v.abs() <= c[0] * 1.5 + 1e-12);
        }
        assert!(c[0] >= 0.0);
    }

    fn estimator_never_returns_nonpositive_length(profile in vec_of(0.0f64..1.5, 2..100), spacing in 0.1f64..5.0) {
        if let Some(cl) = estimate_correlation_length(&profile, spacing) {
            assert!(cl > 0.0);
            assert!(cl <= (profile.len() - 1) as f64 * spacing);
        }
    }

    fn skewness_flips_under_negation(xs in arb_samples()) {
        let m = Moments::from_slice(&xs);
        let neg: Vec<f64> = xs.iter().map(|&v| -v).collect();
        let mn = Moments::from_slice(&neg);
        assert!((m.skewness() + mn.skewness()).abs() < 1e-7 * m.skewness().abs().max(1.0));
        assert!((m.kurtosis() - mn.kurtosis()).abs() < 1e-7 * m.kurtosis().abs().max(1.0));
    }
}
