//! # rrs-serve — the surface-serving front-end
//!
//! A std-only TCP server (and matching client) that serves generated
//! surface windows over a small length-prefixed binary protocol, turning
//! the library's [`GenContext`](rrs_surface::GenContext)-configured
//! generators into a multi-tenant service:
//!
//! * **Wire codec** ([`wire`]) — `RRSF`-framed messages with an FNV-1a
//!   checksum (the checkpoint codec's framing discipline); malformed,
//!   truncated or bit-flipped frames fail closed with typed errors, and
//!   requests validate through the library's own `try_new` constructors
//!   at decode time.
//! * **Scheduler** ([`server`]) — a shared work queue with per-tenant
//!   quotas enforced by [`rrs_error::Budget::admit`] *before* any
//!   allocation, and admission-control backpressure: an overloaded
//!   server answers with a typed [`Overloaded`] frame instead of
//!   queueing unboundedly.
//! * **Coalescing** — concurrent requests sharing a spectrum /
//!   truncation / sizing / backend key are batched onto one cached
//!   generator, so kernel construction and FFT planning amortise across
//!   the batch; a small LRU keeps hot kernels warm and one server-wide
//!   [`rrs_fft::FftPlanCache`] backs every backend.
//! * **Observability** — a `Metrics` frame returns the server's
//!   [`rrs_obs::ObsReport`] as JSON (requests, batches, coalesced jobs,
//!   cache hits/misses/evictions, overloads, plus all library stages).
//! * **Resilience** ([`sharded`]) — a [`ShardedClient`] routes by
//!   rendezvous hashing on the coalescing key across N endpoints, with
//!   per-endpoint circuit breakers, deadline-aware retry with
//!   deterministic jittered backoff, and automatic failover (safe
//!   because generation is stateless and idempotent). The server side
//!   hardens connections with read/write deadlines, a per-connection
//!   in-flight cap, and a graceful [`ServerHandle::drain`] mode that
//!   rejects new work with a typed retryable `Draining` error while
//!   finishing the queue. Both halves of the wire carry a chaos seam
//!   ([`rrs_chaos`] network fault sites) for replayable fault drills.
//!
//! Served output is bit-identical to calling the library directly with
//! the same spectrum, sizing, seed and window — the loopback suite in
//! the facade crate asserts it for every backend.
//!
//! ## Quick start
//!
//! ```
//! use rrs_serve::{serve, Client, GenerateRequest, ServeConfig};
//! use rrs_spectrum::{SpectrumModel, SurfaceParams};
//! use rrs_grid::Window;
//!
//! let server = serve(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let req = GenerateRequest::new(
//!     1,                                                        // request id
//!     0,                                                        // tenant
//!     42,                                                       // seed
//!     SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0)),
//!     Window::sized(32, 32),
//! );
//! let surface = client.try_generate(&req).unwrap();
//! assert_eq!(surface.shape(), (32, 32));
//! server.shutdown();
//! ```

mod client;
mod server;
pub mod sharded;
pub mod wire;

pub use client::{Client, ClientConfig, RemoteError, Response, ServeError};
pub use server::{serve, ServeConfig, ServerHandle, TenantQuota};
pub use sharded::{ShardedClient, ShardedConfig};
pub use wire::{
    FrameKind, GenerateErr, GenerateOk, GenerateRequest, Overloaded, OverloadReason,
    RequestOptions,
};
