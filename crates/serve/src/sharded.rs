//! A sharded, failover-capable client over N serving endpoints.
//!
//! ## Shard choice is pure
//!
//! Every request ranks the endpoints by rendezvous (highest-random-
//! weight) hashing on its [`GenerateRequest::shard_key`] — the
//! coalescing key, not the request identity — so all requests sharing a
//! kernel land on the same endpoint and the per-endpoint kernel LRUs
//! stay disjoint. The ranking is a pure function of (shard key,
//! endpoint list): replaying a request sequence against the same
//! endpoints reproduces every routing decision bit-for-bit.
//!
//! ## Failover is safe
//!
//! Window generation is stateless and idempotent (PAPER.md §1.3: a
//! window is a pure function of seed, spectrum and window), so a
//! request that failed in transit can be re-sent to any endpoint with
//! no risk of duplication or divergence — the retry either fails again
//! or returns the bit-identical grid.
//!
//! ## Retry discipline
//!
//! A request makes up to [`ShardedConfig::max_sweeps`] passes over the
//! HRW-ranked endpoints. Within a sweep, a retryable failure fails over
//! to the next endpoint immediately; between sweeps the client backs
//! off — starting at `base` and doubling up to `cap` — plus
//! deterministic splitmix64 jitter, checked against the per-request
//! deadline before every sleep *and* every endpoint attempt (failing
//! fast with `DeadlineExceeded` rather than sleeping or connecting
//! through it, with fresh connects clamped to the remaining budget).
//! Per-endpoint
//! circuit breakers (the PR 7 `BackendHealth` pattern: open after 3
//! consecutive failures, probe every 16th skip) keep a dead endpoint
//! from eating a connect timeout per request — but if every breaker is
//! open, the HRW-first endpoint is attempted anyway, so the client
//! degrades to "slow" rather than "wedged open".

use crate::client::{Client, ClientConfig, ServeError};
use crate::wire::{self, GenerateRequest};
use rrs_error::RrsError;
use rrs_grid::Grid2;
use rrs_io::retry::{Sleeper, ThreadSleeper};
use rrs_obs::report::ObsReport;
use rrs_obs::{stage, ObsSink, Recorder};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Consecutive failures that open an endpoint's breaker.
const BREAKER_THRESHOLD: u32 = 3;
/// While open, every Nth skipped attempt goes through as a probe.
const BREAKER_PROBE_EVERY: u32 = 16;

/// Configuration for a [`ShardedClient`].
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Server addresses. Order does not affect routing (rendezvous
    /// hashing is order-free), only tie-breaking of equal scores.
    pub endpoints: Vec<String>,
    /// Per-connection settings (connect timeout, chaos seam).
    pub client: ClientConfig,
    /// Full passes over the ranked endpoints before giving up.
    pub max_sweeps: u32,
    /// Backoff before the `n`th retry sweep (1-based) is
    /// `min(base·2^(n-1), max_backoff)` plus jitter in `[0, backoff/2]`
    /// — the first retry waits `base`, doubling from there.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Overall per-request deadline across all sweeps; `None` means
    /// retry until sweeps are exhausted.
    pub deadline: Option<Duration>,
    /// Seed for the deterministic backoff jitter stream.
    pub seed: u64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            endpoints: Vec::new(),
            client: ClientConfig::default(),
            max_sweeps: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            deadline: None,
            seed: 0,
        }
    }
}

impl ShardedConfig {
    /// A config serving `endpoints` with defaults everywhere else.
    pub fn new(endpoints: Vec<String>) -> Self {
        Self { endpoints, ..Self::default() }
    }
}

/// Per-endpoint circuit breaker, mirroring the backend-degradation
/// breaker in `rrs-surface`: open after [`BREAKER_THRESHOLD`]
/// consecutive failures, let every [`BREAKER_PROBE_EVERY`]th attempt
/// through as a probe, close again on any success.
#[derive(Debug, Default)]
struct EndpointHealth {
    consecutive_failures: u32,
    skips: u32,
}

impl EndpointHealth {
    fn is_open(&self) -> bool {
        self.consecutive_failures >= BREAKER_THRESHOLD
    }

    /// Claims an attempt: true to try the endpoint, false to skip it.
    fn should_try(&mut self) -> bool {
        if !self.is_open() {
            return true;
        }
        self.skips += 1;
        self.skips % BREAKER_PROBE_EVERY == 0
    }

    fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.skips = 0;
    }

    fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
    }
}

/// SplitMix64 — the jitter stream generator (same finalizer as
/// `rrs-rng` and `rrs-chaos`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rendezvous score of `endpoint_hash` for `shard_key`: one
/// splitmix64 round over their XOR. The winner is the maximum — pure,
/// order-free, and stable under endpoint list growth (only keys whose
/// winner changed move).
fn hrw_score(shard_key: u64, endpoint_hash: u64) -> u64 {
    let mut s = shard_key ^ endpoint_hash;
    splitmix64(&mut s)
}

/// A failover client over N endpoints. See the [module docs](self) for
/// the routing and retry discipline.
pub struct ShardedClient {
    config: ShardedConfig,
    obs: Recorder,
    /// Lazily-established connections, index-aligned with
    /// `config.endpoints`. A transport failure drops the slot back to
    /// `None` (the stream position is unknowable mid-frame).
    conns: Vec<Option<Client>>,
    health: Vec<EndpointHealth>,
    /// FNV-1a of each endpoint address, hashed once at construction.
    endpoint_hash: Vec<u64>,
    /// The deterministic jitter stream, advanced once per backoff.
    jitter: u64,
    sleeper: Box<dyn Sleeper + Send>,
}

impl ShardedClient {
    /// Builds a client; connections are established lazily on first
    /// use of each endpoint.
    pub fn new(config: ShardedConfig) -> Result<Self, ServeError> {
        if config.endpoints.is_empty() {
            return Err(ServeError::Transport(RrsError::unavailable(
                "sharded client needs at least one endpoint",
            )));
        }
        let endpoint_hash =
            config.endpoints.iter().map(|a| wire::fnv1a(a.as_bytes())).collect();
        let n = config.endpoints.len();
        let jitter = config.seed;
        Ok(Self {
            config,
            obs: Recorder::enabled(),
            conns: (0..n).map(|_| None).collect(),
            health: (0..n).map(|_| EndpointHealth::default()).collect(),
            endpoint_hash,
            jitter,
            sleeper: Box::new(ThreadSleeper),
        })
    }

    /// Replaces the sleeper (tests inject a recording no-op sleeper so
    /// backoff schedules are asserted, not waited for).
    pub fn with_sleeper(mut self, sleeper: Box<dyn Sleeper + Send>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// The client-side resilience counters (`serve/client_*`).
    pub fn report(&self) -> ObsReport {
        self.obs.report()
    }

    /// The HRW ranking of endpoint indices for `shard_key`, best first.
    fn rank(&self, shard_key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.config.endpoints.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(hrw_score(shard_key, self.endpoint_hash[i])));
        order
    }

    /// The endpoint index `req` routes to when every endpoint is
    /// healthy — exposed so tests (and operators) can predict routing.
    pub fn primary_endpoint(&self, req: &GenerateRequest) -> usize {
        self.rank(req.shard_key())[0]
    }

    /// The backoff before sweep `sweep` (1-based over retries):
    /// `min(base·2^(sweep-1), cap)` plus jitter in `[0, backoff/2]`.
    fn backoff_delay(&mut self, sweep: u32) -> Duration {
        let exp = self
            .config
            .base_backoff
            .saturating_mul(1u32 << (sweep.saturating_sub(1)).min(20));
        let capped = exp.min(self.config.max_backoff);
        let half = (capped.as_nanos() as u64) / 2;
        let jitter = splitmix64(&mut self.jitter) % (half + 1);
        capped + Duration::from_nanos(jitter)
    }

    /// One attempt against endpoint `i`: connect if needed, round-trip
    /// the request. A transport failure poisons the cached connection.
    /// A fresh connect never waits longer than the remaining `deadline`
    /// budget, so one unreachable endpoint cannot eat the whole window.
    fn call(
        &mut self,
        i: usize,
        req: &GenerateRequest,
        deadline: Option<Instant>,
    ) -> Result<Grid2<f64>, ServeError> {
        if self.conns[i].is_none() {
            self.obs.add_counter(stage::SERVE_CLIENT_CONNECT, 1);
            let mut client_config = self.config.client.clone();
            if let Some(d) = deadline {
                // Floored at 1 ms: `TcpStream::connect_timeout` rejects
                // a zero duration, and a nearly-spent budget should
                // still surface as a typed connect failure.
                let remaining = d.saturating_duration_since(Instant::now());
                client_config.connect_timeout = client_config
                    .connect_timeout
                    .min(remaining.max(Duration::from_millis(1)));
            }
            let client = Client::connect_with(&*self.config.endpoints[i], client_config)?;
            self.conns[i] = Some(client);
        }
        let out = self.conns[i].as_mut().expect("just connected").try_generate(req);
        if matches!(out, Err(ServeError::Transport(_))) {
            self.conns[i] = None;
        }
        out
    }

    /// Sends one request, failing over and retrying per the [module
    /// docs](self). Returns the first success or the last retryable
    /// error; non-retryable errors return immediately.
    pub fn generate(&mut self, req: &GenerateRequest) -> Result<Grid2<f64>, ServeError> {
        let order = self.rank(req.shard_key());
        let deadline = self.config.deadline.map(|d| Instant::now() + d);
        let mut last: Option<ServeError> = None;
        for sweep in 1..=self.config.max_sweeps.max(1) {
            if sweep > 1 {
                let delay = self.backoff_delay(sweep - 1);
                if let Some(d) = deadline {
                    // Fail fast rather than sleeping through the
                    // deadline: the caller gets the remaining budget
                    // back to spend elsewhere.
                    if Instant::now() + delay >= d {
                        return Err(last.unwrap_or(ServeError::Transport(
                            RrsError::DeadlineExceeded,
                        )));
                    }
                }
                self.obs.add_counter(stage::SERVE_CLIENT_RETRY, 1);
                self.sleeper.sleep(delay);
            }
            let mut attempted = false;
            for (pos, &i) in order.iter().enumerate() {
                // Deadline check per attempt, not per sweep: each try
                // can block for a connect timeout plus a round trip, so
                // checking only at the backoff would let one sweep
                // overshoot the budget by endpoints × connect_timeout.
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(last.unwrap_or(ServeError::Transport(
                            RrsError::DeadlineExceeded,
                        )));
                    }
                }
                if !self.health[i].should_try() {
                    self.obs.add_counter(stage::SERVE_CLIENT_BREAKER_SKIP, 1);
                    continue;
                }
                attempted = true;
                if pos > 0 {
                    self.obs.add_counter(stage::SERVE_CLIENT_FAILOVER, 1);
                }
                match self.call(i, req, deadline) {
                    Ok(grid) => {
                        self.health[i].record_success();
                        return Ok(grid);
                    }
                    Err(e) if e.is_retryable() => {
                        self.health[i].record_failure();
                        last = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
            if !attempted {
                // Every breaker open and no probe due: attempt the
                // HRW-first endpoint anyway — the last rung is always
                // tried, so an all-dead fleet reports errors instead of
                // silently skipping forever.
                let i = order[0];
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(last.unwrap_or(ServeError::Transport(
                            RrsError::DeadlineExceeded,
                        )));
                    }
                }
                match self.call(i, req, deadline) {
                    Ok(grid) => {
                        self.health[i].record_success();
                        return Ok(grid);
                    }
                    Err(e) if e.is_retryable() => {
                        self.health[i].record_failure();
                        last = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last.unwrap_or(ServeError::Transport(RrsError::unavailable(
            "all endpoints exhausted",
        ))))
    }

    /// Pipelines a batch: requests are grouped by their routed
    /// endpoint, each group is sent back-to-back on one connection, and
    /// responses are matched by request id (the server may answer out
    /// of order when coalescing). Any request stranded by a transport
    /// failure or a retryable rejection is re-issued through
    /// [`ShardedClient::generate`], so a mid-batch endpoint death
    /// surfaces as failover, never as a lost or corrupted window.
    ///
    /// Request ids must be unique within one batch (they are the
    /// response-matching key).
    pub fn generate_batch(
        &mut self,
        reqs: &[GenerateRequest],
    ) -> Vec<Result<Grid2<f64>, ServeError>> {
        let mut results: Vec<Option<Result<Grid2<f64>, ServeError>>> =
            (0..reqs.len()).map(|_| None).collect();
        // Group by routed endpoint: the HRW-best endpoint whose breaker
        // is closed (falling back to HRW-first if all are open).
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (j, req) in reqs.iter().enumerate() {
            let order = self.rank(req.shard_key());
            let target =
                order.iter().copied().find(|&i| !self.health[i].is_open()).unwrap_or(order[0]);
            groups.entry(target).or_default().push(j);
        }
        let mut targets: Vec<usize> = groups.keys().copied().collect();
        targets.sort_unstable(); // deterministic endpoint visit order
        for i in targets {
            let members = &groups[&i];
            self.pipeline_endpoint(i, reqs, members, &mut results);
        }
        // Anything unanswered re-enters through the sweeping path.
        for j in 0..reqs.len() {
            if results[j].is_none() {
                results[j] = Some(self.generate(&reqs[j]));
            }
        }
        results.into_iter().map(|r| r.expect("every slot filled")).collect()
    }

    /// Pipelines `members` (indices into `reqs`) over endpoint `i`,
    /// filling `results` for every response that arrives. Terminal
    /// errors are recorded; retryable ones (and anything stranded by a
    /// transport failure) are left `None` for the caller to re-issue.
    fn pipeline_endpoint(
        &mut self,
        i: usize,
        reqs: &[GenerateRequest],
        members: &[usize],
        results: &mut Vec<Option<Result<Grid2<f64>, ServeError>>>,
    ) {
        // Connect (lazily) once for the whole group.
        if self.conns[i].is_none() {
            self.obs.add_counter(stage::SERVE_CLIENT_CONNECT, 1);
            match Client::connect_with(&*self.config.endpoints[i], self.config.client.clone()) {
                Ok(c) => self.conns[i] = Some(c),
                Err(_) => {
                    self.health[i].record_failure();
                    return; // whole group re-issues via generate()
                }
            }
        }
        let client = self.conns[i].as_mut().expect("just connected");
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        let mut pending = 0usize;
        let mut send_failed = false;
        for &j in members {
            if client.send(&reqs[j]).is_err() {
                // Sent prefix stays pending (its responses may still
                // arrive); the rest re-issue through the failover path.
                send_failed = true;
                break;
            }
            by_id.insert(reqs[j].request_id, j);
            pending += 1;
        }
        let mut transport_failed = send_failed;
        while pending > 0 {
            match client.recv() {
                Ok((id, outcome)) => {
                    let Some(j) = by_id.remove(&id) else { continue };
                    pending -= 1;
                    match outcome {
                        Ok(grid) => results[j] = Some(Ok(grid)),
                        // Retryable rejections stay None → re-issued.
                        Err(e) if e.is_retryable() => drop(e),
                        Err(e) => results[j] = Some(Err(e)),
                    }
                }
                Err(_) => {
                    // The connection died mid-batch; everything still
                    // pending re-issues through the failover path.
                    transport_failed = true;
                    self.conns[i] = None;
                    break;
                }
            }
        }
        if send_failed {
            // A failed send may have torn the stream mid-frame; never
            // hand the re-issue path a poisoned connection.
            self.conns[i] = None;
        }
        if transport_failed {
            self.health[i].record_failure();
        } else {
            self.health[i].record_success();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hrw_ranking_is_pure_and_covers_all_endpoints() {
        let config = ShardedConfig::new(vec![
            "127.0.0.1:7001".into(),
            "127.0.0.1:7002".into(),
            "127.0.0.1:7003".into(),
        ]);
        let c = ShardedClient::new(config.clone()).expect("construct");
        let c2 = ShardedClient::new(config).expect("construct");
        let mut seen = [false; 3];
        for key in 0..64u64 {
            let order = c.rank(key);
            assert_eq!(order.len(), 3);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "a permutation of all endpoints");
            assert_eq!(order, c2.rank(key), "ranking is pure");
            seen[order[0]] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 keys should hit every endpoint as primary");
    }

    #[test]
    fn breaker_opens_probes_and_closes() {
        let mut h = EndpointHealth::default();
        assert!(h.should_try());
        for _ in 0..BREAKER_THRESHOLD {
            h.record_failure();
        }
        assert!(h.is_open());
        let probes = (0..BREAKER_PROBE_EVERY * 2).filter(|_| h.should_try()).count();
        assert_eq!(probes, 2, "one probe per {BREAKER_PROBE_EVERY} skips");
        h.record_success();
        assert!(!h.is_open());
        assert!(h.should_try());
    }

    #[test]
    fn expired_deadline_fails_fast_before_any_attempt() {
        use rrs_grid::Window;
        use rrs_spectrum::{SpectrumModel, SurfaceParams};
        let mut config = ShardedConfig::new(vec!["127.0.0.1:1".into()]);
        config.deadline = Some(Duration::ZERO);
        let mut c = ShardedClient::new(config).expect("construct");
        let req = GenerateRequest::new(
            1,
            0,
            7,
            SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0)),
            Window::sized(8, 8),
        );
        match c.generate(&req) {
            Err(ServeError::Transport(RrsError::DeadlineExceeded)) => {}
            other => panic!("expected DeadlineExceeded before any attempt, got {other:?}"),
        }
        assert_eq!(
            c.report().counter(stage::SERVE_CLIENT_CONNECT),
            0,
            "an expired deadline must not pay a connect"
        );
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let mk = || {
            let mut config = ShardedConfig::new(vec!["127.0.0.1:1".into()]);
            config.seed = 42;
            ShardedClient::new(config).expect("construct")
        };
        let mut a = mk();
        let mut b = mk();
        for sweep in 1..=8 {
            let d = a.backoff_delay(sweep);
            assert_eq!(d, b.backoff_delay(sweep), "same seed, same jitter stream");
            // capped at max_backoff + 50% jitter
            assert!(d <= a.config.max_backoff * 3 / 2, "sweep {sweep}: {d:?}");
            if sweep == 1 {
                assert!(d >= a.config.base_backoff);
            }
        }
    }
}
