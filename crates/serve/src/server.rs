//! The serving back half: listener, admission control, work queue,
//! request coalescing, and the kernel LRU.
//!
//! ## Thread model
//!
//! One accept thread, one reader thread per connection, and a fixed pool
//! of worker threads. Readers do only cheap work — decode, validate,
//! admit — and never generate; workers pull from one shared FIFO so a
//! burst on a single connection cannot starve the others.
//!
//! ## Admission control
//!
//! Rejection happens *before* the request allocates or occupies queue
//! space, in this order:
//!
//! 1. byte quota — `Budget::admit` against the tenant's
//!    `max_request_bytes` ceiling, yielding a typed `BudgetExceeded`
//!    error reply;
//! 2. queue capacity — a typed [`Overloaded`] (`QueueFull`) reply;
//! 3. tenant in-flight cap — a typed [`Overloaded`] (`TenantQuota`)
//!    reply.
//!
//! ## Coalescing
//!
//! Requests agreeing on spectrum, truncation, sizing, backend and
//! worker count share a [`GenKey`]. A worker that pops a job drains up
//! to `max_batch` same-key jobs from anywhere in the queue and serves
//! them on one cached generator, so the batch pays kernel construction
//! and FFT planning once; the [`FftPlanCache`] is shared server-wide, so
//! even distinct keys with matching tile shapes reuse plans.

use crate::wire::{
    self, FrameKind, GenerateErr, GenerateRequest, Overloaded, OverloadReason,
};
use rrs_chaos::{ChaosInjector, FaultSite};
use rrs_error::{Budget, CancelToken, ErrorKind, RrsError};
use rrs_fft::FftPlanCache;
use rrs_obs::report::ObsReport;
use rrs_obs::{stage, ObsSink, Recorder};
use rrs_surface::{ConvolutionGenerator, ConvolutionKernel, GenContext, KernelSizing, NoiseField};
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-tenant admission limits.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// Requests a tenant may have queued or generating at once.
    pub max_in_flight: usize,
    /// Output-byte ceiling per request (`nx·ny·8`), enforced by
    /// [`Budget::admit`] before the request is queued.
    pub max_request_bytes: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self { max_in_flight: 64, max_request_bytes: 256 << 20 }
    }
}

/// Server configuration. `Default` is sized for tests and single-host
/// serving: 2 workers, a 64-deep queue, batches of 8, 8 cached kernels.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker (generator) threads.
    pub workers: usize,
    /// Work-queue capacity across all tenants.
    pub queue_capacity: usize,
    /// Maximum same-key jobs served per batch.
    pub max_batch: usize,
    /// Hot-kernel LRU capacity (distinct [`GenKey`]s).
    pub kernel_cache_capacity: usize,
    /// Quota for tenants without an explicit entry.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides.
    pub tenant_quotas: Vec<(u64, TenantQuota)>,
    /// Per-connection read deadline (slow-loris defense): a peer that
    /// goes quiet for this long — mid-frame, or idle with nothing in
    /// flight — has its reader thread reclaimed and the connection
    /// closed. A quiet peer whose requests are still queued or
    /// generating is spared: it is waiting on responses, not stalling
    /// the server. `None` disables.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline: a peer that stops draining its
    /// receive buffer cannot pin a worker in `write` forever.
    pub write_timeout: Option<Duration>,
    /// Requests one connection may have queued or generating at once;
    /// excess frames get a typed [`Overloaded`] (`ConnectionBusy`)
    /// reply. Bounds per-connection pipelining independently of the
    /// per-tenant quota.
    pub max_conn_in_flight: usize,
    /// Wire-level chaos injector ([`FaultSite::ConnAccept`],
    /// `FrameRead`, `FrameWrite` fire server-side). Disabled by
    /// default; the disabled form is one branch per poll.
    pub chaos: ChaosInjector,
    /// How long an injected `Deadline` fault stalls the transport.
    pub chaos_stall: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            kernel_cache_capacity: 8,
            default_quota: TenantQuota::default(),
            tenant_quotas: Vec::new(),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_conn_in_flight: 64,
            chaos: ChaosInjector::disabled(),
            chaos_stall: wire::DEFAULT_CHAOS_STALL,
        }
    }
}

impl ServeConfig {
    fn quota_for(&self, tenant: u64) -> TenantQuota {
        self.tenant_quotas
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, q)| *q)
            .unwrap_or(self.default_quota)
    }
}

/// The coalescing key: everything that determines the kernel and the
/// generator configuration, as exact bit patterns. Seed and window stay
/// out — those vary per request on one shared generator.
///
/// `solo` is 0 for cacheable jobs; budgeted jobs (deadline or byte
/// ceiling) carry their request id there so they never coalesce — each
/// needs its own one-off [`Budget`]-carrying generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct GenKey {
    family: u8,
    h: u64,
    clx: u64,
    cly: u64,
    n: u64,
    trunc: u64,
    factor: u64,
    min: u32,
    max: u32,
    backend: u8,
    workers: u16,
    solo: u64,
}

impl GenKey {
    fn of(req: &GenerateRequest) -> Self {
        use rrs_spectrum::{Spectrum, SpectrumModel};
        let (family, n) = match req.spectrum {
            SpectrumModel::Gaussian(_) => (1u8, 0.0),
            SpectrumModel::PowerLaw(m) => (2u8, m.n),
            SpectrumModel::Exponential(_) => (3u8, 0.0),
        };
        let p = req.spectrum.params();
        let budgeted = req.options.deadline_ms != 0 || req.options.max_bytes != 0;
        Self {
            family,
            h: p.h.to_bits(),
            clx: p.clx.to_bits(),
            cly: p.cly.to_bits(),
            n: n.to_bits(),
            trunc: req.truncation.unwrap_or(0.0).to_bits(),
            factor: req.sizing_factor.to_bits(),
            min: req.sizing_min,
            max: req.sizing_max,
            backend: backend_wire(req.options.backend),
            workers: req.options.workers,
            solo: if budgeted { req.request_id } else { 0 },
        }
    }

    /// The cache key ignoring `solo` — budgeted jobs still share the
    /// cached kernel underneath their one-off generator.
    fn cache_key(mut self) -> Self {
        self.solo = 0;
        self
    }
}

fn backend_wire(b: rrs_surface::ConvBackend) -> u8 {
    match b {
        rrs_surface::ConvBackend::Direct => 0,
        rrs_surface::ConvBackend::FftOverlapSave => 1,
        rrs_surface::ConvBackend::FftComplexSerial => 2,
        rrs_surface::ConvBackend::Auto => 3,
        // Non-exhaustive upstream: a new variant needs a wire number.
        _ => panic!("backend {b:?} has no wire encoding"),
    }
}

/// One admitted request waiting for a worker.
struct Job {
    key: GenKey,
    req: GenerateRequest,
    conn: Arc<Mutex<TcpStream>>,
    /// This connection's in-flight count, released after the response
    /// is written (enforces [`ServeConfig::max_conn_in_flight`]).
    conn_slots: Arc<AtomicUsize>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Queued-or-generating request count per tenant.
    in_flight: HashMap<u64, usize>,
}

struct CacheEntry {
    generator: Arc<ConvolutionGenerator>,
    last_used: u64,
}

/// The hot-kernel LRU: [`GenKey`] → shared generator. Capacity is
/// small (kernels are the expensive artefact; each holds a weights grid
/// plus warm FFT state), eviction is exact LRU by use tick.
#[derive(Default)]
struct KernelCache {
    entries: HashMap<GenKey, CacheEntry>,
    tick: u64,
}

struct Shared {
    config: ServeConfig,
    obs: Recorder,
    plans: Arc<FftPlanCache>,
    queue: Mutex<QueueState>,
    ready: Condvar,
    cancel: CancelToken,
    cache: Mutex<KernelCache>,
    /// Socket clones for shutdown (closing one closes the reader's
    /// blocked `read` too — clones share the underlying socket).
    conns: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Graceful-shutdown mode: stop accepting, reject new requests
    /// with a typed `Draining` error, finish the queue, then exit.
    draining: AtomicBool,
}

impl Shared {
    /// Looks up (or builds) the cached generator for `key`. The build
    /// happens outside the cache lock — a concurrent miss on the same
    /// key may build twice, but admission never blocks behind kernel
    /// construction.
    fn generator_for(&self, key: GenKey, req: &GenerateRequest) -> Result<Arc<ConvolutionGenerator>, RrsError> {
        let key = key.cache_key();
        {
            let mut cache = self.cache.lock().expect("kernel cache poisoned");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.entries.get_mut(&key) {
                entry.last_used = tick;
                self.obs.add_counter(stage::SERVE_KERNEL_HIT, 1);
                return Ok(Arc::clone(&entry.generator));
            }
        }
        self.obs.add_counter(stage::SERVE_KERNEL_MISS, 1);
        let generator = Arc::new(self.build_generator(req)?);
        let mut cache = self.cache.lock().expect("kernel cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        cache.entries.insert(key, CacheEntry { generator: Arc::clone(&generator), last_used: tick });
        while cache.entries.len() > self.config.kernel_cache_capacity.max(1) {
            let coldest = cache
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty cache");
            cache.entries.remove(&coldest);
            self.obs.add_counter(stage::SERVE_KERNEL_EVICT, 1);
        }
        Ok(generator)
    }

    fn build_generator(&self, req: &GenerateRequest) -> Result<ConvolutionGenerator, RrsError> {
        let sizing = KernelSizing::Auto {
            factor: req.sizing_factor,
            min: req.sizing_min as usize,
            max: req.sizing_max as usize,
        };
        let mut kernel = ConvolutionKernel::build_observed(&req.spectrum, sizing, &self.obs);
        if let Some(eps) = req.truncation {
            kernel = kernel.try_truncated_observed(eps, &self.obs)?;
        }
        let workers = if req.options.workers == 0 {
            rrs_par::default_workers()
        } else {
            req.options.workers as usize
        };
        let ctx = GenContext::new()
            .with_backend(req.options.backend)
            .with_workers(workers)
            .with_plan_cache(Arc::clone(&self.plans))
            .with_recorder(self.obs.clone());
        Ok(ConvolutionGenerator::from_kernel(kernel).with_context(ctx))
    }

    fn finish_job(&self, tenant: u64) {
        let mut q = self.queue.lock().expect("queue poisoned");
        if let Some(n) = q.in_flight.get_mut(&tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                q.in_flight.remove(&tenant);
            }
        }
    }
}

/// Writes a frame to a connection through the chaos seam, ignoring a
/// dead peer (the job still completes server-side either way).
fn respond(shared: &Shared, conn: &Mutex<TcpStream>, kind: FrameKind, payload: &[u8]) {
    let mut stream = conn.lock().expect("connection poisoned");
    let _ = wire::write_frame_chaos(
        &mut *stream,
        kind,
        payload,
        &shared.config.chaos,
        shared.config.chaos_stall,
    );
}

/// True for the `read` errors a socket read deadline produces
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_read_timeout(e: &RrsError) -> bool {
    matches!(
        e,
        RrsError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

fn reader_loop(shared: &Shared, stream: TcpStream) {
    let conn = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // This connection's in-flight count; workers release slots as they
    // write responses.
    let conn_slots = Arc::new(AtomicUsize::new(0));
    let mut r = BufReader::new(stream);
    loop {
        match wire::read_frame_chaos(&mut r, &shared.config.chaos, shared.config.chaos_stall) {
            Ok(None) => return,
            Ok(Some((FrameKind::Ping, _))) => respond(shared, &conn, FrameKind::Pong, &[]),
            Ok(Some((FrameKind::Metrics, _))) => {
                let json = shared.obs.report().to_json("");
                respond(shared, &conn, FrameKind::MetricsReport, json.as_bytes());
            }
            Ok(Some((FrameKind::Generate, payload))) => {
                handle_generate(shared, &conn, &conn_slots, &payload)
            }
            Ok(Some((kind, _))) => {
                // A response kind arriving at the server is a protocol
                // violation; answer typed and hang up.
                let e = RrsError::corrupt_snapshot(format!("unexpected frame kind {kind:?}"));
                respond(shared, &conn, FrameKind::GenerateErr, &GenerateErr::from_error(0, &e).encode());
                return;
            }
            Err(e) if is_read_timeout(&e) => {
                // A quiet peer with work still in flight is not a slow
                // loris: it pipelined requests and is waiting on its
                // responses, sending nothing. As long as the deadline
                // struck at a frame boundary (no partial frame on the
                // stream — the position is still decodable) and this
                // connection has requests queued or generating, keep
                // the reader alive; severing now would discard every
                // pending response.
                if wire::timed_out_at_boundary(&e)
                    && conn_slots.load(Ordering::Acquire) > 0
                {
                    if shared.cancel.is_cancelled() {
                        return;
                    }
                    continue;
                }
                // Slow-loris defense: the peer sat quiet past the read
                // deadline (idle or mid-frame). The stream position is
                // unknowable, so close without a reply and reclaim the
                // thread. Shut the socket down explicitly — a clone
                // lives in the shutdown registry, so dropping ours
                // would leave the connection half-open.
                shared.obs.add_counter(stage::SERVE_CONN_TIMEOUT, 1);
                let _ = conn
                    .lock()
                    .expect("connection poisoned")
                    .shutdown(std::net::Shutdown::Both);
                return;
            }
            Err(e) => {
                // Fail closed: a malformed frame gets a typed reply and
                // the connection closes (the stream may be mid-frame, so
                // no further decode is safe).
                respond(shared, &conn, FrameKind::GenerateErr, &GenerateErr::from_error(0, &e).encode());
                return;
            }
        }
        if shared.cancel.is_cancelled() {
            return;
        }
    }
}

fn handle_generate(
    shared: &Shared,
    conn: &Arc<Mutex<TcpStream>>,
    conn_slots: &Arc<AtomicUsize>,
    payload: &[u8],
) {
    shared.obs.add_counter(stage::SERVE_REQUESTS, 1);
    if shared.draining.load(Ordering::SeqCst) {
        // Draining: typed, retryable rejection before any decode work —
        // the client's failover layer moves the request to a live
        // endpoint.
        shared.obs.add_counter(stage::SERVE_DRAINING_REJECT, 1);
        let id = GenerateRequest::peek_request_id(payload);
        respond(
            shared,
            conn,
            FrameKind::GenerateErr,
            &GenerateErr::from_error(id, &RrsError::Draining).encode(),
        );
        return;
    }
    let req = match GenerateRequest::decode(payload) {
        Ok(req) => req,
        Err(e) => {
            let id = GenerateRequest::peek_request_id(payload);
            respond(shared, conn, FrameKind::GenerateErr, &GenerateErr::from_error(id, &e).encode());
            return;
        }
    };
    let quota = shared.config.quota_for(req.tenant);
    // Byte quota first — before the request touches the queue, and long
    // before any allocation matching its size exists.
    let gate = Budget::unlimited().with_max_bytes(quota.max_request_bytes);
    if let Err(e) = gate.admit("serve/window", req.output_bytes()) {
        respond(
            shared,
            conn,
            FrameKind::GenerateErr,
            &GenerateErr::from_error(req.request_id, &e).encode(),
        );
        return;
    }
    // Per-connection pipelining cap. The reader is this connection's
    // only admitter, so check-then-increment cannot overshoot: workers
    // only ever decrement concurrently.
    if conn_slots.load(Ordering::Acquire) >= shared.config.max_conn_in_flight.max(1) {
        shared.obs.add_counter(stage::SERVE_CONN_BUSY, 1);
        shared.obs.add_counter(stage::SERVE_OVERLOADED, 1);
        let depth = shared.queue.lock().expect("queue poisoned").jobs.len() as u32;
        let over = Overloaded {
            request_id: req.request_id,
            reason: OverloadReason::ConnectionBusy,
            queue_depth: depth,
        };
        respond(shared, conn, FrameKind::Overloaded, &over.encode());
        return;
    }
    let job = Job {
        key: GenKey::of(&req),
        req,
        conn: Arc::clone(conn),
        conn_slots: Arc::clone(conn_slots),
    };
    enum Rejection {
        Draining,
        Overloaded(OverloadReason),
    }
    let rejection = {
        let mut q = shared.queue.lock().expect("queue poisoned");
        // Authoritative drain check: `drain()` raises the flag while
        // holding this lock, so a request is either rejected here or
        // enqueued before a worker can observe empty + draining and
        // exit — an admitted job is never stranded by a gone pool. The
        // pre-decode check above is only a fast path.
        if shared.draining.load(Ordering::SeqCst) {
            Some(Rejection::Draining)
        } else if q.jobs.len() >= shared.config.queue_capacity {
            Some(Rejection::Overloaded(OverloadReason::QueueFull))
        } else if q.in_flight.get(&job.req.tenant).copied().unwrap_or(0) >= quota.max_in_flight {
            Some(Rejection::Overloaded(OverloadReason::TenantQuota))
        } else {
            *q.in_flight.entry(job.req.tenant).or_insert(0) += 1;
            conn_slots.fetch_add(1, Ordering::AcqRel);
            q.jobs.push_back(job);
            shared.ready.notify_one();
            None
        }
    };
    match rejection {
        None => {}
        Some(Rejection::Draining) => {
            shared.obs.add_counter(stage::SERVE_DRAINING_REJECT, 1);
            respond(
                shared,
                conn,
                FrameKind::GenerateErr,
                &GenerateErr::from_error(req.request_id, &RrsError::Draining).encode(),
            );
        }
        Some(Rejection::Overloaded(reason)) => {
            shared.obs.add_counter(stage::SERVE_OVERLOADED, 1);
            let depth = shared.queue.lock().expect("queue poisoned").jobs.len() as u32;
            let over = Overloaded { request_id: req.request_id, reason, queue_depth: depth };
            respond(shared, conn, FrameKind::Overloaded, &over.encode());
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            let first = loop {
                if shared.cancel.is_cancelled() {
                    return;
                }
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                // Draining + empty queue: every admitted job has been
                // served and responded to; the pool can exit.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.ready.wait(q).expect("queue poisoned");
            };
            // Drain same-key jobs from anywhere in the queue: they share
            // one generator, so serving them together amortises the
            // kernel and plan warm-up across the whole batch.
            let key = first.key;
            let mut batch = vec![first];
            let mut i = 0;
            while batch.len() < shared.config.max_batch.max(1) && i < q.jobs.len() {
                if q.jobs[i].key == key {
                    batch.push(q.jobs.remove(i).expect("index in bounds"));
                } else {
                    i += 1;
                }
            }
            batch
        };
        serve_batch(shared, batch);
    }
}

fn serve_batch(shared: &Shared, batch: Vec<Job>) {
    shared.obs.add_counter(stage::SERVE_BATCHES, 1);
    if batch.len() > 1 {
        shared.obs.add_counter(stage::SERVE_COALESCED, (batch.len() - 1) as u64);
    }
    let lead = &batch[0].req;
    let budgeted = lead.options.deadline_ms != 0 || lead.options.max_bytes != 0;
    let generator: Result<Arc<ConvolutionGenerator>, RrsError> = if budgeted {
        // One-off generator wearing this request's Budget, sharing the
        // cached kernel and the server plan cache underneath.
        shared.generator_for(batch[0].key, lead).and_then(|cached| {
            let mut budget = Budget::unlimited();
            if lead.options.deadline_ms != 0 {
                budget = budget.with_timeout(Duration::from_millis(lead.options.deadline_ms as u64));
            }
            if lead.options.max_bytes != 0 {
                budget = budget.with_max_bytes(lead.options.max_bytes as usize);
            }
            let ctx = cached.context().clone().with_budget(budget);
            Ok(Arc::new(
                ConvolutionGenerator::from_kernel(cached.kernel().clone()).with_context(ctx),
            ))
        })
    } else {
        shared.generator_for(batch[0].key, lead)
    };
    for job in batch {
        shared.obs.add_counter(stage::SERVE_GENERATE, 1);
        let outcome = generator
            .as_ref()
            .map_err(|e| RrsError::corrupt_snapshot(e.to_string()).with_context("kernel build"))
            .and_then(|g| g.try_generate(&NoiseField::new(job.req.seed), job.req.window));
        match outcome {
            Ok(grid) => {
                let ok = wire::GenerateOk { request_id: job.req.request_id, grid };
                respond(shared, &job.conn, FrameKind::GenerateOk, &ok.encode());
            }
            Err(e) => {
                let err = GenerateErr::from_error(job.req.request_id, &e);
                respond(shared, &job.conn, FrameKind::GenerateErr, &err.encode());
            }
        }
        job.conn_slots.fetch_sub(1, Ordering::AcqRel);
        shared.finish_job(job.req.tenant);
    }
}

/// A running server. Dropping the handle shuts the server down; call
/// [`ServerHandle::shutdown`] to do it explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's metrics — the same report the
    /// `Metrics` frame serves remotely.
    pub fn report(&self) -> ObsReport {
        self.shared.obs.report()
    }

    /// Stops accepting, closes every connection, drains the worker pool
    /// and joins all threads. Queued-but-unserved jobs are dropped.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Graceful shutdown: stops accepting new connections, rejects new
    /// requests with a typed retryable `Draining` error, finishes every
    /// queued job, flushes its response, then tears the server down.
    ///
    /// Unlike [`ServerHandle::shutdown`], no admitted request is ever
    /// dropped — a failover client moves rejected requests to another
    /// endpoint while this one empties. Returns the final metrics
    /// report (the handle is consumed, so this is the last look).
    pub fn drain(mut self) -> ObsReport {
        // Raise the flag while holding the queue lock: admission
        // re-checks it under the same lock, so every in-flight
        // admission either completed its enqueue before this store
        // (workers will pop it — they only exit on empty + draining)
        // or will observe the flag and reject with `Draining`. Without
        // the lock, a request checked just before the store could be
        // enqueued just after the last worker exits, stranding it.
        {
            let _q = self.shared.queue.lock().expect("queue poisoned");
            self.shared.draining.store(true, Ordering::SeqCst);
        }
        // Unblock the accept loop so it observes the flag and exits —
        // no new connections after this point.
        let _ = TcpStream::connect(self.addr);
        // Wake parked workers; each keeps popping until the queue is
        // empty, then observes the draining flag and exits, so every
        // admitted job has its response written before the pool is gone.
        self.shared.ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Responses are flushed; now close the connections and join the
        // readers (`stop` is a no-op once `threads` is empty).
        self.shared.cancel.cancel();
        for conn in self.shared.conns.lock().expect("conns poisoned").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let readers: Vec<_> =
            self.shared.readers.lock().expect("readers poisoned").drain(..).collect();
        for t in readers {
            let _ = t.join();
        }
        self.shared.obs.report()
    }

    fn stop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.cancel.cancel();
        // Wake every parked worker so it can observe the cancel flag,
        // and unblock the accept loop with a throwaway connection.
        self.shared.ready.notify_all();
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Accept loop is down; no new readers can appear. Close every
        // socket so blocked readers return, then join them.
        for conn in self.shared.conns.lock().expect("conns poisoned").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let readers: Vec<_> =
            self.shared.readers.lock().expect("readers poisoned").drain(..).collect();
        for t in readers {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds and starts a server. Worker threads and the accept loop spin
/// up before this returns; the handle owns them.
pub fn serve(config: ServeConfig) -> Result<ServerHandle, RrsError> {
    let listener = TcpListener::bind(&config.addr).map_err(RrsError::Io)?;
    let addr = listener.local_addr().map_err(RrsError::Io)?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        config,
        obs: Recorder::enabled(),
        plans: Arc::new(FftPlanCache::new()),
        queue: Mutex::new(QueueState::default()),
        ready: Condvar::new(),
        cancel: CancelToken::new(),
        cache: Mutex::new(KernelCache::default()),
        conns: Mutex::new(Vec::new()),
        readers: Mutex::new(Vec::new()),
        draining: AtomicBool::new(false),
    });
    let mut threads = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.cancel.is_cancelled() || shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                match shared.config.chaos.poll_contained(FaultSite::ConnAccept) {
                    Ok(()) => {}
                    Err(e) if e.kind() == ErrorKind::DeadlineExceeded => {
                        // Injected stall: the accept path hangs, then
                        // proceeds — late connections, not lost ones.
                        std::thread::sleep(shared.config.chaos_stall);
                    }
                    Err(_) => {
                        // Injected accept failure: the connection dies
                        // before a reader exists; the peer sees a reset.
                        drop(stream);
                        continue;
                    }
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(shared.config.read_timeout);
                let _ = stream.set_write_timeout(shared.config.write_timeout);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().expect("conns poisoned").push(clone);
                }
                let inner = Arc::clone(&shared);
                let handle = std::thread::spawn(move || reader_loop(&inner, stream));
                shared.readers.lock().expect("readers poisoned").push(handle);
            }
        }));
    }
    Ok(ServerHandle { addr, shared, threads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_spectrum::{SpectrumModel, SurfaceParams};
    use rrs_grid::Window;

    fn key_of(req: &GenerateRequest) -> GenKey {
        GenKey::of(req)
    }

    #[test]
    fn coalescing_key_ignores_seed_and_window_but_not_budget() {
        let base = GenerateRequest::new(
            1,
            0,
            11,
            SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0)),
            Window::sized(16, 16),
        );
        let mut other = base;
        other.request_id = 2;
        other.seed = 99;
        other.window = Window::new(40, -3, 8, 24);
        assert_eq!(key_of(&base), key_of(&other), "seed/window must coalesce");

        let truncated = base.with_truncation(1e-3);
        assert_ne!(key_of(&base), key_of(&truncated), "truncation changes the kernel");

        let budgeted = base.with_deadline_ms(10);
        assert_ne!(key_of(&base), key_of(&budgeted), "budgeted jobs never coalesce");
        assert_eq!(
            key_of(&budgeted).cache_key(),
            key_of(&base),
            "but they share the cached kernel underneath"
        );
    }

    #[test]
    fn quota_lookup_falls_back_to_default() {
        let mut config = ServeConfig::default();
        config.tenant_quotas =
            vec![(7, TenantQuota { max_in_flight: 1, max_request_bytes: 64 })];
        assert_eq!(config.quota_for(7).max_in_flight, 1);
        assert_eq!(config.quota_for(8).max_in_flight, config.default_quota.max_in_flight);
    }
}
