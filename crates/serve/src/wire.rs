//! The serving wire codec: framing, request/response payloads, and the
//! stable error-kind numbering.
//!
//! Every message on a serving connection is one frame:
//!
//! ```text
//! magic  b"RRSF"                      4 bytes
//! kind   FrameKind                    1 byte
//! len    payload length, u32 LE       4 bytes
//! payload                             len bytes
//! crc    FNV-1a(kind ‖ len ‖ payload) 8 bytes LE
//! ```
//!
//! The framing discipline mirrors the checkpoint codec (PR 4): a magic
//! prefix so a stray connection fails immediately, an explicit length so
//! the reader can refuse oversized frames *before* allocating, and a
//! trailing FNV-1a checksum over everything after the magic so a flipped
//! bit anywhere in the frame fails closed with a typed
//! [`RrsError::CorruptSnapshot`] instead of decoding garbage. Payload
//! integers are little-endian; floats travel as IEEE-754 bit patterns so
//! a request is reproduced bit-exactly on the far side.
//!
//! Decoding is validating: a [`GenerateRequest`] only constructs through
//! the same `try_new` constructors the library itself uses
//! ([`SurfaceParams::try_new`], [`PowerLaw::try_new`],
//! [`Window::try_new`]), so no malformed parameter survives past the
//! codec boundary.

use rrs_chaos::{ChaosInjector, FaultSite};
use rrs_error::{ErrorKind, RrsError};
use rrs_grid::{Grid2, Window};
use rrs_spectrum::{PowerLaw, SpectrumModel, SurfaceParams};
use rrs_surface::ConvBackend;
use std::io::{Read, Write};
use std::time::Duration;

/// Frame prefix — "RRS Frame".
pub const MAGIC: [u8; 4] = *b"RRSF";

/// Hard ceiling on a frame payload (256 MiB), checked against the
/// declared length *before* any allocation.
pub const MAX_FRAME_PAYLOAD: usize = 256 << 20;

/// FNV-1a 64-bit — the workspace's framing checksum (same constants as
/// the checkpoint codec).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The message kinds of the serving protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: one [`GenerateRequest`].
    Generate = 1,
    /// Server → client: a generated window ([`GenerateOk`]).
    GenerateOk = 2,
    /// Server → client: a typed failure ([`GenerateErr`]).
    GenerateErr = 3,
    /// Server → client: admission control rejected the request before
    /// any work was queued ([`Overloaded`]).
    Overloaded = 4,
    /// Client → server: request the metrics report (empty payload).
    Metrics = 5,
    /// Server → client: the [`rrs_obs::ObsReport`] as UTF-8 JSON.
    MetricsReport = 6,
    /// Client → server: liveness probe (empty payload).
    Ping = 7,
    /// Server → client: liveness reply (empty payload).
    Pong = 8,
}

impl FrameKind {
    fn from_u8(v: u8) -> Result<Self, RrsError> {
        Ok(match v {
            1 => Self::Generate,
            2 => Self::GenerateOk,
            3 => Self::GenerateErr,
            4 => Self::Overloaded,
            5 => Self::Metrics,
            6 => Self::MetricsReport,
            7 => Self::Ping,
            8 => Self::Pong,
            other => {
                return Err(RrsError::corrupt_snapshot(format!("unknown frame kind {other}")))
            }
        })
    }
}

/// Assembles one complete frame (magic, header, payload, checksum) as a
/// contiguous byte buffer, ready for a single `write_all`.
fn encode_frame_bytes(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD, "oversized frame");
    let len = payload.len() as u32;
    let mut head = [0u8; 5];
    head[0] = kind as u8;
    head[1..5].copy_from_slice(&len.to_le_bytes());
    let mut crc = fnv1a(&head);
    // Continue the running hash over the payload (FNV-1a is byte-serial).
    for &b in payload {
        crc ^= u64::from(b);
        crc = crc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut frame = Vec::with_capacity(17 + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&head);
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// The inner payload of a read-deadline error that struck while the
/// stream sat at a frame boundary: zero bytes of the next frame were
/// consumed, so the stream is still decodable if the caller keeps
/// reading. Detected through [`timed_out_at_boundary`].
#[derive(Debug)]
struct BoundaryTimeout(std::io::Error);

impl std::fmt::Display for BoundaryTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "read deadline at frame boundary: {}", self.0)
    }
}

impl std::error::Error for BoundaryTimeout {}

/// True for the `read` errors a socket read deadline produces
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout_io(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// True when `e` is a read-deadline error that fired with the stream
/// parked at a frame boundary — no byte of a frame consumed. Such a
/// connection is still framing-clean: a server may keep it alive while
/// responses are in flight instead of reaping it as a slow-loris peer.
/// A deadline that fired mid-frame never carries the marker.
pub fn timed_out_at_boundary(e: &RrsError) -> bool {
    match e {
        RrsError::Io(io) => io.get_ref().map_or(false, |inner| inner.is::<BoundaryTimeout>()),
        _ => false,
    }
}

/// Writes one frame. The only I/O errors are the writer's own.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), RrsError> {
    // One contiguous write: a frame split across small TCP segments
    // trips Nagle + delayed-ACK stalls (tens of ms per round trip).
    w.write_all(&encode_frame_bytes(kind, payload)).map_err(RrsError::Io)?;
    w.flush().map_err(RrsError::Io)?;
    Ok(())
}

/// Reads one frame, failing closed.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between messages). Every other irregularity — EOF mid-frame, a bad
/// magic, an oversized declared length, a checksum mismatch, an unknown
/// kind — is a typed error: the caller never sees a partially decoded
/// frame. The length check happens before the payload buffer is
/// allocated, so a hostile 4 GiB length costs nothing.
///
/// A read-deadline error that fires before the first byte of a frame is
/// marked as a *boundary* timeout ([`timed_out_at_boundary`]): the
/// stream is still framing-clean and the caller may keep reading. A
/// deadline mid-frame stays a plain I/O error — the stream position is
/// unknowable and the connection must close.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(FrameKind, Vec<u8>)>, RrsError> {
    let mut magic = [0u8; 4];
    // The first byte is read alone: a deadline that strikes here struck
    // with zero bytes of the frame consumed — the recoverable case the
    // boundary marker records. From the second byte on, a timeout is a
    // mid-frame stall.
    match read_exact_or_eof(r, &mut magic[..1]) {
        Ok(ReadOutcome::Eof) => return Ok(None),
        Ok(ReadOutcome::Full) => {}
        Err(RrsError::Io(io)) if is_timeout_io(&io) => {
            let kind = io.kind();
            return Err(RrsError::Io(std::io::Error::new(kind, BoundaryTimeout(io))));
        }
        Err(e) => return Err(e),
    }
    read_fully(r, &mut magic[1..])?;
    if magic != MAGIC {
        return Err(RrsError::corrupt_snapshot(format!(
            "bad frame magic {magic:02x?}, expected {MAGIC:02x?}"
        )));
    }
    let mut head = [0u8; 5];
    read_fully(r, &mut head)?;
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(RrsError::corrupt_snapshot(format!(
            "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte ceiling"
        )));
    }
    let mut payload = vec![0u8; len];
    read_fully(r, &mut payload)?;
    let mut crc_bytes = [0u8; 8];
    read_fully(r, &mut crc_bytes)?;
    let mut crc = fnv1a(&head);
    for &b in &payload {
        crc ^= u64::from(b);
        crc = crc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if crc != u64::from_le_bytes(crc_bytes) {
        return Err(RrsError::corrupt_snapshot("frame checksum mismatch"));
    }
    let kind = FrameKind::from_u8(head[0])?;
    Ok(Some((kind, payload)))
}

// ---------------------------------------------------------------------------
// Chaos transport seam
// ---------------------------------------------------------------------------
//
// Every serving frame crosses the wire through these two functions when
// a `ChaosInjector` is armed, so a seeded `FaultSchedule` can kill a
// connection mid-frame, stall an exchange past a peer's deadline, or
// hang up cleanly at an exact visit index — with the same replayability
// as every compute-pipeline site. The `FaultKind` mapping at wire sites:
//
// | kind       | read side                         | write side                           |
// |------------|-----------------------------------|--------------------------------------|
// | `Error`    | connection reset before the read  | **truncated prefix** written, reset  |
// | `Cancel`   | clean peer hang-up (`Ok(None)`)   | broken pipe before any byte          |
// | `Deadline` | stall `stall` then read normally  | stall `stall` then write normally    |
// | `Panic`    | contained → connection aborted    | contained → connection aborted       |
//
// The mid-frame truncation on `Error` writes is what makes the peer
// observe a genuine torn frame ("connection closed mid-frame") instead
// of a tidy error the codec never sees in production.

/// How long a [`rrs_chaos::FaultKind::Deadline`] fault stalls the wire
/// when the caller does not choose a stall.
pub const DEFAULT_CHAOS_STALL: Duration = Duration::from_millis(200);

/// Maps a fired wire fault into the transport error the peerless side
/// sees. `Cancel` is handled by the callers (it has per-direction
/// semantics); everything else is an I/O-shaped failure.
fn wire_fault_to_io(e: RrsError, what: &str) -> RrsError {
    let kind = match e.kind() {
        ErrorKind::FaultInjected => std::io::ErrorKind::ConnectionReset,
        _ => std::io::ErrorKind::ConnectionAborted,
    };
    RrsError::Io(std::io::Error::new(kind, format!("chaos: injected {what} failure: {e}")))
}

/// [`read_frame`] behind the chaos seam: polls
/// [`FaultSite::FrameRead`] before touching the stream. Disabled
/// injectors cost one discriminant test.
pub fn read_frame_chaos(
    r: &mut impl Read,
    chaos: &ChaosInjector,
    stall: Duration,
) -> Result<Option<(FrameKind, Vec<u8>)>, RrsError> {
    if chaos.is_enabled() {
        match chaos.poll_contained(FaultSite::FrameRead) {
            Ok(()) => {}
            Err(RrsError::Cancelled) => return Ok(None), // clean peer hang-up
            Err(RrsError::DeadlineExceeded) => std::thread::sleep(stall),
            Err(e) => return Err(wire_fault_to_io(e, "read")),
        }
    }
    read_frame(r)
}

/// [`write_frame`] behind the chaos seam: polls
/// [`FaultSite::FrameWrite`] and, for an injected `Error`, writes a
/// *truncated prefix* of the assembled frame before failing — the peer
/// sees a genuine mid-frame disconnect, not a clean boundary.
pub fn write_frame_chaos(
    w: &mut impl Write,
    kind: FrameKind,
    payload: &[u8],
    chaos: &ChaosInjector,
    stall: Duration,
) -> Result<(), RrsError> {
    if chaos.is_enabled() {
        match chaos.poll_contained(FaultSite::FrameWrite) {
            Ok(()) => {}
            Err(RrsError::Cancelled) => {
                return Err(RrsError::Io(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "chaos: connection closed before the frame",
                )))
            }
            Err(RrsError::DeadlineExceeded) => std::thread::sleep(stall),
            Err(e @ RrsError::FaultInjected { .. }) => {
                // Deterministic mid-frame kill: half the frame (always at
                // least the magic, never the whole thing) then a reset.
                let frame = encode_frame_bytes(kind, payload);
                let cut = (frame.len() / 2).max(MAGIC.len());
                let _ = w.write_all(&frame[..cut]);
                let _ = w.flush();
                return Err(wire_fault_to_io(e, "write"));
            }
            Err(e) => return Err(wire_fault_to_io(e, "write")),
        }
    }
    write_frame(w, kind, payload)
}

enum ReadOutcome {
    Full,
    Eof,
}

/// Fills `buf`, distinguishing EOF-before-anything from EOF-mid-read.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, RrsError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => return Err(RrsError::corrupt_snapshot("connection closed mid-frame")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RrsError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> Result<(), RrsError> {
    match read_exact_or_eof(r, buf)? {
        ReadOutcome::Full => Ok(()),
        ReadOutcome::Eof => Err(RrsError::corrupt_snapshot("connection closed mid-frame")),
    }
}

// ---------------------------------------------------------------------------
// Payload cursor
// ---------------------------------------------------------------------------

/// A bounds-checked payload reader: every short read is a typed
/// [`RrsError::CorruptSnapshot`], and [`Cursor::finish`] rejects
/// trailing bytes so payload lengths cannot silently drift between
/// protocol revisions.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RrsError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            RrsError::corrupt_snapshot(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ))
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RrsError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RrsError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take(2)")))
    }

    fn u32(&mut self) -> Result<u32, RrsError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    fn u64(&mut self) -> Result<u64, RrsError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    fn i64(&mut self) -> Result<i64, RrsError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    fn f64(&mut self) -> Result<f64, RrsError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), RrsError> {
        if self.pos != self.buf.len() {
            return Err(RrsError::corrupt_snapshot(format!(
                "payload has {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Error-kind numbering
// ---------------------------------------------------------------------------

/// Stable on-wire numbering of [`ErrorKind`] — part of the protocol, so
/// the discriminants never change even if the enum is reordered.
pub fn error_kind_to_wire(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::InvalidParam => 1,
        ErrorKind::ShapeMismatch => 2,
        ErrorKind::NonFinite => 3,
        ErrorKind::WorkerPanicked => 4,
        ErrorKind::CorruptSnapshot => 5,
        ErrorKind::Io => 6,
        ErrorKind::Cancelled => 7,
        ErrorKind::DeadlineExceeded => 8,
        ErrorKind::BudgetExceeded => 9,
        ErrorKind::FaultInjected => 10,
        ErrorKind::Unavailable => 11,
        ErrorKind::Draining => 12,
    }
}

/// Inverse of [`error_kind_to_wire`]; unknown numbers fail closed.
pub fn error_kind_from_wire(v: u8) -> Result<ErrorKind, RrsError> {
    Ok(match v {
        1 => ErrorKind::InvalidParam,
        2 => ErrorKind::ShapeMismatch,
        3 => ErrorKind::NonFinite,
        4 => ErrorKind::WorkerPanicked,
        5 => ErrorKind::CorruptSnapshot,
        6 => ErrorKind::Io,
        7 => ErrorKind::Cancelled,
        8 => ErrorKind::DeadlineExceeded,
        9 => ErrorKind::BudgetExceeded,
        10 => ErrorKind::FaultInjected,
        11 => ErrorKind::Unavailable,
        12 => ErrorKind::Draining,
        other => return Err(RrsError::corrupt_snapshot(format!("unknown error kind {other}"))),
    })
}

fn backend_to_wire(b: ConvBackend) -> u8 {
    match b {
        ConvBackend::Direct => 0,
        ConvBackend::FftOverlapSave => 1,
        ConvBackend::FftComplexSerial => 2,
        ConvBackend::Auto => 3,
        // `ConvBackend` is non-exhaustive: a future variant must get its
        // own wire number before it can be served.
        _ => panic!("backend {b:?} has no wire encoding"),
    }
}

fn backend_from_wire(v: u8) -> Result<ConvBackend, RrsError> {
    Ok(match v {
        0 => ConvBackend::Direct,
        1 => ConvBackend::FftOverlapSave,
        2 => ConvBackend::FftComplexSerial,
        3 => ConvBackend::Auto,
        other => return Err(RrsError::corrupt_snapshot(format!("unknown backend {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Generate request
// ---------------------------------------------------------------------------

/// Per-request execution options (everything beyond the surface itself).
///
/// Zero means "unset": the server substitutes its own defaults. A
/// request with a deadline or byte ceiling runs on a one-off generator
/// carrying that [`rrs_error::Budget`] (still sharing the server's
/// kernel and FFT-plan caches); all other requests run on the cached
/// generator directly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestOptions {
    /// Convolution engine (`Direct` by default, like the library).
    pub backend: ConvBackend,
    /// Worker threads inside the generator; 0 = the server's default.
    pub workers: u16,
    /// Per-request deadline in milliseconds from processing start; 0 =
    /// none.
    pub deadline_ms: u32,
    /// Per-request byte ceiling fed to `Budget::with_max_bytes`; 0 =
    /// none.
    pub max_bytes: u64,
}

impl Default for RequestOptions {
    fn default() -> Self {
        Self { backend: ConvBackend::Direct, workers: 0, deadline_ms: 0, max_bytes: 0 }
    }
}

/// One surface-generation request — the wire-decodable form of "this
/// spectrum, this seed, this window, these options".
///
/// The spectrum/truncation/sizing/backend/workers fields form the
/// server's coalescing key: concurrent requests agreeing on all of them
/// share one cached kernel and generator, so only the first pays kernel
/// construction and FFT planning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenerateRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Tenant id for quota accounting.
    pub tenant: u64,
    /// Noise-field seed — same seed + same request ⇒ bit-identical
    /// surface, on any server.
    pub seed: u64,
    /// The spectrum family and parameters.
    pub spectrum: SpectrumModel,
    /// Spectral truncation tolerance `0 < ε < 1`, or `None` for the
    /// full kernel.
    pub truncation: Option<f64>,
    /// Kernel support factor in correlation lengths
    /// ([`rrs_surface::KernelSizing::Auto`]).
    pub sizing_factor: f64,
    /// Minimum kernel lattice size per axis.
    pub sizing_min: u32,
    /// Maximum kernel lattice size per axis.
    pub sizing_max: u32,
    /// The output window on the infinite lattice.
    pub window: Window,
    /// Execution options.
    pub options: RequestOptions,
}

impl GenerateRequest {
    /// A request with the library's default sizing (factor 8, 16–2048
    /// samples) and default options.
    pub fn new(request_id: u64, tenant: u64, seed: u64, spectrum: SpectrumModel, window: Window) -> Self {
        Self {
            request_id,
            tenant,
            seed,
            spectrum,
            truncation: None,
            sizing_factor: 8.0,
            sizing_min: 16,
            sizing_max: 2048,
            window,
            options: RequestOptions::default(),
        }
    }

    /// Sets the spectral truncation tolerance.
    pub fn with_truncation(mut self, epsilon: f64) -> Self {
        self.truncation = Some(epsilon);
        self
    }

    /// Sets the auto-sizing envelope.
    pub fn with_sizing(mut self, factor: f64, min: u32, max: u32) -> Self {
        self.sizing_factor = factor;
        self.sizing_min = min;
        self.sizing_max = max;
        self
    }

    /// Selects the convolution backend.
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.options.backend = backend;
        self
    }

    /// Sets the in-generator worker count (0 = server default).
    pub fn with_workers(mut self, workers: u16) -> Self {
        self.options.workers = workers;
        self
    }

    /// Arms a per-request deadline in milliseconds.
    pub fn with_deadline_ms(mut self, deadline_ms: u32) -> Self {
        self.options.deadline_ms = deadline_ms;
        self
    }

    /// Arms a per-request byte ceiling.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.options.max_bytes = max_bytes;
        self
    }

    /// The output bytes this request will materialise (`nx·ny·8`),
    /// widened so quota arithmetic cannot overflow.
    pub fn output_bytes(&self) -> u128 {
        self.window.nx as u128 * self.window.ny as u128 * 8
    }

    /// Encodes the fixed-size 120-byte payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(120);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&self.tenant.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        let (family, params, n) = match self.spectrum {
            SpectrumModel::Gaussian(m) => (1u8, m.params, 0.0),
            SpectrumModel::PowerLaw(m) => (2u8, m.params, m.n),
            SpectrumModel::Exponential(m) => (3u8, m.params, 0.0),
        };
        out.push(family);
        for v in [params.h, params.clx, params.cly, n] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.truncation.unwrap_or(0.0).to_bits().to_le_bytes());
        out.extend_from_slice(&self.sizing_factor.to_bits().to_le_bytes());
        out.extend_from_slice(&self.sizing_min.to_le_bytes());
        out.extend_from_slice(&self.sizing_max.to_le_bytes());
        out.extend_from_slice(&self.window.x0.to_le_bytes());
        out.extend_from_slice(&self.window.y0.to_le_bytes());
        out.extend_from_slice(&(self.window.nx as u32).to_le_bytes());
        out.extend_from_slice(&(self.window.ny as u32).to_le_bytes());
        out.push(backend_to_wire(self.options.backend));
        out.extend_from_slice(&self.options.workers.to_le_bytes());
        out.extend_from_slice(&self.options.deadline_ms.to_le_bytes());
        out.extend_from_slice(&self.options.max_bytes.to_le_bytes());
        out
    }

    /// Decodes and validates a request payload.
    ///
    /// Validation goes through the library's own constructors — a
    /// decoded request is exactly as trustworthy as one built in
    /// process, and an invalid one fails here with the same typed
    /// [`RrsError::InvalidParam`] the library would raise.
    pub fn decode(payload: &[u8]) -> Result<Self, RrsError> {
        let mut c = Cursor::new(payload);
        let request_id = c.u64()?;
        let tenant = c.u64()?;
        let seed = c.u64()?;
        let family = c.u8()?;
        let h = c.f64()?;
        let clx = c.f64()?;
        let cly = c.f64()?;
        let n = c.f64()?;
        let params = SurfaceParams::try_new(h, clx, cly)?;
        let spectrum = match family {
            1 => SpectrumModel::Gaussian(rrs_spectrum::Gaussian::new(params)),
            2 => SpectrumModel::PowerLaw(PowerLaw::try_new(params, n)?),
            3 => SpectrumModel::Exponential(rrs_spectrum::Exponential::new(params)),
            other => {
                return Err(RrsError::corrupt_snapshot(format!(
                    "unknown spectrum family {other}"
                )))
            }
        };
        let trunc_raw = c.f64()?;
        let truncation = if trunc_raw == 0.0 {
            None
        } else if trunc_raw.is_finite() && trunc_raw > 0.0 && trunc_raw < 1.0 {
            Some(trunc_raw)
        } else {
            return Err(RrsError::invalid_param(
                "truncation",
                format!("truncation must satisfy 0 < ε < 1 (0 = none), got {trunc_raw}"),
            ));
        };
        let sizing_factor = c.f64()?;
        if !(sizing_factor.is_finite() && sizing_factor > 0.0) {
            return Err(RrsError::invalid_param(
                "sizing_factor",
                format!("support factor must be finite and positive, got {sizing_factor}"),
            ));
        }
        let sizing_min = c.u32()?;
        let sizing_max = c.u32()?;
        if sizing_min == 0 || sizing_min > sizing_max {
            return Err(RrsError::invalid_param(
                "sizing",
                format!("sizing bounds must satisfy 1 <= min <= max, got {sizing_min}..{sizing_max}"),
            ));
        }
        let x0 = c.i64()?;
        let y0 = c.i64()?;
        let nx = c.u32()? as usize;
        let ny = c.u32()? as usize;
        let window = Window::try_new(x0, y0, nx, ny)?;
        let backend = backend_from_wire(c.u8()?)?;
        let workers = c.u16()?;
        let deadline_ms = c.u32()?;
        let max_bytes = c.u64()?;
        c.finish()?;
        Ok(Self {
            request_id,
            tenant,
            seed,
            spectrum,
            truncation,
            sizing_factor,
            sizing_min,
            sizing_max,
            window,
            options: RequestOptions { backend, workers, deadline_ms, max_bytes },
        })
    }

    /// Best-effort request id from a payload that failed to decode, so
    /// the error reply still correlates (0 when even that is missing).
    pub fn peek_request_id(payload: &[u8]) -> u64 {
        payload
            .get(..8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
            .unwrap_or(0)
    }

    /// The request's shard key: an FNV-1a hash over exactly the fields
    /// of the server's coalescing `GenKey` (spectrum family and
    /// parameters, truncation, sizing, backend, worker override) — and
    /// deliberately *not* the seed, window, ids or budgets.
    ///
    /// Two requests that would share a cached kernel on one server hash
    /// to the same shard key, so rendezvous routing on this key sends a
    /// kernel family to one shard and keeps every shard's kernel LRU
    /// disjoint. The hash is a pure function of the request bits —
    /// shard choice is replayable, never dependent on connection state.
    pub fn shard_key(&self) -> u64 {
        let (family, params, n) = match self.spectrum {
            SpectrumModel::Gaussian(m) => (1u8, m.params, 0.0),
            SpectrumModel::PowerLaw(m) => (2u8, m.params, m.n),
            SpectrumModel::Exponential(m) => (3u8, m.params, 0.0),
        };
        let mut bytes = Vec::with_capacity(64);
        bytes.push(family);
        for v in [params.h, params.clx, params.cly, n, self.truncation.unwrap_or(0.0), self.sizing_factor] {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(&self.sizing_min.to_le_bytes());
        bytes.extend_from_slice(&self.sizing_max.to_le_bytes());
        bytes.push(backend_to_wire(self.options.backend));
        bytes.extend_from_slice(&self.options.workers.to_le_bytes());
        fnv1a(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A served surface window.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateOk {
    /// Echo of the request id.
    pub request_id: u64,
    /// The generated heights, row-major, bit-identical to the direct
    /// library call.
    pub grid: Grid2<f64>,
}

impl GenerateOk {
    /// Encodes `request_id | nx | ny | data`.
    pub fn encode(&self) -> Vec<u8> {
        let (nx, ny) = self.grid.shape();
        let mut out = Vec::with_capacity(16 + self.grid.len() * 8);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&(nx as u32).to_le_bytes());
        out.extend_from_slice(&(ny as u32).to_le_bytes());
        for &v in self.grid.as_slice() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes, validating the declared shape against the actual byte
    /// count.
    pub fn decode(payload: &[u8]) -> Result<Self, RrsError> {
        let mut c = Cursor::new(payload);
        let request_id = c.u64()?;
        let nx = c.u32()? as usize;
        let ny = c.u32()? as usize;
        let elems = nx.checked_mul(ny).ok_or_else(|| {
            RrsError::corrupt_snapshot(format!("grid shape {nx}x{ny} overflows"))
        })?;
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            data.push(c.f64()?);
        }
        c.finish()?;
        Ok(Self { request_id, grid: Grid2::try_from_vec(nx, ny, data)? })
    }
}

/// A typed generation failure, round-tripping the [`ErrorKind`] and —
/// for budget rejections — the byte accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateErr {
    /// Echo of the request id (0 when the request never decoded).
    pub request_id: u64,
    /// The stable error kind.
    pub kind: ErrorKind,
    /// `BudgetExceeded` only: bytes the request needed.
    pub required_bytes: u64,
    /// `BudgetExceeded` only: the ceiling it exceeded.
    pub max_bytes: u64,
    /// Human-readable detail (the server-side `Display` rendering).
    pub message: String,
}

impl GenerateErr {
    /// Builds the wire error from a server-side [`RrsError`].
    pub fn from_error(request_id: u64, e: &RrsError) -> Self {
        let (required_bytes, max_bytes) = match e.root_cause() {
            RrsError::BudgetExceeded { required_bytes, max_bytes, .. } => {
                (*required_bytes as u64, *max_bytes as u64)
            }
            _ => (0, 0),
        };
        Self { request_id, kind: e.kind(), required_bytes, max_bytes, message: e.to_string() }
    }

    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let msg = self.message.as_bytes();
        let mut out = Vec::with_capacity(29 + msg.len());
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.push(error_kind_to_wire(self.kind));
        out.extend_from_slice(&self.required_bytes.to_le_bytes());
        out.extend_from_slice(&self.max_bytes.to_le_bytes());
        out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
        out.extend_from_slice(msg);
        out
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<Self, RrsError> {
        let mut c = Cursor::new(payload);
        let request_id = c.u64()?;
        let kind = error_kind_from_wire(c.u8()?)?;
        let required_bytes = c.u64()?;
        let max_bytes = c.u64()?;
        let msg_len = c.u32()? as usize;
        let message = String::from_utf8(c.take(msg_len)?.to_vec())
            .map_err(|_| RrsError::corrupt_snapshot("error message is not UTF-8"))?;
        c.finish()?;
        Ok(Self { request_id, kind, required_bytes, max_bytes, message })
    }
}

/// Why admission control rejected a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadReason {
    /// The global work queue is at capacity.
    QueueFull,
    /// The tenant is at its in-flight request cap.
    TenantQuota,
    /// This connection is at its in-flight frame cap (one peer may not
    /// monopolise the queue by pipelining unboundedly).
    ConnectionBusy,
}

/// An admission-control rejection — sent *before* the request consumes
/// queue space or allocates anything, so an overloaded server stays
/// responsive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// Echo of the request id.
    pub request_id: u64,
    /// What limit was hit.
    pub reason: OverloadReason,
    /// Queue depth at rejection time (a backoff hint).
    pub queue_depth: u32,
}

impl Overloaded {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.push(match self.reason {
            OverloadReason::QueueFull => 0,
            OverloadReason::TenantQuota => 1,
            OverloadReason::ConnectionBusy => 2,
        });
        out.extend_from_slice(&self.queue_depth.to_le_bytes());
        out
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<Self, RrsError> {
        let mut c = Cursor::new(payload);
        let request_id = c.u64()?;
        let reason = match c.u8()? {
            0 => OverloadReason::QueueFull,
            1 => OverloadReason::TenantQuota,
            2 => OverloadReason::ConnectionBusy,
            other => {
                return Err(RrsError::corrupt_snapshot(format!(
                    "unknown overload reason {other}"
                )))
            }
        };
        let queue_depth = c.u32()?;
        c.finish()?;
        Ok(Self { request_id, reason, queue_depth })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> GenerateRequest {
        GenerateRequest::new(
            7,
            3,
            42,
            SpectrumModel::power_law(SurfaceParams::isotropic(1.5, 6.0), 2.0),
            Window::new(-4, 9, 32, 24),
        )
        .with_truncation(1e-3)
        .with_sizing(6.0, 8, 128)
        .with_backend(ConvBackend::FftOverlapSave)
        .with_workers(2)
        .with_deadline_ms(5_000)
        .with_max_bytes(1 << 20)
    }

    #[test]
    fn request_round_trips_bit_exactly() {
        let req = sample_request();
        let bytes = req.encode();
        assert_eq!(bytes.len(), 120, "fixed-size request payload");
        assert_eq!(GenerateRequest::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn frame_round_trips_through_a_buffer() {
        let req = sample_request();
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Generate, &req.encode()).unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Generate);
        assert_eq!(GenerateRequest::decode(&payload).unwrap(), req);
        // And a clean EOF after the frame boundary reads as None.
        let mut two = Vec::new();
        write_frame(&mut two, FrameKind::Ping, &[]).unwrap();
        let mut r = two.as_slice();
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn bad_magic_oversize_and_checksum_fail_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Ping, b"abc").unwrap();

        let mut stomped = buf.clone();
        stomped[0] = b'X';
        assert_eq!(
            read_frame(&mut stomped.as_slice()).unwrap_err().kind(),
            ErrorKind::CorruptSnapshot
        );

        let mut oversize = buf.clone();
        oversize[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut oversize.as_slice()).unwrap_err().kind(),
            ErrorKind::CorruptSnapshot
        );

        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(
            read_frame(&mut flipped.as_slice()).unwrap_err().kind(),
            ErrorKind::CorruptSnapshot
        );
    }

    #[test]
    fn invalid_parameters_are_rejected_at_decode() {
        let good = sample_request();
        // Negative correlation length.
        let mut bad = good.encode();
        bad[33..41].copy_from_slice(&(-3.0f64).to_bits().to_le_bytes());
        assert_eq!(
            GenerateRequest::decode(&bad).unwrap_err().kind(),
            ErrorKind::InvalidParam
        );
        // Power-law order n = 1 is not integrable.
        let mut bad = good.encode();
        bad[49..57].copy_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert_eq!(
            GenerateRequest::decode(&bad).unwrap_err().kind(),
            ErrorKind::InvalidParam
        );
        // Empty window.
        let mut bad = good.encode();
        bad[97..101].copy_from_slice(&0u32.to_le_bytes());
        let e = GenerateRequest::decode(&bad).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidParam);
        assert!(e.to_string().contains("non-empty"));
    }

    #[test]
    fn responses_round_trip() {
        let ok = GenerateOk {
            request_id: 9,
            grid: Grid2::from_fn(3, 2, |x, y| (x as f64) - 0.25 * (y as f64)),
        };
        assert_eq!(GenerateOk::decode(&ok.encode()).unwrap(), ok);

        let err = GenerateErr {
            request_id: 10,
            kind: ErrorKind::BudgetExceeded,
            required_bytes: 4096,
            max_bytes: 1024,
            message: "window: 4096 bytes required, 1024 allowed".into(),
        };
        assert_eq!(GenerateErr::decode(&err.encode()).unwrap(), err);

        let over = Overloaded { request_id: 11, reason: OverloadReason::TenantQuota, queue_depth: 17 };
        assert_eq!(Overloaded::decode(&over.encode()).unwrap(), over);
    }

    #[test]
    fn error_kind_numbering_is_stable() {
        // Part of the wire protocol: renumbering is a breaking change.
        let all = [
            (ErrorKind::InvalidParam, 1),
            (ErrorKind::ShapeMismatch, 2),
            (ErrorKind::NonFinite, 3),
            (ErrorKind::WorkerPanicked, 4),
            (ErrorKind::CorruptSnapshot, 5),
            (ErrorKind::Io, 6),
            (ErrorKind::Cancelled, 7),
            (ErrorKind::DeadlineExceeded, 8),
            (ErrorKind::BudgetExceeded, 9),
            (ErrorKind::FaultInjected, 10),
            (ErrorKind::Unavailable, 11),
            (ErrorKind::Draining, 12),
        ];
        for (kind, wire) in all {
            assert_eq!(error_kind_to_wire(kind), wire);
            assert_eq!(error_kind_from_wire(wire).unwrap(), kind);
        }
        assert_eq!(error_kind_from_wire(0).unwrap_err().kind(), ErrorKind::CorruptSnapshot);
        assert_eq!(error_kind_from_wire(13).unwrap_err().kind(), ErrorKind::CorruptSnapshot);
    }

    #[test]
    fn shard_key_tracks_the_coalescing_key_not_the_request_identity() {
        let base = sample_request();
        let mut same_shard = base;
        same_shard.request_id = 999;
        same_shard.tenant = 5;
        same_shard.seed = 0xF00D;
        same_shard.window = Window::new(1_000, -1_000, 7, 11);
        same_shard.options.deadline_ms = 250;
        same_shard.options.max_bytes = 1 << 16;
        assert_eq!(
            base.shard_key(),
            same_shard.shard_key(),
            "seed/window/ids/budgets must not move a request across shards"
        );
        let other_kernel = base.with_truncation(5e-2);
        assert_ne!(base.shard_key(), other_kernel.shard_key(), "a different kernel reroutes");
        let other_backend = base.with_backend(ConvBackend::Direct);
        assert_ne!(base.shard_key(), other_backend.shard_key());
    }

    /// Serves its bytes one at a time, then times out like a socket
    /// whose read deadline expired.
    struct TimeoutAfter {
        data: Vec<u8>,
        pos: usize,
    }

    impl std::io::Read for TimeoutAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "deadline"));
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn deadline_at_frame_boundary_is_marked_mid_frame_is_not() {
        // Timeout before any byte: a boundary timeout — recoverable.
        let mut idle = TimeoutAfter { data: Vec::new(), pos: 0 };
        let e = read_frame(&mut idle).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Io);
        assert!(timed_out_at_boundary(&e), "zero bytes consumed ⇒ boundary");

        // Timeout after a partial magic: mid-frame — the stream position
        // is unknowable and the marker must be absent.
        let mut partial = TimeoutAfter { data: MAGIC[..3].to_vec(), pos: 0 };
        let e = read_frame(&mut partial).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Io);
        assert!(!timed_out_at_boundary(&e), "partial frame ⇒ not a boundary timeout");

        // Timeout inside the payload: also mid-frame.
        let mut frame = Vec::new();
        write_frame(&mut frame, FrameKind::Ping, b"abc").unwrap();
        frame.truncate(frame.len() - 1);
        let mut torn = TimeoutAfter { data: frame, pos: 0 };
        let e = read_frame(&mut torn).unwrap_err();
        assert!(!timed_out_at_boundary(&e));
    }

    #[test]
    fn chaos_seam_is_transparent_when_disabled_and_typed_when_armed() {
        use rrs_chaos::{ChaosInjector, FaultKind, FaultSchedule};
        let req = sample_request();
        let stall = Duration::from_millis(1);

        // Disabled: byte-identical to the plain functions.
        let chaos = ChaosInjector::disabled();
        let mut plain = Vec::new();
        write_frame(&mut plain, FrameKind::Generate, &req.encode()).unwrap();
        let mut seamed = Vec::new();
        write_frame_chaos(&mut seamed, FrameKind::Generate, &req.encode(), &chaos, stall).unwrap();
        assert_eq!(plain, seamed, "disabled seam must not change a byte");
        let (kind, payload) = read_frame_chaos(&mut seamed.as_slice(), &chaos, stall).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Generate);
        assert_eq!(GenerateRequest::decode(&payload).unwrap(), req);

        // An injected write error leaves a torn frame: the peer's codec
        // fails closed on it, exactly like a real mid-frame disconnect.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(1).with_fault(FaultSite::FrameWrite, FaultKind::Error, 0),
        );
        let mut torn = Vec::new();
        let err = write_frame_chaos(&mut torn, FrameKind::Generate, &req.encode(), &chaos, stall)
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(!torn.is_empty() && torn.len() < plain.len(), "prefix, not all or nothing");
        assert_eq!(&torn[..4], &MAGIC, "the torn frame still starts plausibly");
        assert_eq!(
            read_frame(&mut torn.as_slice()).unwrap_err().kind(),
            ErrorKind::CorruptSnapshot,
            "the peer must see a typed mid-frame disconnect"
        );

        // An injected read cancel reads as a clean hang-up; an injected
        // read error is a typed I/O failure before any byte is consumed.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(2)
                .with_fault(FaultSite::FrameRead, FaultKind::Cancel, 0)
                .with_fault(FaultSite::FrameRead, FaultKind::Error, 1),
        );
        assert!(read_frame_chaos(&mut plain.as_slice(), &chaos, stall).unwrap().is_none());
        let err = read_frame_chaos(&mut plain.as_slice(), &chaos, stall).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        // Visit 2: nothing armed, the stream reads through untouched.
        let (kind, _) = read_frame_chaos(&mut plain.as_slice(), &chaos, stall).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Generate);
        assert_eq!(chaos.injected(), 2);
    }
}
