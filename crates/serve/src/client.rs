//! A blocking client for the serving protocol.
//!
//! [`Client::try_generate`] is the one-shot form; [`Client::send`] /
//! [`Client::recv`] expose the pipelined form (many requests in flight
//! on one connection, responses matched by request id). The server may
//! answer out of send order when coalescing batches, so the client
//! stashes out-of-order responses instead of assuming FIFO.

use crate::wire::{
    self, FrameKind, GenerateErr, GenerateOk, GenerateRequest, Overloaded, OverloadReason,
};
use rrs_chaos::{ChaosInjector, FaultSite};
use rrs_error::{ErrorKind, RrsError};
use rrs_grid::Grid2;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side connection settings.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Bound on `connect` — an unreachable or partitioned endpoint
    /// surfaces a typed, retryable [`ErrorKind::Unavailable`] instead of
    /// hanging for the OS default (minutes).
    pub connect_timeout: Duration,
    /// Wire-level chaos injector ([`FaultSite::EndpointConnect`],
    /// `FrameRead`, `FrameWrite` fire client-side). Disabled by default.
    pub chaos: ChaosInjector,
    /// How long an injected `Deadline` fault stalls the transport.
    pub chaos_stall: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            chaos: ChaosInjector::disabled(),
            chaos_stall: wire::DEFAULT_CHAOS_STALL,
        }
    }
}

/// A generation failure reported by the server, carrying the stable
/// [`ErrorKind`] and the server-side message.
///
/// This is deliberately not an [`RrsError`]: several variants hold
/// `&'static str` fields a remote peer cannot reconstruct, so the wire
/// round-trips the kind plus the rendered message instead.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteError {
    /// The error kind as classified server-side.
    pub kind: ErrorKind,
    /// The server's `Display` rendering of the error.
    pub message: String,
    /// `BudgetExceeded` only: bytes the request needed.
    pub required_bytes: u64,
    /// `BudgetExceeded` only: the ceiling it exceeded.
    pub max_bytes: u64,
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server error ({:?}): {}", self.kind, self.message)
    }
}

/// Everything that can go wrong with a served request.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control rejected the request before queueing it; retry
    /// later (the depth is a backoff hint).
    Overloaded {
        /// What limit was hit.
        reason: OverloadReason,
        /// Queue depth at rejection time.
        queue_depth: u32,
    },
    /// The server processed the request and failed, with a typed kind.
    Remote(RemoteError),
    /// The connection or codec failed client-side.
    Transport(RrsError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { reason, queue_depth } => {
                write!(f, "server overloaded ({reason:?}, queue depth {queue_depth})")
            }
            Self::Remote(e) => write!(f, "{e}"),
            Self::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl ServeError {
    /// Whether failing over — resending the identical request to the
    /// same or another endpoint — is both safe and promising. Safe is
    /// unconditional (generation is stateless and idempotent), so this
    /// answers "promising": transport failures (the connection is dead
    /// or suspect either way), admission rejections, and the retryable
    /// remote kinds (`Unavailable`, `Draining`, `Io`). Everything else
    /// is a deterministic property of the request itself and fails
    /// identically everywhere.
    pub fn is_retryable(&self) -> bool {
        match self {
            Self::Overloaded { .. } => true,
            Self::Transport(_) => true,
            Self::Remote(e) => e.kind.is_retryable(),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RrsError> for ServeError {
    fn from(e: RrsError) -> Self {
        Self::Transport(e)
    }
}

/// The outcome of one request, paired with its id by [`Client::recv`].
pub type Response = Result<Grid2<f64>, ServeError>;

/// What one received frame meant.
enum Incoming {
    /// A response to some generation request.
    Response(u64, Response),
    /// A ping reply.
    Pong,
    /// A metrics report.
    Metrics(String),
}

/// A blocking serving-protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    config: ClientConfig,
    /// Responses received while waiting for a different request id.
    stash: Vec<(u64, Response)>,
}

impl Client {
    /// Connects to a server with default [`ClientConfig`] (bounded
    /// connect, chaos disabled).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit settings. Each resolved address is tried
    /// in turn under [`ClientConfig::connect_timeout`]; total failure
    /// surfaces as a retryable [`ErrorKind::Unavailable`] transport
    /// error — the caller (or a `ShardedClient`) may fail over.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, ServeError> {
        if let Err(e) = config.chaos.poll_contained(FaultSite::EndpointConnect) {
            return Err(ServeError::Transport(RrsError::unavailable(format!(
                "injected connect fault: {e}"
            ))));
        }
        let addrs: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| ServeError::Transport(RrsError::unavailable(format!("resolve: {e}"))))?
            .collect();
        let mut last: Option<std::io::Error> = None;
        let stream = addrs
            .iter()
            .find_map(|a| match TcpStream::connect_timeout(a, config.connect_timeout) {
                Ok(s) => Some(s),
                Err(e) => {
                    last = Some(e);
                    None
                }
            })
            .ok_or_else(|| {
                ServeError::Transport(RrsError::unavailable(match last {
                    Some(e) => format!("connect: {e}"),
                    None => "connect: no addresses resolved".into(),
                }))
            })?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(|e| ServeError::Transport(RrsError::Io(e)))?;
        Ok(Self { reader: BufReader::new(stream), writer, config, stash: Vec::new() })
    }

    /// Sends a request without waiting — the pipelining half.
    pub fn send(&mut self, req: &GenerateRequest) -> Result<(), ServeError> {
        self.write(FrameKind::Generate, &req.encode())
    }

    /// Writes one frame through the chaos seam.
    fn write(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(), ServeError> {
        wire::write_frame_chaos(
            &mut self.writer,
            kind,
            payload,
            &self.config.chaos,
            self.config.chaos_stall,
        )?;
        Ok(())
    }

    /// Reads and classifies the next frame.
    fn read_incoming(&mut self, waiting_for: &str) -> Result<Incoming, ServeError> {
        let (kind, payload) = wire::read_frame_chaos(
            &mut self.reader,
            &self.config.chaos,
            self.config.chaos_stall,
        )?
        .ok_or_else(|| {
            ServeError::Transport(RrsError::corrupt_snapshot(format!(
                "server closed the connection while {waiting_for} was pending"
            )))
        })?;
        Ok(match kind {
            FrameKind::GenerateOk => {
                let ok = GenerateOk::decode(&payload)?;
                Incoming::Response(ok.request_id, Ok(ok.grid))
            }
            FrameKind::GenerateErr => {
                let err = GenerateErr::decode(&payload)?;
                Incoming::Response(
                    err.request_id,
                    Err(ServeError::Remote(RemoteError {
                        kind: err.kind,
                        message: err.message,
                        required_bytes: err.required_bytes,
                        max_bytes: err.max_bytes,
                    })),
                )
            }
            FrameKind::Overloaded => {
                let over = Overloaded::decode(&payload)?;
                Incoming::Response(
                    over.request_id,
                    Err(ServeError::Overloaded {
                        reason: over.reason,
                        queue_depth: over.queue_depth,
                    }),
                )
            }
            FrameKind::Pong => Incoming::Pong,
            FrameKind::MetricsReport => Incoming::Metrics(
                String::from_utf8(payload).map_err(|_| {
                    ServeError::Transport(RrsError::corrupt_snapshot(
                        "metrics report is not UTF-8",
                    ))
                })?,
            ),
            other => {
                return Err(ServeError::Transport(RrsError::corrupt_snapshot(format!(
                    "unexpected frame kind {other:?} while {waiting_for} was pending"
                ))))
            }
        })
    }

    /// Receives the next generation response, whichever request it
    /// answers. Stashed out-of-order responses drain first.
    pub fn recv(&mut self) -> Result<(u64, Response), ServeError> {
        if !self.stash.is_empty() {
            return Ok(self.stash.remove(0));
        }
        loop {
            match self.read_incoming("a response")? {
                Incoming::Response(id, outcome) => return Ok((id, outcome)),
                Incoming::Pong | Incoming::Metrics(_) => continue, // stale reply
            }
        }
    }

    /// Sends one request and blocks until *its* response arrives,
    /// stashing responses to other in-flight requests.
    pub fn try_generate(&mut self, req: &GenerateRequest) -> Result<Grid2<f64>, ServeError> {
        self.send(req)?;
        if let Some(i) = self.stash.iter().position(|(id, _)| *id == req.request_id) {
            return self.stash.remove(i).1;
        }
        loop {
            match self.read_incoming("a response")? {
                Incoming::Response(id, outcome) if id == req.request_id => return outcome,
                Incoming::Response(id, outcome) => self.stash.push((id, outcome)),
                Incoming::Pong | Incoming::Metrics(_) => {}
            }
        }
    }

    /// Fetches the server's metrics report as JSON, stashing any
    /// generation responses that arrive first.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        self.write(FrameKind::Metrics, &[])?;
        loop {
            match self.read_incoming("metrics")? {
                Incoming::Metrics(json) => return Ok(json),
                Incoming::Response(id, outcome) => self.stash.push((id, outcome)),
                Incoming::Pong => {}
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.write(FrameKind::Ping, &[])?;
        loop {
            match self.read_incoming("a pong")? {
                Incoming::Pong => return Ok(()),
                Incoming::Response(id, outcome) => self.stash.push((id, outcome)),
                Incoming::Metrics(_) => {}
            }
        }
    }
}
