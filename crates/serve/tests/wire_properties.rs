//! Fail-closed properties of the serving wire codec, driven by the
//! rrs-check runner over the rrs-io fault injectors.
//!
//! The contract under test: *no* corruption of a frame — a flipped bit
//! anywhere, truncation at any byte, a stomped magic — ever decodes
//! into a value. Every corruption either reads back as a typed
//! [`ErrorKind::CorruptSnapshot`] / [`ErrorKind::InvalidParam`] error
//! or (for a truncation that happens to land exactly on the frame
//! boundary) as a clean end-of-stream. Nothing panics, nothing yields
//! a wrong-but-plausible request.

use rrs_check::Runner;
use rrs_error::ErrorKind;
use rrs_grid::Window;
use rrs_io::fault::{flip_bit, stomp_magic, truncated};
use rrs_serve::wire::{read_frame, write_frame, FrameKind};
use rrs_serve::GenerateRequest;
use rrs_spectrum::{SpectrumModel, SurfaceParams};

/// A seeded, valid request (parameters drawn from the constructors'
/// accepted ranges).
fn arbitrary_request(rng: &mut rrs_check::CaseRng) -> GenerateRequest {
    let h = 0.1 + rng.next_f64() * 4.0;
    let clx = 0.5 + rng.next_f64() * 12.0;
    let cly = 0.5 + rng.next_f64() * 12.0;
    let params = SurfaceParams::try_new(h, clx, cly).expect("drawn in range");
    let spectrum = match rng.next_below(3) {
        0 => SpectrumModel::gaussian(params),
        1 => SpectrumModel::power_law(params, 1.5 + rng.next_f64() * 3.0),
        _ => SpectrumModel::exponential(params),
    };
    let window = Window::try_new(
        rng.next_u64() as i32 as i64,
        rng.next_u64() as i32 as i64,
        1 + rng.next_below(64) as usize,
        1 + rng.next_below(64) as usize,
    )
    .expect("non-empty, far from overflow");
    let mut req = GenerateRequest::new(rng.next_u64(), rng.next_below(4), rng.next_u64(), spectrum, window);
    if rng.next_below(2) == 0 {
        req = req.with_truncation(1e-6 + rng.next_f64() * 0.1);
    }
    let min = 4 + rng.next_below(16) as u32;
    req.with_sizing(2.0 + rng.next_f64() * 8.0, min, min + rng.next_below(64) as u32)
}

fn encode_frame(req: &GenerateRequest) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, FrameKind::Generate, &req.encode()).expect("Vec write");
    buf
}

/// Decoding a corrupted frame must fail closed (or, for boundary
/// truncation, read as clean EOF) — never panic, never succeed.
fn assert_fails_closed(bytes: &[u8], original: &GenerateRequest, what: &str) {
    match read_frame(&mut &bytes[..]) {
        Ok(None) => assert!(
            bytes.is_empty(),
            "{what}: clean EOF is only legal for an empty stream"
        ),
        Ok(Some((kind, payload))) => {
            // The checksum is not a cryptographic MAC; a forgery would
            // need to survive FNV-1a *and* re-validate. Neither injector
            // can produce that from a valid frame, so reaching here with
            // a decodable, equal request means corruption was silent.
            let decoded = (kind == FrameKind::Generate)
                .then(|| GenerateRequest::decode(&payload).ok())
                .flatten();
            assert!(
                decoded.as_ref() != Some(original),
                "{what}: corruption decoded back to the original request"
            );
            panic!("{what}: corrupted frame passed the checksum");
        }
        Err(e) => {
            let kind = e.kind();
            assert!(
                matches!(kind, ErrorKind::CorruptSnapshot | ErrorKind::InvalidParam),
                "{what}: expected a typed framing error, got {kind:?}: {e}"
            );
        }
    }
}

#[test]
fn any_valid_request_round_trips_through_a_frame() {
    Runner::new("serve::wire::round_trip", 64).run(|rng| {
        let req = arbitrary_request(rng);
        let bytes = encode_frame(&req);
        let (kind, payload) = read_frame(&mut &bytes[..]).expect("valid frame").expect("one frame");
        assert_eq!(kind, FrameKind::Generate);
        assert_eq!(GenerateRequest::decode(&payload).expect("valid payload"), req);
    });
}

#[test]
fn a_flipped_bit_anywhere_fails_closed() {
    Runner::new("serve::wire::flip_bit", 64).run(|rng| {
        let req = arbitrary_request(rng);
        let clean = encode_frame(&req);
        let mut bytes = clean.clone();
        let bit = rng.next_below((bytes.len() * 8) as u64) as usize;
        flip_bit(&mut bytes, bit);
        assert_fails_closed(&bytes, &req, &format!("bit {bit} of {} bytes", clean.len()));
    });
}

#[test]
fn truncation_at_any_byte_fails_closed() {
    Runner::new("serve::wire::truncate", 64).run(|rng| {
        let req = arbitrary_request(rng);
        let clean = encode_frame(&req);
        // Any strictly shorter prefix — including the empty one.
        let keep = rng.next_below(clean.len() as u64) as usize;
        let bytes = truncated(&clean, keep);
        assert_fails_closed(&bytes, &req, &format!("truncated to {keep}/{} bytes", clean.len()));
    });
}

#[test]
fn a_stomped_magic_fails_closed() {
    Runner::new("serve::wire::stomp_magic", 32).run(|rng| {
        let req = arbitrary_request(rng);
        let mut bytes = encode_frame(&req);
        stomp_magic(&mut bytes);
        assert_fails_closed(&bytes, &req, "stomped magic");
    });
}

/// The client read path's half of the mid-frame-disconnect story: a
/// `GenerateOk` response truncated at *every* byte boundary — the wire
/// image of a server dying mid-write — reads back as a typed error (or
/// clean EOF at zero bytes), never a partial window. Exhaustive, not
/// sampled: every prefix length of a real response frame is tried.
#[test]
fn a_response_truncated_at_every_byte_boundary_never_yields_a_partial_window() {
    use rrs_grid::Grid2;
    use rrs_serve::wire::GenerateOk;
    let ok = GenerateOk {
        request_id: 77,
        grid: Grid2::from_fn(5, 3, |x, y| (x as f64) * 0.5 - (y as f64) * 0.25),
    };
    let mut clean = Vec::new();
    write_frame(&mut clean, FrameKind::GenerateOk, &ok.encode()).expect("Vec write");
    for keep in 0..clean.len() {
        let bytes = truncated(&clean, keep);
        match read_frame(&mut &bytes[..]) {
            Ok(None) => assert_eq!(keep, 0, "clean EOF is only legal for an empty stream"),
            Ok(Some(_)) => panic!("truncation to {keep}/{} bytes decoded a frame", clean.len()),
            Err(e) => assert_eq!(
                e.kind(),
                ErrorKind::CorruptSnapshot,
                "truncation to {keep} bytes: typed framing error, got {e}"
            ),
        }
    }
    // And the untouched frame still round-trips to the full window.
    let (kind, payload) = read_frame(&mut &clean[..]).expect("valid").expect("one frame");
    assert_eq!(kind, FrameKind::GenerateOk);
    let back = GenerateOk::decode(&payload).expect("valid payload");
    assert_eq!(back.request_id, 77);
    assert_eq!(back.grid, ok.grid);
}

/// Corrupting only the *payload* region (leaving framing intact) still
/// fails closed: the checksum covers the payload, so the frame itself
/// is rejected before the request decoder ever runs.
#[test]
fn payload_corruption_is_caught_by_the_frame_checksum() {
    Runner::new("serve::wire::payload_flip", 64).run(|rng| {
        let req = arbitrary_request(rng);
        let mut bytes = encode_frame(&req);
        // Frame layout: magic(4) kind(1) len(4) payload(120) crc(8).
        let payload_bits = 120 * 8;
        let bit = (9 * 8) + rng.next_below(payload_bits) as usize;
        flip_bit(&mut bytes, bit);
        let e = read_frame(&mut &bytes[..]).expect_err("checksum must catch a payload flip");
        assert_eq!(e.kind(), ErrorKind::CorruptSnapshot, "typed framing error, got {e}");
    });
}
