//! Property-based tests for the numerical substrate (rrs-check harness).

use rrs_check::any;
use rrs_num::special::{erf, gamma_p, gamma_q, ln_gamma};
use rrs_num::{interp, roots, Complex64};
use std::ops::Range;

fn finite() -> Range<f64> {
    -1e6..1e6
}

fn small() -> Range<f64> {
    -1e3..1e3
}

rrs_check::props! {
    #![cases = 256]

    fn complex_addition_commutes(a in finite(), b in finite(), c in finite(), d in finite()) {
        let x = Complex64::new(a, b);
        let y = Complex64::new(c, d);
        assert_eq!(x + y, y + x);
    }

    fn complex_multiplication_commutes(a in small(), b in small(), c in small(), d in small()) {
        let x = Complex64::new(a, b);
        let y = Complex64::new(c, d);
        let p = x * y;
        let q = y * x;
        assert!((p - q).abs() <= 1e-12 * p.abs().max(1.0));
    }

    fn conjugation_distributes_over_product(a in small(), b in small(), c in small(), d in small()) {
        let x = Complex64::new(a, b);
        let y = Complex64::new(c, d);
        let lhs = (x * y).conj();
        let rhs = x.conj() * y.conj();
        assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1.0));
    }

    fn magnitude_is_multiplicative(a in small(), b in small(), c in small(), d in small()) {
        let x = Complex64::new(a, b);
        let y = Complex64::new(c, d);
        let lhs = (x * y).abs();
        let rhs = x.abs() * y.abs();
        assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0));
    }

    fn division_inverts_multiplication(a in small(), b in small(), c in 0.1f64..1e3, d in 0.1f64..1e3) {
        let x = Complex64::new(a, b);
        let y = Complex64::new(c, d);
        let z = (x * y) / y;
        assert!((z - x).abs() <= 1e-9 * x.abs().max(1.0));
    }

    fn cis_preserves_angle_addition(t1 in -10.0f64..10.0, t2 in -10.0f64..10.0) {
        let lhs = Complex64::cis(t1) * Complex64::cis(t2);
        let rhs = Complex64::cis(t1 + t2);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    fn ln_gamma_satisfies_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    fn incomplete_gamma_halves_sum_to_one(a in 0.1f64..30.0, x in 0.0f64..60.0) {
        let s = gamma_p(a, x) + gamma_q(a, x);
        assert!((s - 1.0).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&gamma_p(a, x)));
    }

    fn erf_is_odd_and_bounded(x in -5.0f64..5.0) {
        assert!((erf(x) + erf(-x)).abs() < 1e-14);
        assert!(erf(x).abs() <= 1.0);
    }

    fn erf_is_monotone(x in -4.0f64..4.0, dx in 1e-3f64..1.0) {
        assert!(erf(x + dx) > erf(x));
    }

    fn lerp_stays_in_hull(a in finite(), b in finite(), t in 0.0f64..1.0) {
        let v = interp::lerp(a, b, t);
        assert!(v >= a.min(b) - 1e-9 * a.abs().max(b.abs()).max(1.0));
        assert!(v <= a.max(b) + 1e-9 * a.abs().max(b.abs()).max(1.0));
    }

    fn unit_ramp_is_clamped_monotone(x0 in -100.0f64..100.0, len in 0.1f64..100.0, x in -300.0f64..300.0, dx in 0.0f64..10.0) {
        let x1 = x0 + len;
        let a = interp::unit_ramp(x, x0, x1);
        let b = interp::unit_ramp(x + dx, x0, x1);
        assert!((0.0..=1.0).contains(&a));
        assert!(b >= a);
    }

    fn brent_finds_roots_of_random_monotone_cubics(r in -5.0f64..5.0, k in 0.1f64..10.0) {
        // f(x) = k·(x − r)·(1 + (x − r)²) is strictly increasing with the
        // single real root r.
        let f = |x: f64| {
            let d = x - r;
            k * d * (1.0 + d * d)
        };
        let root = roots::brent(f, r - 7.0, r + 9.0, 1e-12, 200).unwrap();
        assert!((root.x - r).abs() < 1e-7, "root {} vs {r}", root.x);
    }

    fn interp1_hits_knots_exactly(n in 2usize..20, seed in any::<u64>()) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| ((seed.wrapping_mul(i as u64 + 1) % 1000) as f64) * 0.01)
            .collect();
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(interp::interp1(&xs, &ys, *x), *y);
        }
    }
}
