//! Double-precision complex numbers.
//!
//! A deliberately small, `Copy`, `#[repr(C)]` complex type. The FFT crate
//! stores `&[Complex64]` buffers contiguously; keeping the layout trivially
//! two `f64`s lets the compiler vectorise butterflies.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` in double precision.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(r * c, r * s)
    }

    /// `e^{jθ}` — a unit phasor. This is the twiddle-factor constructor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(c, s)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`, computed with `hypot` for overflow safety.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by the imaginary unit (a 90° rotation) without a full
    /// complex multiply.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Scales both parts by a real factor.
    #[inline(always)]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Reciprocal `1/z`. Returns infinities for `z == 0`, mirroring `f64`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Complex square root on the principal branch.
    pub fn sqrt(self) -> Self {
        if self.im == 0.0 {
            if self.re >= 0.0 {
                return Self::new(self.re.sqrt(), 0.0);
            }
            return Self::new(0.0, (-self.re).sqrt().copysign(self.im.max(0.0) + 1.0));
        }
        let r = self.abs();
        let re = ((r + self.re) * 0.5).sqrt();
        let im = ((r - self.re) * 0.5).sqrt().copysign(self.im);
        Self::new(re, im)
    }

    /// Fused multiply-add `self * b + c`; the workhorse of FFT butterflies.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self::new(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        // Smith's algorithm avoids premature overflow/underflow.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Self::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Self::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_close;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE.re, 1.0);
        assert_eq!(Complex64::I.im, 1.0);
        let z: Complex64 = 3.5.into();
        assert_eq!(z, Complex64::from_re(3.5));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.75);
        assert_close(z.abs(), 2.0, 1e-14);
        assert_close(z.arg(), 0.75, 1e-14);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..32 {
            let z = Complex64::cis(k as f64 * 0.3);
            assert_close(z.abs(), 1.0, 1e-14);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        assert_eq!(a + b - b, a);
        let prod = a * b;
        let back = prod / b;
        assert_close(back.re, a.re, 1e-12);
        assert_close(back.im, a.im, 1e-12);
        assert_eq!(-a + a, Complex64::ZERO);
    }

    #[test]
    fn conj_properties() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a.conj().conj(), a);
        let m = a * a.conj();
        assert_close(m.re, a.norm_sqr(), 1e-14);
        assert!(m.im.abs() < 1e-14);
    }

    #[test]
    fn mul_i_rotates() {
        let a = Complex64::new(2.0, 1.0);
        assert_eq!(a.mul_i(), a * Complex64::I);
    }

    #[test]
    fn division_smith_extremes() {
        // Large-magnitude divisor would overflow a naive implementation.
        let a = Complex64::new(1e300, 1e300);
        let q = a / a;
        assert_close(q.re, 1.0, 1e-12);
        assert!(q.im.abs() < 1e-12);
    }

    #[test]
    fn recip_matches_div() {
        let a = Complex64::new(0.3, -0.7);
        let r = a.recip();
        let d = Complex64::ONE / a;
        assert_close(r.re, d.re, 1e-13);
        assert_close(r.im, d.im, 1e-13);
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let t = 1.234;
        let e = Complex64::new(0.0, t).exp();
        let c = Complex64::cis(t);
        assert_close(e.re, c.re, 1e-14);
        assert_close(e.im, c.im, 1e-14);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-4.0, 0.0), (3.0, 4.0), (-3.0, -4.0), (0.0, 2.0)] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            let sq = s * s;
            assert_close(sq.re, re, 1e-12);
            assert_close(sq.im, im, 1e-12);
            assert!(s.re >= 0.0, "principal branch: {s:?}");
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.1, 2.2);
        let b = Complex64::new(-0.4, 0.9);
        let c = Complex64::new(5.0, -6.0);
        let fused = a.mul_add(b, c);
        let plain = a * b + c;
        assert_close(fused.re, plain.re, 1e-14);
        assert_close(fused.im, plain.im, 1e-14);
    }

    #[test]
    fn sum_iterator() {
        let zs = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -3.0)];
        let s: Complex64 = zs.iter().copied().sum();
        assert_eq!(s, Complex64::new(3.0, -2.0));
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }
}
