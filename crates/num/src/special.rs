//! Special functions required by the closed-form surface statistics.
//!
//! The paper's three spectrum families need:
//!
//! * `Γ(N)` for normalising the N-th order Power-Law spectrum (eqn 7);
//! * the modified Bessel function of the second kind `K_ν` for the
//!   Power-Law autocorrelation (eqn 8), which is the 2-D Fourier transform
//!   of `(1 + |κ|²)^{-N}`;
//! * the error function / regularized incomplete gamma for the statistical
//!   goodness-of-fit tests used when validating generated surfaces.
//!
//! The Bessel implementation follows the classical Temme-series +
//! continued-fraction scheme (Numerical Recipes' `bessik`): it computes
//! `I_μ, K_μ` for the fractional part `|μ| ≤ 1/2` of the order and recurs
//! upward, which is stable for `K` because upward recurrence is dominant.

use core::f64::consts::PI;

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

const EPS: f64 = 1e-16;
const FPMIN: f64 = 1e-300;
const MAXIT: usize = 10_000;

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation with `g = 7`, 9 coefficients — accurate to about
/// 15 significant digits over the positive axis.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7, n = 9).
    const COF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the series in its accurate range.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COF[0];
    let t = x + 7.5;
    for (i, &c) in COF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Result of a simultaneous modified-Bessel evaluation.
#[derive(Clone, Copy, Debug)]
pub struct BesselIK {
    /// `I_ν(x)` — modified Bessel function of the first kind.
    pub i: f64,
    /// `K_ν(x)` — modified Bessel function of the second kind.
    pub k: f64,
    /// `I'_ν(x)`.
    pub ip: f64,
    /// `K'_ν(x)`.
    pub kp: f64,
}

/// Chebyshev evaluation on `[-1, 1]` (Clenshaw recurrence).
fn chebev(c: &[f64], x: f64) -> f64 {
    let mut d = 0.0;
    let mut dd = 0.0;
    let x2 = 2.0 * x;
    for &cj in c.iter().skip(1).rev() {
        let sv = d;
        d = x2 * d - dd + cj;
        dd = sv;
    }
    x * d - dd + 0.5 * c[0]
}

/// Temme's auxiliary gamma combinations for `|x| ≤ 1/2`:
///
/// `gam1 = [1/Γ(1-x) - 1/Γ(1+x)] / (2x)`, `gam2 = [1/Γ(1-x) + 1/Γ(1+x)] / 2`,
/// `gampl = 1/Γ(1+x)`, `gammi = 1/Γ(1-x)`.
fn beschb(x: f64) -> (f64, f64, f64, f64) {
    const C1: [f64; 7] = [
        -1.142022680371168,
        6.5165112670737e-3,
        3.087090173086e-4,
        -3.4706269649e-6,
        6.9437664e-9,
        3.67795e-11,
        -1.356e-13,
    ];
    const C2: [f64; 8] = [
        1.843740587300905,
        -7.68528408447867e-2,
        1.2719271366546e-3,
        -4.9717367042e-6,
        -3.31261198e-8,
        2.423096e-10,
        -1.702e-13,
        -1.49e-15,
    ];
    let xx = 8.0 * x * x - 1.0;
    let gam1 = chebev(&C1, xx);
    let gam2 = chebev(&C2, xx);
    let gampl = gam2 - x * gam1;
    let gammi = gam2 + x * gam1;
    (gam1, gam2, gampl, gammi)
}

/// Computes `I_ν(x)`, `K_ν(x)` and their derivatives for `x > 0`, `ν ≥ 0`.
///
/// # Panics
/// Panics if `x ≤ 0` or `ν < 0`.
pub fn bessel_ik(nu: f64, x: f64) -> BesselIK {
    assert!(x > 0.0 && nu >= 0.0, "bessel_ik requires x > 0, nu >= 0");
    let nl = (nu + 0.5) as i64; // number of upward recurrences
    let xmu = nu - nl as f64; // fractional order, |xmu| <= 1/2
    let xmu2 = xmu * xmu;
    let xi = 1.0 / x;
    let xi2 = 2.0 * xi;

    // CF1 for I'_nu / I_nu.
    let mut h = (nu * xi).max(FPMIN);
    let mut b = xi2 * nu;
    let mut d = 0.0;
    let mut c = h;
    let mut converged = false;
    for _ in 0..MAXIT {
        b += xi2;
        d = 1.0 / (b + d);
        c = b + 1.0 / c;
        let del = c * d;
        h *= del;
        if (del - 1.0).abs() < EPS {
            converged = true;
            break;
        }
    }
    assert!(converged, "bessel_ik: CF1 failed to converge for nu={nu}, x={x}");

    // Downward recurrence of an unnormalised I from order nu to xmu.
    let mut ril = FPMIN;
    let mut ripl = h * ril;
    let ril1 = ril;
    let rip1 = ripl;
    let mut fact = nu * xi;
    for _ in 0..nl {
        let ritemp = fact * ril + ripl;
        fact -= xi;
        ripl = fact * ritemp + ril;
        ril = ritemp;
    }
    let f = ripl / ril;

    // K_xmu and K_{xmu+1}.
    let (rkmu, rk1) = if x < 2.0 {
        // Temme's series.
        let x2 = 0.5 * x;
        let pimu = PI * xmu;
        let fact = if pimu.abs() < EPS { 1.0 } else { pimu / pimu.sin() };
        let d = -x2.ln();
        let e = xmu * d;
        let fact2 = if e.abs() < EPS { 1.0 } else { e.sinh() / e };
        let (gam1, gam2, gampl, gammi) = beschb(xmu);
        let mut ff = fact * (gam1 * e.cosh() + gam2 * fact2 * d);
        let mut sum = ff;
        let e = e.exp();
        let mut p = 0.5 * e / gampl;
        let mut q = 0.5 / (e * gammi);
        let mut cc = 1.0;
        let dd = x2 * x2;
        let mut sum1 = p;
        let mut ok = false;
        for i in 1..=MAXIT {
            let fi = i as f64;
            ff = (fi * ff + p + q) / (fi * fi - xmu2);
            cc *= dd / fi;
            p /= fi - xmu;
            q /= fi + xmu;
            let del = cc * ff;
            sum += del;
            let del1 = cc * (p - fi * ff);
            sum1 += del1;
            if del.abs() < sum.abs() * EPS {
                ok = true;
                break;
            }
        }
        assert!(ok, "bessel_ik: Temme series failed for nu={nu}, x={x}");
        (sum, sum1 * xi2)
    } else {
        // CF2 (Steed's algorithm) for x >= 2.
        let mut b = 2.0 * (1.0 + x);
        let mut d = 1.0 / b;
        let mut delh = d;
        let mut h2 = d;
        let mut q1 = 0.0;
        let mut q2 = 1.0;
        let a1 = 0.25 - xmu2;
        let mut q = a1;
        let mut cc = a1;
        let mut a = -a1;
        let mut s = 1.0 + q * delh;
        let mut ok = false;
        for i in 2..=MAXIT {
            a -= 2.0 * (i as f64 - 1.0);
            cc = -a * cc / i as f64;
            let qnew = (q1 - b * q2) / a;
            q1 = q2;
            q2 = qnew;
            q += cc * qnew;
            b += 2.0;
            d = 1.0 / (b + a * d);
            delh *= b * d - 1.0;
            h2 += delh;
            let dels = q * delh;
            s += dels;
            if (dels / s).abs() < EPS {
                ok = true;
                break;
            }
        }
        assert!(ok, "bessel_ik: CF2 failed for nu={nu}, x={x}");
        let h2 = a1 * h2;
        let rkmu = (PI / (2.0 * x)).sqrt() * (-x).exp() / s;
        let rk1 = rkmu * (xmu + x + 0.5 - h2) * xi;
        (rkmu, rk1)
    };

    let rkmup = xmu * xi * rkmu - rk1;
    let rimu = xi / (f * rkmu - rkmup);
    let i_out = rimu * ril1 / ril;
    let ip_out = rimu * rip1 / ril;

    // Upward recurrence for K to the requested order.
    let mut rkmu = rkmu;
    let mut rk1 = rk1;
    for l in 1..=nl {
        let rktemp = (xmu + l as f64) * xi2 * rk1 + rkmu;
        rkmu = rk1;
        rk1 = rktemp;
    }
    BesselIK { i: i_out, k: rkmu, ip: ip_out, kp: nu * xi * rkmu - rk1 }
}

/// `K_ν(x)` for `ν ≥ 0`, `x > 0`. Returns `+∞` at `x = 0` and `0` once the
/// exponential tail underflows (`x ≳ 705`).
pub fn bessel_k(nu: f64, x: f64) -> f64 {
    assert!(nu >= 0.0, "bessel_k requires nu >= 0");
    if x == 0.0 {
        return f64::INFINITY;
    }
    if x > 705.0 {
        return 0.0; // e^{-x} underflows; K decays below the f64 floor.
    }
    bessel_ik(nu, x).k
}

/// `I_ν(x)` for `ν ≥ 0`, `x ≥ 0`.
pub fn bessel_i(nu: f64, x: f64) -> f64 {
    assert!(nu >= 0.0, "bessel_i requires nu >= 0");
    if x == 0.0 {
        return if nu == 0.0 { 1.0 } else { 0.0 };
    }
    bessel_ik(nu, x).i
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series for `x < a + 1`, continued fraction otherwise. Used by the χ²
/// goodness-of-fit test and, through [`erf`], the KS/normality checks.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAXIT {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            return sum * (-x + a * x.ln() - ln_gamma(a)).exp();
        }
    }
    panic!("gamma_p series failed to converge for a={a}, x={x}");
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued fraction representation of Q.
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAXIT {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        }
    }
    panic!("gamma_q continued fraction failed for a={a}, x={x}");
}

/// The error function `erf(x)`, accurate to near machine precision via the
/// regularized incomplete gamma `P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 { v } else { -v }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`, without the
/// cancellation loss of computing `1 - erf(x)` for large `x`.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / core::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_close;

    #[test]
    fn gamma_integers_are_factorials() {
        let mut fact = 1.0;
        for n in 1..12 {
            assert_close(gamma(n as f64), fact, 1e-12);
            fact *= n as f64;
        }
    }

    #[test]
    fn gamma_half() {
        assert_close(gamma(0.5), PI.sqrt(), 1e-13);
        assert_close(gamma(1.5), 0.5 * PI.sqrt(), 1e-13);
        assert_close(gamma(2.5), 0.75 * PI.sqrt(), 1e-13);
    }

    #[test]
    fn ln_gamma_reflection_small_x() {
        // Γ(0.1) = 9.513507698668732
        assert_close(gamma(0.1), 9.513507698668732, 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence_property() {
        // ln Γ(x+1) = ln Γ(x) + ln x for many x.
        for i in 1..200 {
            let x = 0.07 * i as f64 + 0.01;
            assert_close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-11);
        }
    }

    #[test]
    fn bessel_k_half_order_closed_form() {
        // K_{1/2}(x) = sqrt(pi/(2x)) e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0] {
            let expect = (PI / (2.0 * x)).sqrt() * (-x).exp();
            assert_close(bessel_k(0.5, x), expect, 1e-12);
        }
        // K_{3/2}(x) = sqrt(pi/(2x)) e^{-x} (1 + 1/x).
        for &x in &[0.2, 1.0, 3.0, 8.0] {
            let expect = (PI / (2.0 * x)).sqrt() * (-x).exp() * (1.0 + 1.0 / x);
            assert_close(bessel_k(1.5, x), expect, 1e-12);
        }
    }

    #[test]
    fn bessel_k_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        assert_close(bessel_k(0.0, 1.0), 0.42102443824070834, 1e-12);
        assert_close(bessel_k(1.0, 1.0), 0.6019072301972346, 1e-12);
        assert_close(bessel_k(2.0, 1.0), 1.6248388986351774, 1e-12);
        assert_close(bessel_k(0.0, 0.1), 2.427_069_024_702_017, 1e-12);
        assert_close(bessel_k(1.0, 0.1), 9.853844780870606, 1e-12);
        assert_close(bessel_k(2.0, 5.0), 0.005308943712733345, 1e-9);
        assert_close(bessel_k(3.0, 2.0), 0.647_385_390_948_234_1, 1e-11);
    }

    #[test]
    fn bessel_i_reference_values() {
        assert_close(bessel_i(0.0, 1.0), 1.2660658777520082, 1e-12);
        assert_close(bessel_i(1.0, 1.0), 0.5651591039924851, 1e-12);
        assert_close(bessel_i(2.0, 3.0), 2.245212440929951, 1e-11);
    }

    #[test]
    fn bessel_k_recurrence_property() {
        // K_{v+1}(x) = K_{v-1}(x) + (2v/x) K_v(x)
        for &nu in &[1.0, 1.3, 2.0, 2.7] {
            for &x in &[0.3, 1.0, 2.5, 7.0] {
                let lhs = bessel_k(nu + 1.0, x);
                let rhs = bessel_k(nu - 1.0, x) + (2.0 * nu / x) * bessel_k(nu, x);
                assert_close(lhs, rhs, 1e-10);
            }
        }
    }

    #[test]
    fn bessel_wronskian_property() {
        // I_v(x) K'_v(x) - I'_v(x) K_v(x) = -1/x.
        for &nu in &[0.0, 0.5, 1.0, 2.25] {
            for &x in &[0.5, 1.0, 4.0, 9.0] {
                let r = bessel_ik(nu, x);
                assert_close(r.i * r.kp - r.ip * r.k, -1.0 / x, 1e-10);
            }
        }
    }

    #[test]
    fn bessel_k_limits() {
        assert!(bessel_k(1.0, 0.0).is_infinite());
        assert_eq!(bessel_k(0.5, 800.0), 0.0);
    }

    #[test]
    fn small_order_limit_u_pow_k() {
        // lim_{u->0} u^{nu} K_nu(u) = 2^{nu-1} Γ(nu) for nu > 0 — the limit
        // that makes the Power-Law autocorrelation reach h² at the origin.
        for &nu in &[1.0, 2.0, 1.5] {
            let u = 1e-6_f64;
            let lim = u.powf(nu) * bessel_k(nu, u);
            let expect = 2.0_f64.powf(nu - 1.0) * gamma(nu);
            assert_close(lim, expect, 1e-4);
        }
    }

    #[test]
    fn erf_reference_values() {
        assert_close(erf(0.5), 0.5204998778130465, 1e-13);
        assert_close(erf(1.0), 0.8427007929497149, 1e-13);
        assert_close(erf(2.0), 0.9953222650189527, 1e-13);
        assert_close(erf(-1.0), -0.8427007929497149, 1e-13);
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.0, -0.2, 0.0, 0.4, 1.7, 3.5] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-13);
        }
    }

    #[test]
    fn erfc_large_argument_no_cancellation() {
        // erfc(5) = 1.5374597944280349e-12; computing 1-erf(5) in f64 loses
        // all digits, the dedicated path must not.
        assert_close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-10);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            for &x in &[0.1, 1.0, 3.0, 12.0] {
                assert_close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-13);
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-13);
        }
    }

    #[test]
    fn normal_cdf_symmetry_and_anchors() {
        assert_close(normal_cdf(0.0), 0.5, 1e-15);
        assert_close(normal_cdf(1.0), 0.8413447460685429, 1e-12);
        for &x in &[0.3, 1.2, 2.4] {
            assert_close(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-13);
        }
    }
}
