//! Numerical substrate for the `rrs` workspace.
//!
//! This crate provides the small set of numerical building blocks the rough
//! surface generator needs, implemented from scratch so the workspace has no
//! external numerical dependencies:
//!
//! * [`Complex64`] — double-precision complex arithmetic used by the FFT and
//!   spectral machinery.
//! * [`special`] — the special functions appearing in the closed-form
//!   autocorrelation functions of the paper's spectra (Γ, ln Γ, the modified
//!   Bessel functions `I_ν`/`K_ν`, and the error function).
//! * [`kahan`] — compensated summation for long statistical accumulations.
//! * [`interp`] — linear / bilinear interpolation used by the transition
//!   blending of the inhomogeneous generator.
//! * [`roots`] — bracketing root finders used when fitting correlation
//!   lengths to measured autocorrelation curves.
//!
//! Everything is `no_std`-friendly in spirit (no allocation in the hot
//! paths) but the crate links `std` for `f64` math intrinsics.

#![warn(missing_docs)]

pub mod complex;
pub mod interp;
pub mod kahan;
pub mod roots;
pub mod special;

pub use complex::Complex64;
pub use kahan::KahanSum;

/// Machine-epsilon-scaled tolerance helpers used across the workspace tests.
pub mod approx {
    /// Returns `true` if `a` and `b` agree to within `rel` relative error,
    /// falling back to an absolute comparison near zero.
    #[inline]
    pub fn close(a: f64, b: f64, rel: f64) -> bool {
        let scale = a.abs().max(b.abs());
        if scale < 1e-300 {
            return true;
        }
        (a - b).abs() <= rel * scale.max(1.0e-12)
    }

    /// Asserts [`close`] with a diagnostic message.
    #[track_caller]
    pub fn assert_close(a: f64, b: f64, rel: f64) {
        assert!(
            close(a, b, rel),
            "values differ: {a} vs {b} (rel tol {rel}, rel err {})",
            (a - b).abs() / a.abs().max(b.abs()).max(1e-300)
        );
    }
}
