//! Compensated (Kahan–Neumaier) summation.
//!
//! Surface validation sums millions of grid samples; naive `f64` summation
//! accumulates `O(n·ε)` error which is enough to perturb tight statistical
//! tolerances. Neumaier's variant also handles the case where the running
//! sum is smaller than the addend.

/// A running compensated sum.
#[derive(Clone, Copy, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// Creates an empty sum.
    #[inline]
    pub const fn new() -> Self {
        Self { sum: 0.0, comp: 0.0 }
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Sums a slice with compensation.
pub fn sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().value()
}

/// Compensated dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut s = KahanSum::new();
    for (&x, &y) in a.iter().zip(b) {
        s.add(x * y);
    }
    s.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn simple_sum() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn pathological_cancellation() {
        // 1 + 1e100 - 1e100 = 1 exactly with Neumaier compensation;
        // naive summation returns 0.
        let mut s = KahanSum::new();
        s.add(1.0);
        s.add(1e100);
        s.add(-1e100);
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn many_small_terms() {
        let n = 10_000_000usize;
        let term = 0.1_f64;
        let total = sum(&vec![term; n]);
        let expect = term * n as f64;
        assert!((total - expect).abs() < 1e-4, "total={total}");
    }

    #[test]
    fn dot_product() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn from_iterator() {
        let s: KahanSum = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.value(), 5050.0);
    }
}
