//! Bracketing root finders.
//!
//! Used by `rrs-stats` to fit correlation lengths: the estimated
//! autocorrelation `ρ̂(r)/ρ̂(0)` crosses `1/e` somewhere in a bracketed
//! interval, and Brent's method extracts the crossing robustly.

/// Outcome of a root search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Root {
    /// Abscissa of the root.
    pub x: f64,
    /// Residual `f(x)` at the returned point.
    pub fx: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

/// Error cases for the root finders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign — no guaranteed bracket.
    NotBracketed,
    /// The iteration cap was reached before the tolerance.
    MaxIterations,
}

impl core::fmt::Display for RootError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NotBracketed => write!(f, "root is not bracketed by the interval"),
            Self::MaxIterations => write!(f, "root finder exceeded its iteration budget"),
        }
    }
}

impl std::error::Error for RootError {}

/// Bisection on `[a, b]` with `f(a)·f(b) ≤ 0`.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(Root { x: a, fx: 0.0, iterations: 0 });
    }
    if fb == 0.0 {
        return Ok(Root { x: b, fx: 0.0, iterations: 0 });
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed);
    }
    for i in 1..=max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(Root { x: m, fx: fm, iterations: i });
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Err(RootError::MaxIterations)
}

/// Brent's method: inverse-quadratic/secant steps with a bisection
/// safeguard. Converges superlinearly on smooth functions while keeping the
/// bisection worst case.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a0: f64,
    b0: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, RootError> {
    let (mut a, mut b) = (a0, b0);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa == 0.0 {
        return Ok(Root { x: a, fx: 0.0, iterations: 0 });
    }
    if fb == 0.0 {
        return Ok(Root { x: b, fx: 0.0, iterations: 0 });
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed);
    }
    let (mut c, mut fc) = (a, fa);
    let mut d = b - a;
    let mut e = d;
    for i in 1..=max_iter {
        if fb.abs() > fc.abs() {
            // Ensure b is the best estimate.
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(Root { x: b, fx: fb, iterations: i });
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation / secant.
            let s = fb / fa;
            let (mut p, mut q);
            if a == c {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        b += if d.abs() > tol1 { d } else { tol1.copysign(xm) };
        fb = f(b);
        if fb.signum() == fc.signum() {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(RootError::MaxIterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_close;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert_close(r.x, std::f64::consts::SQRT_2, 1e-10);
    }

    #[test]
    fn brent_sqrt2_faster_than_bisect() {
        let rb = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 200).unwrap();
        let rr = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 200).unwrap();
        assert_close(rr.x, std::f64::consts::SQRT_2, 1e-12);
        assert!(rr.iterations < rb.iterations, "brent {} vs bisect {}", rr.iterations, rb.iterations);
    }

    #[test]
    fn brent_transcendental() {
        // cos x = x at x ≈ 0.7390851332151607
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
        assert_close(r.x, 0.7390851332151607, 1e-12);
    }

    #[test]
    fn exact_endpoint_roots() {
        let r = brent(|x| x, 0.0, 1.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 0.0);
        let r = bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 1.0);
    }

    #[test]
    fn unbracketed_is_reported() {
        assert_eq!(brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err(), RootError::NotBracketed);
        assert_eq!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err(), RootError::NotBracketed);
    }

    #[test]
    fn exhausted_iterations_reported() {
        assert_eq!(bisect(|x| x, -1.0, 2.0, 1e-300, 3).unwrap_err(), RootError::MaxIterations);
    }

    #[test]
    fn brent_exp_decay_crossing() {
        // The exact shape used for correlation-length fitting:
        // exp(-(r/cl)^2) = 1/e  =>  r = cl.
        let cl = 37.5;
        let r = brent(|x| (-(x / cl) * (x / cl)).exp() - (-1.0_f64).exp(), 1.0, 200.0, 1e-12, 100)
            .unwrap();
        assert_close(r.x, cl, 1e-9);
    }
}
