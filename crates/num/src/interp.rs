//! Interpolation helpers.
//!
//! The plate-oriented inhomogeneous method (paper §3.1, eqns 38–39) blends
//! kernels with *linear* transition functions across a strip; the
//! point-oriented method (§3.2, eqn 44) uses a linear ramp of the bisector
//! distance. Both reduce to the primitives here.

/// Linear interpolation `a + t·(b - a)`, exact at the endpoints.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a * (1.0 - t) + b * t
}

/// Clamps `x` to `[lo, hi]`.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    x.max(lo).min(hi)
}

/// Maps `x ∈ [x0, x1]` linearly onto `[0, 1]`, clamping outside.
///
/// This is exactly the paper's transition function shape (eqn 38): `0` on
/// one side of the strip, `1` on the other, linear within.
#[inline]
pub fn unit_ramp(x: f64, x0: f64, x1: f64) -> f64 {
    debug_assert!(x1 > x0, "unit_ramp requires x1 > x0");
    clamp((x - x0) / (x1 - x0), 0.0, 1.0)
}

/// Smoothstep `3t² - 2t³` ramp variant — an optional C¹ alternative to the
/// paper's linear transition, exposed for the ablation benches.
#[inline]
pub fn smooth_ramp(x: f64, x0: f64, x1: f64) -> f64 {
    let t = unit_ramp(x, x0, x1);
    t * t * (3.0 - 2.0 * t)
}

/// Bilinear interpolation of a quad with corner values
/// `(f00, f10, f01, f11)` at local coordinates `(tx, ty) ∈ [0,1]²`.
#[inline]
pub fn bilerp(f00: f64, f10: f64, f01: f64, f11: f64, tx: f64, ty: f64) -> f64 {
    lerp(lerp(f00, f10, tx), lerp(f01, f11, tx), ty)
}

/// Piecewise-linear interpolation through sorted `(x, y)` samples.
///
/// Extrapolates by clamping to the boundary values. Used to evaluate
/// measured autocorrelation curves at the `1/e` crossing when estimating
/// correlation lengths.
pub fn interp1(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "interp1: length mismatch");
    assert!(!xs.is_empty(), "interp1: empty input");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Binary search for the bracketing interval.
    let idx = xs.partition_point(|&v| v <= x);
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    if x1 == x0 {
        return y0;
    }
    lerp(y0, y1, (x - x0) / (x1 - x0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_close;

    #[test]
    fn lerp_endpoints_exact() {
        assert_eq!(lerp(3.0, 7.0, 0.0), 3.0);
        assert_eq!(lerp(3.0, 7.0, 1.0), 7.0);
        assert_eq!(lerp(3.0, 7.0, 0.5), 5.0);
    }

    #[test]
    fn unit_ramp_clamps_and_is_linear() {
        assert_eq!(unit_ramp(-5.0, 0.0, 10.0), 0.0);
        assert_eq!(unit_ramp(15.0, 0.0, 10.0), 1.0);
        assert_close(unit_ramp(2.5, 0.0, 10.0), 0.25, 1e-15);
    }

    #[test]
    fn smooth_ramp_matches_endpoints_and_midpoint() {
        assert_eq!(smooth_ramp(0.0, 0.0, 1.0), 0.0);
        assert_eq!(smooth_ramp(1.0, 0.0, 1.0), 1.0);
        assert_close(smooth_ramp(0.5, 0.0, 1.0), 0.5, 1e-15);
        // Monotone on [0, 1].
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = smooth_ramp(i as f64 / 100.0, 0.0, 1.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn bilerp_corners() {
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.0, 0.0), 1.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 1.0, 0.0), 2.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.0, 1.0), 3.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 1.0, 1.0), 4.0);
        assert_eq!(bilerp(1.0, 2.0, 3.0, 4.0, 0.5, 0.5), 2.5);
    }

    #[test]
    fn interp1_interpolates_and_extrapolates_flat() {
        let xs = [0.0, 1.0, 2.0, 4.0];
        let ys = [0.0, 10.0, 20.0, 0.0];
        assert_eq!(interp1(&xs, &ys, -1.0), 0.0);
        assert_eq!(interp1(&xs, &ys, 5.0), 0.0);
        assert_close(interp1(&xs, &ys, 0.5), 5.0, 1e-15);
        assert_close(interp1(&xs, &ys, 3.0), 10.0, 1e-15);
        assert_eq!(interp1(&xs, &ys, 1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn interp1_mismatch_panics() {
        interp1(&[0.0, 1.0], &[0.0], 0.5);
    }
}
