//! Property-based tests for the FFT substrate (rrs-check harness).

use rrs_check::any;
use rrs_fft::spectral::{fftshift, fold_index, ifftshift, swap_halves_index};
use rrs_fft::{dft::dft_reference, Direction, Fft, Fft2d};
use rrs_num::Complex64;
use rrs_rng::{RandomSource, Xoshiro256pp};

fn signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n).map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect()
}

rrs_check::props! {
    #![cases = 64]

    fn forward_matches_naive_dft(n in 1usize..96, seed in any::<u64>()) {
        let x = signal(n, seed);
        let mut fast = x.clone();
        Fft::new(n).process(&mut fast, Direction::Forward);
        let slow = dft_reference(&x, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-8 * (n as f64).max(1.0), "n={n}");
        }
    }

    fn linearity(n in 2usize..64, seed in any::<u64>(), alpha in -3.0f64..3.0) {
        let x = signal(n, seed);
        let y = signal(n, seed ^ 0xABCD);
        let fft = Fft::new(n);
        let mut fx = x.clone();
        let mut fy = y.clone();
        fft.process(&mut fx, Direction::Forward);
        fft.process(&mut fy, Direction::Forward);
        let mut mix: Vec<Complex64> =
            x.iter().zip(&y).map(|(a, b)| a.scale(alpha) + *b).collect();
        fft.process(&mut mix, Direction::Forward);
        for ((m, a), b) in mix.iter().zip(&fx).zip(&fy) {
            let expect = a.scale(alpha) + *b;
            assert!((*m - expect).abs() < 1e-8);
        }
    }

    fn real_input_spectrum_is_hermitian(n in 2usize..80, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut buf: Vec<Complex64> =
            (0..n).map(|_| Complex64::from_re(rng.next_f64() - 0.5)).collect();
        Fft::new(n).process(&mut buf, Direction::Forward);
        for k in 1..n {
            assert!((buf[k] - buf[n - k].conj()).abs() < 1e-9, "k={k} n={n}");
        }
    }

    fn two_dimensional_round_trip(nx in 1usize..20, ny in 1usize..20, seed in any::<u64>()) {
        let x = signal(nx * ny, seed);
        let fft = Fft2d::with_workers(nx, ny, 2);
        let mut buf = x.clone();
        fft.process(&mut buf, Direction::Forward);
        fft.process(&mut buf, Direction::Inverse);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    fn shifts_are_inverse_permutations(n in 1usize..128) {
        let orig: Vec<usize> = (0..n).collect();
        let mut buf = orig.clone();
        fftshift(&mut buf);
        ifftshift(&mut buf);
        assert_eq!(buf, orig);
    }

    fn fold_index_is_symmetric(half in 1usize..64, m in 0usize..128) {
        rrs_check::assume!(m < 2 * half);
        let folded = fold_index(m, half);
        assert!(folded <= half);
        if m > 0 && m < 2 * half {
            assert_eq!(folded, fold_index((2 * half - m) % (2 * half), half));
        }
    }

    fn swap_halves_is_involutive(half in 1usize..64, k in 0usize..128) {
        rrs_check::assume!(k < 2 * half);
        assert_eq!(swap_halves_index(swap_halves_index(k, half), half), k);
    }
}
