//! Naive `O(N²)` discrete Fourier transform — the test oracle.
//!
//! Every fast path in this crate is validated against this direct
//! evaluation of the defining sums (paper eqns 11–12). It is deliberately
//! simple; do not use it outside tests and diagnostics.

use crate::Direction;
use rrs_num::Complex64;

/// Evaluates the DFT of `input` by the defining sum.
pub fn dft_reference(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let norm = match dir {
        Direction::Forward => 1.0,
        Direction::Inverse => 1.0 / n as f64,
    };
    let base = sign * core::f64::consts::TAU / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (i, &x) in input.iter().enumerate() {
                // Reduce i*k modulo n before the float multiply to keep the
                // phase argument small and accurate for large N.
                let phase = base * ((i * k) % n) as f64;
                acc += x * Complex64::cis(phase);
            }
            acc.scale(norm)
        })
        .collect()
}

/// Evaluates the 2-D DFT (row-major `nx × ny`) by the defining double sum.
pub fn dft2_reference(input: &[Complex64], nx: usize, ny: usize, dir: Direction) -> Vec<Complex64> {
    assert_eq!(input.len(), nx * ny, "dft2_reference: bad shape");
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let norm = match dir {
        Direction::Forward => 1.0,
        Direction::Inverse => 1.0 / (nx * ny) as f64,
    };
    let mut out = vec![Complex64::ZERO; nx * ny];
    for vy in 0..ny {
        for vx in 0..nx {
            let mut acc = Complex64::ZERO;
            for iy in 0..ny {
                for ix in 0..nx {
                    let phase = sign
                        * core::f64::consts::TAU
                        * (ix as f64 * vx as f64 / nx as f64 + iy as f64 * vy as f64 / ny as f64);
                    acc += input[iy * nx + ix] * Complex64::cis(phase);
                }
            }
            out[vy * nx + vx] = acc.scale(norm);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(dft_reference(&[], Direction::Forward).is_empty());
    }

    #[test]
    fn two_point_transform() {
        let x = [Complex64::from_re(1.0), Complex64::from_re(2.0)];
        let f = dft_reference(&x, Direction::Forward);
        assert!((f[0].re - 3.0).abs() < 1e-12);
        assert!((f[1].re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let x: Vec<Complex64> = (0..7).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
        let f = dft_reference(&x, Direction::Forward);
        let back = dft_reference(&f, Direction::Inverse);
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn dft2_separability() {
        // A rank-1 field f[ix,iy] = g[ix]·h[iy] transforms to G[vx]·H[vy].
        let nx = 4;
        let ny = 3;
        let g: Vec<Complex64> = (0..nx).map(|i| Complex64::from_re(1.0 + i as f64)).collect();
        let h: Vec<Complex64> = (0..ny).map(|i| Complex64::from_re(2.0 - i as f64)).collect();
        let field: Vec<Complex64> = (0..nx * ny).map(|i| g[i % nx] * h[i / nx]).collect();
        let f2 = dft2_reference(&field, nx, ny, Direction::Forward);
        let fg = dft_reference(&g, Direction::Forward);
        let fh = dft_reference(&h, Direction::Forward);
        for vy in 0..ny {
            for vx in 0..nx {
                let expect = fg[vx] * fh[vy];
                assert!((f2[vy * nx + vx] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn dft2_round_trip() {
        let nx = 3;
        let ny = 5;
        let x: Vec<Complex64> =
            (0..nx * ny).map(|i| Complex64::new((i as f64).sin(), (i as f64).cos())).collect();
        let f = dft2_reference(&x, nx, ny, Direction::Forward);
        let back = dft2_reference(&f, nx, ny, Direction::Inverse);
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }
}
