//! Iterative radix-2 decimation-in-time FFT for power-of-two lengths.
//!
//! A plan owns the twiddle table (half the unit circle at the finest
//! granularity, strided for coarser stages) and the bit-reversal
//! permutation. `process` is allocation-free and in-place, so the 2-D
//! row–column driver can hammer it across threads (`&FftPlan` is `Sync`).

use crate::Direction;
use rrs_num::Complex64;

/// A precomputed radix-2 FFT of length `n = 2^k`.
pub struct FftPlan {
    n: usize,
    /// `twiddles[k] = e^{-j 2π k / n}` for `k < n/2`.
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation of `0..n`.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or exceeds `u32` indexing range.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FftPlan requires a power-of-two length, got {n}");
        assert!(n <= u32::MAX as usize, "FFT length too large");
        let half = n / 2;
        let mut twiddles = Vec::with_capacity(half.max(1));
        for k in 0..half {
            twiddles.push(Complex64::cis(-core::f64::consts::TAU * k as f64 / n as f64));
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits.max(1))).collect();
        // For n == 1, bits == 0; the permutation is the identity [0].
        let bitrev = if n == 1 { vec![0] } else { bitrev };
        Self { n, twiddles, bitrev }
    }

    /// The transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false` (a plan has length ≥ 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place transform of `buf` (`buf.len()` must equal `len()`).
    pub fn process(&self, buf: &mut [Complex64], dir: Direction) {
        assert_eq!(buf.len(), self.n, "buffer length mismatch");
        if self.n == 1 {
            return;
        }
        self.permute(buf);
        self.butterflies(buf, dir);
        if dir == Direction::Inverse {
            let k = 1.0 / self.n as f64;
            for z in buf.iter_mut() {
                *z = z.scale(k);
            }
        }
    }

    #[inline]
    fn permute(&self, buf: &mut [Complex64]) {
        for (i, &r) in self.bitrev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                buf.swap(i, r);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex64], dir: Direction) {
        let n = self.n;
        let conj = dir == Direction::Inverse;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for chunk in buf.chunks_exact_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if conj {
                        w = w.conj();
                    }
                    let t = w * hi[k];
                    let u = lo[k];
                    lo[k] = u + t;
                    hi[k] = u - t;
                }
            }
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_reference;

    #[test]
    fn all_power_of_two_lengths_match_reference() {
        for exp in 0..=10 {
            let n = 1usize << exp;
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut fast = x.clone();
            FftPlan::new(n).process(&mut fast, Direction::Forward);
            let slow = dft_reference(&x, Direction::Forward);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-9 * (n as f64).max(1.0), "n={n}");
            }
        }
    }

    #[test]
    fn inverse_normalisation() {
        let n = 8;
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::from_re(i as f64)).collect();
        let mut buf = x.clone();
        let plan = FftPlan::new(n);
        plan.process(&mut buf, Direction::Forward);
        plan.process(&mut buf, Direction::Inverse);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        FftPlan::new(12);
    }

    #[test]
    fn plan_is_reusable_and_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<FftPlan>();
        let plan = FftPlan::new(16);
        for seed in 0..4 {
            let mut buf: Vec<Complex64> =
                (0..16).map(|i| Complex64::from_re((i + seed) as f64)).collect();
            let orig = buf.clone();
            plan.process(&mut buf, Direction::Forward);
            plan.process(&mut buf, Direction::Inverse);
            for (a, b) in buf.iter().zip(&orig) {
                assert!((*a - *b).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn cosine_hits_single_bin() {
        // cos(2π·3n/32) concentrates in bins 3 and 29 with weight N/2.
        let n = 32;
        let mut buf: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_re((core::f64::consts::TAU * 3.0 * i as f64 / n as f64).cos()))
            .collect();
        FftPlan::new(n).process(&mut buf, Direction::Forward);
        for (k, z) in buf.iter().enumerate() {
            let expect = if k == 3 || k == n - 3 { n as f64 / 2.0 } else { 0.0 };
            assert!((z.re - expect).abs() < 1e-9 && z.im.abs() < 1e-9, "k={k} z={z:?}");
        }
    }
}
