//! Real-input 2-D FFT via the half-size complex trick.
//!
//! The overlap-save convolution engine transforms *real* noise tiles
//! against *real* kernels; running those through full complex transforms
//! wastes half the arithmetic and half the spectrum storage. This module
//! exploits the symmetry instead:
//!
//! * **rows (r2c / c2r)** — a real row of even length `n` is viewed as
//!   `n/2` complex samples `z[k] = x[2k] + j·x[2k+1]`, transformed with
//!   one half-length FFT, and untangled with the standard split
//!   identities. Writing `E`/`O` for the `n/2`-point DFTs of the even and
//!   odd subsequences and `W = e^{-j2π/n}`:
//!
//!   ```text
//!   E[k] = (Z[k] + Z*[(n/2−k) mod n/2]) / 2
//!   O[k] = (Z[k] − Z*[(n/2−k) mod n/2]) / 2j
//!   X[k] = E[k] + Wᵏ·O[k]            for k = 0 ..= n/2
//!   ```
//!
//!   The inverse runs the identities backwards (`E`, `O` recovered from
//!   the packed spectrum, `Z = E + j·O`, one half-length inverse FFT).
//! * **columns** — only the `n/2 + 1` stored columns of the packed
//!   (Hermitian) spectrum are transformed; the mirrored half is implied.
//!
//! The packed layout is row-major `ny` rows × `(nx/2 + 1)` columns,
//! holding bins `kx = 0 ..= nx/2` for every `ky`. Pointwise products of
//! two packed spectra stay packed (products of Hermitian spectra are
//! Hermitian), which is exactly what convolution needs.
//!
//! Normalisation matches [`Fft2d`](crate::Fft2d): the forward transform
//! is the unnormalised DFT restricted to the stored bins, and
//! [`RealFft2d::inverse_into`] is its exact inverse (the `1/(nx·ny)`
//! factor is carried by the half-length inverse FFT and the column pass).

use crate::{Direction, Fft};
use rrs_num::Complex64;
use std::sync::Arc;

/// A prepared real-input 2-D transform of shape `(nx, ny)`, row-major.
///
/// `nx` must be `1` or even (power-of-two tile sides always qualify);
/// `ny` is unrestricted. Transforms are allocation-free given a caller
/// scratch vector, so per-worker arenas can run tiles with zero per-tile
/// allocation.
pub struct RealFft2d {
    nx: usize,
    ny: usize,
    /// The `nx/2`-point engine behind the half-size trick (`None` when
    /// `nx == 1`: a length-1 r2c is the identity).
    half: Option<Arc<Fft>>,
    col_fft: Arc<Fft>,
    /// `Wᵏ = e^{-j2πk/nx}` for `k = 0 ..= nx/2`.
    twiddles: Vec<Complex64>,
    workers: usize,
}

impl RealFft2d {
    /// Builds a serial real-input transform for an `nx × ny` field.
    pub fn new(nx: usize, ny: usize) -> Self {
        Self::with_workers(nx, ny, 1)
    }

    /// Builds a real-input transform with an explicit worker count
    /// (1 = serial). Output is bit-identical for any worker count: the
    /// per-row and per-column arithmetic never depends on the partition.
    ///
    /// # Panics
    /// Panics if either side is zero or `nx` is odd and not 1.
    pub fn with_workers(nx: usize, ny: usize, workers: usize) -> Self {
        assert!(nx > 0 && ny > 0, "RealFft2d dimensions must be positive");
        assert!(nx == 1 || nx % 2 == 0, "real transform width must be 1 or even, got {nx}");
        let half = (nx > 1).then(|| Arc::new(Fft::new(nx / 2)));
        let col_fft = Arc::new(Fft::new(ny));
        let twiddles = (0..=nx / 2)
            .map(|k| Complex64::cis(-core::f64::consts::TAU * k as f64 / nx as f64))
            .collect();
        Self { nx, ny, half, col_fft, twiddles, workers: workers.max(1) }
    }

    /// Shape as `(nx, ny)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Stored spectrum columns: `nx/2 + 1`.
    #[inline]
    pub fn packed_width(&self) -> usize {
        self.nx / 2 + 1
    }

    /// Total packed spectrum samples: `(nx/2 + 1) · ny`.
    #[inline]
    pub fn packed_len(&self) -> usize {
        self.packed_width() * self.ny
    }

    /// Total real samples: `nx · ny`.
    #[inline]
    pub fn real_len(&self) -> usize {
        self.nx * self.ny
    }

    /// Scratch capacity (complex samples) the transform passes need; the
    /// scratch vector handed to [`RealFft2d::forward_into`] /
    /// [`RealFft2d::inverse_into`] is grown to this once and then reused.
    #[inline]
    pub fn scratch_len(&self) -> usize {
        (self.nx / 2).max(self.ny).max(1)
    }

    /// Forward-transforms a real row-major `nx × ny` field into the
    /// packed spectrum `spec` (row-major `ny × (nx/2 + 1)`), the
    /// unnormalised DFT on the stored bins. `scratch` is grown at most
    /// once and reused; steady-state calls allocate nothing.
    ///
    /// # Panics
    /// Panics if `input.len() != nx·ny` or `spec.len() != packed_len()`.
    pub fn forward_into(
        &self,
        input: &[f64],
        spec: &mut [Complex64],
        scratch: &mut Vec<Complex64>,
    ) {
        assert_eq!(input.len(), self.real_len(), "real buffer shape mismatch");
        assert_eq!(spec.len(), self.packed_len(), "spectrum buffer shape mismatch");
        let hw = self.packed_width();
        let row_workers = self.workers.min(self.ny);
        if row_workers <= 1 {
            Self::grow(scratch, self.scratch_len());
            for (row, srow) in input.chunks_exact(self.nx).zip(spec.chunks_exact_mut(hw)) {
                self.r2c_row(row, srow, scratch);
            }
        } else {
            let rows_per_band = self.ny.div_ceil(row_workers);
            rrs_par::scope(|s| {
                for (band_in, band_out) in input
                    .chunks(rows_per_band * self.nx)
                    .zip(spec.chunks_mut(rows_per_band * hw))
                {
                    s.spawn(move || {
                        let mut z = Vec::new();
                        Self::grow(&mut z, self.scratch_len());
                        for (row, srow) in
                            band_in.chunks_exact(self.nx).zip(band_out.chunks_exact_mut(hw))
                        {
                            self.r2c_row(row, srow, &mut z);
                        }
                    });
                }
            });
        }
        self.cols_pass(spec, Direction::Forward, scratch);
    }

    /// Inverts a packed spectrum back to the real field: the exact
    /// inverse of [`RealFft2d::forward_into`], including the `1/(nx·ny)`
    /// normalisation. `spec` is consumed as workspace (the column pass
    /// runs in place).
    ///
    /// # Panics
    /// Panics if `spec.len() != packed_len()` or `out.len() != nx·ny`.
    pub fn inverse_into(
        &self,
        spec: &mut [Complex64],
        out: &mut [f64],
        scratch: &mut Vec<Complex64>,
    ) {
        assert_eq!(spec.len(), self.packed_len(), "spectrum buffer shape mismatch");
        assert_eq!(out.len(), self.real_len(), "real buffer shape mismatch");
        self.cols_pass(spec, Direction::Inverse, scratch);
        let hw = self.packed_width();
        let row_workers = self.workers.min(self.ny);
        if row_workers <= 1 {
            Self::grow(scratch, self.scratch_len());
            for (srow, row) in spec.chunks_exact(hw).zip(out.chunks_exact_mut(self.nx)) {
                self.c2r_row(srow, row, scratch);
            }
        } else {
            let rows_per_band = self.ny.div_ceil(row_workers);
            rrs_par::scope(|s| {
                for (band_in, band_out) in
                    spec.chunks(rows_per_band * hw).zip(out.chunks_mut(rows_per_band * self.nx))
                {
                    s.spawn(move || {
                        let mut z = Vec::new();
                        Self::grow(&mut z, self.scratch_len());
                        for (srow, row) in
                            band_in.chunks_exact(hw).zip(band_out.chunks_exact_mut(self.nx))
                        {
                            self.c2r_row(srow, row, &mut z);
                        }
                    });
                }
            });
        }
    }

    /// Convenience: forward transform of a real field into a freshly
    /// allocated packed spectrum.
    pub fn forward_real(&self, input: &[f64]) -> Vec<Complex64> {
        let mut spec = vec![Complex64::ZERO; self.packed_len()];
        let mut scratch = Vec::new();
        self.forward_into(input, &mut spec, &mut scratch);
        spec
    }

    #[inline]
    fn grow(scratch: &mut Vec<Complex64>, len: usize) {
        if scratch.len() < len {
            scratch.resize(len, Complex64::ZERO);
        }
    }

    /// One real row → packed spectrum row (`nx/2 + 1` bins), via one
    /// half-length complex FFT plus the untangle pass.
    fn r2c_row(&self, row: &[f64], spec_row: &mut [Complex64], scratch: &mut [Complex64]) {
        let Some(half) = &self.half else {
            spec_row[0] = Complex64::from_re(row[0]);
            return;
        };
        let n2 = self.nx / 2;
        let z = &mut scratch[..n2];
        for (k, slot) in z.iter_mut().enumerate() {
            *slot = Complex64::new(row[2 * k], row[2 * k + 1]);
        }
        half.process(z, Direction::Forward);
        for (k, slot) in spec_row.iter_mut().enumerate() {
            let zk = z[k % n2]; // Z is n/2-periodic: bin n/2 reads Z[0]
            let zc = z[(n2 - k) % n2].conj();
            let ze = (zk + zc).scale(0.5);
            let zo = (zc - zk).scale(0.5).mul_i(); // (zk − zc) / 2j
            *slot = ze + self.twiddles[k] * zo;
        }
    }

    /// One packed spectrum row → real row, inverting
    /// [`RealFft2d::r2c_row`] exactly (the half-length inverse FFT's
    /// `2/nx` and the untangle's `1/2` compose to the row's full `1/nx`).
    fn c2r_row(&self, spec_row: &[Complex64], row: &mut [f64], scratch: &mut [Complex64]) {
        let Some(half) = &self.half else {
            row[0] = spec_row[0].re;
            return;
        };
        let n2 = self.nx / 2;
        let z = &mut scratch[..n2];
        for (k, slot) in z.iter_mut().enumerate() {
            let a = spec_row[k];
            let b = spec_row[n2 - k].conj();
            let ze = (a + b).scale(0.5);
            let zo = self.twiddles[k].conj() * (a - b).scale(0.5);
            *slot = ze + zo.mul_i(); // Z[k] = E[k] + j·O[k]
        }
        half.process(z, Direction::Inverse);
        for (k, &v) in z.iter().enumerate() {
            row[2 * k] = v.re;
            row[2 * k + 1] = v.im;
        }
    }

    /// Transforms the stored spectrum columns in place. Parallel workers
    /// own strictly disjoint column ranges (same pattern as
    /// [`Fft2d`](crate::Fft2d)'s column pass).
    fn cols_pass(&self, spec: &mut [Complex64], dir: Direction, scratch: &mut Vec<Complex64>) {
        if self.ny == 1 {
            return; // length-1 column DFT is the identity (1/N = 1)
        }
        let hw = self.packed_width();
        let ny = self.ny;
        let fft = &self.col_fft;
        let workers = self.workers.min(hw);
        if workers <= 1 {
            Self::grow(scratch, self.scratch_len());
            let col = &mut scratch[..ny];
            for cx in 0..hw {
                for (iy, slot) in col.iter_mut().enumerate() {
                    *slot = spec[iy * hw + cx];
                }
                fft.process(col, dir);
                for (iy, &v) in col.iter().enumerate() {
                    spec[iy * hw + cx] = v;
                }
            }
            return;
        }
        let ranges = rrs_par::split_range(hw, workers);
        let ptr = SendPtr(spec.as_mut_ptr());
        rrs_par::scope(|s| {
            for &(c0, c1) in &ranges {
                s.spawn(move || {
                    // Rebind the wrapper so the closure captures the Send
                    // wrapper, not its raw-pointer field.
                    #[allow(clippy::redundant_locals)]
                    let ptr = ptr;
                    let buf_ptr = ptr.0;
                    let mut col = vec![Complex64::ZERO; ny];
                    for cx in c0..c1 {
                        // SAFETY: column cx is touched by exactly one
                        // worker (ranges are disjoint) and the scope
                        // outlives every access.
                        unsafe {
                            for (iy, slot) in col.iter_mut().enumerate() {
                                *slot = *buf_ptr.add(iy * hw + cx);
                            }
                        }
                        fft.process(&mut col, dir);
                        unsafe {
                            for (iy, &v) in col.iter().enumerate() {
                                *buf_ptr.add(iy * hw + cx) = v;
                            }
                        }
                    }
                });
            }
        });
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut Complex64);
// SAFETY: workers access strictly disjoint column sets of the pointee.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fft2d;
    use rrs_rng::{RandomSource, Xoshiro256pp};

    fn random_real(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    /// The packed bins of the full complex transform of `x`.
    fn packed_reference(x: &[f64], nx: usize, ny: usize) -> Vec<Complex64> {
        let mut wide: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
        Fft2d::with_workers(nx, ny, 1).process(&mut wide, Direction::Forward);
        let hw = nx / 2 + 1;
        let mut packed = Vec::with_capacity(hw * ny);
        for iy in 0..ny {
            packed.extend_from_slice(&wide[iy * nx..iy * nx + hw]);
        }
        packed
    }

    #[test]
    fn forward_matches_complex_transform() {
        for &(nx, ny) in &[
            (1usize, 1usize),
            (1, 8),
            (2, 2),
            (2, 5),
            (4, 4),
            (8, 3),
            (8, 8),
            (16, 4),
            (32, 32),
            (64, 6),
        ] {
            let x = random_real(nx * ny, (nx * 1000 + ny) as u64);
            let got = RealFft2d::new(nx, ny).forward_real(&x);
            let want = packed_reference(&x, nx, ny);
            let err = got
                .iter()
                .zip(&want)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9 * (nx * ny) as f64, "shape ({nx},{ny}): err {err}");
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for &(nx, ny) in &[(2usize, 2usize), (4, 7), (8, 8), (16, 16), (32, 5), (1, 9)] {
            let x = random_real(nx * ny, 77 + nx as u64);
            let rfft = RealFft2d::new(nx, ny);
            let mut spec = vec![Complex64::ZERO; rfft.packed_len()];
            let mut scratch = Vec::new();
            rfft.forward_into(&x, &mut spec, &mut scratch);
            let mut out = vec![0.0; nx * ny];
            rfft.inverse_into(&mut spec, &mut out, &mut scratch);
            let err = x.iter().zip(&out).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-10, "shape ({nx},{ny}): err {err}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let (nx, ny) = (32, 24);
        let x = random_real(nx * ny, 5);
        let serial = RealFft2d::with_workers(nx, ny, 1).forward_real(&x);
        let parallel = RealFft2d::with_workers(nx, ny, 4).forward_real(&x);
        assert_eq!(serial, parallel);
        let mut s_out = vec![0.0; nx * ny];
        let mut p_out = vec![0.0; nx * ny];
        let mut scratch = Vec::new();
        RealFft2d::with_workers(nx, ny, 1).inverse_into(
            &mut serial.clone(),
            &mut s_out,
            &mut scratch,
        );
        RealFft2d::with_workers(nx, ny, 4).inverse_into(
            &mut parallel.clone(),
            &mut p_out,
            &mut scratch,
        );
        assert_eq!(s_out, p_out);
    }

    #[test]
    fn packed_product_convolves_circularly() {
        // The property the overlap-save engine rests on: multiplying
        // packed spectra and inverting yields the circular convolution.
        let (nx, ny) = (16, 8);
        let a = random_real(nx * ny, 1);
        let b = random_real(nx * ny, 2);
        let rfft = RealFft2d::new(nx, ny);
        let fa = rfft.forward_real(&a);
        let mut fb = rfft.forward_real(&b);
        for (z, w) in fb.iter_mut().zip(&fa) {
            *z = *z * *w;
        }
        let mut got = vec![0.0; nx * ny];
        rfft.inverse_into(&mut fb, &mut got, &mut Vec::new());
        for oy in 0..ny {
            for ox in 0..nx {
                let mut want = 0.0;
                for jy in 0..ny {
                    for jx in 0..nx {
                        want += a[jy * nx + jx]
                            * b[((oy + ny - jy) % ny) * nx + (ox + nx - jx) % nx];
                    }
                }
                assert!(
                    (got[oy * nx + ox] - want).abs() < 1e-9,
                    "({ox},{oy}): {} vs {want}",
                    got[oy * nx + ox]
                );
            }
        }
    }

    #[test]
    fn scratch_is_reused_not_reallocated() {
        let rfft = RealFft2d::new(16, 16);
        let x = random_real(256, 3);
        let mut spec = vec![Complex64::ZERO; rfft.packed_len()];
        let mut scratch = Vec::new();
        rfft.forward_into(&x, &mut spec, &mut scratch);
        let ptr = scratch.as_ptr();
        let cap = scratch.capacity();
        let mut out = vec![0.0; 256];
        rfft.inverse_into(&mut spec, &mut out, &mut scratch);
        rfft.forward_into(&x, &mut spec, &mut scratch);
        assert_eq!(scratch.as_ptr(), ptr, "steady-state scratch must not reallocate");
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "1 or even")]
    fn odd_width_rejected() {
        RealFft2d::new(3, 4);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_spectrum_length_panics() {
        let rfft = RealFft2d::new(4, 4);
        let mut spec = vec![Complex64::ZERO; 3];
        rfft.forward_into(&[0.0; 16], &mut spec, &mut Vec::new());
    }
}
