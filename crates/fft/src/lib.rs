//! From-scratch FFT substrate for the `rrs` workspace.
//!
//! The paper's machinery is built on the 2-D DFT (eqns 11–12):
//!
//! ```text
//! F[vx, vy] = Σ_nx Σ_ny f[nx, ny] · e^{-j2π nx vx / Nx} · e^{-j2π ny vy / Ny}
//! f[nx, ny] = (1 / Nx Ny) Σ Σ F[vx, vy] · e^{+j2π ...}
//! ```
//!
//! This crate implements that transform without external dependencies:
//!
//! * [`plan::FftPlan`] — iterative radix-2 decimation-in-time with cached
//!   twiddles and bit-reversal tables, for power-of-two lengths;
//! * [`bluestein::Bluestein`] — chirp-z re-expression of arbitrary lengths
//!   as a power-of-two convolution, so *any* grid size works;
//! * [`Fft`] — a length-dispatching front end caching whichever engine a
//!   length needs;
//! * [`fft2d`] — row–column 2-D transforms with optional multi-threading;
//! * [`spectral`] — `fftshift`, frequency grids (eqn 13) and the index
//!   folding of eqn (16).
//!
//! Normalisation convention (matching the paper): `forward` carries no
//! factor, `inverse` carries `1/N` (and `1/(Nx·Ny)` in 2-D), so
//! `inverse(forward(x)) == x`.
//!
//! The naive `O(N²)` [`dft`] module is retained as the test oracle: every
//! fast path is property-tested against it.

#![warn(missing_docs)]

pub mod bluestein;
pub mod dft;
pub mod fft2d;
pub mod plan;
pub mod rfft;
pub mod spectral;

use rrs_num::Complex64;
use rrs_obs::{stage, ObsSink, Recorder};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

pub use fft2d::Fft2d;
pub use plan::FftPlan;
pub use rfft::RealFft2d;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `e^{-j2πnk/N}` kernel, no normalisation.
    Forward,
    /// `e^{+j2πnk/N}` kernel, `1/N` normalisation.
    Inverse,
}

enum Engine {
    Radix2(plan::FftPlan),
    Bluestein(bluestein::Bluestein),
}

/// A one-dimensional FFT of a fixed length, usable for any `len >= 1`.
///
/// Construction precomputes all tables; [`Fft::process`] then runs with at
/// most one scratch allocation per call on the Bluestein path and none on
/// the radix-2 path.
pub struct Fft {
    len: usize,
    engine: Engine,
}

impl Fft {
    /// Prepares a transform of length `len`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "FFT length must be positive");
        let engine = if len.is_power_of_two() {
            Engine::Radix2(plan::FftPlan::new(len))
        } else {
            Engine::Bluestein(bluestein::Bluestein::new(len))
        };
        Self { len, engine }
    }

    /// The transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: zero-length transforms cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transforms `buf` in place.
    ///
    /// # Panics
    /// Panics if `buf.len() != self.len()`.
    pub fn process(&self, buf: &mut [Complex64], dir: Direction) {
        assert_eq!(buf.len(), self.len, "buffer length mismatch");
        match &self.engine {
            Engine::Radix2(p) => p.process(buf, dir),
            Engine::Bluestein(b) => b.process(buf, dir),
        }
    }
}

/// A shared, thread-safe cache of [`Fft`] instances keyed by length.
///
/// 2-D transforms and repeated generator calls reuse plans through this.
#[derive(Default)]
pub struct Planner {
    cache: Mutex<HashMap<usize, Arc<Fft>>>,
}

impl Planner {
    /// An empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches (or creates) the FFT of length `len`.
    ///
    /// A poisoned cache lock (a panic while holding it) is recovered by
    /// rebuilding from empty: plans are immutable once built, so the
    /// worst case is re-planning, never a wrong transform.
    pub fn plan(&self, len: usize) -> Arc<Fft> {
        let mut cache = self.cache.lock().unwrap_or_else(|poisoned| {
            self.cache.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        });
        cache.entry(len).or_insert_with(|| Arc::new(Fft::new(len))).clone()
    }
}

/// Discriminates the plan families one [`FftPlanCache`] holds behind a
/// single keying scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum PlanKind {
    Complex,
    Real,
}

/// One cached plan; the kind in the key decides which variant a slot
/// holds, so lookups never cross families.
enum CachedPlan {
    Complex(Arc<Fft2d>),
    Real(Arc<RealFft2d>),
}

/// A shared, thread-safe cache of prepared 2-D transforms — complex
/// ([`Fft2d`]) and real-input ([`RealFft2d`]) — keyed on
/// `(kind, nx, ny, workers)`.
///
/// [`Fft2d::new`] recomputes twiddles and bit-reversal tables on every
/// construction; hot paths that transform the same shape repeatedly
/// (overlap-save convolution tiles, autocorrelation / periodogram
/// estimators, spectrum verification) fetch their plan here instead.
/// Plans are immutable once built, so sharing one `Arc` across threads
/// is free. The `_observed` variants tick [`stage::FFT_PLAN_HIT`] /
/// [`stage::FFT_PLAN_MISS`] so cache effectiveness is visible in
/// reports.
#[derive(Default)]
pub struct FftPlanCache {
    cache: Mutex<HashMap<(PlanKind, usize, usize, usize), CachedPlan>>,
    /// Poison recoveries not yet flushed into an observed lookup's
    /// recorder (the cache itself has no recorder handle).
    poisoned: AtomicU64,
}

impl FftPlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the cache, recovering from poisoning by rebuilding from
    /// empty: a panic while holding the lock (an unwinding worker, an
    /// injected chaos fault) can at worst have left a half-inserted
    /// entry, and since plans are immutable and rebuildable, clearing
    /// trades a re-plan for never propagating the poison. Each recovery
    /// is counted and flushed to [`stage::FFT_PLAN_POISONED`] by the
    /// next observed lookup.
    fn lock_recovering(&self) -> MutexGuard<'_, HashMap<(PlanKind, usize, usize, usize), CachedPlan>> {
        self.cache.lock().unwrap_or_else(|poisoned| {
            // Un-poison first: the rebuild makes the map coherent again,
            // and without this every later lock would re-clear it.
            self.cache.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.clear();
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            guard
        })
    }

    /// Flushes pending poison-recovery counts into `obs`. A disabled
    /// recorder leaves them pending so a later observed lookup still
    /// reports them.
    fn flush_poisoned(&self, obs: &Recorder) {
        if !obs.is_enabled() {
            return;
        }
        let n = self.poisoned.swap(0, Ordering::Relaxed);
        if n > 0 {
            obs.add_counter(stage::FFT_PLAN_POISONED, n);
        }
    }

    /// Fetches (or builds and caches) the complex `nx × ny` transform
    /// with the given worker count.
    pub fn plan(&self, nx: usize, ny: usize, workers: usize) -> Arc<Fft2d> {
        self.plan_observed(nx, ny, workers, &Recorder::disabled())
    }

    /// [`FftPlanCache::plan`] with cache hits and misses ticked into
    /// `obs` ([`stage::FFT_PLAN_HIT`] / [`stage::FFT_PLAN_MISS`]).
    pub fn plan_observed(
        &self,
        nx: usize,
        ny: usize,
        workers: usize,
        obs: &Recorder,
    ) -> Arc<Fft2d> {
        let workers = workers.max(1);
        let mut cache = self.lock_recovering();
        self.flush_poisoned(obs);
        match cache.entry((PlanKind::Complex, nx, ny, workers)) {
            Entry::Occupied(slot) => {
                obs.add_counter(stage::FFT_PLAN_HIT, 1);
                match slot.get() {
                    CachedPlan::Complex(p) => p.clone(),
                    CachedPlan::Real(_) => unreachable!("complex key holds a complex plan"),
                }
            }
            Entry::Vacant(slot) => {
                obs.add_counter(stage::FFT_PLAN_MISS, 1);
                let p = Arc::new(Fft2d::with_workers(nx, ny, workers));
                slot.insert(CachedPlan::Complex(p.clone()));
                p
            }
        }
    }

    /// Fetches (or builds and caches) the real-input `nx × ny` transform
    /// with the given worker count.
    pub fn plan_real(&self, nx: usize, ny: usize, workers: usize) -> Arc<RealFft2d> {
        self.plan_real_observed(nx, ny, workers, &Recorder::disabled())
    }

    /// [`FftPlanCache::plan_real`] with cache hits and misses ticked into
    /// `obs` ([`stage::FFT_PLAN_HIT`] / [`stage::FFT_PLAN_MISS`]).
    pub fn plan_real_observed(
        &self,
        nx: usize,
        ny: usize,
        workers: usize,
        obs: &Recorder,
    ) -> Arc<RealFft2d> {
        let workers = workers.max(1);
        let mut cache = self.lock_recovering();
        self.flush_poisoned(obs);
        match cache.entry((PlanKind::Real, nx, ny, workers)) {
            Entry::Occupied(slot) => {
                obs.add_counter(stage::FFT_PLAN_HIT, 1);
                match slot.get() {
                    CachedPlan::Real(p) => p.clone(),
                    CachedPlan::Complex(_) => unreachable!("real key holds a real plan"),
                }
            }
            Entry::Vacant(slot) => {
                obs.add_counter(stage::FFT_PLAN_MISS, 1);
                let p = Arc::new(RealFft2d::with_workers(nx, ny, workers));
                slot.insert(CachedPlan::Real(p.clone()));
                p
            }
        }
    }

    /// Number of distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.lock_recovering().len()
    }

    /// Poison recoveries taken so far and not yet flushed into an
    /// observed lookup. Test/diagnostic hook; observed paths drain this
    /// into [`stage::FFT_PLAN_POISONED`].
    pub fn pending_poison_recoveries(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no plans yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The process-wide shared cache. Estimator entry points
    /// (`rrs-stats`, `rrs-spectrum`) use this so repeated calls on the
    /// same grid shape reuse one plan without threading a cache handle
    /// through their signatures.
    pub fn global() -> &'static FftPlanCache {
        static GLOBAL: OnceLock<FftPlanCache> = OnceLock::new();
        GLOBAL.get_or_init(FftPlanCache::new)
    }
}

/// Convenience: out-of-place forward transform of a real sequence.
pub fn forward_real(input: &[f64]) -> Vec<Complex64> {
    let mut buf: Vec<Complex64> = input.iter().map(|&x| Complex64::from_re(x)).collect();
    Fft::new(buf.len().max(1)).process(&mut buf, Direction::Forward);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_reference;
    use rrs_num::Complex64;
    use rrs_rng::{RandomSource, Xoshiro256pp};

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n).map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn matches_reference_dft_all_lengths() {
        // Covers radix-2 and Bluestein paths, odd, prime and composite N.
        for n in [1usize, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 45, 64, 97, 100, 128] {
            let x = random_signal(n, n as u64);
            let mut fast = x.clone();
            Fft::new(n).process(&mut fast, Direction::Forward);
            let slow = dft_reference(&x, Direction::Forward);
            assert!(max_err(&fast, &slow) < 1e-9 * (n as f64).max(1.0), "n={n}");
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [4usize, 6, 9, 16, 27, 64, 100] {
            let x = random_signal(n, 1000 + n as u64);
            let mut buf = x.clone();
            let fft = Fft::new(n);
            fft.process(&mut buf, Direction::Forward);
            fft.process(&mut buf, Direction::Inverse);
            assert!(max_err(&buf, &x) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn parseval_theorem() {
        // Σ|x|² = (1/N) Σ|X|² with the unnormalised-forward convention.
        for n in [8usize, 15, 32, 50] {
            let x = random_signal(n, 7);
            let mut buf = x.clone();
            Fft::new(n).process(&mut buf, Direction::Forward);
            let t: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let f: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!((t - f).abs() < 1e-10 * t.max(1.0), "n={n}: {t} vs {f}");
        }
    }

    #[test]
    fn linearity_property() {
        let n = 24;
        let a = random_signal(n, 1);
        let b = random_signal(n, 2);
        let fft = Fft::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft.process(&mut fa, Direction::Forward);
        fft.process(&mut fb, Direction::Forward);
        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft.process(&mut sum, Direction::Forward);
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&sum, &expect) < 1e-10);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 16;
        let mut buf = vec![Complex64::ZERO; n];
        buf[0] = Complex64::ONE;
        Fft::new(n).process(&mut buf, Direction::Forward);
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 10; // Bluestein path
        let mut buf = vec![Complex64::ONE; n];
        Fft::new(n).process(&mut buf, Direction::Forward);
        assert!((buf[0].re - n as f64).abs() < 1e-9);
        for z in &buf[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn real_input_is_hermitian() {
        let n = 32;
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let spec = forward_real(&x);
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a - b).abs() < 1e-10, "k={k}");
        }
        assert!(spec[0].im.abs() < 1e-12);
    }

    #[test]
    fn shift_theorem() {
        // x[(n-1) mod N]  ⇔  X[k]·e^{-j2πk/N}
        let n = 20;
        let x = random_signal(n, 33);
        let mut shifted: Vec<Complex64> = vec![Complex64::ZERO; n];
        for i in 0..n {
            shifted[(i + 1) % n] = x[i];
        }
        let fft = Fft::new(n);
        let mut fx = x.clone();
        let mut fs = shifted;
        fft.process(&mut fx, Direction::Forward);
        fft.process(&mut fs, Direction::Forward);
        for k in 0..n {
            let phase = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            let expect = fx[k] * phase;
            assert!((fs[k] - expect).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_buffer_length_panics() {
        let fft = Fft::new(8);
        let mut buf = vec![Complex64::ZERO; 4];
        fft.process(&mut buf, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_length_panics() {
        Fft::new(0);
    }

    #[test]
    fn planner_caches_and_shares() {
        let planner = Planner::new();
        let a = planner.plan(64);
        let b = planner.plan(64);
        assert!(Arc::ptr_eq(&a, &b));
        let c = planner.plan(65);
        assert_eq!(c.len(), 65);
    }

    #[test]
    fn plan_cache_shares_per_shape_and_workers() {
        let cache = FftPlanCache::new();
        assert!(cache.is_empty());
        let a = cache.plan(16, 8, 1);
        let b = cache.plan(16, 8, 1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one plan");
        let c = cache.plan(16, 8, 2);
        assert!(!Arc::ptr_eq(&a, &c), "worker count is part of the key");
        assert_eq!(cache.len(), 2);
        // Worker count 0 is clamped to 1, landing on the serial plan.
        let d = cache.plan(16, 8, 0);
        assert!(Arc::ptr_eq(&a, &d));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn plan_cache_keys_real_and_complex_separately() {
        let cache = FftPlanCache::new();
        let c = cache.plan(16, 8, 1);
        let r = cache.plan_real(16, 8, 1);
        assert_eq!(cache.len(), 2, "real and complex plans of one shape coexist");
        let r2 = cache.plan_real(16, 8, 1);
        assert!(Arc::ptr_eq(&r, &r2), "same real key must share one plan");
        assert_eq!(c.shape(), r.shape());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn observed_plan_requests_tick_hit_and_miss_counters() {
        let cache = FftPlanCache::new();
        let rec = Recorder::enabled();
        cache.plan_observed(8, 8, 1, &rec);
        cache.plan_real_observed(8, 8, 1, &rec);
        let report = rec.report();
        assert_eq!(report.counter(stage::FFT_PLAN_MISS), 2, "two cold builds");
        assert_eq!(report.counter(stage::FFT_PLAN_HIT), 0);
        cache.plan_observed(8, 8, 1, &rec);
        cache.plan_real_observed(8, 8, 1, &rec);
        cache.plan_real_observed(8, 8, 1, &rec);
        let report = rec.report();
        assert_eq!(report.counter(stage::FFT_PLAN_MISS), 2, "warm requests build nothing");
        assert_eq!(report.counter(stage::FFT_PLAN_HIT), 3);
    }

    #[test]
    fn cached_plan_transforms_identically_to_fresh() {
        let (nx, ny) = (12, 10);
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let x: Vec<Complex64> =
            (0..nx * ny).map(|_| Complex64::new(rng.next_f64(), rng.next_f64())).collect();
        let mut fresh = x.clone();
        Fft2d::with_workers(nx, ny, 1).process(&mut fresh, Direction::Forward);
        let mut cached = x;
        FftPlanCache::global().plan(nx, ny, 1).process(&mut cached, Direction::Forward);
        assert_eq!(fresh, cached, "cached plan must be bit-identical to a fresh one");
    }

    #[test]
    fn forward_real_into_matches_widening() {
        let (nx, ny) = (8, 6);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let x: Vec<f64> = (0..nx * ny).map(|_| rng.next_f64() - 0.5).collect();
        let fft = Fft2d::with_workers(nx, ny, 1);
        let mut wide: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
        fft.process(&mut wide, Direction::Forward);
        let mut buf = vec![Complex64::ONE; 3]; // stale contents must be discarded
        fft.forward_real_into(&x, &mut buf);
        assert_eq!(wide, buf);
    }

    #[test]
    fn length_one_is_identity() {
        let mut buf = vec![Complex64::new(3.0, -4.0)];
        let fft = Fft::new(1);
        fft.process(&mut buf, Direction::Forward);
        assert_eq!(buf[0], Complex64::new(3.0, -4.0));
        fft.process(&mut buf, Direction::Inverse);
        assert_eq!(buf[0], Complex64::new(3.0, -4.0));
    }

    /// Poisons `cache`'s mutex by panicking a thread that holds the lock.
    fn poison(cache: &FftPlanCache) {
        let r = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.cache.lock().unwrap();
                panic!("poisoning the plan cache on purpose");
            })
            .join()
        });
        assert!(r.is_err(), "the poisoning thread must have panicked");
    }

    #[test]
    fn poisoned_plan_cache_recovers_by_rebuilding() {
        let cache = FftPlanCache::new();
        cache.plan(8, 4, 1);
        assert_eq!(cache.len(), 1);
        poison(&cache);
        // The next observed lookup recovers: the half-mutated map is
        // discarded, the recovery is flushed to the recorder, and the
        // lookup re-plans from empty.
        let rec = Recorder::enabled();
        let a = cache.plan_observed(8, 4, 1, &rec);
        let report = rec.report();
        assert_eq!(report.counter(stage::FFT_PLAN_POISONED), 1);
        assert_eq!(report.counter(stage::FFT_PLAN_MISS), 1, "cleared cache re-plans");
        assert_eq!(cache.pending_poison_recoveries(), 0, "recovery was flushed");
        assert_eq!(cache.len(), 1);
        // Rebuilt plans transform identically to pre-poison ones.
        let mut rng = Xoshiro256pp::seed_from_u64(27);
        let x: Vec<Complex64> =
            (0..8 * 4).map(|_| Complex64::new(rng.next_f64(), rng.next_f64())).collect();
        let mut got = x.clone();
        a.process(&mut got, Direction::Forward);
        let mut want = x;
        Fft2d::with_workers(8, 4, 1).process(&mut want, Direction::Forward);
        assert_eq!(got, want);
    }

    #[test]
    fn unobserved_poison_recovery_stays_pending_until_flushed() {
        let cache = FftPlanCache::new();
        poison(&cache);
        // An unobserved lookup recovers but has no recorder to flush to.
        cache.plan(4, 4, 1);
        assert_eq!(cache.pending_poison_recoveries(), 1);
        let rec = Recorder::enabled();
        cache.plan_observed(4, 4, 1, &rec);
        assert_eq!(rec.report().counter(stage::FFT_PLAN_POISONED), 1);
        assert_eq!(rec.report().counter(stage::FFT_PLAN_HIT), 1, "plan survived from recovery");
        assert_eq!(cache.pending_poison_recoveries(), 0);
    }
}
