//! Spectral bookkeeping helpers shared by the spectrum and surface crates.
//!
//! * discrete angular frequencies `K_m = 2πm/L` (paper eqn 13);
//! * the index folding `m → m'` of eqn (16), which maps DFT bin order
//!   (non-negative then negative frequencies) onto physical `|K|` bins;
//! * `fftshift`/`ifftshift` for presentation and kernel centring.

use rrs_num::Complex64;

/// Discrete spatial angular frequency of bin `m` on a length-`L` domain:
/// `K_m = 2πm / L` (eqn 13). `m` may exceed `M`; callers fold first.
#[inline]
pub fn angular_frequency(m: usize, domain_length: f64) -> f64 {
    core::f64::consts::TAU * m as f64 / domain_length
}

/// The paper's index folding (eqn 16): for a transform with `2M` bins,
/// bins `0..M` carry frequencies `0..M` and bins `M..2M` carry the
/// negative frequencies `M..0`, so the *physical* frequency index is
///
/// ```text
/// m' = m        (0 ≤ m < M)
/// m' = 2M − m   (M ≤ m < 2M)
/// ```
#[inline]
pub fn fold_index(m: usize, half: usize) -> usize {
    debug_assert!(m < 2 * half, "bin {m} out of range for M={half}");
    if m < half {
        m
    } else {
        2 * half - m
    }
}

/// The kernel permutation of eqn (35): maps centred kernel index `k` to
/// DFT-ordered index, `k' = k + M (k < M)`, `k' = k − M (k ≥ M)`.
/// Self-inverse for even lengths `2M`.
#[inline]
pub fn swap_halves_index(k: usize, half: usize) -> usize {
    debug_assert!(k < 2 * half);
    if k < half {
        k + half
    } else {
        k - half
    }
}

/// Circularly rotates a 1-D spectrum so the zero bin moves to the centre.
pub fn fftshift<T: Copy>(buf: &mut [T]) {
    let n = buf.len();
    buf.rotate_left(n.div_ceil(2));
}

/// Inverse of [`fftshift`]; identical for even lengths.
pub fn ifftshift<T: Copy>(buf: &mut [T]) {
    let n = buf.len();
    buf.rotate_right(n.div_ceil(2));
}

/// 2-D fftshift of a row-major `nx × ny` buffer (both axes).
pub fn fftshift2<T: Copy>(buf: &mut [T], nx: usize, ny: usize) {
    assert_eq!(buf.len(), nx * ny, "fftshift2: bad shape");
    for row in buf.chunks_exact_mut(nx) {
        fftshift(row);
    }
    // Column shift via row-block rotation.
    let shift_rows = ny.div_ceil(2);
    rotate_rows_left(buf, nx, shift_rows);
}

fn rotate_rows_left<T: Copy>(buf: &mut [T], nx: usize, rows: usize) {
    buf.rotate_left(rows * nx);
}

/// Sum of squared magnitudes — the discrete power used in Parseval checks.
pub fn power(buf: &[Complex64]) -> f64 {
    buf.iter().map(|z| z.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angular_frequency_basics() {
        let k1 = angular_frequency(1, 100.0);
        assert!((k1 - core::f64::consts::TAU / 100.0).abs() < 1e-15);
        assert_eq!(angular_frequency(0, 10.0), 0.0);
    }

    #[test]
    fn fold_index_symmetry() {
        let half = 8;
        assert_eq!(fold_index(0, half), 0);
        assert_eq!(fold_index(3, half), 3);
        assert_eq!(fold_index(8, half), 8);
        assert_eq!(fold_index(9, half), 7);
        assert_eq!(fold_index(15, half), 1);
        // Bin m and bin 2M−m carry the same |K|.
        for m in 1..half {
            assert_eq!(fold_index(m, half), fold_index(2 * half - m, half));
        }
    }

    #[test]
    fn swap_halves_is_self_inverse_even() {
        let half = 6;
        for k in 0..2 * half {
            assert_eq!(swap_halves_index(swap_halves_index(k, half), half), k);
        }
        assert_eq!(swap_halves_index(0, half), half);
        assert_eq!(swap_halves_index(half, half), 0);
    }

    #[test]
    fn fftshift_even_and_odd() {
        let mut even = [0, 1, 2, 3];
        fftshift(&mut even);
        assert_eq!(even, [2, 3, 0, 1]);
        let mut odd = [0, 1, 2, 3, 4];
        fftshift(&mut odd);
        assert_eq!(odd, [3, 4, 0, 1, 2]);
    }

    #[test]
    fn shift_then_ishift_is_identity() {
        for n in [1usize, 2, 5, 8, 9] {
            let orig: Vec<usize> = (0..n).collect();
            let mut buf = orig.clone();
            fftshift(&mut buf);
            ifftshift(&mut buf);
            assert_eq!(buf, orig, "n={n}");
        }
    }

    #[test]
    fn fftshift2_moves_origin_to_centre() {
        let nx = 4;
        let ny = 4;
        let mut buf: Vec<usize> = (0..nx * ny).collect();
        fftshift2(&mut buf, nx, ny);
        // The (0,0) element must land at (nx/2, ny/2).
        assert_eq!(buf[(ny / 2) * nx + nx / 2], 0);
    }

    #[test]
    fn power_is_sum_of_norms() {
        let buf = [Complex64::new(3.0, 4.0), Complex64::new(1.0, 0.0)];
        assert_eq!(power(&buf), 26.0);
    }
}
