//! Bluestein's chirp-z algorithm — FFTs of arbitrary length.
//!
//! The identity `nk = (n² + k² − (k−n)²) / 2` rewrites the DFT of any
//! length `N` as a linear convolution of two chirp-modulated sequences,
//! which is evaluated with a zero-padded power-of-two FFT of length
//! `M ≥ 2N − 1`. This keeps the paper's generator free to use *any* grid
//! dimension (surface lengths are physical, not algorithmic, choices).

use crate::plan::FftPlan;
use crate::Direction;
use rrs_num::Complex64;

/// A precomputed Bluestein transform of length `n`.
pub struct Bluestein {
    n: usize,
    /// Chirp `w[k] = e^{-jπ k² / n}` (forward sense), `k < n`.
    chirp: Vec<Complex64>,
    /// Forward FFT of the zero-padded conjugate-chirp filter, length `m`.
    filter_spectrum: Vec<Complex64>,
    inner: FftPlan,
}

impl Bluestein {
    /// Builds the transform tables for length `n ≥ 1`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Bluestein length must be positive");
        let m = (2 * n - 1).next_power_of_two();
        // k² mod 2n keeps the chirp phase argument bounded so the cis()
        // stays accurate for very long transforms.
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128 % (2 * n as u128)) as f64;
                Complex64::cis(-core::f64::consts::PI * k2 / n as f64)
            })
            .collect();
        let inner = FftPlan::new(m);
        // Filter b[k] = conj(chirp[k]) at offsets 0 and m-k (wrap-around),
        // zero elsewhere; precompute its forward FFT once.
        let mut filter = vec![Complex64::ZERO; m];
        filter[0] = chirp[0].conj();
        for k in 1..n {
            let c = chirp[k].conj();
            filter[k] = c;
            filter[m - k] = c;
        }
        inner.process(&mut filter, Direction::Forward);
        Self { n, chirp, filter_spectrum: filter, inner }
    }

    /// The transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false` (length ≥ 1 by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place transform of `buf`.
    pub fn process(&self, buf: &mut [Complex64], dir: Direction) {
        assert_eq!(buf.len(), self.n, "buffer length mismatch");
        let m = self.inner.len();
        let mut a = vec![Complex64::ZERO; m];
        // The inverse transform is the conjugate of the forward transform
        // of the conjugated input, scaled by 1/n.
        let conjugate = dir == Direction::Inverse;
        for (k, (&x, &c)) in buf.iter().zip(&self.chirp).enumerate() {
            let x = if conjugate { x.conj() } else { x };
            a[k] = x * c;
        }
        self.inner.process(&mut a, Direction::Forward);
        for (z, &f) in a.iter_mut().zip(&self.filter_spectrum) {
            *z *= f;
        }
        self.inner.process(&mut a, Direction::Inverse);
        let norm = if conjugate { 1.0 / self.n as f64 } else { 1.0 };
        for (k, out) in buf.iter_mut().enumerate() {
            let v = a[k] * self.chirp[k];
            *out = if conjugate { v.conj().scale(norm) } else { v };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_reference;

    #[test]
    fn matches_reference_for_awkward_lengths() {
        for n in [1usize, 2, 3, 5, 6, 7, 11, 13, 21, 33, 47, 60, 101, 257] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((0.7 * i as f64).cos(), (1.3 * i as f64).sin()))
                .collect();
            let mut fast = x.clone();
            Bluestein::new(n).process(&mut fast, Direction::Forward);
            let slow = dft_reference(&x, Direction::Forward);
            for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((*a - *b).abs() < 1e-8 * (n as f64).max(1.0), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for n in [3usize, 10, 37, 99] {
            let x: Vec<Complex64> =
                (0..n).map(|i| Complex64::new(i as f64 * 0.1, -(i as f64) * 0.2)).collect();
            let b = Bluestein::new(n);
            let mut buf = x.clone();
            b.process(&mut buf, Direction::Forward);
            b.process(&mut buf, Direction::Inverse);
            for (a, c) in buf.iter().zip(&x) {
                assert!((*a - *c).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn works_on_power_of_two_lengths_too() {
        // Not the dispatcher's choice, but must still be correct.
        let n = 16;
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::from_re(i as f64)).collect();
        let mut fast = x.clone();
        Bluestein::new(n).process(&mut fast, Direction::Forward);
        let slow = dft_reference(&x, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn large_prime_length_is_stable() {
        let n = 1009; // prime: worst case for non-Bluestein approaches
        let x: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).sin(), 0.0)).collect();
        let b = Bluestein::new(n);
        let mut buf = x.clone();
        b.process(&mut buf, Direction::Forward);
        b.process(&mut buf, Direction::Inverse);
        let err = buf.iter().zip(&x).map(|(a, c)| (*a - *c).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "round-trip err {err}");
    }
}
