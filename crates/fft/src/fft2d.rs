//! Row–column 2-D FFT with optional multithreading.
//!
//! The 2-D DFT separates into 1-D transforms along each axis. Rows are
//! contiguous in the workspace's row-major layout; columns are gathered
//! into per-thread scratch, transformed, and scattered back. Both passes
//! parallelise over disjoint bands via `rrs-par`.

use crate::{Direction, Fft};
use rrs_num::Complex64;
use std::sync::Arc;

/// A prepared 2-D transform of shape `(nx, ny)`, row-major.
pub struct Fft2d {
    nx: usize,
    ny: usize,
    row_fft: Arc<Fft>,
    col_fft: Arc<Fft>,
    workers: usize,
}

impl Fft2d {
    /// Builds a 2-D transform for an `nx × ny` row-major buffer using the
    /// default worker count.
    pub fn new(nx: usize, ny: usize) -> Self {
        Self::with_workers(nx, ny, rrs_par::default_workers())
    }

    /// Builds a 2-D transform with an explicit worker count (1 = serial).
    pub fn with_workers(nx: usize, ny: usize, workers: usize) -> Self {
        assert!(nx > 0 && ny > 0, "Fft2d dimensions must be positive");
        let row_fft = Arc::new(Fft::new(nx));
        let col_fft =
            if ny == nx { row_fft.clone() } else { Arc::new(Fft::new(ny)) };
        Self { nx, ny, row_fft, col_fft, workers: workers.max(1) }
    }

    /// Shape as `(nx, ny)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Transforms a row-major `nx × ny` buffer in place.
    ///
    /// # Panics
    /// Panics if `buf.len() != nx * ny`.
    pub fn process(&self, buf: &mut [Complex64], dir: Direction) {
        assert_eq!(buf.len(), self.nx * self.ny, "buffer shape mismatch");
        // Run both passes UN-normalised, then apply the 1/(Nx·Ny) once —
        // the per-axis inverse normalisation would otherwise be applied by
        // each 1-D call and double-count on the shared-plan path.
        self.rows_pass(buf, dir);
        self.cols_pass(buf, dir);
        if dir == Direction::Inverse {
            let k = 1.0 / (self.nx * self.ny) as f64;
            for z in buf.iter_mut() {
                *z = z.scale(k);
            }
        }
    }

    /// Forward-transforms a real row-major `nx × ny` field into `buf`,
    /// reusing `buf`'s allocation (cleared and refilled, grown at most
    /// once). Equivalent to widening to complex and calling
    /// [`Fft2d::process`] with [`Direction::Forward`], without the
    /// caller-side intermediate vector.
    ///
    /// # Panics
    /// Panics if `input.len() != nx * ny`.
    pub fn forward_real_into(&self, input: &[f64], buf: &mut Vec<Complex64>) {
        assert_eq!(input.len(), self.nx * self.ny, "buffer shape mismatch");
        buf.clear();
        buf.extend(input.iter().map(|&x| Complex64::from_re(x)));
        self.process(buf, Direction::Forward);
    }

    fn rows_pass(&self, buf: &mut [Complex64], dir: Direction) {
        let nx = self.nx;
        let fft = &self.row_fft;
        let workers = self.workers.min(self.ny);
        // Band over whole rows: chunk size is an exact multiple of nx so a
        // row is never split across workers.
        let rows_per_band = self.ny.div_ceil(workers);
        if workers == 1 {
            for row in buf.chunks_exact_mut(nx) {
                process_unnormalised(fft, row, dir);
            }
            return;
        }
        rrs_par::scope(|s| {
            for band in buf.chunks_mut(rows_per_band * nx) {
                s.spawn(move || {
                    for row in band.chunks_exact_mut(nx) {
                        process_unnormalised(fft, row, dir);
                    }
                });
            }
        });
    }

    fn cols_pass(&self, buf: &mut [Complex64], dir: Direction) {
        let nx = self.nx;
        let ny = self.ny;
        let fft = &self.col_fft;
        if self.workers <= 1 || nx == 1 {
            let mut scratch = vec![Complex64::ZERO; ny];
            for cx in 0..nx {
                for iy in 0..ny {
                    scratch[iy] = buf[iy * nx + cx];
                }
                process_unnormalised(fft, &mut scratch, dir);
                for iy in 0..ny {
                    buf[iy * nx + cx] = scratch[iy];
                }
            }
            return;
        }
        // Parallel column pass: split columns into bands; each worker owns
        // an exclusive set of columns. Safe disjoint access is expressed by
        // sending each worker a raw pointer wrapper over the shared buffer.
        let ranges = rrs_par::split_range(nx, self.workers);
        let ptr = SendPtr(buf.as_mut_ptr());
        rrs_par::scope(|s| {
            for &(c0, c1) in &ranges {
                s.spawn(move || {
                    // Rebind the whole wrapper first: edition-2021 closures
                    // would otherwise capture the raw-pointer *field* (which
                    // is not Send) instead of the Send wrapper.
                    #[allow(clippy::redundant_locals)]
                    let ptr = ptr;
                    let buf_ptr = ptr.0;
                    let mut scratch = vec![Complex64::ZERO; ny];
                    for cx in c0..c1 {
                        // SAFETY: column cx is touched by exactly one worker
                        // (ranges are disjoint) and the scope outlives use.
                        unsafe {
                            for (iy, slot) in scratch.iter_mut().enumerate() {
                                *slot = *buf_ptr.add(iy * nx + cx);
                            }
                        }
                        process_unnormalised(fft, &mut scratch, dir);
                        unsafe {
                            for (iy, &v) in scratch.iter().enumerate() {
                                *buf_ptr.add(iy * nx + cx) = v;
                            }
                        }
                    }
                });
            }
        });
    }
}

/// Applies the 1-D engine without its inverse normalisation (the 2-D
/// driver applies the full `1/(Nx·Ny)` itself).
fn process_unnormalised(fft: &Fft, buf: &mut [Complex64], dir: Direction) {
    fft.process(buf, dir);
    if dir == Direction::Inverse {
        let n = buf.len() as f64;
        for z in buf.iter_mut() {
            *z = z.scale(n);
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut Complex64);
// SAFETY: workers access strictly disjoint column sets of the pointee.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft2_reference;
    use rrs_rng::{RandomSource, Xoshiro256pp};

    fn random_field(nx: usize, ny: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..nx * ny)
            .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(nx, ny) in &[(4usize, 4usize), (8, 4), (4, 8), (3, 5), (6, 6), (7, 8), (16, 3)] {
            let x = random_field(nx, ny, (nx * 100 + ny) as u64);
            let mut fast = x.clone();
            Fft2d::with_workers(nx, ny, 1).process(&mut fast, Direction::Forward);
            let slow = dft2_reference(&x, nx, ny, Direction::Forward);
            assert!(max_err(&fast, &slow) < 1e-8, "shape ({nx},{ny})");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let (nx, ny) = (32, 24);
        let x = random_field(nx, ny, 5);
        let mut serial = x.clone();
        let mut parallel = x.clone();
        Fft2d::with_workers(nx, ny, 1).process(&mut serial, Direction::Forward);
        Fft2d::with_workers(nx, ny, 4).process(&mut parallel, Direction::Forward);
        assert_eq!(serial.len(), parallel.len());
        // Bit-identical: the same plan runs on the same rows/columns.
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn round_trip_identity() {
        for &(nx, ny) in &[(8usize, 8usize), (5, 12), (16, 16), (9, 7)] {
            let x = random_field(nx, ny, 77);
            let mut buf = x.clone();
            let fft = Fft2d::with_workers(nx, ny, 2);
            fft.process(&mut buf, Direction::Forward);
            fft.process(&mut buf, Direction::Inverse);
            assert!(max_err(&buf, &x) < 1e-10, "shape ({nx},{ny})");
        }
    }

    #[test]
    fn square_shape_shares_plan() {
        let fft = Fft2d::with_workers(16, 16, 1);
        assert!(Arc::ptr_eq(&fft.row_fft, &fft.col_fft));
    }

    #[test]
    fn plane_wave_hits_single_bin() {
        let (nx, ny) = (16, 8);
        let (kx, ky) = (3, 2);
        let mut buf: Vec<Complex64> = (0..nx * ny)
            .map(|i| {
                let (ix, iy) = (i % nx, i / nx);
                Complex64::cis(core::f64::consts::TAU
                    * (kx as f64 * ix as f64 / nx as f64 + ky as f64 * iy as f64 / ny as f64))
            })
            .collect();
        Fft2d::with_workers(nx, ny, 1).process(&mut buf, Direction::Forward);
        for (i, z) in buf.iter().enumerate() {
            let (vx, vy) = (i % nx, i / nx);
            let expect = if vx == kx && vy == ky { (nx * ny) as f64 } else { 0.0 };
            assert!((z.re - expect).abs() < 1e-8 && z.im.abs() < 1e-8, "bin ({vx},{vy})");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let fft = Fft2d::with_workers(4, 4, 1);
        let mut buf = vec![Complex64::ZERO; 8];
        fft.process(&mut buf, Direction::Forward);
    }

    #[test]
    fn degenerate_single_column() {
        let x = random_field(1, 9, 3);
        let mut fast = x.clone();
        Fft2d::with_workers(1, 9, 4).process(&mut fast, Direction::Forward);
        let slow = dft2_reference(&x, 1, 9, Direction::Forward);
        assert!(max_err(&fast, &slow) < 1e-9);
    }
}
