//! Deterministic whole-pipeline fault injection.
//!
//! PR 2's failpoints proved the I/O layer fails closed; this crate
//! generalises the idea to the *compute* pipeline. Every cooperative
//! poll point in the workspace — parallel band slices, FFT tile loops,
//! strip-tile boundaries, plan-cache lookups, retry sleeps, checkpoint
//! writes — is registered as a numbered [`FaultSite`], and a
//! [`FaultSchedule`] decides, purely from `(site, visit index)`, whether
//! that visit panics, returns an injected [`RrsError`], trips a
//! cancellation, or expires a deadline. Because the decision depends
//! only on the per-site visit counter, a schedule replays bit-for-bit:
//! the same seed (or explicit plan) on the same workload injects the
//! same faults at the same sites, which is what lets the torture suite
//! assert byte-identical degraded output across runs.
//!
//! # Zero cost when disabled
//!
//! The handle threaded through the pipeline is [`ChaosInjector`], a
//! clone of the `rrs-obs` `Recorder` shape: an `Option<Arc<FaultSchedule>>`
//! whose disabled form ([`ChaosInjector::disabled`]) makes every poll a
//! single `Option` discriminant test. The `bench_runtime` CI gate holds
//! the disabled-injector overhead under 1.05x.
//!
//! # Containment contract
//!
//! [`ChaosInjector::poll`] genuinely panics for [`FaultKind::Panic`]
//! plans, so it may only be called where an existing `catch_unwind`
//! boundary contains worker panics (rrs-par band closures, fftconv tile
//! bands, the convolution dispatcher). Sites without such a boundary —
//! strip-tile checks, retry sleeps, checkpoint writes — call
//! [`ChaosInjector::poll_contained`], which catches its own injected
//! panic and surfaces it as [`RrsError::WorkerPanicked`], exercising the
//! unwind machinery without ever letting a panic escape.

#![warn(missing_docs)]

use rrs_error::RrsError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A numbered cooperative poll point in the pipeline.
///
/// `#[non_exhaustive]`: new sites are added as the pipeline grows; match
/// with a wildcard arm outside this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultSite {
    /// One row-slice of a worker band in `rrs-par`
    /// (`try_par_row_chunks_mut_chaos`). Polled inside the band's
    /// panic-containment, so `Panic` plans are caught per band.
    ParBandSlice,
    /// One overlap-save tile in either FFT convolution engine
    /// (`FftEngine::convolve` / `convolve_rfft`). Contained by the
    /// degradation dispatcher's `catch_unwind`.
    FftTile,
    /// One strip emitted by `StripGenerator::try_strip_at`. Polled with
    /// [`ChaosInjector::poll_contained`].
    StripTile,
    /// One plan-cache / kernel-spectrum lookup in the FFT convolution
    /// path. Contained by the degradation dispatcher.
    PlanCacheLookup,
    /// One backoff sleep inside `RetryPolicy`. Polled with
    /// [`ChaosInjector::poll_contained`].
    RetrySleep,
    /// One durable checkpoint write. Polled with
    /// [`ChaosInjector::poll_contained`].
    CheckpointWrite,
    /// One accepted TCP connection in the serving accept loop. A fault
    /// drops the connection before a reader thread ever spawns, as if
    /// the endpoint died during the handshake. Polled with
    /// [`ChaosInjector::poll_contained`].
    ConnAccept,
    /// One frame read through the serving codec's chaos seam
    /// (`rrs_serve::wire::read_frame_chaos`). Faults surface as a reset
    /// connection, a clean peer hang-up, or a stall past the read
    /// deadline. Polled with [`ChaosInjector::poll_contained`].
    FrameRead,
    /// One frame write through the serving codec's chaos seam
    /// (`rrs_serve::wire::write_frame_chaos`). An injected error writes
    /// a *truncated prefix* of the frame before failing, so the peer
    /// observes a genuine mid-frame disconnect. Polled with
    /// [`ChaosInjector::poll_contained`].
    FrameWrite,
    /// One outbound client connect to a serving endpoint. A fault makes
    /// the endpoint unreachable at exactly that attempt, driving the
    /// sharded client's failover path. Polled with
    /// [`ChaosInjector::poll_contained`].
    EndpointConnect,
}

/// Number of distinct [`FaultSite`]s (length of [`FaultSite::ALL`]).
pub const N_SITES: usize = 10;

/// Number of compute-pipeline sites (length of [`FaultSite::PIPELINE`]).
pub const N_PIPELINE_SITES: usize = 6;

/// Number of network/serving sites (length of [`FaultSite::NETWORK`]).
pub const N_NETWORK_SITES: usize = 4;

impl FaultSite {
    /// Every registered site, in stable order:
    /// [`FaultSite::PIPELINE`] followed by [`FaultSite::NETWORK`].
    pub const ALL: [FaultSite; N_SITES] = [
        FaultSite::ParBandSlice,
        FaultSite::FftTile,
        FaultSite::StripTile,
        FaultSite::PlanCacheLookup,
        FaultSite::RetrySleep,
        FaultSite::CheckpointWrite,
        FaultSite::ConnAccept,
        FaultSite::FrameRead,
        FaultSite::FrameWrite,
        FaultSite::EndpointConnect,
    ];

    /// The compute-pipeline sites every in-process generation visits.
    /// The chaos torture suite iterates this subset when it asserts
    /// whole-pipeline visit coverage — network sites are only reached
    /// when `rrs-serve` is in the loop.
    pub const PIPELINE: [FaultSite; N_PIPELINE_SITES] = [
        FaultSite::ParBandSlice,
        FaultSite::FftTile,
        FaultSite::StripTile,
        FaultSite::PlanCacheLookup,
        FaultSite::RetrySleep,
        FaultSite::CheckpointWrite,
    ];

    /// The wire-level sites injected through the serving transport seam.
    pub const NETWORK: [FaultSite; N_NETWORK_SITES] = [
        FaultSite::ConnAccept,
        FaultSite::FrameRead,
        FaultSite::FrameWrite,
        FaultSite::EndpointConnect,
    ];

    /// Stable human-readable name, used in error messages and reports.
    pub const fn name(self) -> &'static str {
        match self {
            FaultSite::ParBandSlice => "par_band_slice",
            FaultSite::FftTile => "fft_tile",
            FaultSite::StripTile => "strip_tile",
            FaultSite::PlanCacheLookup => "plan_cache_lookup",
            FaultSite::RetrySleep => "retry_sleep",
            FaultSite::CheckpointWrite => "checkpoint_write",
            FaultSite::ConnAccept => "conn_accept",
            FaultSite::FrameRead => "frame_read",
            FaultSite::FrameWrite => "frame_write",
            FaultSite::EndpointConnect => "endpoint_connect",
        }
    }

    const fn slot(self) -> usize {
        match self {
            FaultSite::ParBandSlice => 0,
            FaultSite::FftTile => 1,
            FaultSite::StripTile => 2,
            FaultSite::PlanCacheLookup => 3,
            FaultSite::RetrySleep => 4,
            FaultSite::CheckpointWrite => 5,
            FaultSite::ConnAccept => 6,
            FaultSite::FrameRead => 7,
            FaultSite::FrameWrite => 8,
            FaultSite::EndpointConnect => 9,
        }
    }
}

/// What an armed plan does when its site reaches its visit index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Panic with a chaos-tagged payload (contained per the site's
    /// containment contract — see the [crate docs](self)).
    Panic,
    /// Return [`RrsError::FaultInjected`] naming the site and index.
    Error,
    /// Return [`RrsError::Cancelled`], as if the request's cancel token
    /// tripped at exactly this poll.
    Cancel,
    /// Return [`RrsError::DeadlineExceeded`], as if the wall-clock
    /// deadline expired at exactly this poll.
    Deadline,
}

impl FaultKind {
    /// Every kind, in stable order.
    pub const ALL: [FaultKind; 4] =
        [FaultKind::Panic, FaultKind::Error, FaultKind::Cancel, FaultKind::Deadline];
}

/// One scheduled fault: fire `kind` on the `at_index`-th visit
/// (zero-based) to `site`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Which poll point fires.
    pub site: FaultSite,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// Zero-based visit index at which it fires.
    pub at_index: u64,
}

/// SplitMix64 — the same finalizer `rrs-rng` builds on, re-derived here
/// so this crate depends only on `rrs-error`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A replayable fault schedule: an explicit (or seed-derived) list of
/// [`FaultPlan`]s plus per-site visit counters.
///
/// The visit counters are the whole determinism story: whether a poll
/// fires depends only on how many times its site has been polled, never
/// on wall-clock time or thread interleaving of *other* sites. Within
/// one site, concurrent polls claim distinct indices via `fetch_add`, so
/// exactly one visit observes each armed index.
#[derive(Debug)]
pub struct FaultSchedule {
    seed: u64,
    plan: Vec<FaultPlan>,
    visits: [AtomicU64; N_SITES],
    injected: AtomicU64,
}

impl FaultSchedule {
    /// An empty schedule (no faults armed) carrying `seed` for
    /// reproducibility bookkeeping.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            plan: Vec::new(),
            visits: Default::default(),
            injected: AtomicU64::new(0),
        }
    }

    /// Derives `n` pseudo-random plans from `seed` via SplitMix64: site,
    /// kind and visit index (`< max_index`) are all seed-determined, so
    /// the same seed always produces the same schedule.
    pub fn seeded(seed: u64, n: usize, max_index: u64) -> Self {
        let mut state = seed;
        let plan = (0..n)
            .map(|_| {
                let site = FaultSite::ALL[(splitmix64(&mut state) % N_SITES as u64) as usize];
                let kind = FaultKind::ALL[(splitmix64(&mut state) % 4) as usize];
                let at_index = splitmix64(&mut state) % max_index.max(1);
                FaultPlan { site, kind, at_index }
            })
            .collect();
        Self { plan, ..Self::new(seed) }
    }

    /// Adds one explicit plan (builder style).
    pub fn with_fault(mut self, site: FaultSite, kind: FaultKind, at_index: u64) -> Self {
        self.plan.push(FaultPlan { site, kind, at_index });
        self
    }

    /// The seed this schedule was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed plans, in insertion/derivation order.
    pub fn plan(&self) -> &[FaultPlan] {
        &self.plan
    }

    /// How many times `site` has been polled so far.
    pub fn visits(&self, site: FaultSite) -> u64 {
        self.visits[site.slot()].load(Ordering::Relaxed)
    }

    /// How many faults have actually fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Claims the next visit index for `site` and fires any armed plan.
    fn poll(&self, site: FaultSite) -> Result<(), RrsError> {
        let index = self.visits[site.slot()].fetch_add(1, Ordering::Relaxed);
        for p in &self.plan {
            if p.site == site && p.at_index == index {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return match p.kind {
                    FaultKind::Panic => {
                        panic!("chaos: injected panic at {}[{index}]", site.name())
                    }
                    FaultKind::Error => Err(RrsError::fault_injected(site.name(), index)),
                    FaultKind::Cancel => Err(RrsError::Cancelled),
                    FaultKind::Deadline => Err(RrsError::DeadlineExceeded),
                };
            }
        }
        Ok(())
    }
}

/// The handle threaded through generators and primitives: either
/// disabled (one branch per poll, no allocation, no atomics) or armed
/// with a shared [`FaultSchedule`].
///
/// Clones share the schedule — and therefore the visit counters — so a
/// generator and the primitives it calls into count against one
/// deterministic sequence.
#[derive(Clone, Debug, Default)]
pub struct ChaosInjector {
    inner: Option<Arc<FaultSchedule>>,
}

impl ChaosInjector {
    /// The free, never-firing injector every pipeline stage defaults to.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Arms `schedule`; clones of the returned injector share it.
    pub fn new(schedule: FaultSchedule) -> Self {
        Self { inner: Some(Arc::new(schedule)) }
    }

    /// True when a schedule is armed. Primitives use this to delegate to
    /// their chaos-free path before any per-item machinery runs.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Polls `site`: claims the next visit index and fires any armed
    /// plan. [`FaultKind::Panic`] plans genuinely panic — call this only
    /// under an existing `catch_unwind` containment boundary (see the
    /// [crate docs](self)); use [`ChaosInjector::poll_contained`]
    /// elsewhere.
    #[inline]
    pub fn poll(&self, site: FaultSite) -> Result<(), RrsError> {
        match &self.inner {
            None => Ok(()),
            Some(s) => s.poll(site),
        }
    }

    /// Polls `site`, containing any injected panic locally: a
    /// [`FaultKind::Panic`] plan unwinds into this frame's
    /// `catch_unwind` and surfaces as [`RrsError::WorkerPanicked`]
    /// (band = the visit index), so the caller needs no containment of
    /// its own.
    pub fn poll_contained(&self, site: FaultSite) -> Result<(), RrsError> {
        let Some(s) = &self.inner else { return Ok(()) };
        let index = s.visits(site);
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.poll(site)))
            .unwrap_or_else(|payload| {
                Err(RrsError::worker_panicked(index as usize, payload.as_ref()))
            })
    }

    /// How many times `site` has been polled (0 when disabled).
    pub fn visits(&self, site: FaultSite) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.visits(site))
    }

    /// How many faults have fired (0 when disabled).
    pub fn injected(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.injected())
    }

    /// The armed schedule, if any.
    pub fn schedule(&self) -> Option<&FaultSchedule> {
        self.inner.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_error::ErrorKind;

    /// Replaces the panic hook with a silent one for the duration of a
    /// closure that intentionally panics, so `cargo test` output stays
    /// readable. Serialised because the hook is process-global.
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        use std::sync::Mutex;
        static HOOK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn disabled_injector_is_inert() {
        let chaos = ChaosInjector::disabled();
        assert!(!chaos.is_enabled());
        for site in FaultSite::ALL {
            assert!(chaos.poll(site).is_ok());
            assert!(chaos.poll_contained(site).is_ok());
            assert_eq!(chaos.visits(site), 0, "disabled injector must not count");
        }
        assert_eq!(chaos.injected(), 0);
    }

    #[test]
    fn error_fires_at_exact_index_only() {
        let chaos = ChaosInjector::new(
            FaultSchedule::new(1).with_fault(FaultSite::FftTile, FaultKind::Error, 2),
        );
        assert!(chaos.poll(FaultSite::FftTile).is_ok()); // visit 0
        assert!(chaos.poll(FaultSite::ParBandSlice).is_ok()); // other site
        assert!(chaos.poll(FaultSite::FftTile).is_ok()); // visit 1
        let err = chaos.poll(FaultSite::FftTile).unwrap_err(); // visit 2
        assert_eq!(err.kind(), ErrorKind::FaultInjected);
        assert_eq!(err.to_string(), "injected fault at fft_tile[2]");
        assert!(chaos.poll(FaultSite::FftTile).is_ok()); // visit 3: already fired
        assert_eq!(chaos.visits(FaultSite::FftTile), 4);
        assert_eq!(chaos.visits(FaultSite::ParBandSlice), 1);
        assert_eq!(chaos.injected(), 1);
    }

    #[test]
    fn cancel_and_deadline_map_to_budget_kinds() {
        let chaos = ChaosInjector::new(
            FaultSchedule::new(2)
                .with_fault(FaultSite::StripTile, FaultKind::Cancel, 0)
                .with_fault(FaultSite::RetrySleep, FaultKind::Deadline, 0),
        );
        assert_eq!(chaos.poll(FaultSite::StripTile).unwrap_err().kind(), ErrorKind::Cancelled);
        assert_eq!(
            chaos.poll(FaultSite::RetrySleep).unwrap_err().kind(),
            ErrorKind::DeadlineExceeded
        );
    }

    #[test]
    fn poll_panics_for_panic_kind() {
        quiet_panics(|| {
            let chaos = ChaosInjector::new(
                FaultSchedule::new(3).with_fault(FaultSite::ParBandSlice, FaultKind::Panic, 0),
            );
            let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                chaos.poll(FaultSite::ParBandSlice)
            }))
            .unwrap_err();
            let msg = payload.downcast_ref::<String>().expect("string payload");
            assert_eq!(msg, "chaos: injected panic at par_band_slice[0]");
            assert_eq!(chaos.injected(), 1);
        });
    }

    #[test]
    fn poll_contained_converts_panic_to_worker_panicked() {
        quiet_panics(|| {
            let chaos = ChaosInjector::new(
                FaultSchedule::new(4).with_fault(FaultSite::CheckpointWrite, FaultKind::Panic, 1),
            );
            assert!(chaos.poll_contained(FaultSite::CheckpointWrite).is_ok());
            let err = chaos.poll_contained(FaultSite::CheckpointWrite).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::WorkerPanicked);
            assert!(err.to_string().contains("checkpoint_write[1]"), "{err}");
            // Non-panic kinds pass through untouched.
            let chaos = ChaosInjector::new(
                FaultSchedule::new(4).with_fault(FaultSite::CheckpointWrite, FaultKind::Error, 0),
            );
            let err = chaos.poll_contained(FaultSite::CheckpointWrite).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::FaultInjected);
        });
    }

    #[test]
    fn seeded_schedules_replay_bit_for_bit() {
        let a = FaultSchedule::seeded(0xDEAD_BEEF, 8, 100);
        let b = FaultSchedule::seeded(0xDEAD_BEEF, 8, 100);
        assert_eq!(a.plan(), b.plan(), "same seed must derive the same plan");
        assert_eq!(a.seed(), 0xDEAD_BEEF);
        let c = FaultSchedule::seeded(0xDEAD_BEEF + 1, 8, 100);
        assert_ne!(a.plan(), c.plan(), "different seeds should differ");
        // Replaying the same poll sequence injects identically.
        let run = |schedule: FaultSchedule| {
            let chaos = ChaosInjector::new(schedule);
            let mut outcomes = Vec::new();
            for _ in 0..100 {
                for site in FaultSite::ALL {
                    outcomes.push(chaos.poll_contained(site).map_err(|e| e.to_string()));
                }
            }
            (outcomes, chaos.injected())
        };
        quiet_panics(|| {
            let (oa, ia) = run(FaultSchedule::seeded(7, 8, 100));
            let (ob, ib) = run(FaultSchedule::seeded(7, 8, 100));
            assert_eq!(oa, ob, "replay must be bit-for-bit identical");
            assert_eq!(ia, ib);
            assert!(ia > 0, "a 8-fault schedule over 100 visits should fire");
        });
    }

    #[test]
    fn clones_share_visit_counters() {
        let chaos = ChaosInjector::new(
            FaultSchedule::new(5).with_fault(FaultSite::FftTile, FaultKind::Error, 1),
        );
        let clone = chaos.clone();
        assert!(clone.poll(FaultSite::FftTile).is_ok()); // visit 0 via clone
        assert!(chaos.poll(FaultSite::FftTile).is_err()); // visit 1 via original
        assert_eq!(chaos.visits(FaultSite::FftTile), 2);
        assert_eq!(clone.injected(), 1);
    }

    #[test]
    fn site_names_are_stable_and_distinct() {
        let mut names: Vec<_> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_SITES, "site names must be distinct");
        assert_eq!(FaultSite::FftTile.name(), "fft_tile");
        assert_eq!(FaultSite::FrameWrite.name(), "frame_write");
    }

    #[test]
    fn pipeline_and_network_partition_all_sites() {
        let mut combined: Vec<FaultSite> = FaultSite::PIPELINE.to_vec();
        combined.extend_from_slice(&FaultSite::NETWORK);
        assert_eq!(combined, FaultSite::ALL.to_vec(), "ALL must be PIPELINE ++ NETWORK");
        assert_eq!(N_PIPELINE_SITES + N_NETWORK_SITES, N_SITES);
        // Each site claims a distinct visit-counter slot.
        let mut slots: Vec<usize> = FaultSite::ALL.iter().map(|s| s.slot()).collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..N_SITES).collect::<Vec<_>>());
    }
}
