//! Fault-injected decoding properties (feature `failpoints`).
//!
//! The contract under test: every decoder in `rrs-io` fails *closed*.
//! Whatever a fault does to the byte stream — truncation at any offset,
//! any single bit flip, a stomped magic, a torn write — decoding either
//! returns the original grid bit-exactly or returns an error. Never a
//! panic, never unflagged garbage.
#![cfg(feature = "failpoints")]

use rrs_check::{props, CaseRng};
use rrs_error::ErrorKind;
use rrs_grid::Grid2;
use rrs_io::checkpoint::{self, StreamCheckpoint};
use rrs_io::fault::{flip_bit, stomp_magic, truncated, FailingReader, FailingWriter};
use rrs_io::{try_read_snapshot, try_write_snapshot};

fn sample_grid(rng: &mut CaseRng, nx: usize, ny: usize) -> Grid2<f64> {
    Grid2::from_fn(nx, ny, |_, _| rng.next_f64() * 2.0 - 1.0)
}

fn encode(grid: &Grid2<f64>) -> Vec<u8> {
    let mut buf = Vec::new();
    try_write_snapshot(&mut buf, grid).unwrap();
    buf
}

props! {
    #![cases = 64]

    fn truncation_at_any_offset_is_flagged(
        nx in 1usize..10, ny in 1usize..10, frac in 0.0f64..1.0,
        grid_seed in rrs_check::any::<u64>(),
    ) {
        let grid = sample_grid(&mut CaseRng::new(grid_seed), nx, ny);
        let clean = encode(&grid);
        let keep = (frac * clean.len() as f64) as usize;
        rrs_check::assume!(keep < clean.len());
        let err = try_read_snapshot(truncated(&clean, keep).as_slice())
            .expect_err("truncated snapshot must not decode");
        assert_eq!(err.kind(), ErrorKind::CorruptSnapshot, "keep={keep}: {err}");
    }

    fn any_single_bit_flip_is_flagged_or_harmless(
        nx in 1usize..8, ny in 1usize..8, bit_pick in rrs_check::any::<u64>(),
        grid_seed in rrs_check::any::<u64>(),
    ) {
        let grid = sample_grid(&mut CaseRng::new(grid_seed), nx, ny);
        let mut buf = encode(&grid);
        let bit = (bit_pick % (buf.len() as u64 * 8)) as usize;
        flip_bit(&mut buf, bit);
        // Magic, shape, data and crc are all covered: a flip anywhere must
        // surface as an error — there is no harmless bit in this format.
        let err = try_read_snapshot(buf.as_slice())
            .expect_err("bit flip must not decode silently");
        assert_eq!(err.kind(), ErrorKind::CorruptSnapshot, "bit {bit}: {err}");
    }

    fn stomped_magic_and_stomped_crc_are_flagged(
        nx in 1usize..8, ny in 1usize..8, grid_seed in rrs_check::any::<u64>(),
    ) {
        let grid = sample_grid(&mut CaseRng::new(grid_seed), nx, ny);
        let clean = encode(&grid);

        let mut bad_magic = clean.clone();
        stomp_magic(&mut bad_magic);
        let err = try_read_snapshot(bad_magic.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        let mut bad_crc = clean.clone();
        let n = bad_crc.len();
        for b in &mut bad_crc[n - 8..] {
            *b = !*b;
        }
        let err = try_read_snapshot(bad_crc.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // And the clean bytes still round-trip, so the errors above are
        // the corruption's doing, not the codec's.
        assert_eq!(try_read_snapshot(clean.as_slice()).unwrap(), grid);
    }

    fn torn_write_is_flagged_on_read(
        nx in 1usize..8, ny in 1usize..8, budget_pick in rrs_check::any::<u64>(),
        grid_seed in rrs_check::any::<u64>(),
    ) {
        let grid = sample_grid(&mut CaseRng::new(grid_seed), nx, ny);
        let full_len = encode(&grid).len();
        let budget = (budget_pick % full_len as u64) as usize;
        // The writer dies mid-stream: the caller sees an Io error...
        let mut fw = FailingWriter::new(Vec::new(), budget);
        let err = try_write_snapshot(&mut fw, &grid).expect_err("torn write must error");
        assert_eq!(err.kind(), ErrorKind::Io, "budget={budget}: {err}");
        // ...and the torn bytes it left behind never decode silently.
        let torn = fw.into_inner();
        assert_eq!(torn.len(), budget);
        let err = try_read_snapshot(torn.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::CorruptSnapshot, "budget={budget}: {err}");
    }

    fn failing_reader_surfaces_as_io(
        nx in 1usize..8, ny in 1usize..8, grid_seed in rrs_check::any::<u64>(),
        budget_pick in rrs_check::any::<u64>(),
    ) {
        let grid = sample_grid(&mut CaseRng::new(grid_seed), nx, ny);
        let clean = encode(&grid);
        let budget = (budget_pick % clean.len() as u64) as usize;
        let err = try_read_snapshot(FailingReader::new(clean.as_slice(), budget))
            .expect_err("failing reader must error");
        assert_eq!(err.kind(), ErrorKind::Io, "budget={budget}: {err}");
    }

    fn checkpoint_corruption_is_flagged(
        seed in rrs_check::any::<u64>(), height in 1u64..1000,
        cursor_bits in rrs_check::any::<u64>(), bit_pick in rrs_check::any::<u64>(),
    ) {
        let cp = StreamCheckpoint { seed, height, cursor: cursor_bits as i64 };
        let mut buf = Vec::new();
        checkpoint::write_checkpoint(&mut buf, &cp).unwrap();
        let bit = (bit_pick % (buf.len() as u64 * 8)) as usize;
        flip_bit(&mut buf, bit);
        let err = checkpoint::read_checkpoint(buf.as_slice())
            .expect_err("corrupt checkpoint must not decode");
        assert_eq!(err.kind(), ErrorKind::CorruptSnapshot, "bit {bit}: {err}");
    }

    fn mid_export_fault_never_leaves_a_torn_file(
        nx in 1usize..8, ny in 1usize..8, budget_pick in rrs_check::any::<u64>(),
        grid_seed in rrs_check::any::<u64>(), case in rrs_check::any::<u64>(),
    ) {
        // A fault-injected export through the atomic writer must leave the
        // destination exactly as it was: the previous good snapshot (if
        // any) intact, and never a decodable-but-wrong or torn file.
        let old = sample_grid(&mut CaseRng::new(grid_seed), nx, ny);
        let new = sample_grid(&mut CaseRng::new(grid_seed ^ 0x5DEECE66D), nx, ny);
        let full_len = encode(&new).len();
        let budget = (budget_pick % full_len as u64) as usize;
        let dir = std::env::temp_dir()
            .join(format!("rrs_torn_{}_{case:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("field.snap");
        rrs_io::try_write_snapshot_file(&dest, &old).unwrap();

        let err = rrs_io::write_atomic(&dest, |w| {
            try_write_snapshot(&mut FailingWriter::new(&mut *w, budget), &new)
        })
        .expect_err("fault-injected export must error");
        assert_eq!(err.kind(), ErrorKind::Io, "budget={budget}: {err}");

        // Previous content survives bit-exactly; no tmp leftovers.
        let survivor = rrs_io::try_read_snapshot(
            std::fs::File::open(&dest).unwrap(),
        ).expect("destination must still hold the previous good snapshot");
        assert_eq!(survivor, old);
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(stray.is_empty(), "tmp leftovers: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

mod retry_under_injected_faults {
    use rrs_error::ErrorKind;
    use rrs_io::checkpoint::{self, StreamCheckpoint, CHECKPOINT_LEN};
    use rrs_io::fault::FailingWriter;
    use rrs_io::retry::{RetryPolicy, Sleeper};
    use rrs_obs::{stage, Recorder};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    /// Records backoffs instead of sleeping, so the suite runs instantly.
    struct RecordingSleeper(RefCell<Vec<Duration>>);

    impl Sleeper for RecordingSleeper {
        fn sleep(&self, d: Duration) {
            self.0.borrow_mut().push(d);
        }
    }

    fn cp() -> StreamCheckpoint {
        StreamCheckpoint { seed: 7, height: 64, cursor: 1024 }
    }

    #[test]
    fn transient_injected_faults_recover_within_the_attempt_budget() {
        // The first two attempts hit a FailingWriter that dies mid-record;
        // the third writes cleanly. The retry loop must surface success,
        // and the obs report must carry the full attempt/backoff history.
        let attempt = AtomicU32::new(0);
        let rec = Recorder::enabled();
        let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
        let out = RefCell::new(Vec::new());
        RetryPolicy::default()
            .run_with_sleeper(&rec, &sleeper, &mut || {
                let n = attempt.fetch_add(1, Ordering::SeqCst);
                if n < 2 {
                    // Fault: the writer accepts half the record, then dies.
                    checkpoint::write_checkpoint(
                        &mut FailingWriter::new(Vec::new(), CHECKPOINT_LEN / 2),
                        &cp(),
                    )
                } else {
                    checkpoint::write_checkpoint(&mut *out.borrow_mut(), &cp())
                }
            })
            .expect("transient faults below max_attempts must recover");
        assert_eq!(checkpoint::read_checkpoint(out.borrow().as_slice()).unwrap(), cp());
        let report = rec.report();
        assert_eq!(report.counter(stage::RETRY_ATTEMPTS), 3, "all attempts counted");
        assert_eq!(report.durations[stage::RETRY_BACKOFF].count, 2);
        assert_eq!(
            *sleeper.0.borrow(),
            vec![Duration::from_millis(10), Duration::from_millis(20)],
            "deterministic exponential backoff schedule"
        );
    }

    #[test]
    fn persistent_injected_faults_fail_closed_with_history() {
        let rec = Recorder::enabled();
        let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
        let err = RetryPolicy::default()
            .run_with_sleeper(&rec, &sleeper, &mut || {
                checkpoint::write_checkpoint(FailingWriter::new(Vec::new(), 0), &cp())
            })
            .expect_err("a persistent fault must fail closed");
        assert_eq!(err.kind(), ErrorKind::Io);
        let msg = err.to_string();
        assert!(msg.contains("after 3 attempts"), "{msg}");
        assert!(msg.contains("attempt 1") && msg.contains("attempt 2"), "{msg}");
        assert_eq!(rec.report().counter(stage::RETRY_ATTEMPTS), 3);
    }
}
