//! Property-based round-trip tests for every I/O format (rrs-check).

use rrs_check::{any, map, Gen};
use rrs_grid::Grid2;
use rrs_io::{read_matrix_csv, read_snapshot, write_matrix_csv, write_pgm, write_snapshot};

fn arb_grid() -> impl Gen<Value = Grid2<f64>> {
    map((1usize..20, 1usize..20, any::<u64>()), |(nx, ny, seed)| {
        Grid2::from_fn(nx, ny, |x, y| {
            let k = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(((y * nx + x) as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
            // Mix magnitudes across many decades, including negatives.
            let u = (k >> 11) as f64 / (1u64 << 53) as f64;
            (u - 0.5) * 10f64.powi((k % 17) as i32 - 8)
        })
    })
}

rrs_check::props! {
    #![cases = 128]

    fn snapshot_round_trip_bit_exact(g in arb_grid()) {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        assert_eq!(read_snapshot(buf.as_slice()).unwrap(), g);
    }

    fn snapshot_detects_any_single_byte_corruption(g in arb_grid(), at in any::<u64>(), bit in 0u8..8) {
        rrs_check::assume!(!g.is_empty());
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        // Corrupt one data byte (skip the 24-byte header: magic/shape
        // corruption is detected by different paths).
        let idx = rrs_io::snapshot::HEADER_LEN + (at as usize) % (g.len() * 8);
        buf[idx] ^= 1 << bit;
        let r = read_snapshot(buf.as_slice());
        // Either the checksum fires, or (exceedingly unlikely with FNV)
        // a value changed silently — treat surviving equality as failure.
        match r {
            Err(_) => {}
            Ok(back) => assert!(back != g, "corruption must not round-trip"),
        }
    }

    fn csv_round_trip_exact(g in arb_grid()) {
        let mut buf = Vec::new();
        write_matrix_csv(&mut buf, &g).unwrap();
        assert_eq!(read_matrix_csv(buf.as_slice()).unwrap(), g);
    }

    fn pgm_has_exact_pixel_count(g in arb_grid()) {
        let mut buf = Vec::new();
        write_pgm(&mut buf, &g).unwrap();
        let header_end = buf.windows(4).position(|w| w == b"255\n").unwrap() + 4;
        assert_eq!(buf.len() - header_end, g.len());
    }
}
