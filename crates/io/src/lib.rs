//! Surface import/export.
//!
//! The reproduction harness renders every paper figure to disk; this crate
//! supplies the formats:
//!
//! * [`csv`] — `x,y,height` long format and plain matrix CSV;
//! * [`gnuplot`] — whitespace matrix blocks consumable by gnuplot's
//!   `splot ... matrix`;
//! * [`image`] — 8-bit PGM heightmaps and PPM renders with a perceptual
//!   colour ramp (enough to eyeball Figures 1–4 without a plotting stack);
//! * [`snapshot`] — an exact binary round-trip format (magic + shape +
//!   little-endian `f64`s + FNV-1a checksum), hand-rolled on `std` alone.

#![warn(missing_docs)]

pub mod csv;
pub mod gnuplot;
pub mod image;
pub mod snapshot;

pub use csv::{read_matrix_csv, write_matrix_csv, write_xyz_csv};
pub use gnuplot::write_gnuplot_matrix;
pub use image::{write_pgm, write_ppm};
pub use snapshot::{read_snapshot, write_snapshot};
