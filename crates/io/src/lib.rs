//! Surface import/export.
//!
//! The reproduction harness renders every paper figure to disk; this crate
//! supplies the formats:
//!
//! * [`csv`] — `x,y,height` long format and plain matrix CSV;
//! * [`gnuplot`] — whitespace matrix blocks consumable by gnuplot's
//!   `splot ... matrix`;
//! * [`image`] — 8-bit PGM heightmaps and PPM renders with a perceptual
//!   colour ramp (enough to eyeball Figures 1–4 without a plotting stack);
//! * [`snapshot`] — an exact binary round-trip format (magic + shape +
//!   little-endian `f64`s + FNV-1a checksum), hand-rolled on `std` alone;
//! * [`checkpoint`] — the 40-byte crash-safe resume record for streaming
//!   strip generation;
//! * [`atomic`] — the tmp + fsync + rename protocol every path-based
//!   writer above routes through, so a crash or injected fault mid-export
//!   never leaves a torn file at the final path;
//! * [`retry`] — deterministic bounded retry with exponential backoff for
//!   durable writes, with an injectable [`retry::Sleeper`] so fault-
//!   injection tests run instantly.
//!
//! Every writer/reader has a `try_*` twin returning
//! `Result<_, `[`RrsError`]`>`; the plain variants keep their historical
//! `io::Result` signatures by converting through
//! `From<RrsError> for io::Error`. Decoders fail *closed*: a corrupt or
//! hostile input is always an error, never a panic and never unflagged
//! garbage (the `failpoints` feature compiles the [`fault`] harness that
//! proves this).

#![warn(missing_docs)]

pub mod atomic;
pub mod checkpoint;
pub mod csv;
#[cfg(feature = "failpoints")]
pub mod fault;
pub mod gnuplot;
pub mod image;
pub mod retry;
pub mod snapshot;

pub use atomic::{write_atomic, AtomicFile};
pub use checkpoint::{
    read_checkpoint, read_checkpoint_file, write_checkpoint, write_checkpoint_file,
    write_checkpoint_file_observed, write_checkpoint_file_resilient,
    write_checkpoint_file_retrying, StreamCheckpoint,
};
pub use csv::{
    read_matrix_csv, try_write_matrix_csv, try_write_matrix_csv_file, try_write_xyz_csv,
    try_write_xyz_csv_file, write_matrix_csv, write_xyz_csv,
};
pub use gnuplot::write_gnuplot_matrix;
pub use image::{
    try_write_pgm, try_write_pgm_file, try_write_ppm, try_write_ppm_file, write_pgm, write_ppm,
};
pub use retry::{RetryPolicy, Sleeper, ThreadSleeper};
pub use rrs_error::RrsError;
pub use snapshot::{
    read_snapshot, try_read_snapshot, try_write_snapshot, try_write_snapshot_file,
    try_write_snapshot_file_observed, try_write_snapshot_observed, write_snapshot,
};
