//! PGM/PPM heightmap rendering.
//!
//! Binary PGM (P5) grayscale and PPM (P6) false-colour renders of a height
//! field, normalised to the field's own min/max. Rows are written top-down
//! with `y` increasing upward (image row 0 is the maximum `y`), matching
//! the mathematical orientation of the paper's figures.

use rrs_error::{ensure_all_finite, RrsError};
use rrs_grid::Grid2;
use std::io::{self, BufWriter, Write};

fn normalise(grid: &Grid2<f64>) -> (f64, f64) {
    let lo = grid.min();
    let hi = grid.max();
    // Negated comparison on purpose: also catches NaN bounds.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(hi > lo) {
        // Flat field: avoid division by zero, render mid-gray.
        (lo - 0.5, lo + 0.5)
    } else {
        (lo, hi)
    }
}

fn check_renderable(grid: &Grid2<f64>, context: &'static str) -> Result<(), RrsError> {
    if grid.is_empty() {
        return Err(RrsError::invalid_param("grid", "cannot render an empty grid"));
    }
    // A NaN/∞ height would silently clamp to an arbitrary pixel — reject
    // instead of rendering a lie.
    ensure_all_finite(context, grid.as_slice())
}

/// Writes an 8-bit binary PGM (P5) grayscale heightmap.
///
/// # Panics
/// Panics on an empty grid. Fallible callers (and callers that may hold
/// non-finite heights, which are rejected) use [`try_write_pgm`].
pub fn write_pgm<W: Write>(w: W, grid: &Grid2<f64>) -> io::Result<()> {
    assert!(!grid.is_empty(), "cannot render an empty grid");
    try_write_pgm(w, grid).map_err(Into::into)
}

/// Fallible [`write_pgm`]: rejects empty grids ([`RrsError::InvalidParam`])
/// and non-finite heights ([`RrsError::NonFinite`]).
pub fn try_write_pgm<W: Write>(w: W, grid: &Grid2<f64>) -> Result<(), RrsError> {
    check_renderable(grid, "pgm heights")?;
    let mut w = BufWriter::new(w);
    let (lo, hi) = normalise(grid);
    write!(w, "P5\n{} {}\n255\n", grid.nx(), grid.ny())?;
    for iy in (0..grid.ny()).rev() {
        let bytes: Vec<u8> = grid
            .row(iy)
            .iter()
            .map(|&v| (255.0 * (v - lo) / (hi - lo)).round().clamp(0.0, 255.0) as u8)
            .collect();
        w.write_all(&bytes)?;
    }
    w.flush()?;
    Ok(())
}

/// A compact diverging-ish terrain ramp: deep blue → teal → green →
/// yellow → white, linear in normalised height.
fn terrain_color(t: f64) -> [u8; 3] {
    let t = t.clamp(0.0, 1.0);
    let stops: [(f64, [f64; 3]); 5] = [
        (0.00, [20.0, 44.0, 108.0]),
        (0.25, [28.0, 130.0, 140.0]),
        (0.50, [70.0, 160.0, 70.0]),
        (0.75, [220.0, 210.0, 90.0]),
        (1.00, [250.0, 250.0, 245.0]),
    ];
    let mut c = stops[stops.len() - 1].1;
    for win in stops.windows(2) {
        let (t0, c0) = win[0];
        let (t1, c1) = win[1];
        if t <= t1 {
            let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
            c = [
                c0[0] + f * (c1[0] - c0[0]),
                c0[1] + f * (c1[1] - c0[1]),
                c0[2] + f * (c1[2] - c0[2]),
            ];
            break;
        }
    }
    [c[0].round() as u8, c[1].round() as u8, c[2].round() as u8]
}

/// Writes an 8-bit binary PPM (P6) false-colour heightmap.
///
/// # Panics
/// Panics on an empty grid. Fallible callers (and callers that may hold
/// non-finite heights, which are rejected) use [`try_write_ppm`].
pub fn write_ppm<W: Write>(w: W, grid: &Grid2<f64>) -> io::Result<()> {
    assert!(!grid.is_empty(), "cannot render an empty grid");
    try_write_ppm(w, grid).map_err(Into::into)
}

/// Fallible [`write_ppm`]: rejects empty grids ([`RrsError::InvalidParam`])
/// and non-finite heights ([`RrsError::NonFinite`]).
pub fn try_write_ppm<W: Write>(w: W, grid: &Grid2<f64>) -> Result<(), RrsError> {
    check_renderable(grid, "ppm heights")?;
    let mut w = BufWriter::new(w);
    let (lo, hi) = normalise(grid);
    write!(w, "P6\n{} {}\n255\n", grid.nx(), grid.ny())?;
    for iy in (0..grid.ny()).rev() {
        let mut bytes = Vec::with_capacity(grid.nx() * 3);
        for &v in grid.row(iy) {
            bytes.extend_from_slice(&terrain_color((v - lo) / (hi - lo)));
        }
        w.write_all(&bytes)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a PGM heightmap to `path` crash-atomically (tmp + fsync +
/// rename): a fault mid-render never leaves a torn image at `path`.
pub fn try_write_pgm_file<P: AsRef<std::path::Path>>(
    path: P,
    grid: &Grid2<f64>,
) -> Result<(), RrsError> {
    crate::atomic::write_atomic(path, |w| try_write_pgm(w, grid))
}

/// Writes a PPM render to `path` crash-atomically (tmp + fsync + rename).
pub fn try_write_ppm_file<P: AsRef<std::path::Path>>(
    path: P,
    grid: &Grid2<f64>,
) -> Result<(), RrsError> {
    crate::atomic::write_atomic(path, |w| try_write_ppm(w, grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_size() {
        let g = Grid2::from_fn(4, 3, |x, y| (x + y) as f64);
        let mut buf = Vec::new();
        write_pgm(&mut buf, &g).unwrap();
        let header_end = buf.windows(4).position(|w| w == b"255\n").unwrap() + 4;
        let header = std::str::from_utf8(&buf[..header_end]).unwrap();
        assert!(header.starts_with("P5\n4 3\n255\n"));
        assert_eq!(buf.len() - header_end, 12);
    }

    #[test]
    fn pgm_spans_full_range() {
        let g = Grid2::from_vec(2, 1, vec![0.0, 10.0]);
        let mut buf = Vec::new();
        write_pgm(&mut buf, &g).unwrap();
        let pixels = &buf[buf.len() - 2..];
        assert_eq!(pixels, &[0u8, 255u8]);
    }

    #[test]
    fn pgm_rows_are_top_down() {
        // Higher y must appear earlier in the file.
        let g = Grid2::from_vec(1, 2, vec![0.0, 10.0]); // y=0 low, y=1 high
        let mut buf = Vec::new();
        write_pgm(&mut buf, &g).unwrap();
        let pixels = &buf[buf.len() - 2..];
        assert_eq!(pixels, &[255u8, 0u8]);
    }

    #[test]
    fn flat_surface_renders_without_nan() {
        let g = Grid2::filled(8, 8, 3.0);
        let mut buf = Vec::new();
        write_pgm(&mut buf, &g).unwrap();
        let pixels = &buf[buf.len() - 64..];
        assert!(pixels.iter().all(|&p| p == pixels[0]));
    }

    #[test]
    fn ppm_has_three_channels() {
        let g = Grid2::from_fn(5, 5, |x, y| (x * y) as f64);
        let mut buf = Vec::new();
        write_ppm(&mut buf, &g).unwrap();
        let header_end = buf.windows(4).position(|w| w == b"255\n").unwrap() + 4;
        assert!(std::str::from_utf8(&buf[..header_end]).unwrap().starts_with("P6\n5 5\n"));
        assert_eq!(buf.len() - header_end, 75);
    }

    #[test]
    fn terrain_ramp_endpoints() {
        assert_eq!(terrain_color(0.0), [20, 44, 108]);
        assert_eq!(terrain_color(1.0), [250, 250, 245]);
        // Monotone brightness at the endpoints.
        let lo: u32 = terrain_color(0.0).iter().map(|&c| c as u32).sum();
        let hi: u32 = terrain_color(1.0).iter().map(|&c| c as u32).sum();
        assert!(hi > lo);
        // Out-of-range inputs clamp.
        assert_eq!(terrain_color(-5.0), terrain_color(0.0));
        assert_eq!(terrain_color(7.0), terrain_color(1.0));
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_rejected() {
        write_pgm(Vec::new(), &Grid2::zeros(0, 0)).unwrap();
    }

    #[test]
    fn non_finite_heights_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let g = Grid2::from_vec(2, 1, vec![0.0, bad]);
            let e = try_write_pgm(Vec::new(), &g).unwrap_err();
            assert_eq!(e.kind(), rrs_error::ErrorKind::NonFinite, "{bad}: {e}");
            assert!(e.to_string().contains("index 1"), "{e}");
            let e = try_write_ppm(Vec::new(), &g).unwrap_err();
            assert_eq!(e.kind(), rrs_error::ErrorKind::NonFinite, "{bad}: {e}");
            // The io::Result wrappers surface the same failure as
            // InvalidData instead of silently clamping the pixel.
            let e = write_pgm(Vec::new(), &g).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        }
    }
}
