//! CSV export/import of height fields.

use rrs_error::{ensure_all_finite, RrsError};
use rrs_grid::Grid2;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Writes the surface as a plain matrix CSV: one row per `y`, columns are
/// `x`, full `f64` precision. Non-finite heights are rejected.
pub fn write_matrix_csv<W: Write>(w: W, grid: &Grid2<f64>) -> io::Result<()> {
    try_write_matrix_csv(w, grid).map_err(Into::into)
}

/// Fallible [`write_matrix_csv`]: a NaN/∞ height is a generation bug, not
/// a number a downstream CSV consumer should discover — rejected as
/// [`RrsError::NonFinite`].
pub fn try_write_matrix_csv<W: Write>(w: W, grid: &Grid2<f64>) -> Result<(), RrsError> {
    ensure_all_finite("csv heights", grid.as_slice())?;
    let mut w = BufWriter::new(w);
    for iy in 0..grid.ny() {
        let row = grid.row(iy);
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                w.write_all(b",")?;
            }
            write!(w, "{v:?}")?; // Debug float formatting round-trips exactly
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a matrix CSV produced by [`write_matrix_csv`] (or any rectangular
/// comma-separated block of numbers).
pub fn read_matrix_csv<R: Read>(r: R) -> io::Result<Grid2<f64>> {
    let reader = BufReader::new(r);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> =
            trimmed.split(',').map(|tok| tok.trim().parse::<f64>()).collect();
        let row = row.map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 1))
        })?;
        if let Some(first) = rows.first() {
            if first.len() != row.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("ragged CSV: line {} has {} fields", lineno + 1, row.len()),
                ));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty CSV"));
    }
    let nx = rows[0].len();
    let ny = rows.len();
    let mut data = Vec::with_capacity(nx * ny);
    for row in rows {
        data.extend(row);
    }
    Ok(Grid2::from_vec(nx, ny, data))
}

/// Writes a matrix CSV to `path` crash-atomically (tmp + fsync + rename):
/// a fault mid-export never leaves a torn file at `path`.
pub fn try_write_matrix_csv_file<P: AsRef<std::path::Path>>(
    path: P,
    grid: &Grid2<f64>,
) -> Result<(), RrsError> {
    crate::atomic::write_atomic(path, |w| try_write_matrix_csv(w, grid))
}

/// Writes the surface in long `x,y,height` format with a header row —
/// convenient for dataframe tooling. Non-finite heights are rejected.
pub fn write_xyz_csv<W: Write>(w: W, grid: &Grid2<f64>) -> io::Result<()> {
    try_write_xyz_csv(w, grid).map_err(Into::into)
}

/// Fallible [`write_xyz_csv`]: non-finite heights are rejected as
/// [`RrsError::NonFinite`].
pub fn try_write_xyz_csv<W: Write>(w: W, grid: &Grid2<f64>) -> Result<(), RrsError> {
    ensure_all_finite("csv heights", grid.as_slice())?;
    let mut w = BufWriter::new(w);
    w.write_all(b"x,y,height\n")?;
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            writeln!(w, "{ix},{iy},{:?}", *grid.get(ix, iy))?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes an `x,y,height` CSV to `path` crash-atomically (tmp + fsync +
/// rename).
pub fn try_write_xyz_csv_file<P: AsRef<std::path::Path>>(
    path: P,
    grid: &Grid2<f64>,
) -> Result<(), RrsError> {
    crate::atomic::write_atomic(path, |w| try_write_xyz_csv(w, grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_round_trip_is_exact() {
        let g = Grid2::from_fn(5, 3, |x, y| (x as f64 + 0.1) * (y as f64 - 0.7) / 3.0);
        let mut buf = Vec::new();
        write_matrix_csv(&mut buf, &g).unwrap();
        let back = read_matrix_csv(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn extreme_values_round_trip() {
        let g = Grid2::from_vec(2, 2, vec![f64::MIN_POSITIVE, 1e308, -1e-300, 0.0]);
        let mut buf = Vec::new();
        write_matrix_csv(&mut buf, &g).unwrap();
        assert_eq!(read_matrix_csv(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn xyz_format_shape() {
        let g = Grid2::from_fn(2, 2, |x, y| (x + y) as f64);
        let mut buf = Vec::new();
        write_xyz_csv(&mut buf, &g).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "x,y,height");
        assert_eq!(lines[1], "0,0,0.0");
        assert_eq!(lines[4], "1,1,2.0");
    }

    #[test]
    fn ragged_csv_rejected() {
        let err = read_matrix_csv("1,2,3\n4,5\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_rejected_with_line_number() {
        let err = read_matrix_csv("1,2\n3,oops\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_matrix_csv("".as_bytes()).is_err());
        assert!(read_matrix_csv("\n\n".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let g = read_matrix_csv("1,2\n\n3,4\n".as_bytes()).unwrap();
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(*g.get(0, 1), 3.0);
    }

    #[test]
    fn non_finite_heights_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let g = Grid2::from_vec(2, 1, vec![bad, 1.0]);
            let e = try_write_matrix_csv(Vec::new(), &g).unwrap_err();
            assert_eq!(e.kind(), rrs_error::ErrorKind::NonFinite, "{bad}: {e}");
            assert!(e.to_string().contains("index 0"), "{e}");
            let e = try_write_xyz_csv(Vec::new(), &g).unwrap_err();
            assert_eq!(e.kind(), rrs_error::ErrorKind::NonFinite, "{bad}: {e}");
            assert_eq!(
                write_matrix_csv(Vec::new(), &g).unwrap_err().kind(),
                io::ErrorKind::InvalidData
            );
        }
    }
}
