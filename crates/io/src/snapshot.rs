//! Exact binary snapshots of height fields.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic  "RRSSNAP1"  (8 bytes)
//! nx     u64
//! ny     u64
//! data   nx·ny × f64, row-major
//! crc    u64  — FNV-1a over the data bytes
//! ```
//!
//! Round-trips bit-exactly; the checksum catches truncation and
//! corruption. Built on the `bytes` crate's cursor types.

use bytes::{Buf, BufMut};
use rrs_grid::Grid2;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"RRSSNAP1";

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serialises a grid to the snapshot format.
pub fn write_snapshot<W: Write>(mut w: W, grid: &Grid2<f64>) -> io::Result<()> {
    let mut buf = Vec::with_capacity(24 + grid.len() * 8 + 8);
    buf.put_slice(MAGIC);
    buf.put_u64_le(grid.nx() as u64);
    buf.put_u64_le(grid.ny() as u64);
    let data_start = buf.len();
    for &v in grid.as_slice() {
        buf.put_f64_le(v);
    }
    let crc = fnv1a(&buf[data_start..]);
    buf.put_u64_le(crc);
    w.write_all(&buf)
}

/// Deserialises a snapshot, verifying magic, shape and checksum.
pub fn read_snapshot<R: Read>(mut r: R) -> io::Result<Grid2<f64>> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = raw.as_slice();
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if buf.remaining() < 24 {
        return Err(bad("snapshot too short"));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let nx = buf.get_u64_le() as usize;
    let ny = buf.get_u64_le() as usize;
    let n = nx
        .checked_mul(ny)
        .ok_or_else(|| bad("shape overflow"))?;
    if buf.remaining() != n * 8 + 8 {
        return Err(bad("snapshot length does not match shape"));
    }
    let data_bytes = &buf.chunk()[..n * 8];
    let crc_expect = fnv1a(data_bytes);
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f64_le());
    }
    let crc = buf.get_u64_le();
    if crc != crc_expect {
        return Err(bad("checksum mismatch"));
    }
    Ok(Grid2::from_vec(nx, ny, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bit_exact() {
        let g = Grid2::from_fn(17, 9, |x, y| {
            (x as f64).sin() * (y as f64).exp() / 3.0 - 0.123456789012345
        });
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn special_values_round_trip() {
        let g = Grid2::from_vec(2, 2, vec![f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e-308]);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back.as_slice()[0], f64::INFINITY);
        assert_eq!(back.as_slice()[1], f64::NEG_INFINITY);
        assert_eq!(back.as_slice()[3], 1e-308);
    }

    #[test]
    fn empty_grid_round_trips() {
        let g = Grid2::zeros(0, 0);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), (0, 0));
    }

    #[test]
    fn corruption_is_detected() {
        let g = Grid2::from_fn(8, 8, |x, y| (x + y) as f64);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        // Flip one data byte.
        let idx = 24 + 13;
        buf[idx] ^= 0x40;
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncation_is_detected() {
        let g = Grid2::from_fn(4, 4, |x, _| x as f64);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &Grid2::zeros(2, 2)).unwrap();
        buf[0] = b'X';
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }
}
