//! Exact binary snapshots of height fields.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic  "RRSSNAP1"  (8 bytes)
//! nx     u64
//! ny     u64
//! data   nx·ny × f64, row-major
//! crc    u64  — FNV-1a over the data bytes
//! ```
//!
//! Round-trips bit-exactly; the checksum catches truncation and
//! corruption. Hand-rolled on `std` only: fields are encoded with
//! `to_le_bytes`/`from_le_bytes`, so the format is pinned in this file
//! rather than behind a third-party serialisation layer.

use rrs_error::RrsError;
use rrs_grid::Grid2;
use rrs_obs::{stage, Recorder};
use std::io::{self, Read, Write};

/// The 8-byte magic prefix identifying a snapshot stream (format v1).
pub const MAGIC: &[u8; 8] = b"RRSSNAP1";

/// Byte length of the fixed header: magic + `nx` + `ny`.
pub const HEADER_LEN: usize = 24;

pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serialises a grid to the snapshot format.
pub fn write_snapshot<W: Write>(w: W, grid: &Grid2<f64>) -> io::Result<()> {
    try_write_snapshot(w, grid).map_err(Into::into)
}

/// Fallible [`write_snapshot`]: write failures surface as
/// [`RrsError::Io`].
pub fn try_write_snapshot<W: Write>(mut w: W, grid: &Grid2<f64>) -> Result<(), RrsError> {
    let mut buf = Vec::with_capacity(HEADER_LEN + grid.len() * 8 + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(grid.nx() as u64).to_le_bytes());
    buf.extend_from_slice(&(grid.ny() as u64).to_le_bytes());
    let data_start = buf.len();
    for &v in grid.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let crc = fnv1a(&buf[data_start..]);
    buf.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&buf)?;
    Ok(())
}

/// [`try_write_snapshot`] with the whole export (serialise + write)
/// timed as one `export/snapshot` observation.
pub fn try_write_snapshot_observed<W: Write>(
    w: W,
    grid: &Grid2<f64>,
    obs: &Recorder,
) -> Result<(), RrsError> {
    obs.time(stage::EXPORT_SNAPSHOT, || try_write_snapshot(w, grid))
}

/// Writes a snapshot to `path` crash-atomically (tmp + fsync + rename):
/// a crash or fault mid-export can never leave a torn snapshot at `path`
/// — the previous file, if any, survives intact.
pub fn try_write_snapshot_file<P: AsRef<std::path::Path>>(
    path: P,
    grid: &Grid2<f64>,
) -> Result<(), RrsError> {
    try_write_snapshot_file_observed(path, grid, &Recorder::disabled())
}

/// [`try_write_snapshot_file`] timed as one `export/snapshot`
/// observation.
pub fn try_write_snapshot_file_observed<P: AsRef<std::path::Path>>(
    path: P,
    grid: &Grid2<f64>,
    obs: &Recorder,
) -> Result<(), RrsError> {
    obs.time(stage::EXPORT_SNAPSHOT, || {
        crate::atomic::write_atomic(path, |w| try_write_snapshot(w, grid))
    })
}

pub(crate) fn read_u64_le(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8-byte slice"))
}

/// Deserialises a snapshot, verifying magic, shape and checksum.
pub fn read_snapshot<R: Read>(r: R) -> io::Result<Grid2<f64>> {
    try_read_snapshot(r).map_err(Into::into)
}

/// Fallible [`read_snapshot`]: corruption surfaces as
/// [`RrsError::CorruptSnapshot`], read failures as [`RrsError::Io`].
///
/// The declared shape is validated against the remaining payload with
/// overflow-checked arithmetic *before* any data allocation, so a hostile
/// header can neither trigger a huge allocation nor a slice panic.
pub fn try_read_snapshot<R: Read>(mut r: R) -> Result<Grid2<f64>, RrsError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let bad = |msg: &str| RrsError::corrupt_snapshot(msg);
    if raw.len() < HEADER_LEN {
        return Err(bad("snapshot too short"));
    }
    if &raw[..8] != MAGIC {
        return Err(bad("bad magic"));
    }
    let nx = read_u64_le(&raw, 8) as usize;
    let ny = read_u64_le(&raw, 16) as usize;
    let payload = &raw[HEADER_LEN..];
    // Both the element count and the byte length are overflow-checked, and
    // checked against what was actually read before the data Vec exists.
    let n = nx.checked_mul(ny).ok_or_else(|| bad("shape overflow"))?;
    let expect_len = n
        .checked_mul(8)
        .and_then(|b| b.checked_add(8))
        .ok_or_else(|| bad("shape overflow"))?;
    if payload.len() != expect_len {
        return Err(bad("snapshot length does not match shape"));
    }
    let data_bytes = &payload[..n * 8];
    let crc_expect = fnv1a(data_bytes);
    let crc = read_u64_le(payload, n * 8);
    if crc != crc_expect {
        return Err(bad("checksum mismatch"));
    }
    let data: Vec<f64> = data_bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    Grid2::try_from_vec(nx, ny, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bit_exact() {
        let g = Grid2::from_fn(17, 9, |x, y| {
            (x as f64).sin() * (y as f64).exp() / 3.0 - 0.123456789012345
        });
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn special_values_round_trip() {
        let g = Grid2::from_vec(2, 2, vec![f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e-308]);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back.as_slice()[0], f64::INFINITY);
        assert_eq!(back.as_slice()[1], f64::NEG_INFINITY);
        assert_eq!(back.as_slice()[3], 1e-308);
    }

    #[test]
    fn empty_grid_round_trips() {
        let g = Grid2::zeros(0, 0);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), (0, 0));
    }

    #[test]
    fn corruption_is_detected() {
        let g = Grid2::from_fn(8, 8, |x, y| (x + y) as f64);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        // Flip one data byte.
        let idx = HEADER_LEN + 13;
        buf[idx] ^= 0x40;
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncation_is_detected() {
        let g = Grid2::from_fn(4, 4, |x, _| x as f64);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &Grid2::zeros(2, 2)).unwrap();
        buf[0] = b'X';
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn hostile_header_cannot_force_huge_allocation() {
        // A tiny valid snapshot whose header claims an absurd shape must
        // be rejected by the length check before any data allocation —
        // including shapes where nx·ny or nx·ny·8 overflow usize.
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &Grid2::zeros(2, 2)).unwrap();
        for (nx, ny) in [
            (u64::MAX, u64::MAX),        // nx·ny overflows
            (u64::MAX / 4, 2),           // nx·ny fits, ·8 overflows
            (1 << 40, 1),                // huge but representable
            (3, 3),                      // plausible but wrong
        ] {
            let mut hostile = buf.clone();
            hostile[8..16].copy_from_slice(&nx.to_le_bytes());
            hostile[16..24].copy_from_slice(&ny.to_le_bytes());
            let err = try_read_snapshot(hostile.as_slice()).unwrap_err();
            assert_eq!(
                err.kind(),
                rrs_error::ErrorKind::CorruptSnapshot,
                "nx={nx} ny={ny}: {err}"
            );
        }
    }
}
