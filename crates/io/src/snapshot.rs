//! Exact binary snapshots of height fields.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic  "RRSSNAP1"  (8 bytes)
//! nx     u64
//! ny     u64
//! data   nx·ny × f64, row-major
//! crc    u64  — FNV-1a over the data bytes
//! ```
//!
//! Round-trips bit-exactly; the checksum catches truncation and
//! corruption. Hand-rolled on `std` only: fields are encoded with
//! `to_le_bytes`/`from_le_bytes`, so the format is pinned in this file
//! rather than behind a third-party serialisation layer.

use rrs_grid::Grid2;
use std::io::{self, Read, Write};

/// The 8-byte magic prefix identifying a snapshot stream (format v1).
pub const MAGIC: &[u8; 8] = b"RRSSNAP1";

/// Byte length of the fixed header: magic + `nx` + `ny`.
pub const HEADER_LEN: usize = 24;

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serialises a grid to the snapshot format.
pub fn write_snapshot<W: Write>(mut w: W, grid: &Grid2<f64>) -> io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + grid.len() * 8 + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(grid.nx() as u64).to_le_bytes());
    buf.extend_from_slice(&(grid.ny() as u64).to_le_bytes());
    let data_start = buf.len();
    for &v in grid.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let crc = fnv1a(&buf[data_start..]);
    buf.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&buf)
}

fn read_u64_le(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8-byte slice"))
}

/// Deserialises a snapshot, verifying magic, shape and checksum.
pub fn read_snapshot<R: Read>(mut r: R) -> io::Result<Grid2<f64>> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if raw.len() < HEADER_LEN {
        return Err(bad("snapshot too short"));
    }
    if &raw[..8] != MAGIC {
        return Err(bad("bad magic"));
    }
    let nx = read_u64_le(&raw, 8) as usize;
    let ny = read_u64_le(&raw, 16) as usize;
    let n = nx.checked_mul(ny).ok_or_else(|| bad("shape overflow"))?;
    let payload = &raw[HEADER_LEN..];
    if payload.len() != n * 8 + 8 {
        return Err(bad("snapshot length does not match shape"));
    }
    let data_bytes = &payload[..n * 8];
    let crc_expect = fnv1a(data_bytes);
    let crc = read_u64_le(payload, n * 8);
    if crc != crc_expect {
        return Err(bad("checksum mismatch"));
    }
    let data: Vec<f64> = data_bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    Ok(Grid2::from_vec(nx, ny, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bit_exact() {
        let g = Grid2::from_fn(17, 9, |x, y| {
            (x as f64).sin() * (y as f64).exp() / 3.0 - 0.123456789012345
        });
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn special_values_round_trip() {
        let g = Grid2::from_vec(2, 2, vec![f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e-308]);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back.as_slice()[0], f64::INFINITY);
        assert_eq!(back.as_slice()[1], f64::NEG_INFINITY);
        assert_eq!(back.as_slice()[3], 1e-308);
    }

    #[test]
    fn empty_grid_round_trips() {
        let g = Grid2::zeros(0, 0);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), (0, 0));
    }

    #[test]
    fn corruption_is_detected() {
        let g = Grid2::from_fn(8, 8, |x, y| (x + y) as f64);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        // Flip one data byte.
        let idx = HEADER_LEN + 13;
        buf[idx] ^= 0x40;
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncation_is_detected() {
        let g = Grid2::from_fn(4, 4, |x, _| x as f64);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &Grid2::zeros(2, 2)).unwrap();
        buf[0] = b'X';
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }
}
