//! Fault injection for I/O robustness testing (feature `failpoints`).
//!
//! Deterministic failing adapters and byte corruptors used by the
//! robustness suite to prove that every decoder in this crate fails
//! *closed*: corruption is always flagged as an error, never decoded into
//! unflagged garbage, and never a panic. Compiled only with
//! `--features failpoints` so production builds carry no test scaffolding.

use std::io::{self, Read, Write};

/// A writer that fails with [`io::ErrorKind::WriteZero`] once `budget`
/// bytes have been accepted. Bytes up to the budget are forwarded to the
/// inner writer, so the inner buffer afterwards looks exactly like a torn
/// write (e.g. a full disk or a killed process).
pub struct FailingWriter<W> {
    inner: W,
    budget: usize,
}

impl<W: Write> FailingWriter<W> {
    /// Wraps `inner`, allowing exactly `budget` bytes through.
    pub fn new(inner: W, budget: usize) -> Self {
        Self { inner, budget }
    }

    /// The inner writer (holding the bytes written before the fault).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected write fault: budget exhausted",
            ));
        }
        let n = buf.len().min(self.budget);
        let written = self.inner.write(&buf[..n])?;
        self.budget -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that fails with [`io::ErrorKind::UnexpectedEof`] once `budget`
/// bytes have been served from the inner reader.
pub struct FailingReader<R> {
    inner: R,
    budget: usize,
}

impl<R: Read> FailingReader<R> {
    /// Wraps `inner`, serving exactly `budget` bytes before erroring.
    pub fn new(inner: R, budget: usize) -> Self {
        Self { inner, budget }
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "injected read fault: budget exhausted",
            ));
        }
        let n = buf.len().min(self.budget);
        let read = self.inner.read(&mut buf[..n])?;
        self.budget -= read;
        Ok(read)
    }
}

/// Flips bit `bit` (0 = LSB of byte 0) of `buf`.
///
/// # Panics
/// Panics if `bit >= buf.len() * 8` — a corruptor aimed outside the buffer
/// is a test bug, not a runtime condition.
pub fn flip_bit(buf: &mut [u8], bit: usize) {
    assert!(bit < buf.len() * 8, "bit {bit} outside buffer of {} bytes", buf.len());
    buf[bit / 8] ^= 1 << (bit % 8);
}

/// Returns `buf` truncated to its first `keep` bytes (clamped).
pub fn truncated(buf: &[u8], keep: usize) -> Vec<u8> {
    buf[..keep.min(buf.len())].to_vec()
}

/// Overwrites the 8-byte magic prefix with `XXXXXXXX` (no-op on shorter
/// buffers).
pub fn stomp_magic(buf: &mut [u8]) {
    let n = buf.len().min(8);
    buf[..n].fill(b'X');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_writer_respects_budget() {
        let mut fw = FailingWriter::new(Vec::new(), 10);
        assert_eq!(fw.write(&[0u8; 6]).unwrap(), 6);
        assert_eq!(fw.write(&[0u8; 6]).unwrap(), 4); // clipped to the budget
        let err = fw.write(&[0u8; 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(fw.into_inner().len(), 10);
    }

    #[test]
    fn failing_reader_respects_budget() {
        let data = [7u8; 16];
        let mut fr = FailingReader::new(&data[..], 5);
        let mut out = [0u8; 16];
        assert_eq!(fr.read(&mut out).unwrap(), 5);
        assert_eq!(fr.read(&mut out).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corruptors_do_what_they_say() {
        let mut buf = vec![0u8; 4];
        flip_bit(&mut buf, 9);
        assert_eq!(buf, vec![0, 2, 0, 0]);
        assert_eq!(truncated(&buf, 2), vec![0, 2]);
        assert_eq!(truncated(&buf, 99), buf);
        let mut m = b"RRSSNAP1tail".to_vec();
        stomp_magic(&mut m);
        assert_eq!(&m[..8], b"XXXXXXXX");
        assert_eq!(&m[8..], b"tail");
    }
}
