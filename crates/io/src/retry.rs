//! Deterministic retry with exponential backoff for durable writes.
//!
//! Checkpoint and snapshot writes sit on the other side of the filesystem
//! fault boundary: a transient `EIO`, a briefly-full disk or an injected
//! `failpoints` fault should not kill an hours-long streaming run. A
//! [`RetryPolicy`] wraps such a write and retries *transient* failures
//! (I/O errors) a bounded number of times with exponential backoff, while
//! failing immediately on anything that retrying cannot fix (corruption,
//! invalid parameters, budget trips).
//!
//! Determinism: the backoff for attempt `k` is the pure function
//! `base_delay · 2^(k−1)` — no jitter, no clock sampling — so a retry
//! schedule is reproducible from the policy alone. Sleeping is abstracted
//! behind [`Sleeper`] so tests (and the `failpoints` suite) inject a
//! recording no-op sleeper and run instantly; production callers use the
//! default [`ThreadSleeper`].

use rrs_chaos::{ChaosInjector, FaultSite};
use rrs_error::{Budget, ErrorKind, RrsError};
use rrs_obs::{stage, ObsSink, Recorder};
use std::time::{Duration, Instant};

/// How to wait between attempts. Injectable so tests run instantly.
pub trait Sleeper {
    /// Blocks for (or records) `d`.
    fn sleep(&self, d: Duration);
}

/// The production sleeper: `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A bounded, deterministic retry schedule for fallible I/O.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Backoff before retry `k` (the `k+1`-th attempt) is
    /// `base_delay · 2^(k−1)`.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms base — first retry after 10 ms, second after
    /// a further 20 ms.
    fn default() -> Self {
        Self { max_attempts: 3, base_delay: Duration::from_millis(10) }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and the default base
    /// delay.
    pub fn with_attempts(max_attempts: u32) -> Self {
        Self { max_attempts, ..Self::default() }
    }

    /// The deterministic backoff before attempt `attempt` (1-based; the
    /// first attempt has no backoff).
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            Duration::ZERO
        } else {
            self.base_delay.saturating_mul(1u32 << (attempt - 2).min(30))
        }
    }

    /// Runs `op` under this policy with the production sleeper.
    pub fn run<T, F>(&self, obs: &Recorder, mut op: F) -> Result<T, RrsError>
    where
        F: FnMut() -> Result<T, RrsError>,
    {
        self.run_with_sleeper(obs, &ThreadSleeper, &mut op)
    }

    /// Runs `op` until it succeeds, fails permanently, or the attempt
    /// budget is exhausted.
    ///
    /// Only [`ErrorKind::Io`] failures are treated as transient and
    /// retried; every other kind fails closed immediately (retrying a
    /// corrupt payload or an exceeded budget cannot succeed). Each attempt
    /// ticks [`stage::RETRY_ATTEMPTS`] and each backoff slept is recorded
    /// in the [`stage::RETRY_BACKOFF`] duration histogram. On exhaustion
    /// the final error is wrapped with the attempt history.
    pub fn run_with_sleeper<T, F, S>(
        &self,
        obs: &Recorder,
        sleeper: &S,
        op: &mut F,
    ) -> Result<T, RrsError>
    where
        F: FnMut() -> Result<T, RrsError>,
        S: Sleeper + ?Sized,
    {
        self.run_with_sleeper_budgeted(
            obs,
            sleeper,
            &Budget::unlimited(),
            &ChaosInjector::disabled(),
            op,
        )
    }

    /// [`RetryPolicy::run_with_sleeper`] under a [`Budget`] and a
    /// [`ChaosInjector`].
    ///
    /// The budget is polled before every attempt, and each backoff is
    /// clamped against an armed deadline *before* sleeping: if
    /// `now + backoff` would land past `budget.deadline()`, the policy
    /// returns [`RrsError::DeadlineExceeded`] immediately instead of
    /// sleeping through a deadline it is guaranteed to miss. The chaos
    /// injector's [`FaultSite::RetrySleep`] site is polled (contained)
    /// before each backoff.
    pub fn run_with_sleeper_budgeted<T, F, S>(
        &self,
        obs: &Recorder,
        sleeper: &S,
        budget: &Budget,
        chaos: &ChaosInjector,
        op: &mut F,
    ) -> Result<T, RrsError>
    where
        F: FnMut() -> Result<T, RrsError>,
        S: Sleeper + ?Sized,
    {
        let attempts = self.max_attempts.max(1);
        let mut history = String::new();
        for attempt in 1..=attempts {
            if attempt > 1 {
                let delay = self.backoff(attempt);
                chaos.poll_contained(FaultSite::RetrySleep)?;
                if let Some(deadline) = budget.deadline() {
                    let now = Instant::now();
                    if now.checked_add(delay).is_none_or(|wake| wake > deadline) {
                        return Err(RrsError::DeadlineExceeded.with_context(format!(
                            "a {delay:?} backoff before attempt {attempt} \
                             would sleep past the armed deadline"
                        )));
                    }
                }
                let span = obs.start(stage::RETRY_BACKOFF);
                sleeper.sleep(delay);
                obs.finish(span);
            }
            budget.check()?;
            obs.add_counter(stage::RETRY_ATTEMPTS, 1);
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == ErrorKind::Io && attempt < attempts => {
                    if !history.is_empty() {
                        history.push_str("; ");
                    }
                    history.push_str(&format!("attempt {attempt}: {e}"));
                }
                Err(e) if e.kind() == ErrorKind::Io => {
                    return Err(e.with_context(format!(
                        "persistent I/O failure after {attempts} attempts \
                         (earlier: {})",
                        if history.is_empty() { "none" } else { &history },
                    )));
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Records requested sleeps instead of blocking.
    struct RecordingSleeper(RefCell<Vec<Duration>>);

    impl Sleeper for RecordingSleeper {
        fn sleep(&self, d: Duration) {
            self.0.borrow_mut().push(d);
        }
    }

    fn io_err(msg: &str) -> RrsError {
        RrsError::from(std::io::Error::other(msg.to_string()))
    }

    #[test]
    fn backoff_is_a_pure_exponential_of_the_attempt() {
        let p = RetryPolicy { max_attempts: 5, base_delay: Duration::from_millis(10) };
        assert_eq!(p.backoff(1), Duration::ZERO);
        assert_eq!(p.backoff(2), Duration::from_millis(10));
        assert_eq!(p.backoff(3), Duration::from_millis(20));
        assert_eq!(p.backoff(4), Duration::from_millis(40));
        // Saturates instead of overflowing for absurd attempt numbers.
        let _ = p.backoff(u32::MAX);
    }

    #[test]
    fn transient_fault_recovers_with_counted_attempts() {
        let fails = AtomicU32::new(2);
        let rec = Recorder::enabled();
        let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
        let policy = RetryPolicy::default();
        let out = policy
            .run_with_sleeper(&rec, &sleeper, &mut || {
                if fails.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err(io_err("transient"))
                } else {
                    Ok(42)
                }
            })
            .unwrap();
        assert_eq!(out, 42);
        let report = rec.report();
        assert_eq!(report.counter(stage::RETRY_ATTEMPTS), 3);
        assert_eq!(report.durations[stage::RETRY_BACKOFF].count, 2);
        assert_eq!(
            *sleeper.0.borrow(),
            vec![Duration::from_millis(10), Duration::from_millis(20)],
            "deterministic exponential schedule"
        );
    }

    #[test]
    fn persistent_fault_fails_closed_with_attempt_history() {
        let rec = Recorder::enabled();
        let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
        let policy = RetryPolicy::default();
        let err = policy
            .run_with_sleeper::<(), _, _>(&rec, &sleeper, &mut || Err(io_err("disk on fire")))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io, "kind penetrates the context wrapper");
        let msg = err.to_string();
        assert!(msg.contains("after 3 attempts"), "{msg}");
        assert!(msg.contains("attempt 1") && msg.contains("attempt 2"), "{msg}");
        assert_eq!(rec.report().counter(stage::RETRY_ATTEMPTS), 3);
    }

    #[test]
    fn non_io_errors_are_not_retried() {
        let calls = AtomicU32::new(0);
        let rec = Recorder::enabled();
        let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
        let err = RetryPolicy::default()
            .run_with_sleeper::<(), _, _>(&rec, &sleeper, &mut || {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(RrsError::corrupt_snapshot("retrying cannot fix this"))
            })
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::CorruptSnapshot);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "permanent failure: exactly one attempt");
        assert!(sleeper.0.borrow().is_empty());
    }

    #[test]
    fn success_on_first_attempt_never_sleeps() {
        let rec = Recorder::enabled();
        let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
        let out = RetryPolicy::default()
            .run_with_sleeper(&rec, &sleeper, &mut || Ok(7))
            .unwrap();
        assert_eq!(out, 7);
        assert_eq!(rec.report().counter(stage::RETRY_ATTEMPTS), 1);
        assert!(sleeper.0.borrow().is_empty());
    }

    #[test]
    fn zero_attempts_is_clamped_to_one() {
        let policy = RetryPolicy { max_attempts: 0, base_delay: Duration::ZERO };
        let out = policy.run(&Recorder::disabled(), || Ok::<_, RrsError>(1)).unwrap();
        assert_eq!(out, 1);
    }

    #[test]
    fn backoff_past_the_deadline_fails_fast_instead_of_sleeping() {
        // First backoff is 1 h; the deadline is 50 ms away. The policy
        // must return DeadlineExceeded *without* sleeping — a retrying
        // writer inside a deadlined streaming run gives the caller the
        // remaining time back instead of burning it in a doomed backoff.
        let rec = Recorder::enabled();
        let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
        let policy =
            RetryPolicy { max_attempts: 3, base_delay: Duration::from_secs(3600) };
        let budget =
            rrs_error::Budget::unlimited().with_timeout(Duration::from_millis(50));
        let err = policy
            .run_with_sleeper_budgeted::<(), _, _>(
                &rec,
                &sleeper,
                &budget,
                &ChaosInjector::disabled(),
                &mut || Err(io_err("transient")),
            )
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DeadlineExceeded);
        assert!(err.to_string().contains("would sleep past"), "{err}");
        assert!(sleeper.0.borrow().is_empty(), "must not have slept");
        assert_eq!(rec.report().counter(stage::RETRY_ATTEMPTS), 1);
    }

    #[test]
    fn chaos_faults_the_retry_sleep_site_without_sleeping() {
        use rrs_chaos::{FaultKind, FaultSchedule};
        let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
        // An Error fault at the first RetrySleep visit aborts the retry
        // loop with a typed error before the backoff runs.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(1).with_fault(FaultSite::RetrySleep, FaultKind::Error, 0),
        );
        let err = RetryPolicy::default()
            .run_with_sleeper_budgeted::<(), _, _>(
                &Recorder::disabled(),
                &sleeper,
                &rrs_error::Budget::unlimited(),
                &chaos,
                &mut || Err(io_err("transient")),
            )
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::FaultInjected);
        assert!(sleeper.0.borrow().is_empty());

        // A Panic fault at the same site is contained to WorkerPanicked —
        // the panic never unwinds through the retry loop.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(2).with_fault(FaultSite::RetrySleep, FaultKind::Panic, 0),
        );
        let err = RetryPolicy::default()
            .run_with_sleeper_budgeted::<(), _, _>(
                &Recorder::disabled(),
                &sleeper,
                &rrs_error::Budget::unlimited(),
                &chaos,
                &mut || Err(io_err("transient")),
            )
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WorkerPanicked);
    }

    rrs_check::props! {
        #![cases = 96]

        // The clamp property: whenever the *first* backoff already
        // exceeds the armed deadline's offset, the policy returns
        // DeadlineExceeded without ever invoking the sleeper. This holds
        // deterministically because time only moves forward: if
        // offset < delay then now + delay > arm_time + offset.
        fn backoff_never_sleeps_past_an_armed_deadline(
            attempts in 2u32..6,
            base_us in 1_000u64..1_000_000,
            frac in 0.0f64..1.0,
        ) {
            let policy = RetryPolicy {
                max_attempts: attempts,
                base_delay: Duration::from_micros(base_us),
            };
            let first_backoff = policy.backoff(2);
            // A deadline strictly inside the first backoff.
            let offset = first_backoff.mul_f64(frac * 0.99);
            let budget = rrs_error::Budget::unlimited().with_timeout(offset);
            let sleeper = RecordingSleeper(RefCell::new(Vec::new()));
            let err = policy
                .run_with_sleeper_budgeted::<(), _, _>(
                    &Recorder::disabled(),
                    &sleeper,
                    &budget,
                    &ChaosInjector::disabled(),
                    &mut || Err(io_err("transient")),
                )
                .unwrap_err();
            assert_eq!(err.kind(), ErrorKind::DeadlineExceeded);
            assert!(
                sleeper.0.borrow().is_empty(),
                "a backoff of {first_backoff:?} must not start under a \
                 deadline {offset:?} away"
            );
        }
    }
}
