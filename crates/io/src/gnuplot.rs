//! gnuplot matrix export.
//!
//! The emitted block plots directly with
//! `splot 'file.dat' matrix with pm3d` — the quickest way to regenerate
//! the paper's 3-D surface figures.

use rrs_grid::Grid2;
use std::io::{self, BufWriter, Write};

/// Writes a whitespace-separated matrix block with a commented header.
pub fn write_gnuplot_matrix<W: Write>(w: W, grid: &Grid2<f64>, title: &str) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# {title}")?;
    writeln!(w, "# nx={} ny={}  (plot: splot '<file>' matrix with pm3d)", grid.nx(), grid.ny())?;
    for iy in 0..grid.ny() {
        let row = grid.row(iy);
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                w.write_all(b" ")?;
            }
            write!(w, "{v:.6e}")?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_header_and_rows() {
        let g = Grid2::from_fn(3, 2, |x, y| (x + 10 * y) as f64);
        let mut buf = Vec::new();
        write_gnuplot_matrix(&mut buf, &g, "test surface").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("# test surface"));
        assert!(lines[1].contains("nx=3 ny=2"));
        assert_eq!(lines.len(), 4);
        let fields: Vec<&str> = lines[2].split_whitespace().collect();
        assert_eq!(fields.len(), 3);
        assert!(fields[0].starts_with("0.0"));
    }

    #[test]
    fn values_parse_back() {
        let g = Grid2::from_fn(4, 4, |x, y| (x as f64 - 1.5) * (y as f64 + 0.25));
        let mut buf = Vec::new();
        write_gnuplot_matrix(&mut buf, &g, "t").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut values = Vec::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            for tok in line.split_whitespace() {
                values.push(tok.parse::<f64>().unwrap());
            }
        }
        assert_eq!(values.len(), 16);
        for (a, b) in values.iter().zip(g.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
